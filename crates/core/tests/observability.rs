//! End-to-end checks of the observability subsystem: cross-node span
//! stitching, metrics surfacing, and — the load-bearing guarantee —
//! that enabling spans/metrics changes *nothing* about execution (the
//! recorded schedule stays byte-identical).

use dex_core::{Cluster, ClusterConfig, RunReport, SpanId, SpanKind};
use dex_net::NodeId;

/// A deterministic workload exercising every instrumented path: forward
/// migration, remote write faults, invalidation fan-out, futex
/// wake, and backward migration.
fn run_workload(cfg: ClusterConfig) -> RunReport {
    let cluster = Cluster::new(cfg);
    cluster.run(|p| {
        let data = p.alloc_vec::<u64>(64, "data");
        let flag = p.alloc_cell_tagged::<u32>(0, "flag");
        p.spawn(move |ctx| {
            ctx.set_site("observability.writer");
            ctx.migrate(1).expect("node 1 exists");
            for i in 0..8 {
                data.set(ctx, i, i as u64 * 3);
            }
            flag.set(ctx, 1);
            ctx.migrate_back().expect("return home");
        });
        p.spawn(move |ctx| {
            ctx.set_site("observability.reader");
            while flag.get(ctx) == 0 {
                ctx.compute_ops(10_000);
            }
            assert_eq!(data.get(ctx, 7), 21);
        });
    })
}

#[test]
fn schedule_is_bit_identical_with_and_without_instrumentation() {
    let base = run_workload(ClusterConfig::new(2).with_schedule_recording());
    let instrumented = run_workload(
        ClusterConfig::new(2)
            .with_schedule_recording()
            .with_spans()
            .with_metrics(),
    );
    let plain = base.schedule.expect("schedule recorded");
    let traced = instrumented.schedule.expect("schedule recorded");
    assert!(!plain.is_empty());
    assert_eq!(
        plain, traced,
        "enabling spans+metrics must not perturb the schedule by one byte"
    );
    assert!(base.spans.is_empty(), "spans off records nothing");
    assert!(
        !instrumented.spans.is_empty(),
        "spans on records the timeline"
    );
    assert_eq!(base.virtual_time, instrumented.virtual_time);
}

#[test]
fn remote_fault_spans_stitch_across_nodes() {
    let report = run_workload(ClusterConfig::new(2).with_spans());
    let spans = &report.spans;

    // A remote write fault on node 1 …
    let fault = spans
        .iter()
        .find(|s| s.kind == SpanKind::Fault && s.node == NodeId(1) && s.label == "write_fault")
        .expect("a remote write fault span");
    assert_eq!(fault.parent, SpanId::NONE, "faults are roots");
    assert_eq!(
        fault.tag.as_deref(),
        Some("data"),
        "fault spans carry the faulted object's tag"
    );

    // … whose directory handling ran on the origin (node 0) …
    let handling = spans
        .iter()
        .find(|s| s.kind == SpanKind::DirectoryHandling && s.parent == fault.id)
        .expect("origin-side directory handling parented to the fault");
    assert_eq!(handling.node, NodeId(0), "directory lives on the origin");

    // … and whose fixup ran back on the requester, parented to the
    // directory transaction: requester -> origin -> requester.
    let fixup = spans
        .iter()
        .find(|s| s.kind == SpanKind::PageFixup && s.parent == handling.id)
        .expect("requester-side fixup parented to the directory handling");
    assert_eq!(fixup.node, NodeId(1));
    assert!(fault.start <= handling.start && handling.start <= fixup.start);
    assert!(fixup.end <= fault.end, "the fault span covers its children");
}

#[test]
fn migration_spans_cover_the_paper_phases() {
    let report = run_workload(ClusterConfig::new(2).with_spans());
    let spans = &report.spans;
    let phase_labels: Vec<&str> = spans
        .iter()
        .filter(|s| s.kind == SpanKind::MigrationPhase)
        .map(|s| s.label)
        .collect();
    for phase in ["remote_worker", "thread_fork", "context_install"] {
        assert!(
            phase_labels.contains(&phase),
            "first forward migration must record {phase}, got {phase_labels:?}"
        );
    }
    let forward = spans
        .iter()
        .find(|s| s.kind == SpanKind::MigrationForward)
        .expect("forward migration span");
    assert_eq!(forward.label, "first_on_node");
    // Each remote phase is parented to the forward migration span.
    let phases: Vec<_> = spans
        .iter()
        .filter(|s| s.kind == SpanKind::MigrationPhase && s.parent == forward.id)
        .collect();
    assert!(
        phases.len() >= 3,
        "remote phases stitch to the origin-side migration span"
    );
    assert!(spans.iter().any(|s| s.kind == SpanKind::MigrationBack));
}

#[test]
fn metrics_capture_faults_and_link_traffic() {
    let report = run_workload(ClusterConfig::new(2).with_metrics());
    let snap = report.metrics.expect("metrics attached");
    assert_eq!(snap.nodes, 2);
    let node1: std::collections::BTreeMap<&str, u64> = snap.per_node[1]
        .iter()
        .map(|(k, v)| (k.as_str(), *v))
        .collect();
    assert!(
        node1.get("dsm.faults_write").copied().unwrap_or(0) > 0,
        "remote write faults counted on node 1: {node1:?}"
    );
    assert!(
        snap.per_link
            .iter()
            .any(|l| (l.src, l.dst) == (1, 0) || (l.src, l.dst) == (0, 1)),
        "traffic on the 0<->1 links"
    );
    let rendered = snap.render();
    assert!(rendered.contains("dsm.faults_write"));

    // Metrics off: the report carries none.
    assert!(run_workload(ClusterConfig::new(2)).metrics.is_none());
}
