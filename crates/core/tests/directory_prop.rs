//! Property tests for the ownership-directory state machine: random
//! request/ack schedules must preserve the protocol invariants and give
//! every request exactly one resolution.

use std::collections::VecDeque;

use proptest::prelude::*;

use dex_core::{DirAction, Directory, NodeSet, Requester};
use dex_net::NodeId;
use dex_os::{Access, Vpn};

const ORIGIN: NodeId = NodeId(0);
const HOME: NodeId = NodeId(1);

/// An in-flight remote transaction the harness must acknowledge.
#[derive(Debug)]
enum PendingAck {
    Flush {
        vpn: Vpn,
        from: NodeId,
    },
    Invalidate {
        vpn: Vpn,
        from: NodeId,
        needs_data: bool,
    },
    /// Sharded mode: the owner services the forwarded request (granting
    /// straight to the requester) and acks the ownership change.
    Forward {
        vpn: Vpn,
        from: NodeId,
    },
}

#[derive(Debug, Default)]
struct Harness {
    dir: Option<Directory>,
    home: NodeId,
    acks: VecDeque<PendingAck>,
    grants: u64,
    retries: u64,
    requests: u64,
}

impl Harness {
    fn new() -> Self {
        Harness {
            dir: Some(Directory::new(ORIGIN)),
            home: ORIGIN,
            ..Default::default()
        }
    }

    /// A sharded-mode harness: the directory lives at a non-origin home
    /// and runs the two-hop (owner-forwarded) protocol.
    fn forwarded() -> Self {
        Harness {
            dir: Some(Directory::forwarded(HOME, ORIGIN)),
            home: HOME,
            ..Default::default()
        }
    }

    fn dir(&mut self) -> &mut Directory {
        self.dir.as_mut().expect("directory present")
    }

    fn absorb(&mut self, actions: Vec<DirAction>, vpn: Vpn) {
        for action in actions {
            match action {
                DirAction::Grant { .. } => self.grants += 1,
                DirAction::Retry { .. } => self.retries += 1,
                DirAction::SendFlush { to } => {
                    self.acks.push_back(PendingAck::Flush { vpn, from: to })
                }
                DirAction::SendInvalidate { to, needs_data } => {
                    self.acks.push_back(PendingAck::Invalidate {
                        vpn,
                        from: to,
                        needs_data,
                    })
                }
                DirAction::Forward { to, .. } => {
                    self.acks.push_back(PendingAck::Forward { vpn, from: to })
                }
                DirAction::SendInvalidateBatch { to, entries } => {
                    for (v, needs_data) in entries {
                        self.acks.push_back(PendingAck::Invalidate {
                            vpn: v,
                            from: to,
                            needs_data,
                        });
                    }
                }
                DirAction::ClearOriginPte
                | DirAction::DowngradeOriginPte
                | DirAction::SetOriginPteRo
                | DirAction::InstallOriginData
                | DirAction::DropHomeCopy { .. } => {}
            }
        }
    }

    fn request(&mut self, vpn: Vpn, access: Access, node: NodeId, req: u64) {
        self.requests += 1;
        let requester = if node == self.home {
            Requester::Local { req_id: req }
        } else {
            Requester::Remote { node, req_id: req }
        };
        let actions = self.dir().request(vpn, access, requester);
        self.absorb(actions, vpn);
    }

    fn deliver_one_ack(&mut self, index: usize) {
        if self.acks.is_empty() {
            return;
        }
        let ack = self.acks.remove(index % self.acks.len()).expect("bounded");
        let actions = match ack {
            PendingAck::Flush { vpn, from } => {
                let a = self.dir().flush_ack(vpn, from);
                (a, vpn)
            }
            PendingAck::Invalidate {
                vpn,
                from,
                needs_data,
            } => {
                let a = self.dir().invalidate_ack(vpn, from, needs_data);
                (a, vpn)
            }
            PendingAck::Forward { vpn, from } => {
                // The owner grants directly to the requester — that is
                // the request's resolution — then acks the home.
                self.grants += 1;
                let a = self.dir().owner_ack(vpn, from);
                (a, vpn)
            }
        };
        self.absorb(actions.0, actions.1);
    }

    fn drain(&mut self) {
        while !self.acks.is_empty() {
            self.deliver_one_ack(0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any interleaving of requests (from up to 6 nodes over 4 pages) and
    /// ack deliveries keeps the directory invariants intact, resolves
    /// every request exactly once, and quiesces cleanly.
    #[test]
    fn random_schedules_preserve_invariants(
        steps in proptest::collection::vec(
            (0u8..2, 0u64..4, 0u16..6, any::<bool>(), 0usize..8), 1..200
        )
    ) {
        let mut h = Harness::new();
        let mut req_id = 0u64;
        for (kind, page, node, write, ack_index) in steps {
            match kind {
                0 => {
                    req_id += 1;
                    h.request(
                        Vpn::new(page),
                        if write { Access::Write } else { Access::Read },
                        NodeId(node),
                        req_id,
                    );
                }
                _ => h.deliver_one_ack(ack_index),
            }
            // Invariants may be relaxed only inside an open transaction;
            // the checker accounts for that itself.
            prop_assert!(h.dir.as_ref().unwrap().check_invariants().is_ok());
        }
        h.drain();
        let dir = h.dir.take().unwrap();
        prop_assert!(dir.check_invariants().is_ok(), "{:?}", dir.check_invariants());
        // Exactly one resolution (grant or retry) per request.
        prop_assert_eq!(h.grants + h.retries, h.requests);
    }

    /// The sharded (owner-forwarded) variant under the same random
    /// schedules: invariants hold at every step, every request resolves
    /// exactly once (inline grant, forwarded grant, or retry), and the
    /// directory quiesces cleanly.
    #[test]
    fn forwarded_random_schedules_preserve_invariants(
        steps in proptest::collection::vec(
            (0u8..2, 0u64..4, 0u16..6, any::<bool>(), 0usize..8), 1..200
        )
    ) {
        let mut h = Harness::forwarded();
        let mut req_id = 0u64;
        for (kind, page, node, write, ack_index) in steps {
            match kind {
                0 => {
                    req_id += 1;
                    h.request(
                        Vpn::new(page),
                        if write { Access::Write } else { Access::Read },
                        NodeId(node),
                        req_id,
                    );
                }
                _ => h.deliver_one_ack(ack_index),
            }
            prop_assert!(h.dir.as_ref().unwrap().check_invariants().is_ok());
        }
        h.drain();
        let dir = h.dir.take().unwrap();
        prop_assert!(dir.check_invariants().is_ok(), "{:?}", dir.check_invariants());
        prop_assert_eq!(h.grants + h.retries, h.requests);
    }

    /// After quiescence, the recorded owner sets always include whoever
    /// was last granted exclusivity.
    #[test]
    fn writer_is_always_sole_owner_at_quiescence(
        writes in proptest::collection::vec((0u64..3, 1u16..5), 1..60)
    ) {
        let mut h = Harness::new();
        let mut req = 0u64;
        let mut last_writer = [ORIGIN; 3];
        for (page, node) in writes {
            req += 1;
            h.request(Vpn::new(page), Access::Write, NodeId(node), req);
            h.drain();
            last_writer[page as usize] = NodeId(node);
        }
        let dir = h.dir.take().unwrap();
        prop_assert!(dir.check_invariants().is_ok());
        for (page, expected) in last_writer.iter().enumerate() {
            let vpn = Vpn::new(page as u64);
            if dir.tracked_pages() > 0 && dir.current_writer(vpn) != Some(ORIGIN) {
                prop_assert_eq!(
                    dir.current_writer(vpn),
                    Some(*expected),
                    "page {} writer", page
                );
                prop_assert_eq!(dir.owners(vpn), NodeSet::single(*expected));
            }
        }
        prop_assert_eq!(h.grants + h.retries, h.requests);
    }
}
