//! End-to-end protocol tests: correctness of the consistency protocol,
//! migration timing, delegation, and synchronization across nodes.

use dex_core::{Cluster, ClusterConfig, DexStats, FaultKind, NodeId};
use dex_sim::SimDuration;

fn two_nodes() -> Cluster {
    Cluster::new(ClusterConfig::new(2))
}

#[test]
fn single_node_run_needs_no_protocol() {
    let cluster = Cluster::new(ClusterConfig::new(1));
    let mut cell = None;
    let report = cluster.run(|p| {
        let c = p.alloc_cell::<u64>(7);
        cell = Some(c);
        p.spawn(move |ctx| {
            let v = c.get(ctx);
            c.set(ctx, v + 1);
        });
    });
    assert_eq!(cell.unwrap().snapshot(&report), 8);
    assert_eq!(report.stats.total_faults(), 0, "origin owns everything");
    assert_eq!(report.stats.msgs_sent, 0);
}

#[test]
fn remote_write_roundtrips_data() {
    let cluster = two_nodes();
    let mut handle = None;
    let report = cluster.run(|p| {
        let v = p.alloc_vec::<u64>(2048, "data"); // spans 4 pages
        handle = Some(v);
        p.spawn(move |ctx| {
            ctx.migrate(1).unwrap();
            for i in 0..v.len() {
                v.set(ctx, i, (i as u64).wrapping_mul(2654435761));
            }
        });
    });
    let data = handle.unwrap().snapshot(&report);
    for (i, v) in data.iter().enumerate() {
        assert_eq!(*v, (i as u64).wrapping_mul(2654435761));
    }
    assert!(report.stats.write_faults >= 4, "one fault per page");
}

#[test]
fn read_replication_then_write_invalidation() {
    // Thread A on node 1 reads a page; thread B on node 2 then writes it;
    // A's subsequent read must observe B's value.
    let cluster = Cluster::new(ClusterConfig::new(3));
    let report = cluster.run(|p| {
        let cell = p.alloc_cell_tagged::<u64>(100, "shared");
        let barrier = p.new_barrier(2, "sync");
        p.spawn(move |ctx| {
            ctx.migrate(1).unwrap();
            assert_eq!(cell.get(ctx), 100); // replicate read copy
            barrier.wait(ctx);
            barrier.wait(ctx);
            // After B's write our copy must have been invalidated.
            assert_eq!(cell.get(ctx), 777);
        });
        p.spawn(move |ctx| {
            ctx.migrate(2).unwrap();
            barrier.wait(ctx);
            cell.set(ctx, 777); // revokes node 1's read copy
            barrier.wait(ctx);
        });
    });
    assert!(report.stats.invalidations >= 1);
}

#[test]
fn write_write_pingpong_counts_faults_and_invalidations() {
    let cluster = two_nodes();
    let rounds = 50u64;
    let mut cell = None;
    let report = cluster.run(|p| {
        let c = p.alloc_cell_tagged::<u64>(0, "pingpong");
        cell = Some(c);
        let barrier = p.new_barrier(2, "turns");
        for node in 0..2u16 {
            p.spawn(move |ctx| {
                ctx.migrate(node).unwrap();
                for _ in 0..rounds {
                    c.rmw(ctx, |v| v + 1);
                    barrier.wait(ctx);
                }
            });
        }
    });
    assert_eq!(cell.unwrap().snapshot(&report), rounds * 2);
    // Every round transfers page ownership at least once: whichever
    // thread updates second must fault.
    assert!(
        report.stats.write_faults >= rounds,
        "write faults: {}",
        report.stats.write_faults
    );
    assert!(
        report.stats.invalidations >= rounds / 2,
        "invalidations: {}",
        report.stats.invalidations
    );
}

#[test]
fn mutex_protects_cross_node_counter() {
    let cluster = Cluster::new(ClusterConfig::new(4));
    let increments = 25u64;
    let mut cell = None;
    let report = cluster.run(|p| {
        let c = p.alloc_cell_tagged::<u64>(0, "counter");
        cell = Some(c);
        let mutex = p.new_mutex("lock");
        for node in 0..4u16 {
            p.spawn(move |ctx| {
                ctx.migrate(node).unwrap();
                for _ in 0..increments {
                    mutex.lock(ctx);
                    let v = c.get(ctx);
                    ctx.compute_ops(40_000); // ~20 µs critical section
                    c.set(ctx, v + 1);
                    mutex.unlock(ctx);
                }
            });
        }
    });
    assert_eq!(cell.unwrap().snapshot(&report), 4 * increments);
    let s: DexStats = report.stats;
    assert!(s.futex_waits + s.futex_wakes > 0, "contention used futexes");
}

#[test]
fn barrier_releases_all_parties_each_round() {
    let cluster = Cluster::new(ClusterConfig::new(4));
    let mut progress = None;
    let report = cluster.run(|p| {
        let counts = p.alloc_vec_aligned::<u64>(4, "progress");
        progress = Some(counts);
        let barrier = p.new_barrier(4, "rounds");
        for t in 0..4u16 {
            p.spawn(move |ctx| {
                ctx.migrate(t).unwrap();
                for round in 0..10u64 {
                    counts.set(ctx, t as usize, round + 1);
                    barrier.wait(ctx);
                    // Everyone must observe everyone's progress.
                    for peer in 0..4 {
                        assert_eq!(counts.get(ctx, peer), round + 1);
                    }
                    barrier.wait(ctx);
                }
            });
        }
    });
    let final_counts = progress.unwrap().snapshot(&report);
    assert_eq!(final_counts, vec![10, 10, 10, 10]);
}

#[test]
fn leader_follower_coalesces_same_page_faults() {
    // 8 threads on one remote node read the same fresh page at the same
    // time: one leader performs the protocol, 7 ride along.
    let cluster = two_nodes();
    let report = cluster.run(|p| {
        let v = p.alloc_vec::<u64>(8, "hot");
        let barrier = p.new_barrier(8, "go");
        for t in 0..8 {
            p.spawn(move |ctx| {
                ctx.migrate(1).unwrap();
                barrier.wait(ctx);
                let _ = v.get(ctx, t % 8);
            });
        }
    });
    assert!(
        report.stats.coalesced_faults >= 4,
        "coalesced: {} (stats {:?})",
        report.stats.coalesced_faults,
        report.stats
    );
}

#[test]
fn migration_latencies_match_table_two() {
    let cluster = two_nodes();
    let report = cluster.run(|p| {
        p.spawn(|ctx| {
            for _ in 0..3 {
                ctx.migrate(1).unwrap();
                ctx.migrate_back().unwrap();
            }
        });
    });
    let fwd: Vec<_> = report.migrations.iter().filter(|m| m.forward).collect();
    let bwd: Vec<_> = report.migrations.iter().filter(|m| !m.forward).collect();
    assert_eq!(fwd.len(), 3);
    assert_eq!(bwd.len(), 3);

    // First forward migration: ~812 µs total, remote side 800 µs.
    assert!(fwd[0].first_on_node);
    assert_eq!(fwd[0].remote_side, SimDuration::from_micros(800));
    let t0 = fwd[0].total.as_micros_f64();
    assert!((805.0..835.0).contains(&t0), "first forward total {t0} µs");

    // Second forward migration: ~237 µs total, remote side 230 µs.
    assert!(!fwd[1].first_on_node);
    assert_eq!(fwd[1].remote_side, SimDuration::from_micros(230));
    let t1 = fwd[1].total.as_micros_f64();
    assert!((232.0..260.0).contains(&t1), "second forward total {t1} µs");

    // Backward migrations: ~25 µs.
    for b in &bwd {
        let t = b.total.as_micros_f64();
        assert!((23.0..32.0).contains(&t), "backward total {t} µs");
    }
}

#[test]
fn remote_worker_created_once_per_node() {
    let cluster = Cluster::new(ClusterConfig::new(3));
    let report = cluster.run(|p| {
        // Two threads to node 1, one to node 2, with repeats.
        for (t, node) in [(0u16, 1u16), (1, 1), (2, 2)] {
            let _ = t;
            p.spawn(move |ctx| {
                ctx.migrate(node).unwrap();
                ctx.migrate_back().unwrap();
                ctx.migrate(node).unwrap();
            });
        }
    });
    let firsts = report
        .migrations
        .iter()
        .filter(|m| m.forward && m.first_on_node)
        .count();
    assert_eq!(firsts, 2, "one remote-worker creation per node");
}

#[test]
fn delegation_services_syscalls_at_origin() {
    let cluster = two_nodes();
    let report = cluster.run(|p| {
        p.spawn(|ctx| {
            ctx.migrate(1).unwrap();
            ctx.syscall(SimDuration::from_micros(50));
            ctx.syscall(SimDuration::from_micros(50));
        });
    });
    assert_eq!(report.stats.delegations, 2);
}

#[test]
fn vma_sync_pulls_mappings_on_demand() {
    let cluster = two_nodes();
    let report = cluster.run(|p| {
        let v = p.alloc_vec::<u64>(4, "lazy");
        p.spawn(move |ctx| {
            ctx.migrate(1).unwrap();
            // First touch on the remote node misses the VMA and pulls it.
            v.set(ctx, 0, 9);
            assert_eq!(v.get(ctx, 0), 9);
        });
    });
    assert!(report.stats.vma_syncs >= 1);
}

#[test]
fn munmap_broadcasts_and_invalidates_remote_state() {
    let cluster = two_nodes();
    let report = cluster.run(|p| {
        p.spawn(move |ctx| {
            let addr = ctx.mmap(4096, dex_core::Prot::RW);
            ctx.write_bytes(addr, &[1, 2, 3]);
            let t = ctx.spawn_thread("toucher", move |ctx| {
                ctx.migrate(1).unwrap();
                let mut buf = [0u8; 3];
                ctx.read_bytes(addr, &mut buf);
                assert_eq!(buf, [1, 2, 3]);
            });
            t.join(ctx);
            ctx.munmap(addr, 4096);
        });
    });
    assert!(report.stats.vma_broadcasts >= 1);
}

#[test]
#[should_panic(expected = "segmentation fault")]
fn illegal_remote_access_terminates_thread() {
    let cluster = two_nodes();
    let _ = cluster.run(|p| {
        p.spawn(|ctx| {
            ctx.migrate(1).unwrap();
            let mut buf = [0u8; 4];
            // Far outside any mapping.
            ctx.read_bytes(dex_core::VirtAddr::new(0xdead_0000_0000), &mut buf);
        });
    });
}

#[test]
fn migrate_to_unknown_node_errors() {
    let cluster = two_nodes();
    cluster.run(|p| {
        p.spawn(|ctx| {
            let err = ctx.migrate(NodeId(9)).unwrap_err();
            assert!(matches!(err, dex_core::MigrateError::NoSuchNode { .. }));
            assert_eq!(ctx.node(), NodeId(0), "thread did not move");
        });
    });
}

#[test]
fn trace_records_six_tuples_when_enabled() {
    let cluster = Cluster::new(ClusterConfig::new(2).with_trace());
    let report = cluster.run(|p| {
        let c = p.alloc_cell_tagged::<u64>(0, "hot_counter");
        p.spawn(move |ctx| {
            ctx.set_site("test.write_loop");
            ctx.migrate(1).unwrap();
            c.set(ctx, 1);
        });
    });
    let writes: Vec<_> = report
        .trace
        .iter()
        .filter(|e| e.kind == FaultKind::Write && e.site == "test.write_loop")
        .collect();
    assert!(!writes.is_empty(), "trace: {:?}", report.trace);
    assert_eq!(writes[0].node, NodeId(1));
    assert_eq!(writes[0].tag.as_deref(), Some("hot_counter"));
}

#[test]
fn retry_path_produces_slow_mode_faults() {
    // Three remote nodes hammer the same page with writes: a request that
    // arrives while another node's revocation transaction is in flight is
    // refused with a retry (§V-D's 158.8 µs mode).
    let cluster = Cluster::new(ClusterConfig::new(4));
    let report = cluster.run(|p| {
        let c = p.alloc_cell_tagged::<u64>(0, "contended");
        for node in 1..4u16 {
            p.spawn(move |ctx| {
                ctx.migrate(node).unwrap();
                for _ in 0..200 {
                    c.rmw(ctx, |v| v + 1);
                }
            });
        }
    });
    assert!(
        report.stats.retried_faults > 0,
        "expected retries under write-write contention: {:?}",
        report.stats
    );
    // The fault histogram is bimodal: fast grants vs. backoff retries.
    let (fast, fast_mean, slow, slow_mean) =
        report.fault_hist.split_at(SimDuration::from_micros(60));
    assert!(fast > 0 && slow > 0, "fast {fast} slow {slow}");
    assert!(fast_mean < SimDuration::from_micros(40));
    assert!(slow_mean > SimDuration::from_micros(100), "{slow_mean}");
}

#[test]
fn deterministic_virtual_time_across_runs() {
    fn run_once() -> (u64, DexStats) {
        let cluster = Cluster::new(ClusterConfig::new(4));
        let report = cluster.run(|p| {
            let v = p.alloc_vec::<u64>(1024, "data");
            let barrier = p.new_barrier(4, "b");
            for t in 0..4u16 {
                p.spawn(move |ctx| {
                    ctx.migrate(t).unwrap();
                    barrier.wait(ctx);
                    for i in (t as usize * 256)..((t as usize + 1) * 256) {
                        v.set(ctx, i, i as u64);
                    }
                    barrier.wait(ctx);
                });
            }
        });
        (report.virtual_time.as_nanos(), report.stats)
    }
    let (t1, s1) = run_once();
    let (t2, s2) = run_once();
    assert_eq!(t1, t2, "virtual time must be deterministic");
    assert_eq!(s1, s2, "protocol statistics must be deterministic");
}

#[test]
fn migrate_to_data_follows_the_writer() {
    let cluster = Cluster::new(ClusterConfig::new(3));
    let report = cluster.run(|p| {
        // The cell gets its own page: the barrier words must not share it
        // (they would drag ownership to whoever synchronizes last).
        let cell = p.alloc_cell_aligned::<u64>(0, "hot_data");
        let ready = p.new_barrier(2, "ready");
        p.spawn(move |ctx| {
            ctx.migrate(2).unwrap();
            cell.set(ctx, 41); // node 2 becomes the exclusive writer
            ready.wait(ctx);
            ready.wait(ctx);
        });
        p.spawn(move |ctx| {
            ctx.migrate(1).unwrap();
            ready.wait(ctx);
            // Follow the data instead of pulling the page.
            let dest = ctx.migrate_to_data(cell.addr()).unwrap();
            assert_eq!(dest, NodeId(2));
            assert_eq!(ctx.node(), NodeId(2));
            // The read is now node-local: no new protocol fault.
            let before = ctx.process().stats.counters.get("faults.read");
            assert_eq!(cell.get(ctx), 41);
            let after = ctx.process().stats.counters.get("faults.read");
            assert_eq!(before, after, "access after relocation must be local");
            ready.wait(ctx);
        });
    });
    assert!(report.stats.delegations >= 1, "remote query was delegated");
}

#[test]
fn migrate_least_loaded_spreads_threads() {
    let cluster = Cluster::new(ClusterConfig::new(4));
    let seen = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
    let seen2 = std::sync::Arc::clone(&seen);
    cluster.run(move |p| {
        // Threads start staggered so each sees the loads left by the
        // previous ones; the policy should spread them over empty nodes.
        for i in 0..3 {
            let seen = std::sync::Arc::clone(&seen2);
            p.spawn(move |ctx| {
                ctx.compute_ops(i * 4_000_000); // stagger arrivals by ~2 ms
                let dest = ctx.migrate_least_loaded().unwrap();
                seen.lock().push(dest);
                ctx.compute_ops(40_000_000); // stay busy (~20 ms)
            });
        }
    });
    let mut nodes = seen.lock().clone();
    nodes.sort();
    nodes.dedup();
    assert_eq!(
        nodes.len(),
        3,
        "three threads spread to three nodes: {nodes:?}"
    );
}

#[test]
fn prefetch_amortizes_fault_round_trips() {
    fn run(prefetch: bool) -> (u64, dex_sim::SimDuration) {
        let cluster = Cluster::new(ClusterConfig::new(2));
        let report = cluster.run(|p| {
            let data = p.alloc_vec::<u64>(64 * 512, "stream"); // 64 pages
            p.spawn(move |ctx| {
                ctx.migrate(1).unwrap();
                let t0 = ctx.sim().now();
                if prefetch {
                    ctx.prefetch(data.addr(), (data.len() * 8) as u64, dex_core::Access::Read);
                }
                let mut buf = vec![0u64; 512];
                for page in 0..64 {
                    data.read_slice(ctx, page * 512, &mut buf);
                }
                let _ = t0;
            });
        });
        (report.stats.read_faults, report.virtual_time)
    }
    let (faults_demand, t_demand) = run(false);
    let (faults_prefetch, t_prefetch) = run(true);
    assert_eq!(faults_demand, 64, "demand paging faults once per page");
    assert!(
        faults_prefetch < 8,
        "prefetched pages must not fault: {faults_prefetch}"
    );
    assert!(
        t_prefetch < t_demand,
        "pipelined prefetch beats one-at-a-time faults: {t_prefetch} vs {t_demand}"
    );
}

#[test]
fn rwlock_allows_concurrent_readers_excludes_writers() {
    let cluster = Cluster::new(ClusterConfig::new(3));
    let mut log_handle = None;
    let report = cluster.run(|p| {
        let lock = p.new_rwlock("shared_lock");
        let value = p.alloc_cell_aligned::<u64>(0, "guarded");
        let log = p.alloc_vec_aligned::<u64>(8, "reader_observations");
        log_handle = Some(log);
        // A writer bumps the value 20 times under the write lock.
        p.spawn(move |ctx| {
            ctx.migrate(1).unwrap();
            for _ in 0..20 {
                lock.write_lock(ctx);
                let v = value.get(ctx);
                ctx.compute_ops(20_000); // hold the lock ~10 us
                value.set(ctx, v + 1);
                lock.write_unlock(ctx);
                ctx.compute_ops(10_000);
            }
        });
        // Readers on two nodes observe monotone values, never mid-update.
        for (slot, node) in [(0usize, 0u16), (1, 2)] {
            p.spawn(move |ctx| {
                ctx.migrate(node).unwrap();
                let mut last = 0u64;
                for _ in 0..30 {
                    lock.with_read(ctx, || ());
                    lock.read_lock(ctx);
                    let observed = value.get(ctx);
                    lock.read_unlock(ctx);
                    assert!(observed >= last, "reads must be monotone");
                    assert!(observed <= 20);
                    last = observed;
                    ctx.compute_ops(8_000);
                }
                log.set(ctx, slot, last);
            });
        }
    });
    let finals = log_handle.unwrap().snapshot(&report);
    assert!(finals[0] <= 20 && finals[1] <= 20);
}

#[test]
fn matrix_rows_roundtrip_and_align() {
    let cluster = Cluster::new(ClusterConfig::new(2));
    let mut handle = None;
    let report = cluster.run(|p| {
        let m = p.alloc_matrix_row_aligned::<u64>(4, 100, "grid");
        handle = Some(m);
        // Row-aligned: different rows never share a page.
        assert_ne!(m.addr_of(0, 99).vpn(), m.addr_of(1, 0).vpn());
        m.init(p, &(0..400).map(|i| i as u64).collect::<Vec<_>>());
        p.spawn(move |ctx| {
            ctx.migrate(1).unwrap();
            let mut row = vec![0u64; 100];
            m.read_row(ctx, 2, &mut row);
            assert_eq!(row[0], 200);
            for v in row.iter_mut() {
                *v *= 3;
            }
            m.write_row(ctx, 2, &row);
            assert_eq!(m.get(ctx, 2, 50), 750);
            m.set(ctx, 3, 0, 9999);
        });
    });
    let snap = handle.unwrap().snapshot(&report);
    assert_eq!(snap[2 * 100], 600);
    assert_eq!(snap[3 * 100], 9999);
    assert_eq!(snap[0], 0);
}

#[test]
fn multiple_processes_are_isolated() {
    // Two processes with different origins share the rack; their address
    // spaces, directories, and futexes must not interact.
    let cluster = Cluster::new(ClusterConfig::new(4));
    let mut cells = Vec::new();
    let reports = cluster.run_multi(|cl| {
        for (origin, target, value) in [(0u16, 2u16, 111u64), (3, 1, 222)] {
            let p = cl.create_process(NodeId(origin));
            let cell = p.alloc_cell_tagged::<u64>(0, "private");
            cells.push((cell, value));
            let mutex = p.new_mutex("private_lock");
            p.spawn(move |ctx| {
                assert_eq!(ctx.origin(), NodeId(origin));
                ctx.migrate(target).unwrap();
                mutex.lock(ctx);
                cell.set(ctx, value);
                mutex.unlock(ctx);
                ctx.migrate_back().unwrap();
            });
        }
    });
    assert_eq!(reports.len(), 2);
    for ((cell, value), report) in cells.iter().zip(&reports) {
        assert_eq!(cell.snapshot(report), *value);
        assert_eq!(report.stats.forward_migrations, 1);
    }
    // Same heap layout in both processes, yet no cross-talk: the two
    // cells share a virtual address but live in different processes.
    assert_eq!(cells[0].0.addr(), cells[1].0.addr());
}

#[test]
fn process_origin_need_not_be_node_zero() {
    let cluster = Cluster::new(ClusterConfig::new(3));
    let reports = cluster.run_multi(|cl| {
        let p = cl.create_process(NodeId(2));
        let data = p.alloc_vec::<u64>(512, "data");
        p.spawn(move |ctx| {
            assert_eq!(ctx.node(), NodeId(2), "threads start at the origin");
            ctx.migrate(0).unwrap(); // node 0 is remote for this process
            for i in 0..data.len() {
                data.set(ctx, i, i as u64);
            }
        });
    });
    assert!(reports[0].stats.write_faults >= 1);
    assert_eq!(reports[0].stats.forward_migrations, 1);
}

#[test]
fn condvar_wakes_waiters() {
    let cluster = two_nodes();
    let mut result = None;
    let report = cluster.run(|p| {
        let flag = p.alloc_cell_tagged::<u32>(0, "ready");
        let value = p.alloc_cell_tagged::<u64>(0, "value");
        result = Some(value);
        let mutex = p.new_mutex("m");
        let cv = p.new_condvar("cv");
        p.spawn(move |ctx| {
            ctx.migrate(1).unwrap();
            mutex.lock(ctx);
            while flag.get(ctx) == 0 {
                cv.wait(ctx, &mutex);
            }
            value.set(ctx, 42);
            mutex.unlock(ctx);
        });
        p.spawn(move |ctx| {
            ctx.compute_ops(10_000); // let the waiter block first
            mutex.lock(ctx);
            flag.set(ctx, 1);
            cv.notify_all(ctx);
            mutex.unlock(ctx);
        });
    });
    assert_eq!(result.unwrap().snapshot(&report), 42);
}
