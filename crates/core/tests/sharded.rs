//! End-to-end tests for the sharded ownership directory: shards off is
//! bit-identical to the seed behaviour, shards on runs the two-hop
//! (owner-forwarded) protocol with batched invalidation fan-out, and
//! both replay deterministically with consistent directories.

use dex_core::{Cluster, ClusterConfig, RunReport};

/// The fault-suite fingerprint: virtual time, the full counter set, and
/// the fault trace.
fn fingerprint(report: &RunReport) -> (u64, Vec<(String, u64)>, String) {
    (
        report.virtual_time.as_nanos(),
        report.process().stats.counters.snapshot(),
        format!("{:?}", report.trace),
    )
}

/// A migration-heavy workload touching the same region from three nodes:
/// ownership ping-pongs, reads build up sharers, and the final write
/// revokes them all — exercising grants, forwards, and invalidation
/// fan-out under any shard count.
fn pingpong_workload(config: ClusterConfig) -> (RunReport, dex_core::DsmVec<u64>) {
    let cluster = Cluster::new(config);
    let mut handle = None;
    let report = cluster.run(|p| {
        let v = p.alloc_vec_aligned::<u64>(8 * 512, "pingpong");
        handle = Some(v);
        p.spawn(move |ctx| {
            ctx.migrate(1).unwrap();
            for i in 0..v.len() {
                v.set(ctx, i, i as u64 + 1);
            }
            // Spread read replicas over the other nodes...
            ctx.migrate(2).unwrap();
            for page in 0..8 {
                let _ = v.get(ctx, page * 512);
            }
            ctx.migrate_back().unwrap();
            for page in 0..8 {
                let _ = v.get(ctx, page * 512);
            }
            // ...then revoke them all with a second ownership pass.
            ctx.migrate(2).unwrap();
            for i in 0..v.len() {
                v.set(ctx, i, i as u64 * 2);
            }
            ctx.migrate_back().unwrap();
        });
    });
    (report, handle.expect("allocated"))
}

#[test]
fn one_shard_is_bit_identical_to_the_classic_directory() {
    let (classic, _) = pingpong_workload(ClusterConfig::new(3).with_trace());
    let (one_shard, _) =
        pingpong_workload(ClusterConfig::new(3).with_trace().with_directory_shards(1));
    assert_eq!(fingerprint(&classic), fingerprint(&one_shard));
    assert_eq!(classic.stats, one_shard.stats);
}

#[test]
fn sharded_pingpong_is_deterministic_and_correct() {
    let config = || ClusterConfig::new(3).with_directory_shards(3);
    let (first, v) = pingpong_workload(config());
    let (second, _) = pingpong_workload(config());
    assert_eq!(fingerprint(&first), fingerprint(&second));

    let data = v.snapshot(&first);
    for (i, value) in data.iter().enumerate() {
        assert_eq!(*value, i as u64 * 2, "element {i}");
    }
    for dir in &first.process().directories {
        dir.lock()
            .check_invariants()
            .expect("every shard quiesces consistent");
    }
}

#[test]
fn sharded_pingpong_takes_the_two_hop_path() {
    let (report, _) = pingpong_workload(ClusterConfig::new(3).with_directory_shards(3));
    let counters = &report.process().stats.counters;
    assert!(
        counters.get("protocol.forwards") >= 1,
        "pages homed off-owner must be granted via owner forwarding"
    );
    assert_eq!(
        counters.get("protocol.forwards"),
        counters.get("protocol.forwards_serviced"),
        "every forward the homes issued was serviced by an owner"
    );
    assert!(
        counters.get("protocol.invalidate_batches") >= 1,
        "revoking the read replicas must fan out as batches"
    );
    // The classic run never touches any of the forwarded machinery.
    let (classic, _) = pingpong_workload(ClusterConfig::new(3));
    let classic_counters = &classic.process().stats.counters;
    assert_eq!(classic_counters.get("protocol.forwards"), 0);
    assert_eq!(classic_counters.get("protocol.invalidate_batches"), 0);
}

#[test]
fn sharded_prefetch_grants_across_homes() {
    let cluster = Cluster::new(ClusterConfig::new(3).with_directory_shards(3));
    let report = cluster.run(|p| {
        let data = p.alloc_vec_aligned::<u64>(12 * 512, "stream");
        p.spawn(move |ctx| {
            for i in 0..data.len() {
                data.set(ctx, i, i as u64 + 5);
            }
            ctx.migrate(1).unwrap();
            ctx.prefetch(data.addr(), (data.len() * 8) as u64, dex_core::Access::Read);
            let mut buf = vec![0u64; 512];
            for page in 0..12 {
                data.read_slice(ctx, page * 512, &mut buf);
                assert_eq!(buf[0], (page * 512) as u64 + 5);
            }
        });
    });
    let counters = &report.process().stats.counters;
    // Pages homed on node 1 are excluded from the hint (the local fault
    // path serves them); the rest resolve exactly once.
    assert!(
        counters.get("prefetch.pages") >= 1,
        "remote-homed pages must be granted by the hint"
    );
    for dir in &report.process().directories {
        dir.lock().check_invariants().expect("shards consistent");
    }
}
