//! End-to-end fault-injection tests: empty plans leave runs untouched,
//! seeded plans replay deterministically, and node crashes degrade
//! gracefully (threads re-home, the directory reclaims ownership).

use dex_core::{Cluster, ClusterConfig, MigrateError, NodeId, RunReport};
use dex_sim::{FaultPlan, SimDuration, SimTime};

/// A workload that exercises migration, remote faults, and futex-based
/// synchronization on three nodes; returns the run report.
fn mixed_workload(config: ClusterConfig) -> RunReport {
    let cluster = Cluster::new(config);
    cluster.run(|p| {
        let a = p.alloc_vec_aligned::<u64>(8 * 512, "region_a");
        let b = p.alloc_vec_aligned::<u64>(8 * 512, "region_b");
        let mutex = p.new_mutex("lock");
        p.spawn(move |ctx| {
            ctx.migrate(1).unwrap();
            for i in 0..a.len() {
                a.set(ctx, i, i as u64);
            }
            mutex.lock(ctx);
            mutex.unlock(ctx);
            ctx.migrate_back().unwrap();
        });
        p.spawn(move |ctx| {
            ctx.migrate(2).unwrap();
            for i in 0..b.len() {
                b.set(ctx, i, i as u64 * 3);
            }
            mutex.lock(ctx);
            mutex.unlock(ctx);
            ctx.migrate_back().unwrap();
        });
    })
}

/// A fingerprint of everything observable about a run: virtual time, the
/// full counter set, and the fault trace.
fn fingerprint(report: &RunReport) -> (u64, Vec<(String, u64)>, String) {
    (
        report.virtual_time.as_nanos(),
        report.process().stats.counters.snapshot(),
        format!("{:?}", report.trace),
    )
}

#[test]
fn empty_fault_plan_is_bit_identical_to_no_plan() {
    let plain = mixed_workload(ClusterConfig::new(3).with_trace());
    let with_empty = mixed_workload(
        ClusterConfig::new(3)
            .with_trace()
            .with_fault_plan(FaultPlan::default()),
    );
    assert_eq!(fingerprint(&plain), fingerprint(&with_empty));
    assert_eq!(plain.stats, with_empty.stats);
}

#[test]
fn delay_spikes_replay_deterministically() {
    let mut plan = FaultPlan::default();
    plan.delay(
        0,
        1,
        SimTime::ZERO,
        SimTime::ZERO + SimDuration::from_millis(50),
        SimDuration::from_micros(300),
    );
    let clean = mixed_workload(ClusterConfig::new(3));
    let first = mixed_workload(ClusterConfig::new(3).with_fault_plan(plan.clone()));
    let second = mixed_workload(ClusterConfig::new(3).with_fault_plan(plan));
    assert_eq!(fingerprint(&first), fingerprint(&second));
    assert!(
        first.virtual_time > clean.virtual_time,
        "a 300µs delay spike on a used link must slow the run \
         ({:?} vs {:?})",
        first.virtual_time,
        clean.virtual_time
    );
}

#[test]
fn stalled_replies_complete_instead_of_hanging() {
    // Stall the remote→origin direction while the remote threads are
    // faulting: their requests sit in the window and deliver when it
    // closes; the run must still finish, and do so deterministically.
    let mut plan = FaultPlan::default();
    plan.stall(
        1,
        0,
        SimTime::ZERO + SimDuration::from_micros(900),
        SimTime::ZERO + SimDuration::from_millis(4),
    );
    let first = mixed_workload(ClusterConfig::new(3).with_fault_plan(plan.clone()));
    let second = mixed_workload(ClusterConfig::new(3).with_fault_plan(plan));
    assert_eq!(fingerprint(&first), fingerprint(&second));
    first
        .process()
        .directory
        .lock()
        .check_invariants()
        .expect("directory consistent after stalls");
}

/// The crash scenario: node 2 dies at 3 ms while one thread works there.
/// The thread must re-home to the origin and finish; the directory must
/// reclaim every page the dead node owned; a later migration attempt to
/// the dead node must fail cleanly. Returns the report and the handle of
/// the region rewritten after the crash.
fn crash_workload() -> (RunReport, dex_core::DsmVec<u64>) {
    let mut plan = FaultPlan::default();
    plan.crash(2, SimTime::ZERO + SimDuration::from_millis(3));
    let cluster = Cluster::new(ClusterConfig::new(3).with_fault_plan(plan));
    let mut late_handle = None;
    let report = cluster.run(|p| {
        let survivor = p.alloc_vec_aligned::<u64>(8 * 512, "survivor");
        let late = p.alloc_vec_aligned::<u64>(8 * 512, "late");
        late_handle = Some(late);
        p.spawn(move |ctx| {
            ctx.migrate(1).unwrap();
            for i in 0..survivor.len() {
                survivor.set(ctx, i, i as u64 + 1);
            }
            ctx.compute_ops(16_000_000); // ~8 ms, spans the crash
            ctx.migrate_back().unwrap();
            assert_eq!(ctx.node(), NodeId(0));
        });
        p.spawn(move |ctx| {
            ctx.migrate(2).unwrap();
            // Touch a few pages on the doomed node, then compute past the
            // crash; the next fault times out and re-homes the thread.
            for i in 0..1024 {
                late.set(ctx, i, 7);
            }
            ctx.compute_ops(16_000_000); // ~8 ms, spans the crash
            for i in 0..late.len() {
                late.set(ctx, i, i as u64 * 5);
            }
            assert_eq!(ctx.node(), NodeId(0), "crashed off node 2, now home");
            ctx.migrate_back().unwrap();
        });
        p.spawn(move |ctx| {
            ctx.compute_ops(16_000_000); // wait out the crash at the origin
            match ctx.migrate(2) {
                Err(MigrateError::NodeCrashed { node }) => assert_eq!(node, NodeId(2)),
                other => panic!("migrating to a dead node returned {other:?}"),
            }
            assert_eq!(ctx.node(), NodeId(0), "failed migration leaves it home");
        });
    });
    (report, late_handle.expect("allocated"))
}

#[test]
fn node_crash_rehomes_threads_and_reclaims_pages() {
    let (report, late) = crash_workload();
    let shared = report.process();
    let counters = &shared.stats.counters;
    assert!(
        counters.get("migrations.crash_rehomed") >= 1,
        "the node-2 thread must have re-homed"
    );
    assert_eq!(counters.get("faults.crashes_handled"), 1);
    assert!(counters.get("migrations.dest_crashed") >= 1);
    assert!(
        counters.get("faults.pages_reclaimed") >= 1,
        "node 2 owned pages when it died"
    );

    {
        let directory = shared.directory.lock();
        directory
            .check_invariants()
            .expect("no dead node may linger in any owner set");
        assert!(directory.dead_nodes().contains(NodeId(2)));
    }

    // Post-crash writes were served by the origin; the data survives.
    let data = late.snapshot(&report);
    for (i, v) in data.iter().enumerate() {
        assert_eq!(*v, i as u64 * 5);
    }
}

#[test]
fn node_crash_recovery_is_deterministic() {
    let (first, _) = crash_workload();
    let (second, _) = crash_workload();
    assert_eq!(fingerprint(&first), fingerprint(&second));
}
