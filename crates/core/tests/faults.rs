//! End-to-end fault-injection tests: empty plans leave runs untouched,
//! seeded plans replay deterministically, and node crashes degrade
//! gracefully (threads re-home, the directory reclaims ownership).

use dex_core::{Cluster, ClusterConfig, MigrateError, NodeId, RunReport};
use dex_sim::{FaultPlan, SimDuration, SimTime};

/// A workload that exercises migration, remote faults, and futex-based
/// synchronization on three nodes; returns the run report.
fn mixed_workload(config: ClusterConfig) -> RunReport {
    let cluster = Cluster::new(config);
    cluster.run(|p| {
        let a = p.alloc_vec_aligned::<u64>(8 * 512, "region_a");
        let b = p.alloc_vec_aligned::<u64>(8 * 512, "region_b");
        let mutex = p.new_mutex("lock");
        p.spawn(move |ctx| {
            ctx.migrate(1).unwrap();
            for i in 0..a.len() {
                a.set(ctx, i, i as u64);
            }
            mutex.lock(ctx);
            mutex.unlock(ctx);
            ctx.migrate_back().unwrap();
        });
        p.spawn(move |ctx| {
            ctx.migrate(2).unwrap();
            for i in 0..b.len() {
                b.set(ctx, i, i as u64 * 3);
            }
            mutex.lock(ctx);
            mutex.unlock(ctx);
            ctx.migrate_back().unwrap();
        });
    })
}

/// A fingerprint of everything observable about a run: virtual time, the
/// full counter set, and the fault trace.
fn fingerprint(report: &RunReport) -> (u64, Vec<(String, u64)>, String) {
    (
        report.virtual_time.as_nanos(),
        report.process().stats.counters.snapshot(),
        format!("{:?}", report.trace),
    )
}

#[test]
fn empty_fault_plan_is_bit_identical_to_no_plan() {
    let plain = mixed_workload(ClusterConfig::new(3).with_trace());
    let with_empty = mixed_workload(
        ClusterConfig::new(3)
            .with_trace()
            .with_fault_plan(FaultPlan::default()),
    );
    assert_eq!(fingerprint(&plain), fingerprint(&with_empty));
    assert_eq!(plain.stats, with_empty.stats);
}

#[test]
fn delay_spikes_replay_deterministically() {
    let mut plan = FaultPlan::default();
    plan.delay(
        0,
        1,
        SimTime::ZERO,
        SimTime::ZERO + SimDuration::from_millis(50),
        SimDuration::from_micros(300),
    );
    let clean = mixed_workload(ClusterConfig::new(3));
    let first = mixed_workload(ClusterConfig::new(3).with_fault_plan(plan.clone()));
    let second = mixed_workload(ClusterConfig::new(3).with_fault_plan(plan));
    assert_eq!(fingerprint(&first), fingerprint(&second));
    assert!(
        first.virtual_time > clean.virtual_time,
        "a 300µs delay spike on a used link must slow the run \
         ({:?} vs {:?})",
        first.virtual_time,
        clean.virtual_time
    );
}

#[test]
fn stalled_replies_complete_instead_of_hanging() {
    // Stall the remote→origin direction while the remote threads are
    // faulting: their requests sit in the window and deliver when it
    // closes; the run must still finish, and do so deterministically.
    let mut plan = FaultPlan::default();
    plan.stall(
        1,
        0,
        SimTime::ZERO + SimDuration::from_micros(900),
        SimTime::ZERO + SimDuration::from_millis(4),
    );
    let first = mixed_workload(ClusterConfig::new(3).with_fault_plan(plan.clone()));
    let second = mixed_workload(ClusterConfig::new(3).with_fault_plan(plan));
    assert_eq!(fingerprint(&first), fingerprint(&second));
    for dir in &first.process().directories {
        dir.lock()
            .check_invariants()
            .expect("directory consistent after stalls");
    }
}

/// The crash scenario: node 2 dies at 3 ms while one thread works there.
/// The thread must re-home to the origin and finish; the directory must
/// reclaim every page the dead node owned; a later migration attempt to
/// the dead node must fail cleanly. Returns the report and the handle of
/// the region rewritten after the crash.
fn crash_workload() -> (RunReport, dex_core::DsmVec<u64>) {
    let mut plan = FaultPlan::default();
    plan.crash(2, SimTime::ZERO + SimDuration::from_millis(3));
    let cluster = Cluster::new(ClusterConfig::new(3).with_fault_plan(plan));
    let mut late_handle = None;
    let report = cluster.run(|p| {
        let survivor = p.alloc_vec_aligned::<u64>(8 * 512, "survivor");
        let late = p.alloc_vec_aligned::<u64>(8 * 512, "late");
        late_handle = Some(late);
        p.spawn(move |ctx| {
            ctx.migrate(1).unwrap();
            for i in 0..survivor.len() {
                survivor.set(ctx, i, i as u64 + 1);
            }
            ctx.compute_ops(16_000_000); // ~8 ms, spans the crash
            ctx.migrate_back().unwrap();
            assert_eq!(ctx.node(), NodeId(0));
        });
        p.spawn(move |ctx| {
            ctx.migrate(2).unwrap();
            // Touch a few pages on the doomed node, then compute past the
            // crash; the next fault times out and re-homes the thread.
            for i in 0..1024 {
                late.set(ctx, i, 7);
            }
            ctx.compute_ops(16_000_000); // ~8 ms, spans the crash
            for i in 0..late.len() {
                late.set(ctx, i, i as u64 * 5);
            }
            assert_eq!(ctx.node(), NodeId(0), "crashed off node 2, now home");
            ctx.migrate_back().unwrap();
        });
        p.spawn(move |ctx| {
            ctx.compute_ops(16_000_000); // wait out the crash at the origin
            match ctx.migrate(2) {
                Err(MigrateError::NodeCrashed { node }) => assert_eq!(node, NodeId(2)),
                other => panic!("migrating to a dead node returned {other:?}"),
            }
            assert_eq!(ctx.node(), NodeId(0), "failed migration leaves it home");
        });
    });
    (report, late_handle.expect("allocated"))
}

#[test]
fn node_crash_rehomes_threads_and_reclaims_pages() {
    let (report, late) = crash_workload();
    let shared = report.process();
    let counters = &shared.stats.counters;
    assert!(
        counters.get("migrations.crash_rehomed") >= 1,
        "the node-2 thread must have re-homed"
    );
    assert_eq!(counters.get("faults.crashes_handled"), 1);
    assert!(counters.get("migrations.dest_crashed") >= 1);
    assert!(
        counters.get("faults.pages_reclaimed") >= 1,
        "node 2 owned pages when it died"
    );

    for dir in &shared.directories {
        let directory = dir.lock();
        directory
            .check_invariants()
            .expect("no dead node may linger in any owner set");
        assert!(directory.dead_nodes().contains(NodeId(2)));
    }

    // Post-crash writes were served by the origin; the data survives.
    let data = late.snapshot(&report);
    for (i, v) in data.iter().enumerate() {
        assert_eq!(*v, i as u64 * 5);
    }
}

#[test]
fn node_crash_recovery_is_deterministic() {
    let (first, _) = crash_workload();
    let (second, _) = crash_workload();
    assert_eq!(fingerprint(&first), fingerprint(&second));
}

/// A prefetch workload under a stalled reply link: the origin's grants
/// sit in the stall window mid-prefetch; the hint must simply wait the
/// window out (advisory, never a protocol error) and still install every
/// page.
fn stalled_prefetch_workload() -> RunReport {
    let mut plan = FaultPlan::default();
    plan.stall(
        0,
        1,
        SimTime::ZERO + SimDuration::from_micros(50),
        SimTime::ZERO + SimDuration::from_millis(3),
    );
    let cluster = Cluster::new(ClusterConfig::new(2).with_fault_plan(plan));
    cluster.run(|p| {
        let data = p.alloc_vec_aligned::<u64>(16 * 512, "stream"); // 16 pages
        p.spawn(move |ctx| {
            for i in 0..data.len() {
                data.set(ctx, i, i as u64 + 9);
            }
            ctx.migrate(1).unwrap();
            ctx.prefetch(data.addr(), (data.len() * 8) as u64, dex_core::Access::Read);
            let mut buf = vec![0u64; 512];
            for page in 0..16 {
                data.read_slice(ctx, page * 512, &mut buf);
                assert_eq!(buf[0], (page * 512) as u64 + 9);
            }
        });
    })
}

#[test]
fn prefetch_waits_out_stalled_replies() {
    let first = stalled_prefetch_workload();
    let second = stalled_prefetch_workload();
    assert_eq!(fingerprint(&first), fingerprint(&second));
    let counters = &first.process().stats.counters;
    // The VMA sync demand-faults the first page, so 15 pages are hinted.
    assert_eq!(
        counters.get("prefetch.pages") + counters.get("prefetch.denied"),
        15,
        "every hinted page resolves exactly once"
    );
    assert!(
        counters.get("prefetch.pages") >= 1,
        "stalls delay grants, they do not deny them"
    );
    assert_eq!(first.stats.read_faults, 16 - counters.get("prefetch.pages"));
}

/// The prefetching thread's own node fail-stops while its hint replies
/// are stalled in flight: the advisory path must abandon the outstanding
/// slots, re-home the thread, and let the regular fault path (now at the
/// origin) serve the data.
fn crashed_prefetch_workload() -> RunReport {
    let mut plan = FaultPlan::default();
    // Grant replies from the origin stall once the prefetch is underway
    // (migration and the first demand fault finish well before 1 ms)...
    plan.stall(
        0,
        2,
        SimTime::ZERO + SimDuration::from_millis(1),
        SimTime::ZERO + SimDuration::from_millis(6),
    );
    // ...and node 2 dies with the whole prefetch outstanding.
    plan.crash(2, SimTime::ZERO + SimDuration::from_millis(3));
    let cluster = Cluster::new(ClusterConfig::new(3).with_fault_plan(plan));
    cluster.run(|p| {
        let data = p.alloc_vec_aligned::<u64>(8 * 512, "doomed");
        p.spawn(move |ctx| {
            ctx.migrate(2).unwrap();
            // Take write ownership of the first page now, so the hint's
            // VMA sync below needs no protocol traffic of its own.
            data.set(ctx, 0, 1);
            ctx.compute_ops(3_000_000); // ~1.5 ms: into the stall window
            ctx.prefetch(
                data.addr(),
                (data.len() * 8) as u64,
                dex_core::Access::Write,
            );
            // The crash re-homed us; the fault path serves writes from
            // the origin as if the hint never happened.
            assert_eq!(ctx.node(), NodeId(0), "crashed off node 2, now home");
            for i in 0..data.len() {
                data.set(ctx, i, i as u64 * 11);
            }
        });
    })
}

#[test]
fn prefetch_survives_own_node_crash_and_rehomes() {
    let first = crashed_prefetch_workload();
    let second = crashed_prefetch_workload();
    assert_eq!(fingerprint(&first), fingerprint(&second));
    let shared = first.process();
    let counters = &shared.stats.counters;
    assert!(
        counters.get("migrations.crash_rehomed") >= 1,
        "the prefetching thread must have re-homed"
    );
    assert_eq!(
        counters.get("prefetch.denied"),
        7,
        "every outstanding hint slot is abandoned, none granted \
         (page 0 was demand-faulted before the hint)"
    );
    assert_eq!(counters.get("prefetch.pages"), 0);
    for dir in &shared.directories {
        dir.lock()
            .check_invariants()
            .expect("directory consistent after the crash");
    }
}

/// Pipelined prefetches contending for write ownership of the same
/// pages: whoever hits an open transaction is answered with a retry,
/// which the advisory path counts as a denial and leaves to first touch
/// — never a panic, never a lost page. A thread on node 1 takes the
/// whole region first; a stalled ack link from node 1 then holds every
/// revocation transaction open while nodes 2 and 3 prefetch the same
/// pages simultaneously, so one of each request pair must be denied.
fn contended_prefetch_workload() -> RunReport {
    let mut plan = FaultPlan::default();
    // The stall opens after node 1 owns the region (setup finishes near
    // 1 ms) and holds its invalidation acks — and with them every
    // revocation transaction — until 6 ms.
    plan.stall(
        1,
        0,
        SimTime::ZERO + SimDuration::from_micros(1_500),
        SimTime::ZERO + SimDuration::from_millis(6),
    );
    let cluster = Cluster::new(ClusterConfig::new(4).with_fault_plan(plan));
    cluster.run(|p| {
        let data = p.alloc_vec_aligned::<u64>(8 * 512, "contended");
        p.spawn(move |ctx| {
            ctx.migrate(1).unwrap();
            data.set(ctx, 0, 1);
            ctx.prefetch(
                data.addr(),
                (data.len() * 8) as u64,
                dex_core::Access::Write,
            );
        });
        for n in 2..=3u16 {
            p.spawn(move |ctx| {
                ctx.migrate(n).unwrap();
                data.set(ctx, 0, n as u64); // VMA + page-0 ownership
                ctx.compute_ops(6_000_000); // ~3 ms: into the stall window
                ctx.prefetch(
                    data.addr(),
                    (data.len() * 8) as u64,
                    dex_core::Access::Write,
                );
                // Disjoint halves, so the data outcome is schedule-free.
                let half = data.len() / 2;
                let base = (n as usize - 2) * half;
                for i in 0..half {
                    data.set(ctx, base + i, (base + i) as u64 + 3);
                }
            });
        }
    })
}

#[test]
fn contended_prefetch_denials_fall_back_to_faulting() {
    let first = contended_prefetch_workload();
    let second = contended_prefetch_workload();
    assert_eq!(fingerprint(&first), fingerprint(&second));
    let counters = &first.process().stats.counters;
    // Each of the three threads demand-faults page 0 up front and hints
    // the remaining 7 pages.
    assert_eq!(
        counters.get("prefetch.pages") + counters.get("prefetch.denied"),
        21,
        "every hint resolves exactly once"
    );
    assert!(
        counters.get("prefetch.denied") >= 1,
        "simultaneous write prefetches over one region must collide"
    );
    for dir in &first.process().directories {
        dir.lock()
            .check_invariants()
            .expect("directory consistent after contention");
    }
}
