//! Default-policy determinism regression.
//!
//! Installing a [`dex_sim::SchedulePolicy`] routes every scheduling
//! choice point through the policy object. The contract (relied on by
//! `dex-check explore`) is that the *default* policy is behaviorally
//! invisible: a run with [`dex_sim::DefaultSchedulePolicy`] installed
//! produces a byte-identical schedule to a run with no policy at all.
//!
//! The workload is the Table II migration microbenchmark shape — a
//! thread bouncing between two nodes ten times — which exercises the
//! fault path, the dispatcher, and the fabric choice points. The
//! contract must hold with spans and metrics both off and on, because
//! instrumentation shares the same "must not perturb the schedule"
//! guarantee.

use dex_core::{Cluster, ClusterConfig};
use dex_sim::{DefaultSchedulePolicy, SchedulePolicyHandle};

/// The Table II workload: ten forward/backward migration round trips.
fn table2_workload(p: &dex_core::DexProcess<'_>) {
    p.spawn(|ctx| {
        for _ in 0..10 {
            ctx.migrate(1).expect("node 1 exists");
            ctx.migrate_back().expect("origin exists");
        }
    });
}

/// Runs the workload and returns the recorded schedule text.
fn schedule_of(configure: impl FnOnce(ClusterConfig) -> ClusterConfig) -> String {
    let config = configure(ClusterConfig::new(2).with_schedule_recording());
    let report = Cluster::new(config).run(table2_workload);
    report.schedule.expect("schedule recording was enabled")
}

#[test]
fn default_policy_is_byte_identical_without_instrumentation() {
    let bare = schedule_of(|c| c);
    let hooked =
        schedule_of(|c| c.with_schedule_policy(SchedulePolicyHandle::new(DefaultSchedulePolicy)));
    assert_eq!(bare, hooked, "default policy must not perturb the schedule");
    assert!(!bare.is_empty(), "the workload produced a schedule");
}

#[test]
fn default_policy_is_byte_identical_with_spans_and_metrics() {
    let bare = schedule_of(|c| c.with_spans().with_metrics());
    let hooked = schedule_of(|c| {
        c.with_spans()
            .with_metrics()
            .with_schedule_policy(SchedulePolicyHandle::new(DefaultSchedulePolicy))
    });
    assert_eq!(
        bare, hooked,
        "default policy must not perturb the instrumented schedule"
    );
}

#[test]
fn instrumentation_itself_does_not_perturb_the_schedule() {
    // The pre-existing guarantee the policy hook must not regress: spans
    // and metrics are schedule-invisible, with or without the hook.
    let plain = schedule_of(|c| c);
    let instrumented = schedule_of(|c| c.with_spans().with_metrics());
    assert_eq!(plain, instrumented);
    let hooked_instrumented = schedule_of(|c| {
        c.with_spans()
            .with_metrics()
            .with_schedule_policy(SchedulePolicyHandle::new(DefaultSchedulePolicy))
    });
    assert_eq!(plain, hooked_instrumented);
}
