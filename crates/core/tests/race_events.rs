//! Recording discipline of the race-detection instrumentation
//! (`ClusterConfig::with_race_detection`).

use dex_core::{Cluster, ClusterConfig, RaceEventKind};

#[test]
fn disabled_by_default_records_nothing() {
    let cluster = Cluster::new(ClusterConfig::new(2));
    let report = cluster.run(|p| {
        let cell = p.alloc_cell_tagged::<u32>(0, "c");
        p.spawn(move |ctx| {
            cell.set(ctx, 7);
        });
    });
    assert!(report.race_events.is_empty());
}

#[test]
fn mutex_sections_emit_semantic_events_and_suppress_word_traffic() {
    let cluster = Cluster::new(ClusterConfig::new(2).with_race_detection());
    let report = cluster.run(|p| {
        let mutex = p.new_mutex("m");
        let cell = p.alloc_cell_tagged::<u64>(0, "counter");
        for i in 0..2u16 {
            p.spawn(move |ctx| {
                ctx.migrate(i).unwrap();
                mutex.lock(ctx);
                let v = cell.get(ctx);
                cell.set(ctx, v + 1);
                mutex.unlock(ctx);
            });
        }
    });
    let word = {
        // Recover the lock word from the recorded events themselves.
        report
            .race_events
            .iter()
            .find_map(|e| match e.kind {
                RaceEventKind::LockAcquire { lock } => Some(lock),
                _ => None,
            })
            .expect("lock acquisitions recorded")
    };
    let acquires = report
        .race_events
        .iter()
        .filter(|e| matches!(e.kind, RaceEventKind::LockAcquire { .. }))
        .count();
    let releases = report
        .race_events
        .iter()
        .filter(|e| matches!(e.kind, RaceEventKind::LockRelease { .. }))
        .count();
    assert_eq!(acquires, 2);
    assert_eq!(releases, 2);
    // No raw access to the futex word itself may appear: the primitive's
    // internal CAS/swap traffic is suppressed.
    for e in &report.race_events {
        if let RaceEventKind::Access { addr, len, .. } = e.kind {
            let end = addr.as_u64() + len as u64;
            assert!(
                word.as_u64() >= end || word.as_u64() + 4 <= addr.as_u64(),
                "raw access overlapping the lock word leaked into the trace: {e:?}"
            );
        }
    }
    // The counter accesses themselves are recorded (get is a plain read,
    // set a plain write).
    let accesses = report
        .race_events
        .iter()
        .filter(|e| matches!(e.kind, RaceEventKind::Access { .. }))
        .count();
    assert!(accesses >= 4, "counter accesses recorded: {accesses}");
}

#[test]
fn barrier_rounds_and_spawns_are_recorded() {
    let cluster = Cluster::new(ClusterConfig::new(2).with_race_detection());
    let report = cluster.run(|p| {
        let barrier = p.new_barrier(2, "b");
        p.spawn(move |ctx| {
            let peer = ctx.spawn_thread("peer", move |ctx2| {
                ctx2.migrate(1).unwrap();
                barrier.wait(ctx2);
            });
            barrier.wait(ctx);
            peer.join(ctx);
        });
    });
    let enters = report
        .race_events
        .iter()
        .filter(|e| matches!(e.kind, RaceEventKind::BarrierEnter { generation: 0, .. }))
        .count();
    let leaves = report
        .race_events
        .iter()
        .filter(|e| matches!(e.kind, RaceEventKind::BarrierLeave { generation: 0, .. }))
        .count();
    assert_eq!(enters, 2);
    assert_eq!(leaves, 2);
    assert!(report
        .race_events
        .iter()
        .any(|e| matches!(e.kind, RaceEventKind::Spawn { .. })));
}

#[test]
fn atomic_rmw_accesses_are_flagged_atomic() {
    let cluster = Cluster::new(ClusterConfig::new(1).with_race_detection());
    let report = cluster.run(|p| {
        let cell = p.alloc_cell_tagged::<u32>(0, "c");
        p.spawn(move |ctx| {
            cell.rmw(ctx, |v| v + 1);
        });
    });
    assert!(report.race_events.iter().any(|e| matches!(
        e.kind,
        RaceEventKind::Access {
            atomic: true,
            is_write: true,
            ..
        }
    )));
}
