//! Continuous-telemetry regression tests.
//!
//! The load-bearing guarantee mirrors `schedule_policy.rs`: telemetry is
//! pure observation. A run with the sampler installed must produce a
//! byte-identical event schedule to a run without it (and both must
//! match the uninstrumented schedule) — the sampler fires on the driver
//! thread between events and adds nothing to the event queue.

use dex_core::{Cluster, ClusterConfig, DsmCell, HealthEventKind, MonitorConfig, TelemetryConfig};
use dex_net::SeriesScope;
use dex_sim::SimDuration;

/// The Table II workload: ten forward/backward migration round trips.
fn table2_workload(p: &dex_core::DexProcess<'_>) {
    p.spawn(|ctx| {
        for _ in 0..10 {
            ctx.migrate(1).expect("node 1 exists");
            ctx.migrate_back().expect("origin exists");
        }
    });
}

/// Runs the workload and returns the recorded schedule text.
fn schedule_of(configure: impl FnOnce(ClusterConfig) -> ClusterConfig) -> String {
    let config = configure(ClusterConfig::new(2).with_schedule_recording());
    let report = Cluster::new(config).run(table2_workload);
    report.schedule.expect("schedule recording was enabled")
}

#[test]
fn telemetry_is_schedule_invisible() {
    // Sampler-off vs sampler-on, both against the bare uninstrumented
    // run: all three byte-identical.
    let bare = schedule_of(|c| c);
    let instrumented = schedule_of(|c| c.with_spans().with_metrics());
    let telemetry = schedule_of(|c| c.with_telemetry(SimDuration::from_micros(50)));
    assert_eq!(
        instrumented, telemetry,
        "the sampler must not perturb the schedule"
    );
    assert_eq!(bare, telemetry, "telemetry-on must match the bare run");
    assert!(!bare.is_empty());
}

#[test]
fn series_deltas_sum_to_cumulative_totals() {
    let window = SimDuration::from_micros(50);
    let report = Cluster::new(ClusterConfig::new(2).with_telemetry(window)).run(table2_workload);
    let series = report.series.as_ref().expect("telemetry was enabled");
    assert_eq!(series.window, window);
    assert!(series.windows > 1, "the run spans several windows");
    assert_eq!(
        series.end.saturating_since(dex_sim::SimTime::ZERO),
        report.virtual_time
    );

    // Per-window deltas reassemble the cumulative counters exactly.
    let metrics = report.metrics.as_ref().expect("metrics implied");
    for (node, counters) in metrics.per_node.iter().enumerate() {
        for (name, total) in counters {
            let sum: u64 = series
                .counters
                .iter()
                .filter(|p| p.scope == SeriesScope::Node(node as u16) && &p.name == name)
                .map(|p| p.delta)
                .sum();
            assert_eq!(sum, *total, "{name}@node{node} deltas must sum to total");
        }
    }
    for link in &metrics.per_link {
        for (name, total) in &link.counters {
            let sum: u64 = series
                .counters
                .iter()
                .filter(|p| p.scope == SeriesScope::Link(link.src, link.dst) && &p.name == name)
                .map(|p| p.delta)
                .sum();
            assert_eq!(
                sum, *total,
                "{name}@link{}-{} deltas must sum to total",
                link.src, link.dst
            );
        }
    }

    // Windows are ordered and in range.
    assert!(series
        .counters
        .windows(2)
        .all(|w| w[0].window <= w[1].window));
    assert!(series.counters.iter().all(|p| p.window < series.windows));
}

#[test]
fn telemetry_itself_is_deterministic() {
    let run = || {
        let report =
            Cluster::new(ClusterConfig::new(2).with_telemetry(SimDuration::from_micros(50)))
                .run(table2_workload);
        let series = report.series.expect("telemetry on");
        (
            series.windows,
            series.counters,
            series.hists,
            report.health.len(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn pingpong_workload_raises_a_page_pingpong_alarm() {
    // Two nodes alternately write the same cell: the page bounces and
    // the fault spans — all tagged with the cell's allocation tag — come
    // from both nodes within a window.
    let config = ClusterConfig::new(2).with_telemetry_config(TelemetryConfig {
        window: SimDuration::from_millis(2),
        monitors: MonitorConfig {
            pingpong_faults: 4,
            ..MonitorConfig::default()
        },
    });
    let report = Cluster::new(config).run(|p| {
        let cell: DsmCell<u64> = p.alloc_cell_tagged(0, "bouncer");
        let barrier = p.new_barrier(2, "start");
        for node in [0u16, 1u16] {
            p.spawn(move |ctx| {
                if node != 0 {
                    ctx.migrate(node).expect("node exists");
                }
                barrier.wait(ctx);
                // Each iteration computes for roughly as long as a
                // remote fault takes to resolve (~150µs), so both
                // threads stay in the loop together and every rmw
                // finds the page stolen by the other node.
                for _ in 0..20 {
                    cell.rmw(ctx, |v| v + 1);
                    ctx.compute_ops(300_000);
                }
            });
        }
    });
    let pingpong: Vec<_> = report
        .health
        .iter()
        .filter(|e| e.kind == HealthEventKind::PagePingPong)
        .collect();
    assert!(
        !pingpong.is_empty(),
        "the bouncing page must raise an alarm; health = {:?}",
        report.health
    );
    let e = pingpong[0];
    assert!(e.detail.contains("'bouncer'"), "{}", e.detail);
    assert!(!e.span.is_none(), "the alarm carries its causal span");
    // The causal span really exists in the recorded span forest.
    assert!(
        report.spans.iter().any(|s| s.id == e.span),
        "span {} not found",
        e.span
    );
    // Telemetry implies metrics + spans; the series saw fault traffic.
    let series = report.series.expect("series present");
    assert!(series
        .counters
        .iter()
        .any(|p| p.name == "dsm.faults_write" && p.delta > 0));
}

#[test]
fn quiet_run_raises_no_alarms() {
    let report = Cluster::new(ClusterConfig::new(2).with_telemetry(SimDuration::from_micros(100)))
        .run(|p| {
            p.spawn(|ctx| ctx.compute_ops(50_000));
        });
    assert!(
        report.health.is_empty(),
        "a compute-only run is healthy: {:?}",
        report.health
    );
}

#[test]
fn per_window_hist_points_cover_the_run() {
    // Migration round trips exercise the fabric wait histograms; with
    // telemetry on, their per-window quantiles land in the series.
    let report = Cluster::new(ClusterConfig::new(2).with_telemetry(SimDuration::from_micros(50)))
        .run(table2_workload);
    let series = report.series.expect("telemetry on");
    let metrics = report.metrics.expect("metrics implied");
    for h in metrics.histograms.iter().filter(|h| h.count > 0) {
        let windowed: u64 = series
            .hists
            .iter()
            .filter(|p| p.name == h.name && p.node == h.node)
            .map(|p| p.count)
            .sum();
        assert_eq!(
            windowed, h.count,
            "per-window sample counts of {}@node{} must sum to the total",
            h.name, h.node
        );
    }
}
