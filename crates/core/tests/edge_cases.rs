//! Edge-case coverage: VMA downgrades, delegated address-space calls,
//! oversubscription, bandwidth contention, and misuse panics.

use dex_core::{Cluster, ClusterConfig, CostModel, NodeId, Prot};
use dex_sim::SimDuration;

#[test]
#[should_panic(expected = "segmentation fault")]
fn write_after_mprotect_downgrade_faults() {
    let cluster = Cluster::new(ClusterConfig::new(2));
    let _ = cluster.run(|p| {
        p.spawn(|ctx| {
            let addr = ctx.mmap(4096, Prot::RW);
            ctx.write_bytes(addr, &[1, 2, 3]);
            ctx.mprotect(addr, 4096, Prot::RO);
            let mut buf = [0u8; 3];
            ctx.read_bytes(addr, &mut buf); // reads stay legal
            assert_eq!(buf, [1, 2, 3]);
            ctx.write_bytes(addr, &[9]); // the write must fault
        });
    });
}

#[test]
#[should_panic(expected = "segmentation fault")]
fn remote_write_after_broadcast_downgrade_faults() {
    // The downgrade is broadcast eagerly (§III-D): a remote thread with a
    // previously-writable mapping must fault after the origin's mprotect.
    let cluster = Cluster::new(ClusterConfig::new(2));
    let _ = cluster.run(|p| {
        let region = std::sync::Arc::new(std::sync::Mutex::new(None));
        let region2 = std::sync::Arc::clone(&region);
        let ready = p.new_barrier(2, "mapped");
        let downgraded = p.new_barrier(2, "downgraded");
        p.spawn(move |ctx| {
            let addr = ctx.mmap(4096, Prot::RW);
            *region2.lock().unwrap() = Some(addr);
            ready.wait(ctx);
            downgraded.wait(ctx);
        });
        p.spawn(move |ctx| {
            ctx.migrate(1).unwrap();
            ready.wait(ctx);
            let addr = region.lock().unwrap().expect("mapped");
            ctx.write_bytes(addr, &[1]); // writable: fine
            ctx.mprotect(addr, 4096, Prot::RO); // delegated downgrade
            downgraded.wait(ctx);
            ctx.write_bytes(addr, &[2]); // must fault on this node too
        });
    });
}

#[test]
fn delegated_mmap_and_munmap_from_remote() {
    let cluster = Cluster::new(ClusterConfig::new(2));
    let report = cluster.run(|p| {
        p.spawn(|ctx| {
            ctx.migrate(1).unwrap();
            // The mapping is created at the origin via delegation…
            let addr = ctx.mmap(8192, Prot::RW);
            ctx.write_bytes(addr, b"remote-mapped");
            let mut buf = [0u8; 13];
            ctx.read_bytes(addr, &mut buf);
            assert_eq!(&buf, b"remote-mapped");
            // …and removed the same way (broadcast shrink).
            ctx.munmap(addr, 8192);
        });
    });
    assert!(report.stats.delegations >= 2, "mmap + munmap delegated");
    assert!(report.stats.vma_broadcasts >= 1, "munmap broadcast eagerly");
}

#[test]
fn oversubscribed_cores_queue_compute() {
    // 2 cores, 6 threads of equal bursts: finish time must reflect
    // 3 serialized waves, not parallel magic.
    let cost = CostModel {
        cores_per_node: 2,
        ..CostModel::default()
    };
    let cluster = Cluster::new(ClusterConfig::new(1).with_cost(cost));
    let report = cluster.run(|p| {
        for _ in 0..6 {
            p.spawn(|ctx| {
                ctx.compute(SimDuration::from_millis(1));
            });
        }
    });
    assert_eq!(
        report.virtual_time,
        SimDuration::from_millis(3),
        "6 x 1ms bursts on 2 cores = 3 ms"
    );
}

#[test]
fn memory_bandwidth_is_shared_per_node() {
    // Two threads streaming on one node take twice as long as on two.
    fn run(nodes: usize, spread: bool) -> SimDuration {
        let cluster = Cluster::new(ClusterConfig::new(nodes));
        let report = cluster.run(|p| {
            for t in 0..2u16 {
                p.spawn(move |ctx| {
                    if spread {
                        ctx.migrate(t).unwrap();
                    }
                    ctx.membound(100_000_000); // 100 MB
                });
            }
        });
        report.virtual_time
    }
    let together = run(1, false);
    let spread = run(2, true);
    // 200 MB through one 20 GB/s pipe = 10 ms; spread over two pipes the
    // streams overlap (migration adds ~1 ms of setup).
    assert_eq!(together, SimDuration::from_millis(10));
    assert!(
        spread < SimDuration::from_millis(8),
        "aggregated bandwidth must win: {spread}"
    );
}

#[test]
fn empty_reads_and_writes_are_noops() {
    let cluster = Cluster::new(ClusterConfig::new(2));
    let report = cluster.run(|p| {
        let v = p.alloc_vec::<u64>(4, "tiny");
        p.spawn(move |ctx| {
            ctx.migrate(1).unwrap();
            let mut empty: [u64; 0] = [];
            v.read_slice(ctx, 0, &mut empty);
            v.write_slice(ctx, 4, &empty); // at the end: still fine
            ctx.read_bytes(v.addr(), &mut []);
            ctx.write_bytes(v.addr(), &[]);
        });
    });
    assert_eq!(report.stats.total_faults(), 0, "no access, no protocol");
}

#[test]
fn thread_counts_track_population() {
    let cluster = Cluster::new(ClusterConfig::new(3));
    let snapshot = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
    let snapshot2 = std::sync::Arc::clone(&snapshot);
    cluster.run(move |p| {
        let sync = p.new_barrier(3, "placed");
        for node in 0..3u16 {
            let snapshot = std::sync::Arc::clone(&snapshot2);
            p.spawn(move |ctx| {
                ctx.migrate(node).unwrap();
                sync.wait(ctx);
                if node == 0 {
                    *snapshot.lock().unwrap() = ctx.process().thread_counts();
                }
                sync.wait(ctx);
            });
        }
    });
    assert_eq!(*snapshot.lock().unwrap(), vec![1, 1, 1]);
}

#[test]
#[should_panic(expected = "straddle")]
fn atomic_across_page_boundary_is_rejected() {
    let cluster = Cluster::new(ClusterConfig::new(1));
    let _ = cluster.run(|p| {
        let raw = p.alloc_raw(8192, 4096, "two_pages");
        p.spawn(move |ctx| {
            ctx.rmw_bytes(raw.add(4092), 8, |_| {});
        });
    });
}

#[test]
fn migrate_to_current_node_is_free() {
    let cluster = Cluster::new(ClusterConfig::new(2));
    let report = cluster.run(|p| {
        p.spawn(|ctx| {
            ctx.migrate(NodeId(0)).unwrap(); // already home
            ctx.migrate(1).unwrap();
            ctx.migrate(NodeId(1)).unwrap(); // already there
        });
    });
    assert_eq!(report.stats.forward_migrations, 1);
}
