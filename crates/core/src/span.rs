//! Causal span tracing across the DEX protocol stack.
//!
//! A [`Span`] is one timed operation — a page fault, a migration phase,
//! a delegation round trip — with a parent link that makes the spans of
//! one run a forest. Causality crosses node boundaries by riding the
//! span id on the message envelope
//! ([`dex_net::SpanContext`](dex_net::SpanContext), out of band, never
//! in `control_bytes`), so a remote fault's timeline stitches the
//! requester-side fault, the origin-side directory handling, and the
//! requester-side fixup into one tree.
//!
//! # Zero cost when disabled
//!
//! Instrumentation sites follow one canonical pattern:
//!
//! ```ignore
//! let t0 = ctx.now();                               // reads the clock only
//! let span = spans.is_enabled().then(|| spans.alloc_id());
//! /* ... the operation; `span` may ride outgoing messages ... */
//! if let Some(id) = span {
//!     spans.record(Span { id, parent, kind, node, task,
//!                         start: t0, end: ctx.now(), label, tag: None });
//! }
//! ```
//!
//! Everything behind the `is_enabled()` test is pure bookkeeping — no
//! `advance`, no park, no messages — so a run with spans enabled takes
//! **exactly** the same schedule as a run without (verified by the
//! bit-identity test in `crates/core/tests/observability.rs`, and
//! enforced textually by the `span-unguarded` lint in `dex-check`).

use std::sync::Arc;

use parking_lot::Mutex;

use dex_net::NodeId;
use dex_os::Tid;
use dex_sim::SimTime;

/// Identifies a span within one run. Ids are allocated sequentially
/// starting at 1; 0 is reserved for "no span" (the wire encoding of an
/// absent [`dex_net::SpanContext`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The reserved "no span" id.
    pub const NONE: SpanId = SpanId(0);

    /// Whether this is the reserved "no span" id.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

impl std::fmt::Display for SpanId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "span-{}", self.0)
    }
}

/// What kind of operation a span times.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SpanKind {
    /// A whole page fault on the faulting thread (leader side).
    Fault,
    /// One retry back-off inside a fault (conflicting transaction).
    FaultRetry,
    /// A coalesced follower waiting on its leader's fault (§III-C).
    FollowerWait,
    /// Origin-side directory lookup and action application for one
    /// protocol request.
    DirectoryHandling,
    /// Requester-side PTE fixup after a page grant arrives.
    PageFixup,
    /// A sharer handling an invalidation (possibly flushing data).
    Invalidation,
    /// The current owner servicing a grant the sharded home forwarded to
    /// it (two-hop ownership transfer, PR 9).
    OwnerForward,
    /// A destination node handling one batched invalidation fan-out
    /// message (`InvalidateBatch`, possibly flushing several pages).
    InvalidateBatch,
    /// A forward migration, origin side end to end.
    MigrationForward,
    /// One remote-side phase of a migration (worker setup, fork, ...).
    MigrationPhase,
    /// A backward migration, remote side end to end.
    MigrationBack,
    /// A delegation round trip from a remote thread to its origin pair.
    Delegation,
    /// The origin pair thread servicing one delegated operation.
    DelegationService,
    /// A futex sleep (from enter to wake).
    FutexWait,
    /// A futex wake operation.
    FutexWake,
    /// A VMA synchronization (lazy pull or eager broadcast).
    VmaSync,
}

impl SpanKind {
    /// Stable lowercase name used by the `# dex-spans v1` codec.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Fault => "fault",
            SpanKind::FaultRetry => "fault_retry",
            SpanKind::FollowerWait => "follower_wait",
            SpanKind::DirectoryHandling => "directory_handling",
            SpanKind::PageFixup => "page_fixup",
            SpanKind::Invalidation => "invalidation",
            SpanKind::OwnerForward => "owner_forward",
            SpanKind::InvalidateBatch => "invalidate_batch",
            SpanKind::MigrationForward => "migration_forward",
            SpanKind::MigrationPhase => "migration_phase",
            SpanKind::MigrationBack => "migration_back",
            SpanKind::Delegation => "delegation",
            SpanKind::DelegationService => "delegation_service",
            SpanKind::FutexWait => "futex_wait",
            SpanKind::FutexWake => "futex_wake",
            SpanKind::VmaSync => "vma_sync",
        }
    }

    /// Parses the name produced by [`SpanKind::as_str`].
    pub fn parse(name: &str) -> Option<SpanKind> {
        Some(match name {
            "fault" => SpanKind::Fault,
            "fault_retry" => SpanKind::FaultRetry,
            "follower_wait" => SpanKind::FollowerWait,
            "directory_handling" => SpanKind::DirectoryHandling,
            "page_fixup" => SpanKind::PageFixup,
            "invalidation" => SpanKind::Invalidation,
            "owner_forward" => SpanKind::OwnerForward,
            "invalidate_batch" => SpanKind::InvalidateBatch,
            "migration_forward" => SpanKind::MigrationForward,
            "migration_phase" => SpanKind::MigrationPhase,
            "migration_back" => SpanKind::MigrationBack,
            "delegation" => SpanKind::Delegation,
            "delegation_service" => SpanKind::DelegationService,
            "futex_wait" => SpanKind::FutexWait,
            "futex_wake" => SpanKind::FutexWake,
            "vma_sync" => SpanKind::VmaSync,
            _ => return None,
        })
    }
}

impl std::fmt::Display for SpanKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One timed, causally linked operation.
#[derive(Clone, Debug)]
pub struct Span {
    /// This span's id (unique within the run).
    pub id: SpanId,
    /// The causal parent ([`SpanId::NONE`] for roots). The parent may
    /// live on a different node — that is the point.
    pub parent: SpanId,
    /// Operation kind.
    pub kind: SpanKind,
    /// Node the operation ran on.
    pub node: NodeId,
    /// Task that performed it (`Tid(u64::MAX)` for protocol handlers).
    pub task: Tid,
    /// Virtual start time.
    pub start: SimTime,
    /// Virtual end time (spans are recorded at completion, so children
    /// may appear in the buffer before their parents).
    pub end: SimTime,
    /// Fine-grained label (e.g. the migration phase name).
    pub label: &'static str,
    /// Optional free-form attribution (e.g. the faulted object's tag).
    pub tag: Option<String>,
}

impl Span {
    /// The span's duration.
    pub fn duration(&self) -> dex_sim::SimDuration {
        self.end.saturating_since(self.start)
    }
}

/// A shared, append-only buffer of completed spans with an id allocator.
///
/// Mirrors [`TraceBuffer`](crate::TraceBuffer): cloning shares the
/// buffer; the `enabled` flag is checked before any work so a disabled
/// buffer costs one branch.
///
/// # Examples
///
/// ```
/// use dex_core::{Span, SpanBuffer, SpanId, SpanKind};
/// use dex_net::NodeId;
/// use dex_os::Tid;
/// use dex_sim::SimTime;
///
/// let spans = SpanBuffer::enabled();
/// let id = spans.alloc_id();
/// spans.record(Span {
///     id,
///     parent: SpanId::NONE,
///     kind: SpanKind::Fault,
///     node: NodeId(1),
///     task: Tid(3),
///     start: SimTime::ZERO,
///     end: SimTime::from_nanos(158_800),
///     label: "page_fault",
///     tag: None,
/// });
/// assert_eq!(spans.snapshot().len(), 1);
/// ```
#[derive(Clone)]
pub struct SpanBuffer {
    enabled: bool,
    inner: Arc<Mutex<SpanInner>>,
}

#[derive(Default)]
struct SpanInner {
    spans: std::collections::VecDeque<Span>,
    /// `None` means unbounded.
    capacity: Option<usize>,
    /// Spans evicted because the buffer was at capacity.
    dropped: u64,
    /// Next id to hand out (ids start at 1; 0 is "no span").
    next_id: u64,
}

impl SpanBuffer {
    fn with_capacity(capacity: Option<usize>) -> Self {
        SpanBuffer {
            enabled: true,
            inner: Arc::new(Mutex::new(SpanInner {
                capacity,
                next_id: 1,
                ..SpanInner::default()
            })),
        }
    }

    /// A buffer that records spans without bound.
    pub fn enabled() -> Self {
        Self::with_capacity(None)
    }

    /// A buffer retaining at most `capacity` spans, evicting the oldest
    /// on overflow; evictions are counted by [`SpanBuffer::dropped`].
    pub fn bounded(capacity: usize) -> Self {
        Self::with_capacity(Some(capacity))
    }

    /// A buffer that records nothing (production mode).
    pub fn disabled() -> Self {
        SpanBuffer {
            enabled: false,
            inner: Arc::new(Mutex::new(SpanInner::default())),
        }
    }

    /// Whether recording is active. Every instrumentation site tests
    /// this before doing *any* span work (the `span-unguarded` lint
    /// rejects sites that don't).
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Allocates a fresh span id. Only meaningful when enabled — callers
    /// guard with `is_enabled().then(|| spans.alloc_id())`.
    pub fn alloc_id(&self) -> SpanId {
        let mut inner = self.inner.lock();
        let id = inner.next_id;
        inner.next_id += 1;
        SpanId(id)
    }

    /// Appends a completed span (no-op when disabled).
    pub fn record(&self, span: Span) {
        if self.enabled {
            let mut inner = self.inner.lock();
            if let Some(cap) = inner.capacity {
                if cap == 0 {
                    inner.dropped += 1;
                    return;
                }
                while inner.spans.len() >= cap {
                    inner.spans.pop_front();
                    inner.dropped += 1;
                }
            }
            inner.spans.push_back(span);
        }
    }

    /// A copy of all recorded spans in completion order.
    pub fn snapshot(&self) -> Vec<Span> {
        self.inner.lock().spans.iter().cloned().collect()
    }

    /// Copies the spans recorded at position `from` or later, where
    /// positions count every span ever recorded (evicted ones included —
    /// an evicted span in the range is simply absent from the result).
    /// Returns the spans and the next cursor value, letting a consumer
    /// stream the buffer incrementally:
    ///
    /// ```
    /// # use dex_core::SpanBuffer;
    /// let spans = SpanBuffer::enabled();
    /// let (batch, cursor) = spans.snapshot_since(0);
    /// assert!(batch.is_empty());
    /// let (_, again) = spans.snapshot_since(cursor);
    /// assert_eq!(cursor, again);
    /// ```
    pub fn snapshot_since(&self, from: u64) -> (Vec<Span>, u64) {
        let inner = self.inner.lock();
        let total = inner.dropped + inner.spans.len() as u64;
        let skip = from
            .saturating_sub(inner.dropped)
            .min(inner.spans.len() as u64);
        let spans = inner.spans.iter().skip(skip as usize).cloned().collect();
        (spans, total)
    }

    /// Spans evicted by the capacity bound (0 for unbounded buffers).
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.inner.lock().spans.len()
    }

    /// Returns `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().spans.is_empty()
    }
}

impl std::fmt::Debug for SpanBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanBuffer")
            .field("enabled", &self.enabled)
            .field("spans", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, kind: SpanKind) -> Span {
        Span {
            id: SpanId(id),
            parent: SpanId::NONE,
            kind,
            node: NodeId(0),
            task: Tid(0),
            start: SimTime::ZERO,
            end: SimTime::from_nanos(10),
            label: "test",
            tag: None,
        }
    }

    #[test]
    fn ids_start_at_one_and_increment() {
        let b = SpanBuffer::enabled();
        assert_eq!(b.alloc_id(), SpanId(1));
        assert_eq!(b.alloc_id(), SpanId(2));
        assert!(!SpanId(1).is_none());
        assert!(SpanId::NONE.is_none());
    }

    #[test]
    fn disabled_buffer_records_nothing() {
        let b = SpanBuffer::disabled();
        assert!(!b.is_enabled());
        b.record(span(1, SpanKind::Fault));
        assert!(b.is_empty());
    }

    #[test]
    fn bounded_buffer_evicts_oldest_and_counts() {
        let b = SpanBuffer::bounded(2);
        for i in 1..=3 {
            b.record(span(i, SpanKind::Fault));
        }
        assert_eq!(b.len(), 2);
        assert_eq!(b.dropped(), 1);
        assert_eq!(b.snapshot()[0].id, SpanId(2));
    }

    #[test]
    fn snapshot_since_streams_incrementally() {
        let b = SpanBuffer::enabled();
        b.record(span(1, SpanKind::Fault));
        b.record(span(2, SpanKind::Fault));
        let (batch, cursor) = b.snapshot_since(0);
        assert_eq!(batch.len(), 2);
        assert_eq!(cursor, 2);
        b.record(span(3, SpanKind::FaultRetry));
        let (batch, cursor) = b.snapshot_since(cursor);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].id, SpanId(3));
        assert_eq!(cursor, 3);
        assert!(b.snapshot_since(cursor).0.is_empty());

        // Eviction shifts nothing: positions count evicted spans too.
        let b = SpanBuffer::bounded(2);
        b.record(span(1, SpanKind::Fault));
        let (_, cursor) = b.snapshot_since(0);
        for i in 2..=4 {
            b.record(span(i, SpanKind::Fault));
        }
        let (batch, _) = b.snapshot_since(cursor);
        // Span 2 was evicted before this drain; 3 and 4 remain.
        assert_eq!(batch.iter().map(|s| s.id.0).collect::<Vec<_>>(), vec![3, 4]);
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in [
            SpanKind::Fault,
            SpanKind::FaultRetry,
            SpanKind::FollowerWait,
            SpanKind::DirectoryHandling,
            SpanKind::PageFixup,
            SpanKind::Invalidation,
            SpanKind::OwnerForward,
            SpanKind::InvalidateBatch,
            SpanKind::MigrationForward,
            SpanKind::MigrationPhase,
            SpanKind::MigrationBack,
            SpanKind::Delegation,
            SpanKind::DelegationService,
            SpanKind::FutexWait,
            SpanKind::FutexWake,
            SpanKind::VmaSync,
        ] {
            assert_eq!(SpanKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(SpanKind::parse("nope"), None);
    }
}
