//! Thread-synchronization primitives over distributed futexes.
//!
//! On Linux, pthread mutexes, barriers, and condition variables compile
//! down to atomic operations on user-space words plus `futex` system
//! calls. DEX supports exactly those two ingredients across nodes —
//! atomics through exclusive page ownership, futexes through work
//! delegation — so these primitives are faithful ports of the classic
//! futex algorithms and work unchanged wherever the calling thread runs
//! (the paper's claim that "applications can use thread synchronization
//! primitives based on the futex as is, regardless of their locations").

//! When the cluster runs with race detection enabled
//! ([`crate::ClusterConfig::with_race_detection`]), these primitives
//! record *semantic* synchronization events (`LockAcquire`,
//! `BarrierLeave`, …) and suppress recording of their internal futex-word
//! traffic, so `dex-check races` sees the happens-before edges without
//! mistaking lock-word contention for application races.

use dex_os::VirtAddr;

use crate::handle::ProcessRef;
use crate::race::RaceEventKind;
use crate::thread::ThreadCtx;

/// A mutual-exclusion lock usable by threads on any node.
///
/// Three-state futex mutex (Drepper's "Futexes Are Tricky"): 0 = free,
/// 1 = locked, 2 = locked with waiters.
///
/// # Examples
///
/// ```
/// use dex_core::{Cluster, ClusterConfig, DexMutex};
///
/// let cluster = Cluster::new(ClusterConfig::new(2));
/// cluster.run(|proc_| {
///     let mutex = proc_.new_mutex("lock");
///     let counter = proc_.alloc_cell::<u64>(0);
///     for i in 0..4u16 {
///         proc_.spawn(move |ctx| {
///             ctx.migrate(i % 2).unwrap();
///             for _ in 0..10 {
///                 mutex.lock(ctx);
///                 let v = counter.get(ctx);
///                 counter.set(ctx, v + 1);
///                 mutex.unlock(ctx);
///             }
///         });
///     }
/// });
/// ```
#[derive(Clone, Copy, Debug)]
pub struct DexMutex {
    word: VirtAddr,
}

impl DexMutex {
    pub(crate) fn from_raw(word: VirtAddr) -> Self {
        DexMutex { word }
    }

    /// The futex word backing the lock.
    pub fn word_addr(&self) -> VirtAddr {
        self.word
    }

    /// Acquires the lock, blocking (via delegated futex wait) while held
    /// elsewhere. This is Drepper's third futex mutex: the word is swapped
    /// to "locked-contended" before sleeping so unlockers know to wake.
    pub fn lock(&self, ctx: &ThreadCtx<'_>) {
        ctx.sync_scope(|| {
            let mut c = ctx.cas_u32(self.word, 0, 1);
            if c == 0 {
                return;
            }
            if c != 2 {
                c = ctx.swap_u32(self.word, 2);
            }
            while c != 0 {
                let _ = ctx.futex_wait(self.word, 2);
                c = ctx.swap_u32(self.word, 2);
            }
        });
        ctx.record_sync_event(RaceEventKind::LockAcquire { lock: self.word });
    }

    /// Attempts to acquire without blocking; `true` on success.
    pub fn try_lock(&self, ctx: &ThreadCtx<'_>) -> bool {
        let acquired = ctx.sync_scope(|| ctx.cas_u32(self.word, 0, 1) == 0);
        if acquired {
            ctx.record_sync_event(RaceEventKind::LockAcquire { lock: self.word });
        }
        acquired
    }

    /// Releases the lock, waking one waiter if any.
    pub fn unlock(&self, ctx: &ThreadCtx<'_>) {
        ctx.record_sync_event(RaceEventKind::LockRelease { lock: self.word });
        ctx.sync_scope(|| {
            let old = ctx.swap_u32(self.word, 0);
            debug_assert!(old != 0, "unlock of unlocked DexMutex");
            if old == 2 {
                let _ = ctx.futex_wake(self.word, 1);
            }
        });
    }

    /// Runs `f` under the lock.
    pub fn with<R>(&self, ctx: &ThreadCtx<'_>, f: impl FnOnce() -> R) -> R {
        self.lock(ctx);
        let r = f();
        self.unlock(ctx);
        r
    }
}

/// A reusable barrier for a fixed party count, usable across nodes.
///
/// Generation-counting futex barrier: the last arriver resets the count,
/// bumps the generation, and wakes everyone.
#[derive(Clone, Copy, Debug)]
pub struct DexBarrier {
    parties: u32,
    count: VirtAddr,
    generation: VirtAddr,
}

impl DexBarrier {
    pub(crate) fn from_raw(parties: u32, count: VirtAddr, generation: VirtAddr) -> Self {
        assert!(parties > 0, "barrier needs at least one party");
        DexBarrier {
            parties,
            count,
            generation,
        }
    }

    /// Number of threads that must arrive to release the barrier.
    pub fn parties(&self) -> u32 {
        self.parties
    }

    /// Arrives at the barrier and blocks until all parties have arrived.
    /// Returns `true` to exactly one arriver per round (the "serial"
    /// thread, as in `pthread_barrier_wait`).
    pub fn wait(&self, ctx: &ThreadCtx<'_>) -> bool {
        ctx.sync_scope(|| {
            let gen = ctx.read_u32(self.generation);
            ctx.record_sync_event(RaceEventKind::BarrierEnter {
                barrier: self.generation,
                generation: gen,
            });
            let arrived = ctx.fetch_add_u32(self.count, 1) + 1;
            let serial = if arrived == self.parties {
                ctx.write_u32(self.count, 0);
                ctx.fetch_add_u32(self.generation, 1);
                let _ = ctx.futex_wake(self.generation, u32::MAX);
                true
            } else {
                while ctx.read_u32(self.generation) == gen {
                    let _ = ctx.futex_wait(self.generation, gen);
                }
                false
            };
            ctx.record_sync_event(RaceEventKind::BarrierLeave {
                barrier: self.generation,
                generation: gen,
            });
            serial
        })
    }
}

/// A condition variable over a [`DexMutex`].
#[derive(Clone, Copy, Debug)]
pub struct DexCondvar {
    seq: VirtAddr,
}

impl DexCondvar {
    pub(crate) fn from_raw(seq: VirtAddr) -> Self {
        DexCondvar { seq }
    }

    /// Atomically releases `mutex` and blocks until notified, then
    /// reacquires the mutex. Like POSIX, spurious wakeups are possible:
    /// callers re-check their predicate in a loop.
    pub fn wait(&self, ctx: &ThreadCtx<'_>, mutex: &DexMutex) {
        let seq = ctx.sync_scope(|| ctx.read_u32(self.seq));
        mutex.unlock(ctx);
        let woken = ctx.sync_scope(|| ctx.futex_wait(self.seq, seq));
        if woken == 0 {
            ctx.record_sync_event(RaceEventKind::FutexWaitReturn { addr: self.seq });
        }
        mutex.lock(ctx);
    }

    /// Wakes one waiter.
    pub fn notify_one(&self, ctx: &ThreadCtx<'_>) {
        ctx.record_sync_event(RaceEventKind::FutexWake { addr: self.seq });
        ctx.sync_scope(|| {
            ctx.fetch_add_u32(self.seq, 1);
            let _ = ctx.futex_wake(self.seq, 1);
        });
    }

    /// Wakes all waiters.
    pub fn notify_all(&self, ctx: &ThreadCtx<'_>) {
        ctx.record_sync_event(RaceEventKind::FutexWake { addr: self.seq });
        ctx.sync_scope(|| {
            ctx.fetch_add_u32(self.seq, 1);
            let _ = ctx.futex_wake(self.seq, u32::MAX);
        });
    }
}

/// A readers–writer lock over a distributed futex word: any number of
/// concurrent readers, or one writer, across all nodes.
///
/// The word holds the reader count, or [`DexRwLock::WRITER`] while a
/// writer owns the lock. Contended paths sleep on the delegated futex, so
/// waiting threads cost nothing at their node.
#[derive(Clone, Copy, Debug)]
pub struct DexRwLock {
    word: VirtAddr,
}

impl DexRwLock {
    /// Sentinel state: a writer holds the lock.
    pub const WRITER: u32 = u32::MAX;

    pub(crate) fn from_raw(word: VirtAddr) -> Self {
        DexRwLock { word }
    }

    /// Acquires shared (read) access.
    ///
    /// For race detection the rwlock is recorded as a plain lock
    /// acquire/release — a deliberate over-approximation (reader–reader
    /// sections appear ordered), erring towards missed reports rather
    /// than false positives.
    pub fn read_lock(&self, ctx: &ThreadCtx<'_>) {
        ctx.sync_scope(|| loop {
            let v = ctx.read_u32(self.word);
            if v == Self::WRITER {
                let _ = ctx.futex_wait(self.word, Self::WRITER);
                continue;
            }
            if ctx.cas_u32(self.word, v, v + 1) == v {
                return;
            }
        });
        ctx.record_sync_event(RaceEventKind::LockAcquire { lock: self.word });
    }

    /// Releases shared access, waking a waiting writer when the last
    /// reader leaves.
    pub fn read_unlock(&self, ctx: &ThreadCtx<'_>) {
        ctx.record_sync_event(RaceEventKind::LockRelease { lock: self.word });
        ctx.sync_scope(|| {
            let mut left = 0u32;
            ctx.rmw_bytes(self.word, 4, |b| {
                let v = u32::from_le_bytes(b.try_into().expect("4 bytes"));
                debug_assert!(v != 0 && v != Self::WRITER, "read_unlock without read lock");
                left = v - 1;
                b.copy_from_slice(&left.to_le_bytes());
            });
            if left == 0 {
                let _ = ctx.futex_wake(self.word, 1);
            }
        });
    }

    /// Acquires exclusive (write) access.
    pub fn write_lock(&self, ctx: &ThreadCtx<'_>) {
        ctx.sync_scope(|| loop {
            if ctx.cas_u32(self.word, 0, Self::WRITER) == 0 {
                return;
            }
            let v = ctx.read_u32(self.word);
            if v != 0 {
                let _ = ctx.futex_wait(self.word, v);
            }
        });
        ctx.record_sync_event(RaceEventKind::LockAcquire { lock: self.word });
    }

    /// Releases exclusive access, waking all waiters.
    pub fn write_unlock(&self, ctx: &ThreadCtx<'_>) {
        ctx.record_sync_event(RaceEventKind::LockRelease { lock: self.word });
        ctx.sync_scope(|| {
            let old = ctx.swap_u32(self.word, 0);
            debug_assert_eq!(old, Self::WRITER, "write_unlock without write lock");
            let _ = ctx.futex_wake(self.word, u32::MAX);
        });
    }

    /// Runs `f` under shared access.
    pub fn with_read<R>(&self, ctx: &ThreadCtx<'_>, f: impl FnOnce() -> R) -> R {
        self.read_lock(ctx);
        let r = f();
        self.read_unlock(ctx);
        r
    }

    /// Runs `f` under exclusive access.
    pub fn with_write<R>(&self, ctx: &ThreadCtx<'_>, f: impl FnOnce() -> R) -> R {
        self.write_lock(ctx);
        let r = f();
        self.write_unlock(ctx);
        r
    }
}

/// Constructors live on the process so primitives can be created both in
/// setup code and inside running threads.
pub(crate) fn new_mutex(proc_: &impl ProcessRef, tag: &str) -> DexMutex {
    let addr = proc_.shared_ref().alloc_raw(4, 4, Some(tag));
    DexMutex::from_raw(addr)
}

pub(crate) fn new_barrier(proc_: &impl ProcessRef, parties: u32, tag: &str) -> DexBarrier {
    let shared = proc_.shared_ref();
    let count = shared.alloc_raw(4, 4, Some(&format!("{tag}.count")));
    let generation = shared.alloc_raw(4, 4, Some(&format!("{tag}.generation")));
    DexBarrier::from_raw(parties, count, generation)
}

pub(crate) fn new_condvar(proc_: &impl ProcessRef, tag: &str) -> DexCondvar {
    let seq = proc_.shared_ref().alloc_raw(4, 4, Some(tag));
    DexCondvar::from_raw(seq)
}

pub(crate) fn new_rwlock(proc_: &impl ProcessRef, tag: &str) -> DexRwLock {
    let word = proc_.shared_ref().alloc_raw(4, 4, Some(tag));
    DexRwLock::from_raw(word)
}
