//! # dex-core — the DEX distributed-execution environment
//!
//! A reproduction of *“DEX: Scaling Applications Beyond Machine
//! Boundaries”* (ICDCS 2020): an operating-system-level mechanism that
//! lets the threads of an ordinary process relocate themselves across a
//! rack-scale cluster while transparently sharing a sequentially
//! consistent, page-granularity view of memory.
//!
//! The pieces, mapping one-to-one onto the paper's design:
//!
//! * **Thread migration** (§III-A) — [`ThreadCtx::migrate`] /
//!   [`ThreadCtx::migrate_back`], with per-process *remote workers* on
//!   first contact and paired *original threads* servicing
//!   [delegated work](ThreadCtx::futex_wait) at the origin.
//! * **Memory consistency protocol** (§III-B) — the origin-side
//!   [`Directory`] implements multiple-reader/single-writer
//!   read-replicate/write-invalidate ownership with retry on conflicting
//!   transactions.
//! * **Concurrent fault handling** (§III-C) — per-node leader–follower
//!   fault coalescing inside the [`ThreadCtx`] fault path.
//! * **On-demand VMA synchronization** (§III-D) — lazy pulls on miss,
//!   eager broadcast of `munmap`/`mprotect` downgrades.
//! * **Messaging** (§III-E) — the `dex-net` simulated InfiniBand layer.
//!
//! Applications use [`Cluster::run`] to stand up a simulated rack, then
//! allocate distributed memory ([`DsmVec`], [`DsmCell`]), create futex-
//! based synchronization ([`DexMutex`], [`DexBarrier`], [`DexCondvar`]),
//! and spawn threads that migrate with one call — the paper's “one line
//! per migration” conversion experience.
//!
//! # Examples
//!
//! ```
//! use dex_core::{Cluster, ClusterConfig};
//!
//! let cluster = Cluster::new(ClusterConfig::new(2));
//! let report = cluster.run(|proc_| {
//!     let data = proc_.alloc_vec::<u64>(1_000, "data");
//!     let done = proc_.alloc_cell_tagged::<u32>(0, "done_flag");
//!     proc_.spawn(move |ctx| {
//!         ctx.migrate(1).expect("node exists");     // forward migration
//!         for i in 0..data.len() {
//!             data.set(ctx, i, i as u64 * 2);       // remote writes
//!         }
//!         done.set(ctx, 1);
//!         ctx.migrate_back().expect("return home"); // backward migration
//!     });
//! });
//! assert_eq!(report.stats.forward_migrations, 1);
//! assert_eq!(report.stats.backward_migrations, 1);
//! assert!(report.stats.write_faults > 0);
//! ```

#![warn(missing_docs)]

mod cluster;
mod cost;
mod directory;
mod dispatch;
mod handle;
mod msg;
mod mutation;
mod process;
mod race;
mod span;
mod sync;
mod telemetry;
mod thread;
mod trace;

pub use cluster::{Cluster, ClusterConfig, ClusterHandle, DexProcess, DexStats, RunReport};
pub use cost::{CostModel, COST_COMPONENTS};
pub use directory::model;
pub use directory::{DirAction, DirStats, Directory, NodeSet, Requester};
pub use handle::{DsmCell, DsmMatrix, DsmScalar, DsmVec, ProcessRef};
pub use msg::{DelegatedOp, DexMsg, MigrationPhases, VmaOp};
pub use mutation::{ProtocolMutation, ALL_MUTATIONS};
pub use process::{MigrationSample, ObjectSpan, ProcessShared, RunStats};
pub use race::{RaceEvent, RaceEventKind, RaceTrace};
pub use span::{Span, SpanBuffer, SpanId, SpanKind};
pub use sync::{DexBarrier, DexCondvar, DexMutex, DexRwLock};
pub use telemetry::{HealthEvent, HealthEventKind, MonitorConfig, TelemetryConfig};
pub use thread::{DexThread, MigrateError, ThreadCtx, FUTEX_EAGAIN};
pub use trace::{FaultEvent, FaultKind, TraceBuffer};

// Re-export the identifiers applications touch constantly.
pub use dex_net::NodeId;
pub use dex_os::{Access, Pid, Prot, Tid, VirtAddr, Vpn, PAGE_SIZE};
