//! Synchronization/access event recording for dynamic race detection.
//!
//! When a cluster runs with [`ClusterConfig::with_race_detection`]
//! (`crate::ClusterConfig::with_race_detection`), every application-level
//! memory access and every synchronization operation appends one
//! [`RaceEvent`] to a shared [`RaceTrace`]. The `dex-check races` pass
//! consumes the recorded stream offline: it rebuilds the happens-before
//! relation with vector clocks (lock release → acquire, futex wake →
//! wait-return, barrier rounds, thread spawn) and flags conflicting
//! unordered accesses, plus lock-order-graph cycles for deadlock
//! potential.
//!
//! Recording discipline:
//!
//! * accesses performed *inside* the futex-based synchronization
//!   primitives (`DexMutex`, `DexBarrier`, …) are suppressed — the
//!   primitives instead emit semantic events (`LockAcquire`,
//!   `BarrierLeave`, …), so their internal word traffic is never
//!   mistaken for an application race;
//! * application atomics (`rmw_bytes`, `cas_u32`, …) record
//!   `atomic: true`; two atomic accesses never conflict;
//! * the deterministic simulator appends events in execution order, so
//!   the vector-clock pass can process the vector front to back.

use std::sync::Arc;

use parking_lot::Mutex;

use dex_net::NodeId;
use dex_os::{Tid, VirtAddr};
use dex_sim::SimTime;

/// What a [`RaceEvent`] records.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RaceEventKind {
    /// An application memory access.
    Access {
        /// First byte accessed.
        addr: VirtAddr,
        /// Length in bytes.
        len: u32,
        /// Store (or read-modify-write) rather than load.
        is_write: bool,
        /// Performed with cluster-wide atomicity (`rmw_bytes` family).
        atomic: bool,
        /// The value observed (load) or deposited (store): the first
        /// `min(len, 8)` bytes, little-endian. The sequential-consistency
        /// oracle (`dex-check explore`) uses it to infer reads-from edges.
        value: u64,
    },
    /// A lock (mutex or rwlock) was acquired.
    LockAcquire {
        /// The futex word identifying the lock.
        lock: VirtAddr,
    },
    /// A lock was released.
    LockRelease {
        /// The futex word identifying the lock.
        lock: VirtAddr,
    },
    /// `FUTEX_WAKE` was issued (application-level or condvar notify).
    FutexWake {
        /// The futex word.
        addr: VirtAddr,
    },
    /// A `FUTEX_WAIT` returned after an actual wakeup.
    FutexWaitReturn {
        /// The futex word.
        addr: VirtAddr,
    },
    /// A thread arrived at a barrier round.
    BarrierEnter {
        /// The barrier's generation word.
        barrier: VirtAddr,
        /// The round the thread arrived in.
        generation: u32,
    },
    /// A thread left a barrier round (all parties had arrived).
    BarrierLeave {
        /// The barrier's generation word.
        barrier: VirtAddr,
        /// The round the thread arrived in.
        generation: u32,
    },
    /// The recording thread spawned a sibling thread.
    Spawn {
        /// The new thread's id.
        child: Tid,
    },
}

/// One recorded synchronization or access event.
#[derive(Clone, Debug)]
pub struct RaceEvent {
    /// Virtual time of the event.
    pub time: SimTime,
    /// Node the thread was executing on.
    pub node: NodeId,
    /// The acting thread.
    pub task: Tid,
    /// The thread's current code-site annotation.
    pub site: &'static str,
    /// The payload.
    pub kind: RaceEventKind,
}

/// A shared, append-only buffer of [`RaceEvent`]s (cloning shares the
/// buffer, mirroring [`TraceBuffer`](crate::TraceBuffer)).
#[derive(Clone)]
pub struct RaceTrace {
    enabled: bool,
    events: Arc<Mutex<Vec<RaceEvent>>>,
}

impl RaceTrace {
    /// A trace that records events.
    pub fn enabled() -> Self {
        RaceTrace {
            enabled: true,
            events: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// A trace that drops everything (the default).
    pub fn disabled() -> Self {
        RaceTrace {
            enabled: false,
            events: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Appends an event (no-op when disabled).
    pub fn record(&self, event: RaceEvent) {
        if self.enabled {
            self.events.lock().push(event);
        }
    }

    /// A copy of all recorded events in execution order.
    pub fn snapshot(&self) -> Vec<RaceEvent> {
        self.events.lock().clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Returns `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }
}

impl std::fmt::Debug for RaceTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RaceTrace")
            .field("enabled", &self.enabled)
            .field("events", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_drops_events() {
        let t = RaceTrace::disabled();
        t.record(RaceEvent {
            time: SimTime::ZERO,
            node: NodeId(0),
            task: Tid(0),
            site: "t",
            kind: RaceEventKind::Spawn { child: Tid(1) },
        });
        assert!(t.is_empty());
    }

    #[test]
    fn enabled_trace_shares_across_clones() {
        let t = RaceTrace::enabled();
        let t2 = t.clone();
        t2.record(RaceEvent {
            time: SimTime::ZERO,
            node: NodeId(1),
            task: Tid(2),
            site: "s",
            kind: RaceEventKind::LockAcquire {
                lock: VirtAddr::new(0x40),
            },
        });
        assert_eq!(t.len(), 1);
        assert!(matches!(
            t.snapshot()[0].kind,
            RaceEventKind::LockAcquire { .. }
        ));
    }
}
