//! The origin-side ownership directory (§III-B).
//!
//! DEX tracks the location of up-to-date pages by maintaining per-page,
//! per-node ownership at the origin, indexed by a radix tree keyed on the
//! virtual page number. The model is multiple-reader / single-writer with
//! read-replicate / write-invalidate transitions:
//!
//! * initially the origin exclusively owns every page;
//! * a read request adds the requester to the owner set (replication),
//!   flushing the current exclusive writer first if there is one;
//! * a write request revokes every other owner and grants exclusivity,
//!   skipping the data transfer when the requester's copy is already up to
//!   date;
//! * a request against a page with an in-flight transaction is told to
//!   retry (the slow mode of the paper's bimodal fault cost).
//!
//! This module is *pure protocol logic*: methods consume a request and
//! return the [`DirAction`]s the caller must perform (send messages,
//! change the origin's own PTE, install staged data). That keeps the state
//! machine unit-testable without the simulator, and the invariants
//! machine-checkable (see the property tests).

pub mod model;

use dex_net::NodeId;
use dex_os::{Access, RadixTree, Vpn};

/// A compact set of node ids (the cluster is rack-scale: ≤ 64 nodes).
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct NodeSet(u64);

impl NodeSet {
    /// The empty set.
    pub const EMPTY: NodeSet = NodeSet(0);

    /// A set containing only `node`.
    pub fn single(node: NodeId) -> Self {
        let mut s = NodeSet::EMPTY;
        s.insert(node);
        s
    }

    /// Adds `node`.
    pub fn insert(&mut self, node: NodeId) {
        assert!(node.0 < 64, "NodeSet supports up to 64 nodes");
        self.0 |= 1 << node.0;
    }

    /// Removes `node`. A no-op for out-of-range ids (>= 64): clamping the
    /// shift would silently clear node 63's bit instead.
    pub fn remove(&mut self, node: NodeId) {
        debug_assert!(node.0 < 64, "NodeSet supports up to 64 nodes");
        if node.0 < 64 {
            self.0 &= !(1 << node.0);
        }
    }

    /// Membership test.
    pub fn contains(self, node: NodeId) -> bool {
        node.0 < 64 && self.0 & (1 << node.0) != 0
    }

    /// Number of members.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Returns `true` when empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates members in ascending node order.
    pub fn iter(self) -> impl Iterator<Item = NodeId> {
        (0..64u16)
            .filter(move |i| self.0 & (1 << i) != 0)
            .map(NodeId)
    }
}

impl FromIterator<NodeId> for NodeSet {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let mut s = NodeSet::EMPTY;
        for n in iter {
            s.insert(n);
        }
        s
    }
}

impl std::fmt::Debug for NodeSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Who is waiting for a page-request to complete.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Requester {
    /// A remote node's thread; the grant travels over the fabric.
    Remote {
        /// The requesting node.
        node: NodeId,
        /// Correlation id of its request.
        req_id: u64,
    },
    /// A thread at the origin itself; the grant is delivered locally.
    Local {
        /// Correlation id of the origin-local waiter.
        req_id: u64,
    },
}

impl Requester {
    /// The node the requester runs on.
    pub fn node(self, origin: NodeId) -> NodeId {
        match self {
            Requester::Remote { node, .. } => node,
            Requester::Local { .. } => origin,
        }
    }
}

/// An action the caller must carry out after a directory transition.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DirAction {
    /// Grant the request: set the requester's PTE (and ship origin frame
    /// contents when `with_data`).
    Grant {
        /// Who to grant.
        to: Requester,
        /// The access granted.
        access: Access,
        /// Whether page contents accompany the grant.
        with_data: bool,
    },
    /// Tell the requester to back off and retry.
    Retry {
        /// Who to tell.
        to: Requester,
    },
    /// Ask `to` (the current exclusive writer) to downgrade to shared and
    /// return the page contents.
    SendFlush {
        /// The writer node.
        to: NodeId,
    },
    /// Revoke `to`'s copy; `needs_data` when it holds the only up-to-date
    /// one.
    SendInvalidate {
        /// The owner being revoked.
        to: NodeId,
        /// Whether the revoked node must ship contents back.
        needs_data: bool,
    },
    /// The origin loses its own mapping (clear PTE; keep the stale frame).
    /// In sharded mode this applies to the *home* node's own mapping —
    /// the node the directory shard runs on.
    ClearOriginPte,
    /// The origin's exclusive mapping becomes shared (writable bit off).
    /// In sharded mode: the home node's own mapping.
    DowngradeOriginPte,
    /// The origin (re)gains a shared mapping of the page.
    SetOriginPteRo,
    /// Staged page contents (from a flush or a data-carrying invalidation
    /// ack) must be installed into the origin's frame.
    InstallOriginData,
    /// (Sharded mode) Ask `to`, the page's current owner, to service the
    /// request directly: adjust its own PTE, send the grant (with data)
    /// straight to the requester, and acknowledge the home
    /// asynchronously — the two-hop critical path.
    Forward {
        /// The current owner the request is forwarded to.
        to: NodeId,
        /// The requester the owner must grant directly.
        requester: Requester,
        /// The access requested.
        access: Access,
    },
    /// (Sharded mode) Revoke every doomed replica that `to` holds for the
    /// faulting transaction with one message and one aggregated ack.
    SendInvalidateBatch {
        /// The node whose replicas are revoked.
        to: NodeId,
        /// `(page, needs_data)` per doomed replica at that node.
        entries: Vec<(Vpn, bool)>,
    },
    /// (Sharded mode) The home node itself holds a doomed replica: clear
    /// the home's own PTE and evict the frame synchronously; when
    /// `needs_data`, stage the frame contents for the eventual grant
    /// first.
    DropHomeCopy {
        /// Whether the home's copy is the elected data source.
        needs_data: bool,
    },
}

/// The state the directory keeps per page.
#[derive(Clone, Debug)]
struct PageInfo {
    /// Nodes holding a valid copy.
    owners: NodeSet,
    /// The exclusive writer, if any (then `owners == {writer}`).
    writer: Option<NodeId>,
    /// In-flight revocation/flush transaction.
    txn: Option<Txn>,
}

#[derive(Clone, Debug)]
struct Txn {
    access: Access,
    requester: Requester,
    pending: NodeSet,
    /// Requester already held a valid copy (skip the data transfer).
    requester_had_copy: bool,
}

/// Statistics the directory maintains about its own activity.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct DirStats {
    /// Requests answered without any remote revocation.
    pub inline_grants: u64,
    /// Requests that opened a flush/invalidate transaction.
    pub transactions: u64,
    /// Requests refused with a retry.
    pub retries: u64,
    /// Invalidation messages requested.
    pub invalidations: u64,
    /// Flush messages requested.
    pub flushes: u64,
    /// Grants that skipped the data transfer.
    pub data_skips: u64,
    /// (Sharded mode) Requests forwarded to the current owner.
    pub forwards: u64,
    /// (Sharded mode) Batched invalidation messages requested.
    pub invalidate_batches: u64,
}

/// The per-process ownership directory living at the origin.
///
/// # Examples
///
/// ```
/// use dex_core::{DirAction, Directory, Requester};
/// use dex_net::NodeId;
/// use dex_os::{Access, Vpn};
///
/// let origin = NodeId(0);
/// let mut dir = Directory::new(origin);
/// // Node 1 read-faults on a fresh page: the origin owns it, so the
/// // grant is inline and carries data.
/// let actions = dir.request(
///     Vpn::new(5),
///     Access::Read,
///     Requester::Remote { node: NodeId(1), req_id: 9 },
/// );
/// assert!(actions.contains(&DirAction::Grant {
///     to: Requester::Remote { node: NodeId(1), req_id: 9 },
///     access: Access::Read,
///     with_data: true,
/// }));
/// ```
#[derive(Clone, Debug)]
pub struct Directory {
    origin: NodeId,
    /// The node this directory (shard) runs on. Equal to `origin` in the
    /// classic single-origin configuration.
    home: NodeId,
    /// Sharded mode: requests are serviced with owner forwarding and
    /// batched invalidations instead of origin-mediated transfers.
    forwarding: bool,
    pages: RadixTree<PageInfo>,
    stats: DirStats,
    /// Nodes declared fail-stopped by [`Directory::on_node_crash`]; late
    /// messages from them are ignored and they never re-enter owner sets.
    dead: NodeSet,
}

impl Directory {
    /// Creates the directory; every page starts exclusively owned by the
    /// origin.
    pub fn new(origin: NodeId) -> Self {
        Directory {
            origin,
            home: origin,
            forwarding: false,
            pages: RadixTree::new(),
            stats: DirStats::default(),
            dead: NodeSet::EMPTY,
        }
    }

    /// Creates one shard of a distributed directory, living at `home`.
    /// Untouched pages still start exclusively owned by the origin (their
    /// frames live there), but the home reaches the origin's copy through
    /// messages like any other owner's: requests are forwarded to the
    /// current owner, which grants straight to the requester.
    pub fn forwarded(home: NodeId, origin: NodeId) -> Self {
        Directory {
            origin,
            home,
            forwarding: true,
            pages: RadixTree::new(),
            stats: DirStats::default(),
            dead: NodeSet::EMPTY,
        }
    }

    /// The node this directory (shard) runs on.
    pub fn home(&self) -> NodeId {
        self.home
    }

    /// Whether this directory services requests with owner forwarding.
    pub fn is_forwarding(&self) -> bool {
        self.forwarding
    }

    /// Nodes declared dead so far.
    pub fn dead_nodes(&self) -> NodeSet {
        self.dead
    }

    /// Activity statistics.
    pub fn stats(&self) -> DirStats {
        self.stats
    }

    /// Number of pages with directory state (touched by the protocol).
    pub fn tracked_pages(&self) -> usize {
        self.pages.len()
    }

    /// The node holding `vpn` exclusively, if any (the origin for pages
    /// the protocol never touched). Used by computation-placement
    /// policies ("relocating the computation near data", §VII).
    pub fn current_writer(&self, vpn: Vpn) -> Option<NodeId> {
        match self.pages.get(vpn.index()) {
            Some(info) => info.writer,
            None => Some(self.origin),
        }
    }

    /// The nodes holding a valid copy of `vpn`.
    pub fn owners(&self, vpn: Vpn) -> NodeSet {
        match self.pages.get(vpn.index()) {
            Some(info) => info.owners,
            None => NodeSet::single(self.origin),
        }
    }

    fn info(&mut self, vpn: Vpn) -> &mut PageInfo {
        let origin = self.origin;
        self.pages.get_or_insert_with(vpn.index(), || PageInfo {
            owners: NodeSet::single(origin),
            writer: Some(origin),
            txn: None,
        })
    }

    /// Handles a page request, returning the actions to perform.
    ///
    /// # Panics
    ///
    /// Panics if a local requester claims a remote node (caller bug).
    pub fn request(&mut self, vpn: Vpn, access: Access, requester: Requester) -> Vec<DirAction> {
        if self.forwarding {
            return self.request_forwarded(vpn, access, requester);
        }
        let origin = self.origin;
        let node = requester.node(origin);
        if self.dead.contains(node) {
            // A request sent before the node fail-stopped but delivered
            // after: drop it. Any grant would leak ownership to a dead
            // node, and the reply could not be delivered anyway.
            return Vec::new();
        }
        let info = self.info(vpn);

        if info.txn.is_some() {
            self.stats.retries += 1;
            return vec![DirAction::Retry { to: requester }];
        }

        let mut actions = Vec::new();
        match access {
            Access::Read => {
                match info.writer {
                    Some(w) if w == node => {
                        // Degenerate: requester is already the writer.
                        self.stats.inline_grants += 1;
                        actions.push(DirAction::Grant {
                            to: requester,
                            access,
                            with_data: false,
                        });
                    }
                    Some(w) if w == origin => {
                        // The origin holds the page exclusively: downgrade
                        // our own PTE and replicate to the reader.
                        info.writer = None;
                        info.owners.insert(node);
                        self.stats.inline_grants += 1;
                        actions.push(DirAction::DowngradeOriginPte);
                        actions.push(DirAction::Grant {
                            to: requester,
                            access,
                            with_data: !matches!(requester, Requester::Local { .. }),
                        });
                    }
                    Some(w) => {
                        // A remote node writes the page: flush it first.
                        info.txn = Some(Txn {
                            access,
                            requester,
                            pending: NodeSet::single(w),
                            requester_had_copy: false,
                        });
                        self.stats.transactions += 1;
                        self.stats.flushes += 1;
                        actions.push(DirAction::SendFlush { to: w });
                    }
                    None => {
                        // Shared readers; the origin always retains a copy
                        // in this state (protocol invariant).
                        debug_assert!(info.owners.contains(origin));
                        info.owners.insert(node);
                        self.stats.inline_grants += 1;
                        actions.push(DirAction::Grant {
                            to: requester,
                            access,
                            with_data: !matches!(requester, Requester::Local { .. }),
                        });
                    }
                }
            }
            Access::Write => {
                if info.writer == Some(node) {
                    self.stats.inline_grants += 1;
                    return vec![DirAction::Grant {
                        to: requester,
                        access,
                        with_data: false,
                    }];
                }
                let had_copy = info.owners.contains(node);
                let mut pending = NodeSet::EMPTY;
                let mut invalidations_sent = 0u64;
                for owner in info.owners.iter() {
                    if owner == node {
                        continue;
                    }
                    if owner == origin {
                        // Revoke our own mapping synchronously.
                        actions.push(DirAction::ClearOriginPte);
                        info.owners.remove(origin);
                    } else {
                        let needs_data = info.writer == Some(owner);
                        actions.push(DirAction::SendInvalidate {
                            to: owner,
                            needs_data,
                        });
                        pending.insert(owner);
                        invalidations_sent += 1;
                    }
                }
                let inline = pending.is_empty();
                if inline {
                    info.owners = NodeSet::single(node);
                    info.writer = Some(node);
                    let with_data = !had_copy && !matches!(requester, Requester::Local { .. });
                    actions.push(DirAction::Grant {
                        to: requester,
                        access,
                        with_data,
                    });
                } else {
                    info.txn = Some(Txn {
                        access,
                        requester,
                        pending,
                        requester_had_copy: had_copy,
                    });
                }
                self.stats.invalidations += invalidations_sent;
                if inline {
                    self.stats.inline_grants += 1;
                    if had_copy {
                        self.stats.data_skips += 1;
                    }
                } else {
                    self.stats.transactions += 1;
                }
            }
        }
        actions
    }

    /// The sharded-mode request path: the home owns the metadata but not
    /// (necessarily) the data, so exclusive pages are serviced by
    /// forwarding to the current owner (which grants straight to the
    /// requester — two hops on the critical path) and shared pages are
    /// written by revoking every other owner with one batched
    /// invalidation per destination node.
    fn request_forwarded(
        &mut self,
        vpn: Vpn,
        access: Access,
        requester: Requester,
    ) -> Vec<DirAction> {
        let home = self.home;
        let origin = self.origin;
        let node = requester.node(home);
        let local = matches!(requester, Requester::Local { .. });
        if self.dead.contains(node) {
            return Vec::new();
        }
        let info = self.info(vpn);

        if info.txn.is_some() {
            self.stats.retries += 1;
            return vec![DirAction::Retry { to: requester }];
        }

        let mut actions = Vec::new();
        match access {
            Access::Read => match info.writer {
                Some(w) if w == node => {
                    self.stats.inline_grants += 1;
                    actions.push(DirAction::Grant {
                        to: requester,
                        access,
                        with_data: false,
                    });
                }
                Some(w) if w == home => {
                    // The home itself holds the page exclusively:
                    // downgrade our own PTE and grant from the local frame.
                    info.writer = None;
                    info.owners.insert(node);
                    self.stats.inline_grants += 1;
                    actions.push(DirAction::DowngradeOriginPte);
                    actions.push(DirAction::Grant {
                        to: requester,
                        access,
                        with_data: !local,
                    });
                }
                Some(w) => {
                    // Exclusive elsewhere: forward. The owner downgrades
                    // itself, keeps a shared copy, and grants (with data)
                    // straight to the requester.
                    info.txn = Some(Txn {
                        access,
                        requester,
                        pending: NodeSet::single(w),
                        requester_had_copy: false,
                    });
                    self.stats.transactions += 1;
                    self.stats.forwards += 1;
                    actions.push(DirAction::Forward {
                        to: w,
                        requester,
                        access,
                    });
                }
                None => {
                    if info.owners.contains(node) {
                        // Already a reader (a stale-PTE re-request):
                        // inline, nothing to transfer.
                        self.stats.inline_grants += 1;
                        actions.push(DirAction::Grant {
                            to: requester,
                            access,
                            with_data: false,
                        });
                    } else if info.owners.contains(home) {
                        // The home holds a replica: serve from the local
                        // frame, two hops total.
                        info.owners.insert(node);
                        self.stats.inline_grants += 1;
                        actions.push(DirAction::Grant {
                            to: requester,
                            access,
                            with_data: !local,
                        });
                    } else {
                        // Forward to a deterministic owner; prefer the
                        // origin so its frame stays the fallback copy.
                        let target = if info.owners.contains(origin) {
                            origin
                        } else {
                            info.owners
                                .iter()
                                .next()
                                .expect("shared page with no owners")
                        };
                        info.txn = Some(Txn {
                            access,
                            requester,
                            pending: NodeSet::single(target),
                            requester_had_copy: false,
                        });
                        self.stats.transactions += 1;
                        self.stats.forwards += 1;
                        actions.push(DirAction::Forward {
                            to: target,
                            requester,
                            access,
                        });
                    }
                }
            },
            Access::Write => {
                if info.writer == Some(node) {
                    self.stats.inline_grants += 1;
                    return vec![DirAction::Grant {
                        to: requester,
                        access,
                        with_data: false,
                    }];
                }
                if let Some(w) = info.writer {
                    if w == home {
                        // The home is the exclusive writer: drop our own
                        // copy, staging its contents for the grant.
                        info.owners = NodeSet::single(node);
                        info.writer = Some(node);
                        self.stats.inline_grants += 1;
                        actions.push(DirAction::DropHomeCopy { needs_data: !local });
                        actions.push(DirAction::Grant {
                            to: requester,
                            access,
                            with_data: !local,
                        });
                    } else {
                        // Exclusive elsewhere: forward; the owner clears
                        // its own copy and grants exclusivity (with data)
                        // straight to the requester.
                        info.txn = Some(Txn {
                            access,
                            requester,
                            pending: NodeSet::single(w),
                            requester_had_copy: false,
                        });
                        self.stats.transactions += 1;
                        self.stats.forwards += 1;
                        actions.push(DirAction::Forward {
                            to: w,
                            requester,
                            access,
                        });
                    }
                } else {
                    // Shared: revoke every other owner, one batched
                    // invalidation per destination node. When the
                    // requester has no copy, elect one doomed replica to
                    // ship contents back: the home's own (staged locally)
                    // when it holds one, else the smallest surviving
                    // owner (the origin sorts first when present).
                    let had_copy = info.owners.contains(node);
                    let need_from = if had_copy {
                        None
                    } else if info.owners.contains(home) {
                        Some(home)
                    } else {
                        info.owners.iter().find(|o| *o != node)
                    };
                    let mut pending = NodeSet::EMPTY;
                    let mut batches_sent = 0u64;
                    for owner in info.owners.iter() {
                        if owner == node {
                            continue;
                        }
                        if owner == home {
                            actions.push(DirAction::DropHomeCopy {
                                needs_data: need_from == Some(home),
                            });
                            info.owners.remove(home);
                        } else {
                            actions.push(DirAction::SendInvalidateBatch {
                                to: owner,
                                entries: vec![(vpn, need_from == Some(owner))],
                            });
                            pending.insert(owner);
                            batches_sent += 1;
                        }
                    }
                    let inline = pending.is_empty();
                    if inline {
                        info.owners = NodeSet::single(node);
                        info.writer = Some(node);
                        actions.push(DirAction::Grant {
                            to: requester,
                            access,
                            with_data: !had_copy && !local,
                        });
                    } else {
                        info.txn = Some(Txn {
                            access,
                            requester,
                            pending,
                            requester_had_copy: had_copy,
                        });
                    }
                    self.stats.invalidations += batches_sent;
                    self.stats.invalidate_batches += batches_sent;
                    if inline {
                        self.stats.inline_grants += 1;
                        if had_copy {
                            self.stats.data_skips += 1;
                        }
                    } else {
                        self.stats.transactions += 1;
                    }
                }
            }
        }
        actions
    }

    /// (Sharded mode) Handles the owner's asynchronous acknowledgment of
    /// a forwarded request. The grant already went straight to the
    /// requester, so this only commits the ownership change and closes
    /// the transaction.
    ///
    /// # Panics
    ///
    /// Panics if the directory is not in sharded mode, or if no forwarded
    /// transaction is in flight for `vpn`.
    pub fn owner_ack(&mut self, vpn: Vpn, from: NodeId) -> Vec<DirAction> {
        assert!(self.forwarding, "owner acks only exist in sharded mode");
        if self.dead.contains(from) {
            // Late ack from a fail-stopped owner; `on_node_crash` already
            // force-completed the transaction.
            return Vec::new();
        }
        let home = self.home;
        let origin = self.origin;
        let info = self
            .pages
            .get_mut(vpn.index())
            .expect("owner ack for untracked page");
        let txn = info.txn.take().expect("owner ack without transaction");
        assert!(txn.pending.contains(from), "owner ack from unexpected node");
        let rnode = txn.requester.node(home);
        if self.dead.contains(rnode) {
            // The requester fail-stopped after the owner serviced it; the
            // origin's frame becomes the fallback surviving copy.
            info.owners = NodeSet::single(origin);
            info.writer = None;
            return Vec::new();
        }
        match txn.access {
            Access::Read => {
                // The owner kept a shared copy (downgrading itself if it
                // was the exclusive writer); the requester joined the
                // reader set.
                if info.writer == Some(from) {
                    info.writer = None;
                }
                info.owners.insert(from);
                info.owners.insert(rnode);
            }
            Access::Write => {
                info.owners = NodeSet::single(rnode);
                info.writer = Some(rnode);
            }
        }
        Vec::new()
    }

    /// Handles the writer's flush acknowledgment for `vpn`.
    ///
    /// # Panics
    ///
    /// Panics if no flush transaction is in flight for `vpn` (protocol
    /// violation).
    pub fn flush_ack(&mut self, vpn: Vpn, from: NodeId) -> Vec<DirAction> {
        if self.dead.contains(from) {
            // A late flush ack from a fail-stopped node: the transaction
            // was already force-completed by `on_node_crash`.
            return Vec::new();
        }
        let origin = self.origin;
        let info = self
            .pages
            .get_mut(vpn.index())
            .expect("flush ack for untracked page");
        let txn = info.txn.take().expect("flush ack without transaction");
        assert_eq!(txn.access, Access::Read, "flush acks resolve read requests");
        assert!(txn.pending.contains(from), "flush ack from unexpected node");

        // The writer downgraded to shared; the origin installs the data
        // and keeps a read replica; the requester joins the reader set.
        info.writer = None;
        info.owners.insert(origin);
        let mut actions = vec![DirAction::InstallOriginData, DirAction::SetOriginPteRo];
        let rnode = txn.requester.node(origin);
        if !self.dead.contains(rnode) {
            info.owners.insert(rnode);
            actions.push(DirAction::Grant {
                to: txn.requester,
                access: Access::Read,
                with_data: !matches!(txn.requester, Requester::Local { .. }),
            });
        }
        actions
    }

    /// Handles an invalidation acknowledgment. Returns the completion
    /// actions once the last pending ack arrives (empty before that).
    ///
    /// # Panics
    ///
    /// Panics if no invalidation transaction is in flight for `vpn`.
    pub fn invalidate_ack(&mut self, vpn: Vpn, from: NodeId, carried_data: bool) -> Vec<DirAction> {
        if self.dead.contains(from) {
            // Late ack from a fail-stopped node; `on_node_crash` already
            // stopped waiting for it.
            return Vec::new();
        }
        let origin = self.origin;
        let home = self.home;
        let forwarding = self.forwarding;
        let info = self
            .pages
            .get_mut(vpn.index())
            .expect("invalidate ack for untracked page");
        let txn = info
            .txn
            .as_mut()
            .expect("invalidate ack without transaction");
        assert!(
            txn.pending.contains(from),
            "invalidate ack from unexpected node"
        );
        txn.pending.remove(from);

        let mut actions = Vec::new();
        if carried_data && !forwarding {
            // The revoked writer shipped the only up-to-date copy; stage
            // it in the origin frame so the grant can source from it.
            // (In sharded mode the home stages carried data out of band —
            // its own frame is not part of the transfer.)
            actions.push(DirAction::InstallOriginData);
        }
        if !txn.pending.is_empty() {
            return actions;
        }
        let txn = info.txn.take().expect("still present");
        let node = txn.requester.node(home);
        if self.dead.contains(node) {
            // The requester fail-stopped while its invalidations were in
            // flight: ownership reverts to the origin frame (which holds
            // the freshest surviving copy) instead of a dead node.
            info.owners = NodeSet::single(origin);
            info.writer = None;
            if !forwarding {
                actions.push(DirAction::SetOriginPteRo);
            }
            return actions;
        }
        info.owners = NodeSet::single(node);
        info.writer = Some(node);
        let with_data =
            !txn.requester_had_copy && !matches!(txn.requester, Requester::Local { .. });
        if txn.requester_had_copy {
            self.stats.data_skips += 1;
        }
        actions.push(DirAction::Grant {
            to: txn.requester,
            access: Access::Write,
            with_data,
        });
        actions
    }

    /// Reclaims directory state after node `dead` fail-stops.
    ///
    /// Fault-injection recovery (fail-stop model):
    ///
    /// * `dead` leaves every owner set; pages it held exclusively revert
    ///   to the origin's frame. Writes that never flushed are lost —
    ///   exactly the data-loss semantics of a real machine failure.
    /// * In-flight transactions stop waiting for acks from `dead`; if
    ///   that was the last pending ack, the transaction completes now
    ///   (granting to the requester when it survives, reverting to the
    ///   origin when the requester itself is the dead node).
    /// * Transactions still awaiting acks from *surviving* nodes stay
    ///   open; [`Directory::flush_ack`] / [`Directory::invalidate_ack`]
    ///   complete them later and know not to grant to a dead requester.
    ///
    /// Returns, per affected page, the actions the caller must apply at
    /// the origin (PTE changes and grants to surviving requesters).
    ///
    /// # Panics
    ///
    /// Panics if `dead` is the origin: the directory (and every page's
    /// backing frame) lives there, so an origin crash is process death,
    /// not something to recover from.
    pub fn on_node_crash(&mut self, dead: NodeId) -> Vec<(Vpn, Vec<DirAction>)> {
        assert_ne!(
            dead, self.origin,
            "origin crash is process death, not recoverable"
        );
        self.dead.insert(dead);
        let origin = self.origin;
        let all_dead = self.dead;
        let keys: Vec<u64> = self.pages.iter().map(|(key, _)| key).collect();
        let mut out = Vec::new();
        for key in keys {
            let vpn = Vpn::new(key);
            let mut actions = Vec::new();
            let info = self.pages.get_mut(key).expect("page vanished");

            // 1. Stop waiting for acks the dead node will never send.
            if let Some(txn) = info.txn.as_mut() {
                txn.pending.remove(dead);
                if txn.pending.is_empty() {
                    let txn = info.txn.take().expect("still present");
                    let rnode = txn.requester.node(self.home);
                    if self.forwarding {
                        // The home holds no frame to grant from, so a
                        // surviving requester is told to retry against
                        // the post-crash state instead.
                        if !all_dead.contains(rnode) {
                            actions.push(DirAction::Retry { to: txn.requester });
                        }
                    } else {
                        match txn.access {
                            Access::Read => {
                                // The dead node was the writer being flushed;
                                // its dirty data is lost. The origin's (stale)
                                // frame becomes the authoritative copy.
                                info.writer = None;
                                info.owners.insert(origin);
                                actions.push(DirAction::SetOriginPteRo);
                                if !all_dead.contains(rnode) {
                                    info.owners.insert(rnode);
                                    actions.push(DirAction::Grant {
                                        to: txn.requester,
                                        access: Access::Read,
                                        with_data: !matches!(
                                            txn.requester,
                                            Requester::Local { .. }
                                        ),
                                    });
                                }
                            }
                            Access::Write => {
                                if all_dead.contains(rnode) {
                                    info.owners = NodeSet::single(origin);
                                    info.writer = None;
                                    actions.push(DirAction::SetOriginPteRo);
                                } else {
                                    info.owners = NodeSet::single(rnode);
                                    info.writer = Some(rnode);
                                    let with_data = !txn.requester_had_copy
                                        && !matches!(txn.requester, Requester::Local { .. });
                                    if txn.requester_had_copy {
                                        self.stats.data_skips += 1;
                                    }
                                    actions.push(DirAction::Grant {
                                        to: txn.requester,
                                        access: Access::Write,
                                        with_data,
                                    });
                                }
                            }
                        }
                    }
                }
            }

            // 2. The dead node no longer holds any copy.
            info.owners.remove(dead);
            if info.writer == Some(dead) {
                info.writer = None;
            }

            // 3. If nobody valid is left (the dead node held the page
            // exclusively), the origin reclaims it. In sharded mode the
            // origin only steps back in once *no* owner survives (shared
            // pages legally live without an origin copy there), and no
            // PTE action is emitted: the origin's frame is the fallback
            // and its mapping re-establishes on the next forward.
            if self.forwarding {
                if info.txn.is_none() && info.writer.is_none() && info.owners.is_empty() {
                    info.owners.insert(origin);
                }
            } else if info.txn.is_none() && info.writer.is_none() && !info.owners.contains(origin) {
                info.owners.insert(origin);
                actions.push(DirAction::SetOriginPteRo);
            }

            if !actions.is_empty() {
                out.push((vpn, actions));
            }
        }
        out
    }

    /// Drops directory state for unmapped pages, returning per-node
    /// invalidations the caller must broadcast (without data — the pages
    /// are dead).
    ///
    /// # Panics
    ///
    /// Panics if any of the pages has an in-flight transaction (callers
    /// must not unmap pages being actively negotiated).
    pub fn drop_pages(&mut self, pages: &[Vpn]) -> Vec<(NodeId, Vpn)> {
        let mut revokes = Vec::new();
        for &vpn in pages {
            if let Some(info) = self.pages.get(vpn.index()) {
                assert!(
                    info.txn.is_none(),
                    "unmapping page {vpn} with an in-flight transaction"
                );
                for owner in info.owners.iter() {
                    if owner != self.origin {
                        revokes.push((owner, vpn));
                    }
                }
                self.pages.remove(vpn.index());
            }
        }
        revokes
    }

    /// Validates the protocol invariants for every tracked page; used by
    /// tests. Returns a description of the first violation.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (key, info) in self.pages.iter() {
            for node in info.owners.iter() {
                if self.dead.contains(node) {
                    return Err(format!(
                        "page {key:#x}: dead node {node} still in owner set {:?}",
                        info.owners
                    ));
                }
            }
            match info.writer {
                Some(w) => {
                    if info.txn.is_none() && (info.owners.len() != 1 || !info.owners.contains(w)) {
                        return Err(format!(
                            "page {key:#x}: writer {w} but owners {:?}",
                            info.owners
                        ));
                    }
                }
                None => {
                    if info.txn.is_none() && self.forwarding && info.owners.is_empty() {
                        return Err(format!("page {key:#x}: shared state with no owners"));
                    }
                    if info.txn.is_none() && !self.forwarding && !info.owners.contains(self.origin)
                    {
                        // Classic mode only: sharded homes hand pages
                        // owner-to-owner without re-replicating to the
                        // origin.
                        return Err(format!(
                            "page {key:#x}: shared state without origin copy: {:?}",
                            info.owners
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const O: NodeId = NodeId(0);

    fn remote(node: u16, req: u64) -> Requester {
        Requester::Remote {
            node: NodeId(node),
            req_id: req,
        }
    }

    #[test]
    fn nodeset_remove_out_of_range_is_a_noop() {
        // Regression: `remove` used to clamp the shift (`node.0.min(63)`),
        // which silently cleared node 63's bit for any out-of-range id.
        let mut s = NodeSet::single(NodeId(63));
        s.insert(NodeId(7));
        if cfg!(debug_assertions) {
            // In debug builds the out-of-range remove is a programming error.
            let r = std::panic::catch_unwind(move || {
                let mut s2 = s;
                s2.remove(NodeId(64));
            });
            assert!(r.is_err(), "debug_assert should fire for node id 64");
        } else {
            s.remove(NodeId(64));
            s.remove(NodeId(200));
            assert!(s.contains(NodeId(63)), "node 63 must survive");
            assert_eq!(s.len(), 2);
        }
        // In-range removes still work.
        let mut t = NodeSet::single(NodeId(63));
        t.remove(NodeId(63));
        assert!(t.is_empty());
    }

    fn grant_of(actions: &[DirAction]) -> Option<(Requester, Access, bool)> {
        actions.iter().find_map(|a| match a {
            DirAction::Grant {
                to,
                access,
                with_data,
            } => Some((*to, *access, *with_data)),
            _ => None,
        })
    }

    #[test]
    fn first_read_from_remote_is_inline_with_data() {
        let mut dir = Directory::new(O);
        let actions = dir.request(Vpn::new(1), Access::Read, remote(1, 1));
        // Origin was exclusive writer: it downgrades itself and grants.
        assert!(actions.contains(&DirAction::DowngradeOriginPte));
        assert_eq!(grant_of(&actions), Some((remote(1, 1), Access::Read, true)));
        dir.check_invariants().unwrap();
    }

    #[test]
    fn concurrent_readers_replicate() {
        let mut dir = Directory::new(O);
        dir.request(Vpn::new(1), Access::Read, remote(1, 1));
        let actions = dir.request(Vpn::new(1), Access::Read, remote(2, 2));
        assert_eq!(grant_of(&actions), Some((remote(2, 2), Access::Read, true)));
        assert_eq!(
            actions.len(),
            1,
            "second reader needs no PTE change at origin"
        );
        dir.check_invariants().unwrap();
    }

    #[test]
    fn write_revokes_all_readers() {
        let mut dir = Directory::new(O);
        dir.request(Vpn::new(1), Access::Read, remote(1, 1));
        dir.request(Vpn::new(1), Access::Read, remote(2, 2));
        let actions = dir.request(Vpn::new(1), Access::Write, remote(3, 3));
        // Readers 1 and 2 and the origin itself all lose their copies.
        assert!(actions.contains(&DirAction::SendInvalidate {
            to: NodeId(1),
            needs_data: false
        }));
        assert!(actions.contains(&DirAction::SendInvalidate {
            to: NodeId(2),
            needs_data: false
        }));
        assert!(actions.contains(&DirAction::ClearOriginPte));
        assert!(grant_of(&actions).is_none(), "grant waits for acks");

        // Acks complete the transaction; data comes from the origin frame.
        assert_eq!(dir.invalidate_ack(Vpn::new(1), NodeId(1), false), vec![]);
        let done = dir.invalidate_ack(Vpn::new(1), NodeId(2), false);
        assert_eq!(grant_of(&done), Some((remote(3, 3), Access::Write, true)));
        dir.check_invariants().unwrap();
    }

    #[test]
    fn write_by_existing_reader_skips_data_transfer() {
        let mut dir = Directory::new(O);
        dir.request(Vpn::new(1), Access::Read, remote(1, 1));
        dir.request(Vpn::new(1), Access::Read, remote(2, 2));
        let actions = dir.request(Vpn::new(1), Access::Write, remote(1, 3));
        assert!(grant_of(&actions).is_none());
        let done = dir.invalidate_ack(Vpn::new(1), NodeId(2), false);
        // Node 1 already had the up-to-date copy: no data transfer.
        assert_eq!(grant_of(&done), Some((remote(1, 3), Access::Write, false)));
        assert_eq!(dir.stats().data_skips, 1);
        dir.check_invariants().unwrap();
    }

    #[test]
    fn read_of_remote_written_page_flushes() {
        let mut dir = Directory::new(O);
        // Node 1 takes the page exclusively.
        let a = dir.request(Vpn::new(1), Access::Write, remote(1, 1));
        assert!(a.contains(&DirAction::ClearOriginPte));
        assert_eq!(grant_of(&a), Some((remote(1, 1), Access::Write, true)));

        // Node 2 reads: writer must flush first.
        let b = dir.request(Vpn::new(1), Access::Read, remote(2, 2));
        assert_eq!(b, vec![DirAction::SendFlush { to: NodeId(1) }]);

        let done = dir.flush_ack(Vpn::new(1), NodeId(1));
        assert!(done.contains(&DirAction::InstallOriginData));
        assert!(done.contains(&DirAction::SetOriginPteRo));
        assert_eq!(grant_of(&done), Some((remote(2, 2), Access::Read, true)));
        dir.check_invariants().unwrap();
    }

    #[test]
    fn conflicting_request_during_transaction_retries() {
        let mut dir = Directory::new(O);
        dir.request(Vpn::new(1), Access::Write, remote(1, 1));
        dir.request(Vpn::new(1), Access::Read, remote(2, 2)); // opens flush txn
        let actions = dir.request(Vpn::new(1), Access::Write, remote(3, 3));
        assert_eq!(actions, vec![DirAction::Retry { to: remote(3, 3) }]);
        assert_eq!(dir.stats().retries, 1);
    }

    #[test]
    fn writer_to_writer_handoff_ships_data_via_origin() {
        let mut dir = Directory::new(O);
        dir.request(Vpn::new(1), Access::Write, remote(1, 1));
        let actions = dir.request(Vpn::new(1), Access::Write, remote(2, 2));
        // Node 1 is the writer and must return the contents.
        assert_eq!(
            actions,
            vec![DirAction::SendInvalidate {
                to: NodeId(1),
                needs_data: true
            }]
        );
        let done = dir.invalidate_ack(Vpn::new(1), NodeId(1), true);
        assert!(done.contains(&DirAction::InstallOriginData));
        assert_eq!(grant_of(&done), Some((remote(2, 2), Access::Write, true)));
        dir.check_invariants().unwrap();
    }

    #[test]
    fn local_write_fault_revokes_remote_writer() {
        let mut dir = Directory::new(O);
        dir.request(Vpn::new(1), Access::Write, remote(1, 1));
        let local = Requester::Local { req_id: 42 };
        let actions = dir.request(Vpn::new(1), Access::Write, local);
        assert_eq!(
            actions,
            vec![DirAction::SendInvalidate {
                to: NodeId(1),
                needs_data: true
            }]
        );
        let done = dir.invalidate_ack(Vpn::new(1), NodeId(1), true);
        assert!(done.contains(&DirAction::InstallOriginData));
        // Local grants never carry data over the wire.
        assert_eq!(grant_of(&done), Some((local, Access::Write, false)));
        dir.check_invariants().unwrap();
    }

    #[test]
    fn local_read_fault_after_remote_write_flushes() {
        let mut dir = Directory::new(O);
        dir.request(Vpn::new(1), Access::Write, remote(1, 1));
        let local = Requester::Local { req_id: 7 };
        let actions = dir.request(Vpn::new(1), Access::Read, local);
        assert_eq!(actions, vec![DirAction::SendFlush { to: NodeId(1) }]);
        let done = dir.flush_ack(Vpn::new(1), NodeId(1));
        assert_eq!(grant_of(&done), Some((local, Access::Read, false)));
        dir.check_invariants().unwrap();
    }

    #[test]
    fn untouched_pages_cost_no_directory_state() {
        let mut dir = Directory::new(O);
        assert_eq!(dir.tracked_pages(), 0);
        dir.request(Vpn::new(1), Access::Read, remote(1, 1));
        assert_eq!(dir.tracked_pages(), 1);
    }

    #[test]
    fn drop_pages_revokes_remote_copies() {
        let mut dir = Directory::new(O);
        dir.request(Vpn::new(1), Access::Read, remote(1, 1));
        dir.request(Vpn::new(2), Access::Write, remote(2, 2));
        let revokes = dir.drop_pages(&[Vpn::new(1), Vpn::new(2), Vpn::new(3)]);
        assert!(revokes.contains(&(NodeId(1), Vpn::new(1))));
        assert!(revokes.contains(&(NodeId(2), Vpn::new(2))));
        assert_eq!(revokes.len(), 2);
        assert_eq!(dir.tracked_pages(), 0);
    }

    #[test]
    fn crash_of_exclusive_writer_reverts_page_to_origin() {
        let mut dir = Directory::new(O);
        dir.request(Vpn::new(1), Access::Write, remote(1, 1));
        let reclaimed = dir.on_node_crash(NodeId(1));
        assert_eq!(
            reclaimed,
            vec![(Vpn::new(1), vec![DirAction::SetOriginPteRo])],
            "origin re-maps its (stale) frame"
        );
        assert_eq!(dir.owners(Vpn::new(1)), NodeSet::single(O));
        assert_eq!(dir.current_writer(Vpn::new(1)), None);
        dir.check_invariants().unwrap();
    }

    #[test]
    fn crash_completes_invalidation_waiting_on_dead_node() {
        let mut dir = Directory::new(O);
        dir.request(Vpn::new(1), Access::Write, remote(1, 1));
        // Node 2 wants the page; the grant is blocked on node 1's ack.
        let opened = dir.request(Vpn::new(1), Access::Write, remote(2, 2));
        assert!(grant_of(&opened).is_none());
        let reclaimed = dir.on_node_crash(NodeId(1));
        assert_eq!(reclaimed.len(), 1);
        let (vpn, actions) = &reclaimed[0];
        assert_eq!(*vpn, Vpn::new(1));
        // The survivor is granted immediately (origin's copy is stale —
        // the dead writer's unflushed data is lost, as on real hardware).
        assert_eq!(grant_of(actions), Some((remote(2, 2), Access::Write, true)));
        assert_eq!(dir.current_writer(Vpn::new(1)), Some(NodeId(2)));
        dir.check_invariants().unwrap();
    }

    #[test]
    fn crash_during_flush_grants_stale_copy_to_reader() {
        let mut dir = Directory::new(O);
        dir.request(Vpn::new(1), Access::Write, remote(1, 1));
        let b = dir.request(Vpn::new(1), Access::Read, remote(2, 2));
        assert_eq!(b, vec![DirAction::SendFlush { to: NodeId(1) }]);
        let reclaimed = dir.on_node_crash(NodeId(1));
        let (_, actions) = &reclaimed[0];
        assert!(actions.contains(&DirAction::SetOriginPteRo));
        assert_eq!(grant_of(actions), Some((remote(2, 2), Access::Read, true)));
        let mut expect = NodeSet::single(O);
        expect.insert(NodeId(2));
        assert_eq!(dir.owners(Vpn::new(1)), expect);
        dir.check_invariants().unwrap();
    }

    #[test]
    fn crash_of_requester_lets_survivor_ack_revert_to_origin() {
        let mut dir = Directory::new(O);
        dir.request(Vpn::new(1), Access::Write, remote(1, 1));
        dir.request(Vpn::new(1), Access::Write, remote(2, 2)); // pending {1}
                                                               // The *requester* dies; node 1's ack is still outstanding, so the
                                                               // transaction stays open...
        let reclaimed = dir.on_node_crash(NodeId(2));
        assert!(reclaimed.is_empty(), "nothing to do until the ack lands");
        // ...and when it lands, ownership reverts to the origin instead
        // of being granted to a dead node.
        let done = dir.invalidate_ack(Vpn::new(1), NodeId(1), true);
        assert_eq!(
            done,
            vec![DirAction::InstallOriginData, DirAction::SetOriginPteRo]
        );
        assert_eq!(dir.owners(Vpn::new(1)), NodeSet::single(O));
        assert_eq!(dir.current_writer(Vpn::new(1)), None);
        dir.check_invariants().unwrap();
    }

    #[test]
    fn late_messages_from_dead_nodes_are_ignored() {
        let mut dir = Directory::new(O);
        dir.request(Vpn::new(1), Access::Read, remote(1, 1));
        dir.on_node_crash(NodeId(1));
        // Messages the dead node sent before crashing may still arrive.
        assert_eq!(
            dir.request(Vpn::new(1), Access::Write, remote(1, 9)),
            vec![]
        );
        assert_eq!(dir.flush_ack(Vpn::new(1), NodeId(1)), vec![]);
        assert_eq!(dir.invalidate_ack(Vpn::new(1), NodeId(1), true), vec![]);
        assert!(!dir.owners(Vpn::new(1)).contains(NodeId(1)));
        dir.check_invariants().unwrap();
    }

    // ---- sharded / forwarded mode ----

    const HOME: NodeId = NodeId(1);

    #[test]
    fn forwarded_read_of_untouched_page_forwards_to_origin() {
        let mut dir = Directory::forwarded(HOME, O);
        let actions = dir.request(Vpn::new(1), Access::Read, remote(2, 1));
        assert_eq!(
            actions,
            vec![DirAction::Forward {
                to: O,
                requester: remote(2, 1),
                access: Access::Read,
            }],
            "the origin owns untouched pages and is reached by forwarding"
        );
        // A conflicting request while the forward is in flight retries.
        assert_eq!(
            dir.request(Vpn::new(1), Access::Write, remote(3, 2)),
            vec![DirAction::Retry { to: remote(3, 2) }]
        );
        // The owner's async ack commits the ownership change.
        assert_eq!(dir.owner_ack(Vpn::new(1), O), vec![]);
        let mut expect = NodeSet::single(O);
        expect.insert(NodeId(2));
        assert_eq!(dir.owners(Vpn::new(1)), expect);
        assert_eq!(dir.current_writer(Vpn::new(1)), None);
        dir.check_invariants().unwrap();
    }

    #[test]
    fn forwarded_write_hands_exclusivity_owner_to_owner() {
        let mut dir = Directory::forwarded(HOME, O);
        dir.request(Vpn::new(1), Access::Write, remote(2, 1));
        dir.owner_ack(Vpn::new(1), O);
        assert_eq!(dir.current_writer(Vpn::new(1)), Some(NodeId(2)));
        // The next writer is serviced by node 2 directly; the origin
        // never re-enters the transfer.
        let actions = dir.request(Vpn::new(1), Access::Write, remote(3, 2));
        assert_eq!(
            actions,
            vec![DirAction::Forward {
                to: NodeId(2),
                requester: remote(3, 2),
                access: Access::Write,
            }]
        );
        dir.owner_ack(Vpn::new(1), NodeId(2));
        assert_eq!(dir.owners(Vpn::new(1)), NodeSet::single(NodeId(3)));
        assert_eq!(dir.current_writer(Vpn::new(1)), Some(NodeId(3)));
        assert_eq!(dir.stats().forwards, 2);
        dir.check_invariants().unwrap();
    }

    #[test]
    fn forwarded_shared_write_batches_invalidations() {
        let mut dir = Directory::forwarded(HOME, O);
        // Nodes 2 and 3 become readers (origin keeps its copy after the
        // read downgrade).
        dir.request(Vpn::new(1), Access::Read, remote(2, 1));
        dir.owner_ack(Vpn::new(1), O);
        dir.request(Vpn::new(1), Access::Read, remote(3, 2));
        dir.owner_ack(Vpn::new(1), O);
        // Node 2 writes: every other owner gets one batched invalidation;
        // the smallest owner (the origin) is elected... but node 2
        // already holds a copy, so nobody ships data.
        let actions = dir.request(Vpn::new(1), Access::Write, remote(2, 3));
        assert!(actions.contains(&DirAction::SendInvalidateBatch {
            to: O,
            entries: vec![(Vpn::new(1), false)],
        }));
        assert!(actions.contains(&DirAction::SendInvalidateBatch {
            to: NodeId(3),
            entries: vec![(Vpn::new(1), false)],
        }));
        assert!(grant_of(&actions).is_none(), "grant waits for the acks");
        assert_eq!(dir.invalidate_ack(Vpn::new(1), O, false), vec![]);
        let done = dir.invalidate_ack(Vpn::new(1), NodeId(3), false);
        // Requester had a copy: the write grant skips the transfer, and
        // no origin-frame staging actions appear in sharded mode.
        assert_eq!(
            done,
            vec![DirAction::Grant {
                to: remote(2, 3),
                access: Access::Write,
                with_data: false,
            }]
        );
        assert_eq!(dir.stats().invalidate_batches, 2);
        dir.check_invariants().unwrap();
    }

    #[test]
    fn forwarded_shared_write_elects_one_data_source() {
        let mut dir = Directory::forwarded(HOME, O);
        dir.request(Vpn::new(1), Access::Read, remote(2, 1));
        dir.owner_ack(Vpn::new(1), O);
        // Node 3 writes without a copy: the origin (smallest owner) is
        // elected to ship data back in its batch ack.
        let actions = dir.request(Vpn::new(1), Access::Write, remote(3, 2));
        assert!(actions.contains(&DirAction::SendInvalidateBatch {
            to: O,
            entries: vec![(Vpn::new(1), true)],
        }));
        assert!(actions.contains(&DirAction::SendInvalidateBatch {
            to: NodeId(2),
            entries: vec![(Vpn::new(1), false)],
        }));
        dir.invalidate_ack(Vpn::new(1), NodeId(2), false);
        let done = dir.invalidate_ack(Vpn::new(1), O, true);
        // Carried data is staged by the home's dispatcher, not installed
        // into an origin frame: the only action is the grant itself.
        assert_eq!(
            grant_of(&done),
            Some((remote(3, 2), Access::Write, true)),
            "requester had no copy: grant ships the staged data"
        );
        assert!(!done.contains(&DirAction::InstallOriginData));
        assert_eq!(dir.current_writer(Vpn::new(1)), Some(NodeId(3)));
        dir.check_invariants().unwrap();
    }

    #[test]
    fn forwarded_home_replica_serves_reads_inline() {
        let mut dir = Directory::forwarded(HOME, O);
        // The home itself becomes a reader first (local thread at home).
        let local = Requester::Local { req_id: 1 };
        let a = dir.request(Vpn::new(1), Access::Read, local);
        assert_eq!(
            a,
            vec![DirAction::Forward {
                to: O,
                requester: local,
                access: Access::Read,
            }],
            "even the home's own fault goes through the owner"
        );
        dir.owner_ack(Vpn::new(1), O);
        // Now a remote read is served inline from the home's frame: the
        // two-hop fast path with no forwarding at all.
        let b = dir.request(Vpn::new(1), Access::Read, remote(2, 2));
        assert_eq!(grant_of(&b), Some((remote(2, 2), Access::Read, true)));
        assert_eq!(b.len(), 1);
        dir.check_invariants().unwrap();
    }

    #[test]
    fn forwarded_crash_mid_forward_tells_requester_to_retry() {
        let mut dir = Directory::forwarded(HOME, O);
        dir.request(Vpn::new(1), Access::Write, remote(2, 1));
        dir.owner_ack(Vpn::new(1), O);
        // Node 3's request is forwarded to owner 2, which then dies.
        dir.request(Vpn::new(1), Access::Read, remote(3, 2));
        let reclaimed = dir.on_node_crash(NodeId(2));
        assert_eq!(
            reclaimed,
            vec![(Vpn::new(1), vec![DirAction::Retry { to: remote(3, 2) }])],
            "no frame at the home to grant from: the survivor retries"
        );
        // The page reverted to the origin; the retry will be forwarded
        // there.
        assert_eq!(dir.owners(Vpn::new(1)), NodeSet::single(O));
        let again = dir.request(Vpn::new(1), Access::Read, remote(3, 3));
        assert_eq!(
            again,
            vec![DirAction::Forward {
                to: O,
                requester: remote(3, 3),
                access: Access::Read,
            }]
        );
        dir.check_invariants().unwrap();
    }

    #[test]
    fn nodeset_operations() {
        let mut s = NodeSet::EMPTY;
        assert!(s.is_empty());
        s.insert(NodeId(3));
        s.insert(NodeId(0));
        s.insert(NodeId(3));
        assert_eq!(s.len(), 2);
        assert!(s.contains(NodeId(0)));
        assert!(!s.contains(NodeId(1)));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![NodeId(0), NodeId(3)]);
        s.remove(NodeId(0));
        assert_eq!(s, NodeSet::single(NodeId(3)));
    }
}
