//! DEX protocol messages.
//!
//! Everything DEX sends between nodes is a [`DexMsg`]: consistency-protocol
//! traffic (page requests/grants, invalidations, flushes), on-demand VMA
//! synchronization, thread migration, and work delegation. Control
//! variants are small (tens of bytes, the paper's "bimodal" small mode);
//! variants carrying page data report 4 KiB of page payload and take the
//! RDMA path in the messaging layer.

use dex_net::{NodeId, WireMessage};
use dex_os::{
    Access, ExecutionContext, PageFrame, Pid, Prot, Tid, VirtAddr, Vma, Vpn, CONTEXT_BYTES,
    PAGE_SIZE,
};
use dex_sim::SimDuration;

/// An operation a remote thread delegates to its original thread at the
/// origin (§III-A: futexes and other stateful kernel features).
#[derive(Clone, Debug)]
pub enum DelegatedOp {
    /// `FUTEX_WAIT`: block if the futex word still equals `expected`.
    FutexWait {
        /// Futex word address.
        addr: VirtAddr,
        /// Expected value; mismatch returns `EAGAIN` immediately.
        expected: u32,
    },
    /// `FUTEX_WAKE`: wake up to `count` waiters of the word at `addr`.
    FutexWake {
        /// Futex word address.
        addr: VirtAddr,
        /// Maximum waiters to wake.
        count: u32,
    },
    /// `mmap`: create an anonymous mapping at the origin.
    Mmap {
        /// Requested length in bytes.
        len: u64,
        /// Protection for the new mapping.
        prot: Prot,
    },
    /// `munmap`: remove mappings (a shrinking operation — broadcast
    /// eagerly per §III-D).
    Munmap {
        /// Start of the range.
        addr: VirtAddr,
        /// Length in bytes.
        len: u64,
    },
    /// `mprotect`: change protection (downgrades broadcast eagerly).
    Mprotect {
        /// Start of the range.
        addr: VirtAddr,
        /// Length in bytes.
        len: u64,
        /// New protection.
        prot: Prot,
    },
    /// Ask the origin's ownership directory which node holds the page of
    /// `addr` exclusively — the placement query behind
    /// [`ThreadCtx::migrate_to_data`](crate::ThreadCtx::migrate_to_data).
    QueryOwner {
        /// Address whose page ownership is queried.
        addr: VirtAddr,
    },
    /// A stand-in for miscellaneous stateful syscalls serviced at the
    /// origin (file I/O in the paper); costs `busy` of origin-thread time.
    Syscall {
        /// How long the original thread is busy servicing it.
        busy: SimDuration,
    },
}

/// How an update to VMAs is propagated to remote replicas.
#[derive(Clone, Debug)]
pub enum VmaOp {
    /// Remove the range from every replica.
    Unmap {
        /// Start of the range.
        addr: VirtAddr,
        /// Length in bytes.
        len: u64,
    },
    /// Downgrade protection on every replica.
    Protect {
        /// Start of the range.
        addr: VirtAddr,
        /// Length in bytes.
        len: u64,
        /// New protection.
        prot: Prot,
    },
}

/// Per-phase timing of the remote side of a migration, reported back in
/// the acknowledgment (drives Figure 3).
pub type MigrationPhases = Vec<(&'static str, SimDuration)>;

/// A DEX inter-node message.
#[derive(Debug)]
pub enum DexMsg {
    // ---- memory consistency protocol (§III-B) ----
    /// A node requests ownership of (and possibly data for) a page.
    PageRequest {
        /// Owning process.
        pid: Pid,
        /// Requested page.
        vpn: Vpn,
        /// Read (shared) or write (exclusive) ownership.
        access: Access,
        /// Correlates the grant with the waiting thread.
        req_id: u64,
    },
    /// The origin grants (or asks to retry) a page request.
    PageGrant {
        /// Owning process.
        pid: Pid,
        /// Granted page.
        vpn: Vpn,
        /// Granted access.
        access: Access,
        /// Page contents; `None` when the requester's copy is up to date
        /// (the paper's no-transfer optimization) or on retry.
        data: Option<PageFrame>,
        /// The request conflicted with an in-flight transaction; back off
        /// and resend.
        retry: bool,
        /// Correlates with the request.
        req_id: u64,
    },
    /// The origin revokes a node's copy of a page.
    Invalidate {
        /// Owning process.
        pid: Pid,
        /// Page being revoked.
        vpn: Vpn,
        /// The revoked node holds the only up-to-date copy and must ship
        /// it back.
        needs_data: bool,
    },
    /// A node acknowledges an invalidation.
    InvalidateAck {
        /// Owning process.
        pid: Pid,
        /// Acknowledged page.
        vpn: Vpn,
        /// The up-to-date contents, when requested.
        data: Option<PageFrame>,
    },
    /// The origin asks the exclusive writer to downgrade to shared and
    /// ship the current contents.
    Flush {
        /// Owning process.
        pid: Pid,
        /// Page to flush.
        vpn: Vpn,
    },
    /// The writer's reply to a flush.
    FlushAck {
        /// Owning process.
        pid: Pid,
        /// Flushed page.
        vpn: Vpn,
        /// Up-to-date contents.
        data: PageFrame,
    },

    // ---- sharded directory / owner forwarding ----
    /// The page's home asks the current owner to service a request
    /// directly: the owner adjusts its own PTE, sends the grant (with
    /// data) straight to the requester, and acknowledges the ownership
    /// change back to the home asynchronously. This keeps the home off
    /// the data critical path (three hops become two).
    OwnerForward {
        /// Owning process.
        pid: Pid,
        /// Requested page.
        vpn: Vpn,
        /// Access the requester asked for.
        access: Access,
        /// The node the grant must be delivered to.
        requester: NodeId,
        /// Correlates the grant with the requester's waiting thread.
        req_id: u64,
    },
    /// The owner's asynchronous acknowledgment that a forwarded request
    /// was serviced; closes the home's transaction.
    OwnerAck {
        /// Owning process.
        pid: Pid,
        /// Page whose forwarded transaction completes.
        vpn: Vpn,
        /// Access that was granted to the requester.
        access: Access,
    },
    /// One batched invalidation per destination node: every doomed
    /// replica of the faulting transaction held by that node, revoked
    /// with a single message and a single aggregated ack.
    InvalidateBatch {
        /// Owning process.
        pid: Pid,
        /// `(page, needs_data)` for each replica to revoke; `needs_data`
        /// marks the replica elected to ship contents back.
        entries: Vec<(Vpn, bool)>,
    },
    /// Aggregated acknowledgment of an [`DexMsg::InvalidateBatch`]. May
    /// cover a subset of the batch when some pages had in-flight grants
    /// at the destination (those are acked after the grant lands).
    InvalidateBatchAck {
        /// Owning process.
        pid: Pid,
        /// `(page, contents)` per acknowledged replica.
        entries: Vec<(Vpn, Option<PageFrame>)>,
    },

    // ---- on-demand VMA synchronization (§III-D) ----
    /// A remote replica saw an address with no local VMA.
    VmaRequest {
        /// Owning process.
        pid: Pid,
        /// The address that missed.
        addr: VirtAddr,
        /// Correlates with the reply.
        req_id: u64,
    },
    /// The origin's authoritative answer.
    VmaReply {
        /// Owning process.
        pid: Pid,
        /// The covering VMA, or `None` if the access is illegal (the
        /// remote thread takes a segmentation fault).
        vma: Option<Vma>,
        /// Correlates with the request.
        req_id: u64,
    },
    /// Eager broadcast of a shrinking/downgrading VMA operation.
    VmaUpdate {
        /// Owning process.
        pid: Pid,
        /// The operation to apply.
        op: VmaOp,
        /// Correlates with the ack.
        req_id: u64,
    },
    /// A remote worker applied a [`DexMsg::VmaUpdate`].
    VmaUpdateAck {
        /// Owning process.
        pid: Pid,
        /// Correlates with the update.
        req_id: u64,
    },

    // ---- thread migration (§III-A) ----
    /// Forward migration: ship a thread's execution context.
    MigrateRequest {
        /// Owning process.
        pid: Pid,
        /// Migrating thread.
        tid: Tid,
        /// Captured architectural state.
        context: ExecutionContext,
        /// Correlates with the ack.
        req_id: u64,
    },
    /// The remote node started the thread.
    MigrateAck {
        /// Owning process.
        pid: Pid,
        /// Migrated thread.
        tid: Tid,
        /// Remote-side per-phase latency breakdown (Figure 3).
        phases: MigrationPhases,
        /// Correlates with the request.
        req_id: u64,
    },
    /// Backward migration: the remote thread's final context returns home.
    MigrateBack {
        /// Owning process.
        pid: Pid,
        /// Returning thread.
        tid: Tid,
        /// Up-to-date architectural state.
        context: ExecutionContext,
        /// Correlates with the ack.
        req_id: u64,
    },
    /// The origin resumed the original thread.
    MigrateBackAck {
        /// Owning process.
        pid: Pid,
        /// Thread that returned.
        tid: Tid,
        /// Correlates with the request.
        req_id: u64,
    },

    // ---- work delegation (§III-A) ----
    /// A remote thread asks its original thread to perform `op`.
    Delegate {
        /// Owning process.
        pid: Pid,
        /// The delegating thread.
        tid: Tid,
        /// The operation.
        op: DelegatedOp,
        /// Correlates with the reply.
        req_id: u64,
    },
    /// Result of a delegated operation.
    DelegateReply {
        /// Owning process.
        pid: Pid,
        /// Result value (syscall-style: ≥ 0 success, < 0 errno).
        result: i64,
        /// Correlates with the request.
        req_id: u64,
    },
    /// A futex waiter parked by an earlier `FutexWait` has been woken.
    FutexWoken {
        /// Owning process.
        pid: Pid,
        /// Correlates with the original wait request.
        req_id: u64,
    },
}

impl WireMessage for DexMsg {
    fn control_bytes(&self) -> usize {
        match self {
            DexMsg::PageRequest { .. } => 24,
            DexMsg::PageGrant { .. } => 32,
            DexMsg::Invalidate { .. } => 24,
            DexMsg::InvalidateAck { .. } => 24,
            DexMsg::Flush { .. } => 16,
            DexMsg::FlushAck { .. } => 16,
            DexMsg::OwnerForward { .. } => 32,
            DexMsg::OwnerAck { .. } => 24,
            // 16-byte header plus a packed (vpn, flags) word per entry.
            DexMsg::InvalidateBatch { entries, .. } => 16 + entries.len() * 9,
            DexMsg::InvalidateBatchAck { entries, .. } => 16 + entries.len() * 9,
            DexMsg::VmaRequest { .. } => 24,
            DexMsg::VmaReply { .. } => 64,
            DexMsg::VmaUpdate { .. } => 40,
            DexMsg::VmaUpdateAck { .. } => 16,
            DexMsg::MigrateRequest { .. } => CONTEXT_BYTES + 16,
            DexMsg::MigrateAck { phases, .. } => 16 + phases.len() * 12,
            DexMsg::MigrateBack { .. } => CONTEXT_BYTES + 16,
            DexMsg::MigrateBackAck { .. } => 16,
            DexMsg::Delegate { .. } => 48,
            DexMsg::DelegateReply { .. } => 24,
            DexMsg::FutexWoken { .. } => 16,
        }
    }

    fn page_bytes(&self) -> usize {
        match self {
            DexMsg::PageGrant { data: Some(_), .. } => PAGE_SIZE,
            DexMsg::InvalidateAck { data: Some(_), .. } => PAGE_SIZE,
            DexMsg::FlushAck { .. } => PAGE_SIZE,
            DexMsg::InvalidateBatchAck { entries, .. } => {
                entries.iter().filter(|(_, d)| d.is_some()).count() * PAGE_SIZE
            }
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_messages_are_small() {
        let m = DexMsg::PageRequest {
            pid: Pid(1),
            vpn: Vpn::new(7),
            access: Access::Write,
            req_id: 1,
        };
        assert!(
            m.control_bytes() <= 64,
            "control messages are tens of bytes"
        );
        assert_eq!(m.page_bytes(), 0);
    }

    #[test]
    fn grants_with_data_take_the_page_path() {
        let with = DexMsg::PageGrant {
            pid: Pid(1),
            vpn: Vpn::new(7),
            access: Access::Read,
            data: Some(PageFrame::zeroed()),
            retry: false,
            req_id: 1,
        };
        let without = DexMsg::PageGrant {
            pid: Pid(1),
            vpn: Vpn::new(7),
            access: Access::Write,
            data: None,
            retry: false,
            req_id: 2,
        };
        assert_eq!(with.page_bytes(), PAGE_SIZE);
        assert_eq!(without.page_bytes(), 0);
    }

    #[test]
    fn migration_context_dominates_its_message_size() {
        let m = DexMsg::MigrateRequest {
            pid: Pid(1),
            tid: Tid(2),
            context: ExecutionContext::default(),
            req_id: 3,
        };
        assert!(m.control_bytes() >= CONTEXT_BYTES);
        assert_eq!(m.page_bytes(), 0);
    }
}
