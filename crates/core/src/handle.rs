//! Typed handles over distributed memory.
//!
//! Applications do not juggle raw addresses: [`DsmVec`] and [`DsmCell`]
//! wrap a distributed allocation with typed accessors that go through the
//! consistency protocol. They are `Copy` tokens — cheap to capture in
//! every thread closure — and the data they denote lives in simulated page
//! frames, so results are checkable against ground truth.

use std::marker::PhantomData;
use std::sync::Arc;

use dex_os::VirtAddr;

use crate::process::ProcessShared;
use crate::thread::ThreadCtx;

/// A value that can live in distributed memory: fixed-size, plain-old-data
/// with an explicit little-endian layout.
pub trait DsmScalar: Copy + Send + 'static {
    /// Encoded size in bytes.
    const BYTES: usize;
    /// Encodes into `dst` (exactly [`Self::BYTES`] long).
    fn store(&self, dst: &mut [u8]);
    /// Decodes from `src` (exactly [`Self::BYTES`] long).
    fn load(src: &[u8]) -> Self;
}

macro_rules! impl_scalar {
    ($($t:ty),*) => {$(
        impl DsmScalar for $t {
            const BYTES: usize = std::mem::size_of::<$t>();
            fn store(&self, dst: &mut [u8]) {
                dst.copy_from_slice(&self.to_le_bytes());
            }
            fn load(src: &[u8]) -> Self {
                <$t>::from_le_bytes(src.try_into().expect("scalar size"))
            }
        }
    )*};
}

impl_scalar!(u8, u16, u32, u64, i8, i16, i32, i64, f32, f64);

impl<T: DsmScalar, const N: usize> DsmScalar for [T; N] {
    const BYTES: usize = T::BYTES * N;
    fn store(&self, dst: &mut [u8]) {
        for (i, v) in self.iter().enumerate() {
            v.store(&mut dst[i * T::BYTES..(i + 1) * T::BYTES]);
        }
    }
    fn load(src: &[u8]) -> Self {
        std::array::from_fn(|i| T::load(&src[i * T::BYTES..(i + 1) * T::BYTES]))
    }
}

/// Anything that can hand out the shared process state — lets handle
/// methods accept a [`DexProcess`](crate::DexProcess), a
/// [`ThreadCtx`], or a [`RunReport`](crate::RunReport) interchangeably for
/// initialization and result collection.
pub trait ProcessRef {
    /// The shared process state.
    fn shared_ref(&self) -> &ProcessShared;
}

impl ProcessRef for ProcessShared {
    fn shared_ref(&self) -> &ProcessShared {
        self
    }
}

impl ProcessRef for Arc<ProcessShared> {
    fn shared_ref(&self) -> &ProcessShared {
        self
    }
}

impl ProcessRef for ThreadCtx<'_> {
    fn shared_ref(&self) -> &ProcessShared {
        self.process()
    }
}

/// A typed, fixed-length vector in distributed memory.
///
/// # Examples
///
/// ```
/// use dex_core::{Cluster, ClusterConfig};
///
/// let cluster = Cluster::new(ClusterConfig::new(2));
/// let mut handle = None;
/// let report = cluster.run(|proc_| {
///     let data = proc_.alloc_vec::<u64>(100, "data");
///     handle = Some(data);
///     proc_.spawn(move |ctx| {
///         ctx.migrate(1).unwrap();
///         for i in 0..100 {
///             data.set(ctx, i, (i as u64) * 3);
///         }
///     });
/// });
/// // Results are read back from the coherent cluster-wide view.
/// let final_data = handle.unwrap().snapshot(&report);
/// assert_eq!(final_data[10], 30);
/// ```
pub struct DsmVec<T> {
    base: VirtAddr,
    len: usize,
    _marker: PhantomData<fn() -> T>,
}

impl<T> Clone for DsmVec<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for DsmVec<T> {}

impl<T: DsmScalar> DsmVec<T> {
    pub(crate) fn from_raw(base: VirtAddr, len: usize) -> Self {
        DsmVec {
            base,
            len,
            _marker: PhantomData,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` for a zero-length vector.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The base address of the allocation.
    pub fn addr(&self) -> VirtAddr {
        self.base
    }

    /// Address of element `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of bounds.
    pub fn addr_of(&self, i: usize) -> VirtAddr {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        self.base.add((i * T::BYTES) as u64)
    }

    /// Reads element `i` through the consistency protocol.
    pub fn get(&self, ctx: &ThreadCtx<'_>, i: usize) -> T {
        let mut buf = vec![0u8; T::BYTES];
        ctx.read_bytes(self.addr_of(i), &mut buf);
        T::load(&buf)
    }

    /// Writes element `i` through the consistency protocol.
    pub fn set(&self, ctx: &ThreadCtx<'_>, i: usize, value: T) {
        let mut buf = vec![0u8; T::BYTES];
        value.store(&mut buf);
        ctx.write_bytes(self.addr_of(i), &buf);
    }

    /// Bulk-reads `out.len()` elements starting at `start`. One access
    /// check per covered page instead of per element — prefer this in
    /// loops.
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds.
    pub fn read_slice(&self, ctx: &ThreadCtx<'_>, start: usize, out: &mut [T]) {
        if out.is_empty() {
            return;
        }
        assert!(start + out.len() <= self.len, "slice out of bounds");
        let mut buf = vec![0u8; out.len() * T::BYTES];
        ctx.read_bytes(self.addr_of(start), &mut buf);
        for (i, v) in out.iter_mut().enumerate() {
            *v = T::load(&buf[i * T::BYTES..(i + 1) * T::BYTES]);
        }
    }

    /// Bulk-writes `values` starting at `start`.
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds.
    pub fn write_slice(&self, ctx: &ThreadCtx<'_>, start: usize, values: &[T]) {
        if values.is_empty() {
            return;
        }
        assert!(start + values.len() <= self.len, "slice out of bounds");
        let mut buf = vec![0u8; values.len() * T::BYTES];
        for (i, v) in values.iter().enumerate() {
            v.store(&mut buf[i * T::BYTES..(i + 1) * T::BYTES]);
        }
        ctx.write_bytes(self.addr_of(start), &buf);
    }

    /// Initializes contents before the run (writes directly into the
    /// origin replica at zero virtual cost — input loading happens before
    /// the measured region).
    ///
    /// # Panics
    ///
    /// Panics when `values` is longer than the vector.
    pub fn init(&self, proc_: &impl ProcessRef, values: &[T]) {
        assert!(values.len() <= self.len, "init data longer than vector");
        if values.is_empty() {
            return;
        }
        let mut buf = vec![0u8; values.len() * T::BYTES];
        for (i, v) in values.iter().enumerate() {
            v.store(&mut buf[i * T::BYTES..(i + 1) * T::BYTES]);
        }
        proc_.shared_ref().write_init(self.base, &buf);
    }

    /// Reads the final, cluster-coherent contents (each page sourced from
    /// its current owner) — for result verification after a run.
    pub fn snapshot(&self, proc_: &impl ProcessRef) -> Vec<T> {
        let mut buf = vec![0u8; self.len * T::BYTES];
        proc_.shared_ref().read_coherent(self.base, &mut buf);
        (0..self.len)
            .map(|i| T::load(&buf[i * T::BYTES..(i + 1) * T::BYTES]))
            .collect()
    }
}

impl<T> std::fmt::Debug for DsmVec<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DsmVec")
            .field("base", &self.base)
            .field("len", &self.len)
            .finish()
    }
}

/// A typed 2-D matrix in distributed memory, stored row-major.
///
/// The row-aligned construction
/// ([`DexProcess::alloc_matrix_row_aligned`](crate::DexProcess::alloc_matrix_row_aligned))
/// pads every row to whole pages so row partitions never share pages
/// across workers — the layout grid applications (BT, FT) want.
pub struct DsmMatrix<T> {
    base: VirtAddr,
    rows: usize,
    cols: usize,
    /// Elements of padding between consecutive rows' starts (0 = packed).
    row_stride: usize,
    _marker: PhantomData<fn() -> T>,
}

impl<T> Clone for DsmMatrix<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for DsmMatrix<T> {}

impl<T: DsmScalar> DsmMatrix<T> {
    pub(crate) fn from_raw(base: VirtAddr, rows: usize, cols: usize, row_stride: usize) -> Self {
        assert!(row_stride >= cols, "row stride must cover the row");
        DsmMatrix {
            base,
            rows,
            cols,
            row_stride,
            _marker: PhantomData,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Address of element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    pub fn addr_of(&self, r: usize, c: usize) -> VirtAddr {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.base.add(((r * self.row_stride + c) * T::BYTES) as u64)
    }

    /// Reads element `(r, c)`.
    pub fn get(&self, ctx: &ThreadCtx<'_>, r: usize, c: usize) -> T {
        let mut buf = vec![0u8; T::BYTES];
        ctx.read_bytes(self.addr_of(r, c), &mut buf);
        T::load(&buf)
    }

    /// Writes element `(r, c)`.
    pub fn set(&self, ctx: &ThreadCtx<'_>, r: usize, c: usize, value: T) {
        let mut buf = vec![0u8; T::BYTES];
        value.store(&mut buf);
        ctx.write_bytes(self.addr_of(r, c), &buf);
    }

    /// Bulk-reads row `r` into `out` (must be `cols` long).
    ///
    /// # Panics
    ///
    /// Panics when `out.len() != cols` or `r` is out of bounds.
    pub fn read_row(&self, ctx: &ThreadCtx<'_>, r: usize, out: &mut [T]) {
        assert_eq!(out.len(), self.cols, "row buffer must be cols long");
        let mut buf = vec![0u8; self.cols * T::BYTES];
        ctx.read_bytes(self.addr_of(r, 0), &mut buf);
        for (i, v) in out.iter_mut().enumerate() {
            *v = T::load(&buf[i * T::BYTES..(i + 1) * T::BYTES]);
        }
    }

    /// Bulk-writes row `r` from `values` (must be `cols` long).
    ///
    /// # Panics
    ///
    /// Panics when `values.len() != cols` or `r` is out of bounds.
    pub fn write_row(&self, ctx: &ThreadCtx<'_>, r: usize, values: &[T]) {
        assert_eq!(values.len(), self.cols, "row buffer must be cols long");
        let mut buf = vec![0u8; self.cols * T::BYTES];
        for (i, v) in values.iter().enumerate() {
            v.store(&mut buf[i * T::BYTES..(i + 1) * T::BYTES]);
        }
        ctx.write_bytes(self.addr_of(r, 0), &buf);
    }

    /// Initializes the matrix from a row-major slice before the run.
    ///
    /// # Panics
    ///
    /// Panics when `values.len() != rows * cols`.
    pub fn init(&self, proc_: &impl ProcessRef, values: &[T]) {
        assert_eq!(values.len(), self.rows * self.cols, "init size mismatch");
        let shared = proc_.shared_ref();
        let mut buf = vec![0u8; self.cols * T::BYTES];
        for r in 0..self.rows {
            for (i, v) in values[r * self.cols..(r + 1) * self.cols]
                .iter()
                .enumerate()
            {
                v.store(&mut buf[i * T::BYTES..(i + 1) * T::BYTES]);
            }
            shared.write_init(self.addr_of_unchecked(r), &buf);
        }
    }

    /// Reads the final cluster-coherent contents, row-major.
    pub fn snapshot(&self, proc_: &impl ProcessRef) -> Vec<T> {
        let shared = proc_.shared_ref();
        let mut out = Vec::with_capacity(self.rows * self.cols);
        let mut buf = vec![0u8; self.cols * T::BYTES];
        for r in 0..self.rows {
            shared.read_coherent(self.addr_of_unchecked(r), &mut buf);
            for i in 0..self.cols {
                out.push(T::load(&buf[i * T::BYTES..(i + 1) * T::BYTES]));
            }
        }
        out
    }

    fn addr_of_unchecked(&self, r: usize) -> VirtAddr {
        self.base.add((r * self.row_stride * T::BYTES) as u64)
    }
}

impl<T> std::fmt::Debug for DsmMatrix<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DsmMatrix")
            .field("base", &self.base)
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .field("row_stride", &self.row_stride)
            .finish()
    }
}

/// A single typed value in distributed memory.
pub struct DsmCell<T> {
    addr: VirtAddr,
    _marker: PhantomData<fn() -> T>,
}

impl<T> Clone for DsmCell<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for DsmCell<T> {}

impl<T: DsmScalar> DsmCell<T> {
    pub(crate) fn from_raw(addr: VirtAddr) -> Self {
        DsmCell {
            addr,
            _marker: PhantomData,
        }
    }

    /// The cell's address.
    pub fn addr(&self) -> VirtAddr {
        self.addr
    }

    /// Reads the value through the consistency protocol.
    pub fn get(&self, ctx: &ThreadCtx<'_>) -> T {
        let mut buf = vec![0u8; T::BYTES];
        ctx.read_bytes(self.addr, &mut buf);
        T::load(&buf)
    }

    /// Writes the value through the consistency protocol.
    pub fn set(&self, ctx: &ThreadCtx<'_>, value: T) {
        let mut buf = vec![0u8; T::BYTES];
        value.store(&mut buf);
        ctx.write_bytes(self.addr, &buf);
    }

    /// Atomically read-modify-writes the value (cluster-wide, by virtue of
    /// exclusive page ownership). Returns the previous value.
    pub fn rmw(&self, ctx: &ThreadCtx<'_>, f: impl FnOnce(T) -> T) -> T {
        let mut old = None;
        ctx.rmw_bytes(self.addr, T::BYTES, |bytes| {
            let v = T::load(bytes);
            old = Some(v);
            f(v).store(bytes);
        });
        old.expect("rmw closure ran")
    }

    /// Initializes the value before the run.
    pub fn init(&self, proc_: &impl ProcessRef, value: T) {
        let mut buf = vec![0u8; T::BYTES];
        value.store(&mut buf);
        proc_.shared_ref().write_init(self.addr, &buf);
    }

    /// Reads the final cluster-coherent value after a run.
    pub fn snapshot(&self, proc_: &impl ProcessRef) -> T {
        let mut buf = vec![0u8; T::BYTES];
        proc_.shared_ref().read_coherent(self.addr, &mut buf);
        T::load(&buf)
    }
}

impl<T> std::fmt::Debug for DsmCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DsmCell").field("addr", &self.addr).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        fn roundtrip<T: DsmScalar + PartialEq + std::fmt::Debug>(v: T) {
            let mut buf = vec![0u8; T::BYTES];
            v.store(&mut buf);
            assert_eq!(T::load(&buf), v);
        }
        roundtrip(0xABu8);
        roundtrip(-7i32);
        roundtrip(u64::MAX);
        roundtrip(3.25f64);
        roundtrip([1.5f64, -2.0, 99.0]);
    }

    #[test]
    fn array_scalar_size() {
        assert_eq!(<[f64; 3] as DsmScalar>::BYTES, 24);
        assert_eq!(<[u32; 4] as DsmScalar>::BYTES, 16);
    }
}
