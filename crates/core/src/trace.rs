//! Page-fault trace collection (the in-kernel half of the profiling
//! toolchain, §IV-A).
//!
//! When tracing is enabled, every fault that enters the DEX memory
//! consistency protocol appends one [`FaultEvent`] — the paper's
//! six-tuple: time, node, task, fault kind, faulting code site, faulting
//! address, plus the user tag of the containing VMA. The `dex-prof` crate
//! post-processes these records.

use std::sync::Arc;

use parking_lot::Mutex;

use dex_net::NodeId;
use dex_os::{Tid, VirtAddr};
use dex_sim::SimTime;

/// The kind of protocol event a trace record describes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FaultKind {
    /// A read access entered the protocol.
    Read,
    /// A write access entered the protocol.
    Write,
    /// This node's copy was invalidated by another node's write.
    Invalidate,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::Read => write!(f, "read"),
            FaultKind::Write => write!(f, "write"),
            FaultKind::Invalidate => write!(f, "invalidate"),
        }
    }
}

/// One record of the page-fault trace (the paper's six-tuple).
#[derive(Clone, Debug)]
pub struct FaultEvent {
    /// Virtual time of the fault.
    pub time: SimTime,
    /// Node where the fault occurred.
    pub node: NodeId,
    /// Faulting task (`Tid(u64::MAX)` for protocol handlers applying
    /// remote invalidations).
    pub task: Tid,
    /// Fault kind.
    pub kind: FaultKind,
    /// The faulting code site — the simulation analogue of the faulting
    /// instruction address, set by applications via
    /// [`ThreadCtx::set_site`](crate::ThreadCtx::set_site).
    pub site: &'static str,
    /// The faulting memory address.
    pub addr: VirtAddr,
    /// User tag of the containing VMA (object-level attribution).
    pub tag: Option<String>,
}

/// A shared, append-only buffer of fault events.
///
/// Cloning shares the buffer. Collection is cheap when disabled (one
/// atomic-free boolean check under the same mutex the protocol already
/// holds is avoided entirely — the flag is checked first).
///
/// # Examples
///
/// ```
/// use dex_core::{FaultEvent, FaultKind, TraceBuffer};
/// use dex_net::NodeId;
/// use dex_os::{Tid, VirtAddr};
/// use dex_sim::SimTime;
///
/// let trace = TraceBuffer::enabled();
/// trace.record(FaultEvent {
///     time: SimTime::ZERO,
///     node: NodeId(1),
///     task: Tid(3),
///     kind: FaultKind::Write,
///     site: "kmeans.update_centroids",
///     addr: VirtAddr::new(0x1000_0040),
///     tag: Some("centroids".into()),
/// });
/// assert_eq!(trace.snapshot().len(), 1);
/// ```
#[derive(Clone)]
pub struct TraceBuffer {
    enabled: bool,
    inner: Arc<Mutex<TraceInner>>,
}

#[derive(Default)]
struct TraceInner {
    events: std::collections::VecDeque<FaultEvent>,
    /// `None` means unbounded.
    capacity: Option<usize>,
    /// Events evicted because the buffer was at capacity.
    dropped: u64,
}

impl TraceBuffer {
    /// A buffer that records events without bound.
    pub fn enabled() -> Self {
        TraceBuffer {
            enabled: true,
            inner: Arc::new(Mutex::new(TraceInner::default())),
        }
    }

    /// A buffer that records at most `capacity` events, evicting the
    /// oldest record on overflow (drop-oldest ring semantics). The number
    /// of evicted events is reported by [`TraceBuffer::dropped`].
    pub fn bounded(capacity: usize) -> Self {
        TraceBuffer {
            enabled: true,
            inner: Arc::new(Mutex::new(TraceInner {
                capacity: Some(capacity),
                ..TraceInner::default()
            })),
        }
    }

    /// A buffer that drops everything (production mode).
    pub fn disabled() -> Self {
        TraceBuffer {
            enabled: false,
            inner: Arc::new(Mutex::new(TraceInner::default())),
        }
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Appends an event (no-op when disabled). When the buffer is at its
    /// capacity bound, the oldest event is evicted first.
    pub fn record(&self, event: FaultEvent) {
        if self.enabled {
            let mut inner = self.inner.lock();
            if let Some(cap) = inner.capacity {
                if cap == 0 {
                    inner.dropped += 1;
                    return;
                }
                while inner.events.len() >= cap {
                    inner.events.pop_front();
                    inner.dropped += 1;
                }
            }
            inner.events.push_back(event);
        }
    }

    /// A copy of all recorded events in record order.
    pub fn snapshot(&self) -> Vec<FaultEvent> {
        self.inner.lock().events.iter().cloned().collect()
    }

    /// Discards all recorded events (recording stays enabled). Also
    /// resets the dropped-events counter, so phase-scoped collection can
    /// `clear()` between phases and account each phase independently.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.events.clear();
        inner.dropped = 0;
    }

    /// Number of events evicted by the capacity bound since the last
    /// [`TraceBuffer::clear`] (always 0 for unbounded buffers).
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// The capacity bound, or `None` when unbounded.
    pub fn capacity(&self) -> Option<usize> {
        self.inner.lock().capacity
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.inner.lock().events.len()
    }

    /// Returns `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().events.is_empty()
    }
}

impl std::fmt::Debug for TraceBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceBuffer")
            .field("enabled", &self.enabled)
            .field("events", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(kind: FaultKind) -> FaultEvent {
        FaultEvent {
            time: SimTime::ZERO,
            node: NodeId(0),
            task: Tid(0),
            kind,
            site: "test",
            addr: VirtAddr::new(0x1000),
            tag: None,
        }
    }

    #[test]
    fn enabled_buffer_records_in_order() {
        let t = TraceBuffer::enabled();
        t.record(event(FaultKind::Read));
        t.record(event(FaultKind::Write));
        let snap = t.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].kind, FaultKind::Read);
        assert_eq!(snap[1].kind, FaultKind::Write);
    }

    #[test]
    fn disabled_buffer_drops_events() {
        let t = TraceBuffer::disabled();
        t.record(event(FaultKind::Read));
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn clones_share_the_buffer() {
        let t = TraceBuffer::enabled();
        let t2 = t.clone();
        t2.record(event(FaultKind::Invalidate));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn clear_discards_events_but_keeps_recording() {
        let t = TraceBuffer::enabled();
        t.record(event(FaultKind::Read));
        t.record(event(FaultKind::Write));
        assert_eq!(t.len(), 2);
        t.clear();
        assert!(t.is_empty());
        assert!(t.is_enabled());
        t.record(event(FaultKind::Invalidate));
        assert_eq!(t.len(), 1);
        assert_eq!(t.snapshot()[0].kind, FaultKind::Invalidate);
    }

    #[test]
    fn bounded_buffer_drops_oldest_and_counts() {
        let t = TraceBuffer::bounded(2);
        assert_eq!(t.capacity(), Some(2));
        t.record(event(FaultKind::Read));
        t.record(event(FaultKind::Write));
        assert_eq!(t.dropped(), 0);
        t.record(event(FaultKind::Invalidate));
        assert_eq!(t.len(), 2, "capacity bound holds");
        assert_eq!(t.dropped(), 1, "oldest event was evicted");
        let snap = t.snapshot();
        assert_eq!(
            snap[0].kind,
            FaultKind::Write,
            "Read was the eviction victim"
        );
        assert_eq!(snap[1].kind, FaultKind::Invalidate);
        t.clear();
        assert_eq!(t.dropped(), 0, "clear resets the dropped counter");
        assert_eq!(t.capacity(), Some(2), "clear keeps the bound");
    }

    #[test]
    fn zero_capacity_buffer_counts_everything_as_dropped() {
        let t = TraceBuffer::bounded(0);
        t.record(event(FaultKind::Read));
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 1);
    }
}
