//! Seeded protocol mutations for validating the systematic-exploration
//! tooling (`dex-check explore`).
//!
//! A mutation testing campaign only proves something if the checker
//! actually catches injected bugs. Each [`ProtocolMutation`] variant
//! disables one load-bearing step of the *real* coherence fault path in
//! `crate::dispatch`, producing a protocol that silently violates
//! sequential consistency. `dex-check explore --mutation <name>` runs
//! the explorer + SC oracle against the mutated protocol and must report
//! a violation with a replayable counterexample schedule.
//!
//! Mutations are carried per-cluster in `ClusterConfig` (no globals), so
//! mutated and healthy clusters coexist in one test process.

/// A seeded bug in the ownership/invalidation protocol.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ProtocolMutation {
    /// The real protocol — no bug injected.
    #[default]
    None,
    /// `handle_invalidate` acknowledges the invalidation but keeps the
    /// local PTE and frame, so the node keeps reading its stale copy
    /// after ownership moved.
    SkipInvalidateClear,
    /// An invalidated writer acks with a *zeroed* page instead of its
    /// dirty frame, so the writes it made are dropped on the floor when
    /// ownership transfers.
    LoseInvalidateData,
    /// The origin keeps its own PTE when ownership is granted to a
    /// remote node, so origin-local accesses bypass the protocol and
    /// read stale data.
    KeepOriginPte,
    /// Ownership grants to a remote node carry a zeroed page instead of
    /// the current frame contents, losing every write made so far.
    StaleGrantData,
}

/// Every injectable mutation (excludes [`ProtocolMutation::None`]).
pub const ALL_MUTATIONS: [ProtocolMutation; 4] = [
    ProtocolMutation::SkipInvalidateClear,
    ProtocolMutation::LoseInvalidateData,
    ProtocolMutation::KeepOriginPte,
    ProtocolMutation::StaleGrantData,
];

impl ProtocolMutation {
    /// Stable kebab-case name (CLI flag value and report label).
    pub fn name(self) -> &'static str {
        match self {
            ProtocolMutation::None => "none",
            ProtocolMutation::SkipInvalidateClear => "skip-invalidate-clear",
            ProtocolMutation::LoseInvalidateData => "lose-invalidate-data",
            ProtocolMutation::KeepOriginPte => "keep-origin-pte",
            ProtocolMutation::StaleGrantData => "stale-grant-data",
        }
    }

    /// Parses a [`ProtocolMutation::name`] back to the variant.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "none" => Some(ProtocolMutation::None),
            "skip-invalidate-clear" => Some(ProtocolMutation::SkipInvalidateClear),
            "lose-invalidate-data" => Some(ProtocolMutation::LoseInvalidateData),
            "keep-origin-pte" => Some(ProtocolMutation::KeepOriginPte),
            "stale-grant-data" => Some(ProtocolMutation::StaleGrantData),
            _ => None,
        }
    }
}

impl std::fmt::Display for ProtocolMutation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        assert_eq!(
            ProtocolMutation::parse("none"),
            Some(ProtocolMutation::None)
        );
        for m in ALL_MUTATIONS {
            assert_eq!(ProtocolMutation::parse(m.name()), Some(m));
            assert_ne!(m, ProtocolMutation::None);
        }
        assert_eq!(ProtocolMutation::parse("bogus"), None);
    }
}
