//! A closed, finite-state model of the DEX ownership protocol.
//!
//! This module turns the pure directory logic in [`super`] into an
//! *executable world model*: one origin-side [`Directory`], one simulated
//! page table per node, a multiset of in-flight protocol messages, and a
//! small set of client threads that may, at any moment, fault on any page
//! (read or write) or unmap it. Exploring every interleaving of the
//! enabled [`ModelEvent`]s enumerates every behavior the protocol can
//! exhibit for a small configuration — exactly what the `dex-check`
//! model checker does by breadth-first search over canonicalized states.
//!
//! Why a closed model instead of fixed per-thread programs: the protocol
//! state (owner sets, writers, transactions, PTEs, in-flight messages)
//! is finite, so letting idle threads issue *any* operation at *any*
//! time yields a finite transition system whose reachable set covers
//! every interleaving of every operation sequence at once. Liveness is
//! then co-reachability of quiescent states ("from every reachable
//! state some fair schedule drains all in-flight work"), which detects
//! both lost-message deadlocks and retry livelocks without modeling
//! retry counters.
//!
//! The model also reproduces the two mechanisms layered over the raw
//! directory in `thread.rs`:
//!
//! * **leader–follower fault coalescing** (§III-C): a thread faulting on
//!   a `(page, access-class)` that a same-node sibling is already
//!   negotiating becomes a *follower* and completes only when its leader
//!   does;
//! * **retry-on-busy** (§III-B): a `Retry` answer parks the requester in
//!   a back-off state from which it re-issues the same request.
//!
//! [`Mutation`]s inject protocol bugs (skipped invalidation, dropped
//! ack, skipped downgrade, lost wakeup, follower bypass) so the checker
//! can prove its own teeth: each mutation must produce a printed,
//! minimal counterexample.

use super::{DirAction, Directory, NodeSet, Requester};
use dex_net::NodeId;
use dex_os::{Access, PageTable, Pte, Vpn};

/// A point-in-time view of one page's directory record (untracked pages
/// report the origin-exclusive default).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PageModel {
    /// Nodes the directory believes hold a valid copy.
    pub owners: NodeSet,
    /// The exclusive writer, if any.
    pub writer: Option<NodeId>,
    /// The in-flight transaction, if any.
    pub txn: Option<TxnModel>,
}

/// A point-in-time view of an in-flight directory transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TxnModel {
    /// Access the requester asked for.
    pub access: Access,
    /// Who is waiting for the transaction to complete.
    pub requester: Requester,
    /// Owners that have not yet acknowledged revocation/flush.
    pub pending: NodeSet,
    /// The requester already held a valid copy (data transfer skipped).
    pub requester_had_copy: bool,
}

impl Directory {
    /// Introspects the directory record for `vpn` (model/checker hook).
    pub fn page_model(&self, vpn: Vpn) -> PageModel {
        match self.pages.get(vpn.index()) {
            Some(info) => PageModel {
                owners: info.owners,
                writer: info.writer,
                txn: info.txn.as_ref().map(|t| TxnModel {
                    access: t.access,
                    requester: t.requester,
                    pending: t.pending,
                    requester_had_copy: t.requester_had_copy,
                }),
            },
            None => PageModel {
                owners: NodeSet::single(self.origin),
                writer: Some(self.origin),
                txn: None,
            },
        }
    }

    /// Whether `vpn` has an in-flight transaction.
    pub fn has_txn(&self, vpn: Vpn) -> bool {
        self.pages
            .get(vpn.index())
            .is_some_and(|info| info.txn.is_some())
    }

    /// A canonical, order-independent encoding of the full directory
    /// state, suitable for seen-set keys in explicit-state exploration.
    pub fn canonical(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.pages.len() * 4);
        for (key, info) in self.pages.iter() {
            out.push(key);
            out.push(info.owners.0);
            out.push(match info.writer {
                Some(w) => w.0 as u64 + 1,
                None => 0,
            });
            out.push(match &info.txn {
                None => 0,
                Some(t) => {
                    // Pack: bit0 = present, bit1 = write, bit2 = had_copy,
                    // bits 3..5 = requester kind, then node/req id bytes.
                    let mut word = 1u64;
                    if t.access.is_write() {
                        word |= 2;
                    }
                    if t.requester_had_copy {
                        word |= 4;
                    }
                    match t.requester {
                        Requester::Remote { node, req_id } => {
                            word |= (node.0 as u64 + 1) << 8;
                            word |= (req_id & 0xffff) << 24;
                        }
                        Requester::Local { req_id } => {
                            word |= (req_id & 0xffff) << 24;
                            word |= 1 << 40;
                        }
                    }
                    word | (t.pending.0 << 41)
                }
            });
        }
        out
    }
}

/// One client operation a modeled thread can attempt.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Op {
    /// Fault the page for reading.
    Read(Vpn),
    /// Fault the page for writing.
    Write(Vpn),
    /// Unmap the page at the origin (synchronous VMA broadcast).
    Evict(Vpn),
}

impl Op {
    /// The page this operation touches.
    pub fn vpn(self) -> Vpn {
        match self {
            Op::Read(v) | Op::Write(v) | Op::Evict(v) => v,
        }
    }
}

impl std::fmt::Display for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Op::Read(v) => write!(f, "read page {}", v.index()),
            Op::Write(v) => write!(f, "write page {}", v.index()),
            Op::Evict(v) => write!(f, "evict page {}", v.index()),
        }
    }
}

/// What a modeled thread is currently doing.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ThreadState {
    /// Ready to issue any operation.
    Idle,
    /// Request sent; waiting for `Grant` or `Retry`.
    Waiting {
        /// Requested page.
        vpn: Vpn,
        /// Requested access.
        access: Access,
    },
    /// Told to retry; will re-issue the same request.
    Backoff {
        /// Requested page.
        vpn: Vpn,
        /// Requested access.
        access: Access,
    },
    /// Coalesced behind a same-node leader negotiating the same fault.
    Follower {
        /// Requested page.
        vpn: Vpn,
        /// Requested access.
        access: Access,
        /// Index of the leader thread.
        leader: usize,
    },
}

/// An in-flight protocol message.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Msg {
    /// A page request traveling to the origin directory.
    Request {
        /// Issuing thread.
        thread: usize,
        /// Requested page.
        vpn: Vpn,
        /// Requested access.
        access: Access,
    },
    /// Revocation traveling to an owner.
    Invalidate {
        /// Target owner.
        to: NodeId,
        /// Page being revoked.
        vpn: Vpn,
        /// Target must ship page contents back.
        needs_data: bool,
    },
    /// Revocation acknowledgment traveling back to the origin.
    InvAck {
        /// Acknowledged page.
        vpn: Vpn,
        /// Acknowledging node.
        from: NodeId,
        /// Ack carries the only up-to-date copy.
        carried_data: bool,
    },
    /// Downgrade-and-flush traveling to the exclusive writer.
    Flush {
        /// The writer node.
        to: NodeId,
        /// Page to flush.
        vpn: Vpn,
    },
    /// Flush acknowledgment traveling back to the origin.
    FlushAck {
        /// Flushed page.
        vpn: Vpn,
        /// The downgraded writer.
        from: NodeId,
    },
    /// A grant traveling to a remote requester. `from` is the sending
    /// node: the home classically, possibly a forwarding owner in
    /// sharded mode — grants from different senders ride different
    /// FIFO channels, which is exactly the reordering the sharded
    /// protocol must survive.
    Grant {
        /// Sending node (home or forwarding owner).
        from: NodeId,
        /// Thread being granted.
        thread: usize,
        /// Granted page.
        vpn: Vpn,
        /// Granted access.
        access: Access,
        /// Page contents accompany the grant.
        with_data: bool,
    },
    /// A retry notice traveling to a remote requester.
    Retry {
        /// Sending node.
        from: NodeId,
        /// Thread being bounced.
        thread: usize,
        /// Requested page.
        vpn: Vpn,
        /// Requested access.
        access: Access,
    },
    /// Sharded mode: the home hands a request to the current owner,
    /// which will grant straight to the requester (two-hop path).
    Forward {
        /// The owner being asked to grant.
        to: NodeId,
        /// The requesting thread.
        thread: usize,
        /// Requested page.
        vpn: Vpn,
        /// Requested access.
        access: Access,
    },
    /// Sharded mode: the forwarding owner's asynchronous ownership
    /// acknowledgment traveling back to the home.
    OwnerAck {
        /// Acknowledged page.
        vpn: Vpn,
        /// The owner that serviced the forward.
        from: NodeId,
        /// Access that was granted.
        access: Access,
    },
    /// Sharded mode: a batched revocation traveling to an owner (one
    /// page per entry here — the model's directory emits singleton
    /// batches, which the runtime aggregates per destination).
    InvBatch {
        /// Target owner.
        to: NodeId,
        /// Page being revoked.
        vpn: Vpn,
        /// Target must ship page contents back.
        needs_data: bool,
    },
    /// Sharded mode: the aggregated revocation acknowledgment.
    InvBatchAck {
        /// Acknowledged page.
        vpn: Vpn,
        /// Acknowledging node.
        from: NodeId,
        /// Ack carries the only up-to-date copy.
        carried_data: bool,
    },
}

impl Msg {
    /// The page this message concerns.
    pub fn vpn(self) -> Vpn {
        match self {
            Msg::Request { vpn, .. }
            | Msg::Invalidate { vpn, .. }
            | Msg::InvAck { vpn, .. }
            | Msg::Flush { vpn, .. }
            | Msg::FlushAck { vpn, .. }
            | Msg::Grant { vpn, .. }
            | Msg::Retry { vpn, .. }
            | Msg::Forward { vpn, .. }
            | Msg::OwnerAck { vpn, .. }
            | Msg::InvBatch { vpn, .. }
            | Msg::InvBatchAck { vpn, .. } => vpn,
        }
    }

    fn canonical(self) -> [u64; 4] {
        match self {
            Msg::Request {
                thread,
                vpn,
                access,
            } => [1, thread as u64, vpn.index(), access.is_write() as u64],
            Msg::Invalidate {
                to,
                vpn,
                needs_data,
            } => [2, to.0 as u64, vpn.index(), needs_data as u64],
            Msg::InvAck {
                vpn,
                from,
                carried_data,
            } => [3, from.0 as u64, vpn.index(), carried_data as u64],
            Msg::Flush { to, vpn } => [4, to.0 as u64, vpn.index(), 0],
            Msg::FlushAck { vpn, from } => [5, from.0 as u64, vpn.index(), 0],
            Msg::Grant {
                from,
                thread,
                vpn,
                access,
                with_data,
            } => [
                6,
                thread as u64 | (from.0 as u64) << 32,
                vpn.index(),
                access.is_write() as u64 | (with_data as u64) << 1,
            ],
            Msg::Retry {
                from,
                thread,
                vpn,
                access,
            } => [
                7,
                thread as u64 | (from.0 as u64) << 32,
                vpn.index(),
                access.is_write() as u64,
            ],
            Msg::Forward {
                to,
                thread,
                vpn,
                access,
            } => [
                8,
                thread as u64 | (to.0 as u64) << 32,
                vpn.index(),
                access.is_write() as u64,
            ],
            Msg::OwnerAck { vpn, from, access } => {
                [9, from.0 as u64, vpn.index(), access.is_write() as u64]
            }
            Msg::InvBatch {
                to,
                vpn,
                needs_data,
            } => [10, to.0 as u64, vpn.index(), needs_data as u64],
            Msg::InvBatchAck {
                vpn,
                from,
                carried_data,
            } => [11, from.0 as u64, vpn.index(), carried_data as u64],
        }
    }
}

impl std::fmt::Display for Msg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Msg::Request {
                thread,
                vpn,
                access,
            } => write!(f, "request({access} page {}) from T{thread}", vpn.index()),
            Msg::Invalidate {
                to,
                vpn,
                needs_data,
            } => write!(
                f,
                "invalidate(page {}) to node {to}{}",
                vpn.index(),
                if *needs_data { " +data" } else { "" }
            ),
            Msg::InvAck { vpn, from, .. } => {
                write!(f, "inv-ack(page {}) from node {from}", vpn.index())
            }
            Msg::Flush { to, vpn } => write!(f, "flush(page {}) to node {to}", vpn.index()),
            Msg::FlushAck { vpn, from } => {
                write!(f, "flush-ack(page {}) from node {from}", vpn.index())
            }
            Msg::Grant {
                from,
                thread,
                vpn,
                access,
                ..
            } => write!(
                f,
                "grant({access} page {}) to T{thread} from node {from}",
                vpn.index()
            ),
            Msg::Retry { thread, vpn, .. } => {
                write!(f, "retry(page {}) to T{thread}", vpn.index())
            }
            Msg::Forward {
                to,
                thread,
                vpn,
                access,
            } => write!(
                f,
                "forward({access} page {} for T{thread}) to owner node {to}",
                vpn.index()
            ),
            Msg::OwnerAck { vpn, from, .. } => {
                write!(f, "owner-ack(page {}) from node {from}", vpn.index())
            }
            Msg::InvBatch {
                to,
                vpn,
                needs_data,
            } => write!(
                f,
                "inv-batch(page {}) to node {to}{}",
                vpn.index(),
                if *needs_data { " +data" } else { "" }
            ),
            Msg::InvBatchAck { vpn, from, .. } => {
                write!(f, "inv-batch-ack(page {}) from node {from}", vpn.index())
            }
        }
    }
}

/// A protocol bug injected into the model, used to validate that the
/// checker's invariants have teeth.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Mutation {
    /// Faithful protocol (the default).
    #[default]
    None,
    /// A revoked node acknowledges the invalidation but keeps its stale
    /// mapping — a lost invalidation.
    SkipInvalidateApply,
    /// An invalidation acknowledgment is lost in the fabric — the
    /// transaction never drains.
    DropInvAck,
    /// The origin ignores `DowngradeOriginPte` and keeps its writable
    /// mapping while replicating readers — broken exclusivity.
    SkipOriginDowngrade,
    /// A granted leader never wakes its coalesced followers — lost
    /// wakeup, the followers hang forever.
    DropWakeup,
    /// A coalescing follower also sends its own request instead of
    /// waiting for the leader — the directory may grant the follower
    /// before the leader.
    FollowerBypass,
    /// The node handing exclusivity away (the origin classically, a
    /// forwarding owner in sharded mode) keeps its writable mapping —
    /// broken ownership transfer.
    KeepOriginPte,
}

impl Mutation {
    /// All injectable mutations (excludes [`Mutation::None`]).
    pub const ALL: [Mutation; 6] = [
        Mutation::SkipInvalidateApply,
        Mutation::DropInvAck,
        Mutation::SkipOriginDowngrade,
        Mutation::DropWakeup,
        Mutation::FollowerBypass,
        Mutation::KeepOriginPte,
    ];

    /// Parses the CLI spelling of a mutation.
    pub fn parse(name: &str) -> Option<Mutation> {
        Some(match name {
            "none" => Mutation::None,
            "skip-invalidate" => Mutation::SkipInvalidateApply,
            "drop-ack" => Mutation::DropInvAck,
            "skip-downgrade" => Mutation::SkipOriginDowngrade,
            "drop-wakeup" => Mutation::DropWakeup,
            "follower-bypass" => Mutation::FollowerBypass,
            "keep-origin-pte" => Mutation::KeepOriginPte,
            _ => return None,
        })
    }

    /// The CLI spelling of this mutation.
    pub fn name(self) -> &'static str {
        match self {
            Mutation::None => "none",
            Mutation::SkipInvalidateApply => "skip-invalidate",
            Mutation::DropInvAck => "drop-ack",
            Mutation::SkipOriginDowngrade => "skip-downgrade",
            Mutation::DropWakeup => "drop-wakeup",
            Mutation::FollowerBypass => "follower-bypass",
            Mutation::KeepOriginPte => "keep-origin-pte",
        }
    }
}

/// Configuration of a model instance.
#[derive(Clone, Debug)]
pub struct ModelConfig {
    /// Number of nodes (node 0 is the origin).
    pub nodes: u16,
    /// Number of pages (vpns `0..pages`).
    pub pages: u64,
    /// Home node of each modeled thread (`threads[i]` = node of thread
    /// `i`). Two threads on one node exercise fault coalescing.
    pub threads: Vec<u16>,
    /// Injected protocol bug.
    pub mutation: Mutation,
    /// Model the sharded-directory variant: the directory lives at a
    /// non-origin home node (node 1 when the world has one) and runs
    /// the two-hop protocol — owner-forwarded grants and batched
    /// invalidations — instead of the classic origin-centric one.
    pub sharded: bool,
}

impl ModelConfig {
    /// One thread per node, no mutation, classic (unsharded) directory.
    pub fn new(nodes: u16, pages: u64) -> Self {
        ModelConfig {
            nodes,
            pages,
            threads: (0..nodes).collect(),
            mutation: Mutation::None,
            sharded: false,
        }
    }

    /// Adds a second thread on node `node` (enables coalescing paths).
    pub fn with_extra_thread(mut self, node: u16) -> Self {
        assert!(node < self.nodes);
        self.threads.push(node);
        self
    }

    /// Sets the injected mutation.
    pub fn with_mutation(mut self, mutation: Mutation) -> Self {
        self.mutation = mutation;
        self
    }

    /// Switches the model to the sharded-directory (two-hop) variant.
    pub fn with_sharding(mut self) -> Self {
        self.sharded = true;
        self
    }

    /// The node hosting the directory: the origin classically; node 1
    /// in the sharded variant (so home ≠ origin paths are exercised)
    /// when the world has more than one node.
    pub fn home(&self) -> NodeId {
        NodeId(if self.sharded && self.nodes > 1 { 1 } else { 0 })
    }
}

/// One transition of the model.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ModelEvent {
    /// An idle thread begins an operation.
    Issue {
        /// The acting thread.
        thread: usize,
        /// The operation.
        op: Op,
    },
    /// A backed-off thread re-sends its request.
    ReIssue {
        /// The retrying thread.
        thread: usize,
    },
    /// The in-flight message at `msg` (current insertion order) arrives.
    Deliver {
        /// Index into the state's message list.
        msg: usize,
    },
}

/// A safety violation detected while applying an event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Which invariant broke.
    pub invariant: &'static str,
    /// Human-readable details.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.invariant, self.detail)
    }
}

/// The full world state: directory + per-node page tables + in-flight
/// messages + thread states.
#[derive(Clone)]
pub struct ModelState {
    config: ModelConfig,
    dir: Directory,
    ptes: Vec<PageTable>,
    msgs: Vec<Msg>,
    threads: Vec<ThreadState>,
    /// Sharded mode: protocol messages a node has parked because a
    /// grant for the same page is still in flight to it (the runtime's
    /// requester-side deferral). Released when the grant (or retry)
    /// lands.
    deferred: Vec<(NodeId, Msg)>,
}

impl ModelState {
    /// The initial state: every page mapped read-write at the origin,
    /// nothing in flight, every thread idle.
    pub fn new(config: ModelConfig) -> Self {
        assert!(config.nodes >= 1 && config.nodes <= 64);
        assert!(config.threads.iter().all(|&n| n < config.nodes));
        let mut ptes: Vec<PageTable> = (0..config.nodes).map(|_| PageTable::new()).collect();
        for vpn in 0..config.pages {
            ptes[0].set(Vpn::new(vpn), Pte::READ_WRITE);
        }
        let threads = vec![ThreadState::Idle; config.threads.len()];
        let dir = if config.sharded {
            Directory::forwarded(config.home(), NodeId(0))
        } else {
            Directory::new(NodeId(0))
        };
        ModelState {
            dir,
            ptes,
            msgs: Vec::new(),
            threads,
            deferred: Vec::new(),
            config,
        }
    }

    /// The model's configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// The origin directory (checker introspection).
    pub fn directory(&self) -> &Directory {
        &self.dir
    }

    /// The page table of `node`.
    pub fn page_table(&self, node: NodeId) -> &PageTable {
        &self.ptes[node.0 as usize]
    }

    /// In-flight messages in insertion order.
    pub fn messages(&self) -> &[Msg] {
        &self.msgs
    }

    /// Number of parked messages awaiting an in-flight grant (sharded
    /// mode's requester-side deferral).
    pub fn deferred_len(&self) -> usize {
        self.deferred.len()
    }

    /// Thread states, indexed by thread id.
    pub fn threads(&self) -> &[ThreadState] {
        &self.threads
    }

    /// The home node of thread `t`.
    pub fn thread_node(&self, t: usize) -> NodeId {
        NodeId(self.config.threads[t])
    }

    fn requester_for(&self, thread: usize) -> Requester {
        let node = self.thread_node(thread);
        if node == self.config.home() {
            Requester::Local {
                req_id: thread as u64,
            }
        } else {
            Requester::Remote {
                node,
                req_id: thread as u64,
            }
        }
    }

    fn thread_of(&self, requester: Requester) -> usize {
        let req_id = match requester {
            Requester::Remote { req_id, .. } | Requester::Local { req_id } => req_id,
        };
        req_id as usize
    }

    /// The ordered fabric channel `(src, dst)` a message travels on.
    ///
    /// DEX runs over RDMA reliable connections, which deliver in order
    /// per connection; the single-writer invariant *depends* on that
    /// ordering (a read `Grant` overtaken by a later `Invalidate` to the
    /// same node would resurrect a revoked mapping). The model therefore
    /// only enables delivery of the *oldest* in-flight message on each
    /// channel; messages on distinct channels still interleave freely.
    fn channel_of(&self, m: &Msg) -> (NodeId, NodeId) {
        let home = self.config.home();
        match *m {
            Msg::Request { thread, .. } => (self.thread_node(thread), home),
            Msg::Invalidate { to, .. } | Msg::Flush { to, .. } | Msg::InvBatch { to, .. } => {
                (home, to)
            }
            Msg::InvAck { from, .. }
            | Msg::FlushAck { from, .. }
            | Msg::OwnerAck { from, .. }
            | Msg::InvBatchAck { from, .. } => (from, home),
            // Grants/retries travel from their actual sender: a
            // forwarded grant (owner → requester) rides a different
            // channel than the home's own traffic, so the two reorder
            // freely — the hazard requester-side deferral absorbs.
            Msg::Grant { from, thread, .. } | Msg::Retry { from, thread, .. } => {
                (from, self.thread_node(thread))
            }
            Msg::Forward { to, .. } => (home, to),
        }
    }

    /// Whether in-flight message `m` is at the head of its FIFO channel.
    fn is_channel_head(&self, m: usize) -> bool {
        let chan = self.channel_of(&self.msgs[m]);
        !self.msgs[..m].iter().any(|e| self.channel_of(e) == chan)
    }

    /// True when no message is in flight, no transaction is open, and
    /// every thread is idle — the drained states liveness requires to be
    /// co-reachable from every reachable state.
    pub fn is_quiescent(&self) -> bool {
        self.msgs.is_empty()
            && self.deferred.is_empty()
            && self.threads.iter().all(|t| *t == ThreadState::Idle)
            && (0..self.config.pages).all(|v| !self.dir.has_txn(Vpn::new(v)))
    }

    /// Whether any in-flight message or open transaction concerns `vpn`.
    fn page_in_flight(&self, vpn: Vpn) -> bool {
        self.dir.has_txn(vpn)
            || self.msgs.iter().any(|m| m.vpn() == vpn)
            || self.deferred.iter().any(|(_, m)| m.vpn() == vpn)
            || self.threads.iter().any(|t| match *t {
                ThreadState::Idle => false,
                ThreadState::Waiting { vpn: v, .. }
                | ThreadState::Backoff { vpn: v, .. }
                | ThreadState::Follower { vpn: v, .. } => v == vpn,
            })
    }

    /// Every event enabled in this state.
    pub fn enabled_events(&self) -> Vec<ModelEvent> {
        let mut events = Vec::new();
        for (t, state) in self.threads.iter().enumerate() {
            match *state {
                ThreadState::Idle => {
                    let node = self.thread_node(t);
                    for v in 0..self.config.pages {
                        let vpn = Vpn::new(v);
                        let pte = self.ptes[node.0 as usize].entry(vpn);
                        // A thread only enters the protocol on a fault.
                        if !pte.permits(Access::Read) {
                            events.push(ModelEvent::Issue {
                                thread: t,
                                op: Op::Read(vpn),
                            });
                        }
                        if !pte.permits(Access::Write) {
                            events.push(ModelEvent::Issue {
                                thread: t,
                                op: Op::Write(vpn),
                            });
                        }
                        // Unmap models a synchronous VMA broadcast; the
                        // caller guarantees the page is quiescent.
                        if !self.page_in_flight(vpn) {
                            events.push(ModelEvent::Issue {
                                thread: t,
                                op: Op::Evict(vpn),
                            });
                        }
                    }
                }
                ThreadState::Backoff { .. } => events.push(ModelEvent::ReIssue { thread: t }),
                ThreadState::Waiting { .. } | ThreadState::Follower { .. } => {}
            }
        }
        for m in 0..self.msgs.len() {
            // Per-channel FIFO: the fabric (RDMA RC) delivers in order,
            // so only the oldest message on each (src, dst) channel is
            // deliverable. See [`Self::channel_of`].
            if self.is_channel_head(m) {
                events.push(ModelEvent::Deliver { msg: m });
            }
        }
        events
    }

    /// Applies `event`, returning the safety violations it exposes.
    ///
    /// # Panics
    ///
    /// Panics if `event` is not enabled in this state (checker bug).
    pub fn apply(&mut self, event: ModelEvent) -> Vec<Violation> {
        let mut violations = Vec::new();
        match event {
            ModelEvent::Issue { thread, op } => match op {
                Op::Read(vpn) => self.issue_fault(thread, vpn, Access::Read),
                Op::Write(vpn) => self.issue_fault(thread, vpn, Access::Write),
                Op::Evict(vpn) => self.evict(vpn),
            },
            ModelEvent::ReIssue { thread } => {
                let (vpn, access) = match self.threads[thread] {
                    ThreadState::Backoff { vpn, access } => (vpn, access),
                    other => panic!("re-issue from non-backoff state {other:?}"),
                };
                self.threads[thread] = ThreadState::Waiting { vpn, access };
                self.msgs.push(Msg::Request {
                    thread,
                    vpn,
                    access,
                });
            }
            ModelEvent::Deliver { msg } => {
                let m = self.msgs.remove(msg);
                self.deliver(m, &mut violations);
            }
        }
        self.check_safety(&mut violations);
        violations
    }

    fn issue_fault(&mut self, thread: usize, vpn: Vpn, access: Access) {
        // Leader–follower coalescing: join a same-node sibling already
        // negotiating the same (page, access-class) fault.
        let node = self.thread_node(thread);
        let leader = self.threads.iter().enumerate().find_map(|(u, s)| {
            if u == thread || self.thread_node(u) != node {
                return None;
            }
            match *s {
                ThreadState::Waiting { vpn: v, access: a }
                | ThreadState::Backoff { vpn: v, access: a }
                    if v == vpn && a.is_write() == access.is_write() =>
                {
                    Some(u)
                }
                _ => None,
            }
        });
        if let Some(leader) = leader {
            self.threads[thread] = ThreadState::Follower {
                vpn,
                access,
                leader,
            };
            if self.config.mutation == Mutation::FollowerBypass {
                // Bug: the follower races its own request to the origin.
                self.msgs.push(Msg::Request {
                    thread,
                    vpn,
                    access,
                });
            }
            return;
        }
        self.threads[thread] = ThreadState::Waiting { vpn, access };
        self.msgs.push(Msg::Request {
            thread,
            vpn,
            access,
        });
    }

    fn evict(&mut self, vpn: Vpn) {
        // Synchronous origin-side unmap: revoke every remote copy, then
        // forget the page; re-touching it re-creates the origin-exclusive
        // default, so the origin mapping resets to read-write.
        let revokes = self.dir.drop_pages(&[vpn]);
        for (node, v) in revokes {
            self.ptes[node.0 as usize].clear(v);
        }
        self.ptes[0].set(vpn, Pte::READ_WRITE);
    }

    fn deliver(&mut self, m: Msg, violations: &mut Vec<Violation>) {
        match m {
            Msg::Request {
                thread,
                vpn,
                access,
            } => {
                let requester = self.requester_for(thread);
                let actions = self.dir.request(vpn, access, requester);
                self.run_actions(vpn, actions, violations);
            }
            Msg::Invalidate {
                to,
                vpn,
                needs_data,
            } => {
                if self.config.mutation != Mutation::SkipInvalidateApply {
                    self.ptes[to.0 as usize].clear(vpn);
                }
                if self.config.mutation == Mutation::DropInvAck {
                    return; // The ack is lost in the fabric.
                }
                self.msgs.push(Msg::InvAck {
                    vpn,
                    from: to,
                    carried_data: needs_data,
                });
            }
            Msg::InvAck {
                vpn,
                from,
                carried_data,
            } => {
                let actions = self.dir.invalidate_ack(vpn, from, carried_data);
                self.run_actions(vpn, actions, violations);
            }
            Msg::Flush { to, vpn } => {
                self.ptes[to.0 as usize].downgrade(vpn);
                self.msgs.push(Msg::FlushAck { vpn, from: to });
            }
            Msg::FlushAck { vpn, from } => {
                let actions = self.dir.flush_ack(vpn, from);
                self.run_actions(vpn, actions, violations);
            }
            Msg::Grant {
                thread,
                vpn,
                access,
                ..
            } => {
                self.complete_grant(thread, vpn, access, violations);
                self.maybe_release_deferred(self.thread_node(thread), vpn);
            }
            Msg::Retry {
                thread,
                vpn,
                access,
                ..
            } => {
                self.threads[thread] = ThreadState::Backoff { vpn, access };
                self.maybe_release_deferred(self.thread_node(thread), vpn);
            }
            Msg::Forward {
                to,
                thread,
                vpn,
                access,
            } => {
                if self.node_waiting_on(to, vpn) {
                    // A grant for this page is still in flight to the
                    // new owner: servicing the forward now would grant
                    // from a copy the node does not hold yet. Park it.
                    self.deferred.push((
                        to,
                        Msg::Forward {
                            to,
                            thread,
                            vpn,
                            access,
                        },
                    ));
                } else {
                    self.apply_forward(to, thread, vpn, access);
                }
            }
            Msg::OwnerAck { vpn, from, .. } => {
                let actions = self.dir.owner_ack(vpn, from);
                self.run_actions(vpn, actions, violations);
            }
            Msg::InvBatch {
                to,
                vpn,
                needs_data,
            } => {
                if self.node_waiting_on(to, vpn) {
                    // The revocation overtook the grant it revokes
                    // (different channels): defer until the grant lands.
                    self.deferred.push((
                        to,
                        Msg::InvBatch {
                            to,
                            vpn,
                            needs_data,
                        },
                    ));
                } else {
                    self.apply_inv_batch(to, vpn, needs_data);
                }
            }
            Msg::InvBatchAck {
                vpn,
                from,
                carried_data,
            } => {
                let actions = self.dir.invalidate_ack(vpn, from, carried_data);
                self.run_actions(vpn, actions, violations);
            }
        }
    }

    /// Whether some thread homed at `node` still awaits a grant for
    /// `vpn` — the model analogue of the runtime's in-flight mark.
    fn node_waiting_on(&self, node: NodeId, vpn: Vpn) -> bool {
        self.threads.iter().enumerate().any(|(t, s)| {
            self.thread_node(t) == node
                && matches!(*s, ThreadState::Waiting { vpn: v, .. } if v == vpn)
        })
    }

    /// Releases work parked at `(node, vpn)` once no grant is in flight
    /// to that node for that page anymore.
    fn maybe_release_deferred(&mut self, node: NodeId, vpn: Vpn) {
        if self.node_waiting_on(node, vpn) {
            return; // another same-page grant is still outstanding
        }
        let mut i = 0;
        while i < self.deferred.len() {
            if self.deferred[i].0 == node && self.deferred[i].1.vpn() == vpn {
                let (_, m) = self.deferred.remove(i);
                match m {
                    Msg::Forward {
                        to,
                        thread,
                        vpn,
                        access,
                    } => self.apply_forward(to, thread, vpn, access),
                    Msg::InvBatch {
                        to,
                        vpn,
                        needs_data,
                    } => self.apply_inv_batch(to, vpn, needs_data),
                    other => panic!("non-deferrable message parked: {other}"),
                }
            } else {
                i += 1;
            }
        }
    }

    /// Owner-side servicing of a forwarded request: adjust the local
    /// mapping, grant straight to the requester, ack the home.
    fn apply_forward(&mut self, to: NodeId, thread: usize, vpn: Vpn, access: Access) {
        if access.is_write() {
            // Mutation: the forwarding owner keeps its mapping after
            // handing exclusivity away.
            if self.config.mutation != Mutation::KeepOriginPte {
                self.ptes[to.0 as usize].clear(vpn);
            }
        } else {
            self.ptes[to.0 as usize].downgrade(vpn);
        }
        self.msgs.push(Msg::Grant {
            from: to,
            thread,
            vpn,
            access,
            with_data: true,
        });
        self.msgs.push(Msg::OwnerAck {
            vpn,
            from: to,
            access,
        });
    }

    /// A node's handling of one batched-revocation entry.
    fn apply_inv_batch(&mut self, to: NodeId, vpn: Vpn, needs_data: bool) {
        if self.config.mutation != Mutation::SkipInvalidateApply {
            self.ptes[to.0 as usize].clear(vpn);
        }
        if self.config.mutation == Mutation::DropInvAck {
            return; // The ack is lost in the fabric.
        }
        self.msgs.push(Msg::InvBatchAck {
            vpn,
            from: to,
            carried_data: needs_data,
        });
    }

    fn run_actions(&mut self, vpn: Vpn, actions: Vec<DirAction>, violations: &mut Vec<Violation>) {
        for action in actions {
            match action {
                DirAction::Grant {
                    to,
                    access,
                    with_data,
                } => {
                    let thread = self.thread_of(to);
                    if matches!(to, Requester::Local { .. }) {
                        // Home-local grants complete synchronously.
                        self.complete_grant(thread, vpn, access, violations);
                    } else {
                        self.msgs.push(Msg::Grant {
                            from: self.config.home(),
                            thread,
                            vpn,
                            access,
                            with_data,
                        });
                    }
                }
                DirAction::Retry { to } => {
                    let thread = self.thread_of(to);
                    let access = match self.threads[thread] {
                        ThreadState::Waiting { access, .. }
                        | ThreadState::Backoff { access, .. }
                        | ThreadState::Follower { access, .. } => access,
                        ThreadState::Idle => {
                            // A retry addressed to a thread with no
                            // outstanding request: the faithful protocol
                            // never does this, so surface it as a
                            // violation instead of crashing the checker
                            // (mutated protocols do reach this state).
                            violations.push(Violation {
                                invariant: "request/response pairing",
                                detail: format!(
                                    "retry for page {} addressed to idle thread T{thread}",
                                    vpn.index()
                                ),
                            });
                            continue;
                        }
                    };
                    if matches!(to, Requester::Local { .. }) {
                        self.threads[thread] = ThreadState::Backoff { vpn, access };
                    } else {
                        self.msgs.push(Msg::Retry {
                            from: self.config.home(),
                            thread,
                            vpn,
                            access,
                        });
                    }
                }
                DirAction::SendFlush { to } => self.msgs.push(Msg::Flush { to, vpn }),
                DirAction::SendInvalidate { to, needs_data } => self.msgs.push(Msg::Invalidate {
                    to,
                    vpn,
                    needs_data,
                }),
                DirAction::ClearOriginPte => {
                    // Mutation: the handling node keeps its mapping after
                    // handing ownership away.
                    if self.config.mutation != Mutation::KeepOriginPte {
                        self.ptes[self.config.home().0 as usize].clear(vpn);
                    }
                }
                DirAction::DowngradeOriginPte => {
                    if self.config.mutation != Mutation::SkipOriginDowngrade {
                        self.ptes[self.config.home().0 as usize].downgrade(vpn);
                    }
                }
                DirAction::SetOriginPteRo => {
                    self.ptes[self.config.home().0 as usize].set(vpn, Pte::READ_ONLY);
                }
                DirAction::InstallOriginData => {} // Data movement: no protocol state.
                DirAction::Forward {
                    to,
                    requester,
                    access,
                } => {
                    let thread = self.thread_of(requester);
                    self.msgs.push(Msg::Forward {
                        to,
                        thread,
                        vpn,
                        access,
                    });
                }
                DirAction::SendInvalidateBatch { to, entries } => {
                    for (v, needs_data) in entries {
                        self.msgs.push(Msg::InvBatch {
                            to,
                            vpn: v,
                            needs_data,
                        });
                    }
                }
                DirAction::DropHomeCopy { .. } => {
                    // The home's own replica is one of the doomed copies;
                    // data staging is not protocol state.
                    self.ptes[self.config.home().0 as usize].clear(vpn);
                }
            }
        }
    }

    fn complete_grant(
        &mut self,
        thread: usize,
        vpn: Vpn,
        access: Access,
        violations: &mut Vec<Violation>,
    ) {
        if let ThreadState::Follower { leader, .. } = self.threads[thread] {
            violations.push(Violation {
                invariant: "leader-follower ordering",
                detail: format!(
                    "follower T{thread} (leader T{leader}) granted {access} on page {} \
                     before its leader completed",
                    vpn.index()
                ),
            });
        }
        let node = self.thread_node(thread);
        let table = &mut self.ptes[node.0 as usize];
        match access {
            Access::Write => table.set(vpn, Pte::READ_WRITE),
            Access::Read => {
                // The degenerate read-grant to the current writer keeps
                // the writable mapping.
                if !table.entry(vpn).writable {
                    table.set(vpn, Pte::READ_ONLY);
                }
            }
        }
        self.threads[thread] = ThreadState::Idle;
        // Release coalesced followers: the leader installed the mapping
        // on behalf of the whole node.
        if self.config.mutation != Mutation::DropWakeup {
            for u in 0..self.threads.len() {
                if let ThreadState::Follower { leader, .. } = self.threads[u] {
                    if leader == thread {
                        self.threads[u] = ThreadState::Idle;
                    }
                }
            }
        }
    }

    /// Checks every state-level safety invariant, appending violations.
    pub fn check_safety(&self, violations: &mut Vec<Violation>) {
        for v in 0..self.config.pages {
            let vpn = Vpn::new(v);
            // (1) Single-writer exclusivity over the PTE views: a
            // writable mapping anywhere precludes the page being present
            // anywhere else. This must hold in EVERY reachable state.
            let present: Vec<NodeId> = (0..self.config.nodes)
                .map(NodeId)
                .filter(|n| self.ptes[n.0 as usize].entry(vpn).present)
                .collect();
            let writable: Vec<NodeId> = present
                .iter()
                .copied()
                .filter(|n| self.ptes[n.0 as usize].entry(vpn).writable)
                .collect();
            if !writable.is_empty() && present.len() > 1 {
                violations.push(Violation {
                    invariant: "single-writer exclusivity",
                    detail: format!(
                        "page {v}: node {} maps it writable while nodes {:?} also map it",
                        writable[0],
                        present
                            .iter()
                            .filter(|n| **n != writable[0])
                            .collect::<Vec<_>>()
                    ),
                });
            }
            if writable.len() > 1 {
                violations.push(Violation {
                    invariant: "single-writer exclusivity",
                    detail: format!("page {v}: multiple writable mappings on nodes {writable:?}"),
                });
            }
            // (2)+(3) Owner-set/PTE agreement and no lost invalidations:
            // once a page is quiescent (no transaction, no in-flight
            // message, no waiting thread), the nodes that map it must be
            // exactly the directory's owner set, and the writable node
            // must be the registered writer.
            if !self.page_in_flight(vpn) {
                let model = self.dir.page_model(vpn);
                let mapped: NodeSet = present.iter().copied().collect();
                if mapped != model.owners {
                    violations.push(Violation {
                        invariant: "owner-set/PTE agreement",
                        detail: format!(
                            "page {v}: directory owners {:?} but mapped on {:?} \
                             (stale or lost invalidation)",
                            model.owners, mapped
                        ),
                    });
                }
                match model.writer {
                    Some(w) if !self.ptes[w.0 as usize].entry(vpn).writable => {
                        violations.push(Violation {
                            invariant: "owner-set/PTE agreement",
                            detail: format!(
                                "page {v}: directory writer {w} lacks a writable mapping"
                            ),
                        });
                    }
                    None if !writable.is_empty() => {
                        violations.push(Violation {
                            invariant: "owner-set/PTE agreement",
                            detail: format!(
                                "page {v}: no directory writer but node {} maps it writable",
                                writable[0]
                            ),
                        });
                    }
                    _ => {}
                }
            }
        }
        // The directory's own internal consistency.
        if let Err(err) = self.dir.check_invariants() {
            violations.push(Violation {
                invariant: "directory internal consistency",
                detail: err,
            });
        }
    }

    /// A canonical, order-independent encoding of the whole world state
    /// for seen-set deduplication.
    pub fn canonical_key(&self) -> Vec<u64> {
        let mut key = self.dir.canonical();
        key.push(u64::MAX); // Section separator.
        for pt in &self.ptes {
            for (vpn, pte) in pt.iter() {
                key.push(vpn.index() << 2 | (pte.present as u64) << 1 | pte.writable as u64);
            }
            key.push(u64::MAX - 1);
        }
        let mut msgs: Vec<[u64; 4]> = self.msgs.iter().map(|m| m.canonical()).collect();
        msgs.sort_unstable();
        for m in msgs {
            key.extend_from_slice(&m);
        }
        key.push(u64::MAX);
        let mut parked: Vec<[u64; 5]> = self
            .deferred
            .iter()
            .map(|(n, m)| {
                let c = m.canonical();
                [n.0 as u64, c[0], c[1], c[2], c[3]]
            })
            .collect();
        parked.sort_unstable();
        for p in parked {
            key.extend_from_slice(&p);
        }
        key.push(u64::MAX);
        for t in &self.threads {
            key.push(match *t {
                ThreadState::Idle => 0,
                ThreadState::Waiting { vpn, access } => {
                    1 | vpn.index() << 8 | (access.is_write() as u64) << 4
                }
                ThreadState::Backoff { vpn, access } => {
                    2 | vpn.index() << 8 | (access.is_write() as u64) << 4
                }
                ThreadState::Follower {
                    vpn,
                    access,
                    leader,
                } => 3 | vpn.index() << 8 | (access.is_write() as u64) << 4 | (leader as u64) << 32,
            });
        }
        key
    }

    /// Renders the state compactly (counterexample traces).
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for v in 0..self.config.pages {
            let vpn = Vpn::new(v);
            let model = self.dir.page_model(vpn);
            let mapped: Vec<String> = (0..self.config.nodes)
                .filter_map(|n| {
                    let pte = self.ptes[n as usize].entry(vpn);
                    if pte.present {
                        Some(format!("{n}{}", if pte.writable { "w" } else { "r" }))
                    } else {
                        None
                    }
                })
                .collect();
            let _ = write!(
                out,
                "page {v}: owners={:?} writer={:?} txn={} mapped=[{}]  ",
                model.owners,
                model.writer.map(|w| w.0),
                if model.txn.is_some() { "yes" } else { "no" },
                mapped.join(",")
            );
        }
        let _ = write!(
            out,
            "msgs={} deferred={} threads={:?}",
            self.msgs.len(),
            self.deferred.len(),
            self.threads
        );
        out
    }
}

impl std::fmt::Debug for ModelState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.describe())
    }
}

impl std::fmt::Display for ModelEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelEvent::Issue { thread, op } => write!(f, "T{thread}: {op}"),
            ModelEvent::ReIssue { thread } => write!(f, "T{thread}: re-issue after retry"),
            ModelEvent::Deliver { msg } => write!(f, "deliver message #{msg}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(state: &mut ModelState) -> Vec<Violation> {
        // Deliver messages (FIFO) until quiescent; no new ops issued.
        let mut violations = Vec::new();
        let mut budget = 10_000;
        while !state.msgs.is_empty() {
            budget -= 1;
            assert!(budget > 0, "model failed to drain");
            violations.extend(state.apply(ModelEvent::Deliver { msg: 0 }));
        }
        violations
    }

    #[test]
    fn initial_state_is_quiescent_and_clean() {
        let state = ModelState::new(ModelConfig::new(3, 2));
        assert!(state.is_quiescent());
        let mut violations = Vec::new();
        state.check_safety(&mut violations);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn remote_write_transfers_ownership() {
        let mut state = ModelState::new(ModelConfig::new(2, 1));
        let vpn = Vpn::new(0);
        let mut violations = state.apply(ModelEvent::Issue {
            thread: 1,
            op: Op::Write(vpn),
        });
        violations.extend(drain(&mut state));
        assert!(violations.is_empty(), "{violations:?}");
        assert!(state.is_quiescent());
        assert_eq!(state.directory().current_writer(vpn), Some(NodeId(1)));
        assert!(state.page_table(NodeId(1)).entry(vpn).writable);
        assert!(!state.page_table(NodeId(0)).entry(vpn).present);
    }

    #[test]
    fn skip_invalidate_mutation_is_caught() {
        let cfg = ModelConfig::new(3, 1).with_mutation(Mutation::SkipInvalidateApply);
        let mut state = ModelState::new(cfg);
        let vpn = Vpn::new(0);
        // Node 1 reads (replica), then node 2 writes (revokes node 1).
        let mut violations = state.apply(ModelEvent::Issue {
            thread: 1,
            op: Op::Read(vpn),
        });
        violations.extend(drain(&mut state));
        violations.extend(state.apply(ModelEvent::Issue {
            thread: 2,
            op: Op::Write(vpn),
        }));
        violations.extend(drain(&mut state));
        assert!(
            violations
                .iter()
                .any(|v| v.invariant.contains("exclusivity") || v.invariant.contains("agreement")),
            "stale mapping must be detected: {violations:?}"
        );
    }

    #[test]
    fn drop_ack_mutation_prevents_drain() {
        let cfg = ModelConfig::new(3, 1).with_mutation(Mutation::DropInvAck);
        let mut state = ModelState::new(cfg);
        let vpn = Vpn::new(0);
        let mut v = state.apply(ModelEvent::Issue {
            thread: 1,
            op: Op::Read(vpn),
        });
        v.extend(drain(&mut state));
        v.extend(state.apply(ModelEvent::Issue {
            thread: 2,
            op: Op::Write(vpn),
        }));
        // Deliver everything deliverable; the transaction must stay open.
        let mut budget = 100;
        while !state.msgs.is_empty() && budget > 0 {
            state.apply(ModelEvent::Deliver { msg: 0 });
            budget -= 1;
        }
        assert!(state.directory().has_txn(vpn), "txn should never drain");
        assert!(!state.is_quiescent());
    }

    #[test]
    fn coalesced_follower_completes_with_leader() {
        let cfg = ModelConfig::new(2, 1).with_extra_thread(1);
        let mut state = ModelState::new(cfg);
        let vpn = Vpn::new(0);
        // Thread 1 (node 1) write-faults; thread 2 (node 1) coalesces.
        state.apply(ModelEvent::Issue {
            thread: 1,
            op: Op::Write(vpn),
        });
        state.apply(ModelEvent::Issue {
            thread: 2,
            op: Op::Write(vpn),
        });
        assert!(matches!(
            state.threads()[2],
            ThreadState::Follower { leader: 1, .. }
        ));
        let violations = drain(&mut state);
        assert!(violations.is_empty(), "{violations:?}");
        assert_eq!(state.threads()[1], ThreadState::Idle);
        assert_eq!(state.threads()[2], ThreadState::Idle, "follower released");
    }

    #[test]
    fn canonical_key_is_stable_under_message_reordering() {
        let mut a = ModelState::new(ModelConfig::new(3, 1));
        let mut b = a.clone();
        let vpn = Vpn::new(0);
        // Same requests issued in different orders; before any delivery
        // the in-flight multisets are equal.
        a.apply(ModelEvent::Issue {
            thread: 1,
            op: Op::Read(vpn),
        });
        a.apply(ModelEvent::Issue {
            thread: 2,
            op: Op::Write(vpn),
        });
        b.apply(ModelEvent::Issue {
            thread: 2,
            op: Op::Write(vpn),
        });
        b.apply(ModelEvent::Issue {
            thread: 1,
            op: Op::Read(vpn),
        });
        assert_eq!(a.canonical_key(), b.canonical_key());
    }

    #[test]
    fn write_request_from_current_writer_is_no_data_fast_path() {
        // Degenerate re-request: the exclusive owner asks to write again
        // (reachable when a coalesced sibling's request raced ahead).
        let mut dir = Directory::new(NodeId(0));
        let vpn = Vpn::new(0);
        let who = Requester::Remote {
            node: NodeId(1),
            req_id: 1,
        };
        for a in dir.request(vpn, Access::Write, who) {
            if let DirAction::SendInvalidate { to, needs_data } = a {
                dir.invalidate_ack(vpn, to, needs_data);
            }
        }
        assert_eq!(dir.page_model(vpn).writer, Some(NodeId(1)));
        let again = dir.request(vpn, Access::Write, who);
        assert_eq!(
            again,
            vec![DirAction::Grant {
                to: who,
                access: Access::Write,
                with_data: false,
            }],
            "re-request by the current writer must skip the data transfer"
        );
        let model = dir.page_model(vpn);
        assert_eq!(model.writer, Some(NodeId(1)));
        assert_eq!(model.owners, NodeSet::single(NodeId(1)));
        assert!(model.txn.is_none());
    }

    #[test]
    fn read_request_from_existing_owner_leaves_owner_set_unchanged() {
        let mut dir = Directory::new(NodeId(0));
        let vpn = Vpn::new(0);
        let who = Requester::Remote {
            node: NodeId(1),
            req_id: 1,
        };
        dir.request(vpn, Access::Read, who);
        let before = dir.page_model(vpn);
        assert!(before.owners.contains(NodeId(1)));
        // Second read from a node already in the owner set (reachable
        // after a raced coalesced fault): grant, owner set unchanged.
        let again = dir.request(vpn, Access::Read, who);
        assert_eq!(
            again,
            vec![DirAction::Grant {
                to: who,
                access: Access::Read,
                with_data: true,
            }]
        );
        let after = dir.page_model(vpn);
        assert_eq!(after.owners, before.owners);
        assert_eq!(after.writer, None);
        assert!(after.txn.is_none());
        dir.check_invariants().unwrap();
    }

    fn deliver_where(state: &mut ModelState, pred: impl Fn(&Msg) -> bool) -> Vec<Violation> {
        let idx = state
            .messages()
            .iter()
            .position(pred)
            .expect("expected message in flight");
        state.apply(ModelEvent::Deliver { msg: idx })
    }

    #[test]
    fn sharded_remote_write_transfers_ownership_via_forward() {
        // Home = node 1, origin = node 0: the write by node 2 must be
        // forwarded by the home to the origin, which grants directly.
        let mut state = ModelState::new(ModelConfig::new(3, 1).with_sharding());
        let vpn = Vpn::new(0);
        let mut violations = state.apply(ModelEvent::Issue {
            thread: 2,
            op: Op::Write(vpn),
        });
        violations.extend(drain(&mut state));
        assert!(violations.is_empty(), "{violations:?}");
        assert!(state.is_quiescent());
        assert_eq!(state.directory().current_writer(vpn), Some(NodeId(2)));
        assert!(state.page_table(NodeId(2)).entry(vpn).writable);
        assert!(!state.page_table(NodeId(0)).entry(vpn).present);
    }

    #[test]
    fn sharded_keep_origin_pte_mutation_is_caught() {
        let cfg = ModelConfig::new(3, 1)
            .with_sharding()
            .with_mutation(Mutation::KeepOriginPte);
        let mut state = ModelState::new(cfg);
        let vpn = Vpn::new(0);
        let mut violations = state.apply(ModelEvent::Issue {
            thread: 2,
            op: Op::Write(vpn),
        });
        violations.extend(drain(&mut state));
        assert!(
            violations
                .iter()
                .any(|v| v.invariant.contains("exclusivity") || v.invariant.contains("agreement")),
            "forwarding owner keeping its PTE must be detected: {violations:?}"
        );
    }

    #[test]
    fn sharded_invalidate_overtaking_forwarded_grant_is_deferred() {
        let mut state = ModelState::new(ModelConfig::new(3, 1).with_sharding());
        let vpn = Vpn::new(0);
        // Make node 2 the exclusive writer.
        let mut v = state.apply(ModelEvent::Issue {
            thread: 2,
            op: Op::Write(vpn),
        });
        v.extend(drain(&mut state));
        assert!(v.is_empty(), "{v:?}");
        // T0 (origin) read-faults; the home forwards to owner node 2,
        // which grants straight to node 0 and acks the home. Complete
        // the home's transaction first, leaving the grant in flight.
        v.extend(state.apply(ModelEvent::Issue {
            thread: 0,
            op: Op::Read(vpn),
        }));
        v.extend(deliver_where(&mut state, |m| {
            matches!(*m, Msg::Request { .. })
        }));
        v.extend(deliver_where(&mut state, |m| {
            matches!(*m, Msg::Forward { .. })
        }));
        v.extend(deliver_where(&mut state, |m| {
            matches!(*m, Msg::OwnerAck { .. })
        }));
        // The home's own thread write-faults: revocations fan out while
        // node 0's grant is still traveling on another channel.
        v.extend(state.apply(ModelEvent::Issue {
            thread: 1,
            op: Op::Write(vpn),
        }));
        v.extend(deliver_where(&mut state, |m| {
            matches!(*m, Msg::Request { .. })
        }));
        // Deliver the revocation aimed at node 0 ahead of its grant: it
        // must park instead of acking a copy that never arrived.
        v.extend(deliver_where(
            &mut state,
            |m| matches!(*m, Msg::InvBatch { to, .. } if to == NodeId(0)),
        ));
        assert_eq!(state.deferred_len(), 1, "revocation parked behind grant");
        // The grant lands; the parked revocation applies right after it.
        v.extend(deliver_where(&mut state, |m| {
            matches!(*m, Msg::Grant { thread: 0, .. })
        }));
        assert_eq!(state.deferred_len(), 0, "parked revocation released");
        v.extend(drain(&mut state));
        assert!(v.is_empty(), "{v:?}");
        assert!(state.is_quiescent());
        assert_eq!(state.directory().current_writer(vpn), Some(NodeId(1)));
        assert!(!state.page_table(NodeId(0)).entry(vpn).present);
        assert!(state.page_table(NodeId(1)).entry(vpn).writable);
    }

    #[test]
    fn evict_last_remote_owner_resets_to_origin() {
        let mut state = ModelState::new(ModelConfig::new(2, 1));
        let vpn = Vpn::new(0);
        state.apply(ModelEvent::Issue {
            thread: 1,
            op: Op::Write(vpn),
        });
        let violations = drain(&mut state);
        assert!(violations.is_empty(), "{violations:?}");
        // Node 1 is now the sole (remote) owner; evict the page.
        let violations = state.apply(ModelEvent::Issue {
            thread: 0,
            op: Op::Evict(vpn),
        });
        assert!(violations.is_empty(), "{violations:?}");
        assert!(state.is_quiescent());
        assert_eq!(state.directory().current_writer(vpn), Some(NodeId(0)));
        assert!(!state.page_table(NodeId(1)).entry(vpn).present);
        assert!(state.page_table(NodeId(0)).entry(vpn).writable);
    }
}
