//! Shared state of one distributed DEX process.
//!
//! A [`ProcessShared`] is the cluster-wide identity of a process: the
//! per-node address-space replicas, the origin-side ownership directory
//! and futex table, the per-node fault-coalescing tables and pending
//! request tables, the delegation channels to each thread's original
//! thread, and the statistics sinks. All protocol components (the thread
//! fault path, the node dispatchers, the remote workers) operate on this
//! structure.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use dex_net::{MetricsRegistry, NodeId, SpanContext};
use dex_os::{
    Access, AddressSpace, FutexTable, PageFrame, Pid, Tid, VirtAddr, Vma, Vpn, PAGE_SIZE,
};
use dex_sim::{
    Counters, Histogram, MultiResource, Resource, SimChannel, SimCtx, SimDuration, ThreadId,
};

use crate::cost::CostModel;
use crate::directory::Directory;
use crate::msg::{DelegatedOp, DexMsg, MigrationPhases};
use crate::span::SpanBuffer;
use crate::trace::TraceBuffer;

/// Re-exported alias so `process` stays readable.
pub(crate) type Endpoint = dex_net::Endpoint<DexMsg>;
pub(crate) type Fabric = dex_net::Fabric<DexMsg>;

/// A reply delivered to a thread parked on a pending request.
#[derive(Debug)]
pub(crate) enum Reply {
    /// A page grant arrived (PTE/frame already applied by the dispatcher);
    /// `retry` means the request conflicted and must be resent after a
    /// back-off.
    PageGrant {
        /// Conflict: back off and retry.
        retry: bool,
    },
    /// On-demand VMA lookup result.
    Vma(Option<Vma>),
    /// Result of a delegated operation.
    Delegate(i64),
    /// A futex waiter was woken.
    FutexWoken,
    /// Forward migration acknowledged; remote-side phase breakdown.
    MigrateAck(MigrationPhases),
    /// Backward migration acknowledged.
    MigrateBackAck,
    /// All acknowledgments of a broadcast arrived.
    BroadcastDone,
}

/// Why a watched wait gave up instead of returning a reply.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum WaitError {
    /// The node this thread executes on fail-stopped: the request (or its
    /// reply) was lost and the thread must re-home to the origin.
    OwnNodeCrashed,
    /// The peer the reply must come from fail-stopped and no recovery
    /// path will produce the reply.
    PeerCrashed(NodeId),
}

/// Crash-detection timeouts before a bounded watched wait declares the
/// run stuck (diagnosable failure instead of a silent hang).
const MAX_WATCH_ROUNDS: u32 = 4096;

struct Pending {
    thread: ThreadId,
    slot: Arc<Mutex<Option<Reply>>>,
    /// For broadcasts: acknowledgments still outstanding.
    remaining: u32,
    /// For broadcasts: the peers those acknowledgments must come from
    /// (crash recovery completes entries whose peer died).
    awaiting: Vec<NodeId>,
}

/// Per-node table of requests awaiting replies, keyed by request id.
#[derive(Default)]
pub(crate) struct PendingTable {
    map: HashMap<u64, Pending>,
}

/// Protocol work a node postponed because the page it targets has a
/// grant still in flight: in the sharded configuration a forwarded grant
/// (owner → requester) and the home's next message about the same page
/// travel different channels and may be delivered out of order. The
/// dispatcher runs the deferred work as soon as the grant lands.
#[derive(Debug)]
pub(crate) enum DeferredWork {
    /// A batched-invalidation entry whose revocation must wait for the
    /// in-flight grant (otherwise the node would ack before holding the
    /// copy being revoked).
    Invalidate {
        /// The home to send the (partial) batch ack to.
        home: NodeId,
        /// Whether the ack must carry the page contents.
        needs_data: bool,
        /// The directory-handling span the ack echoes.
        span: SpanContext,
    },
    /// A forwarded request targeting ownership this node has not
    /// finished acquiring yet.
    Forward {
        /// The home that forwarded the request.
        home: NodeId,
        /// The access requested.
        access: Access,
        /// The node the grant must go straight to.
        requester: NodeId,
        /// Correlation id of the requester's fault.
        req_id: u64,
        /// The incoming forward's span context.
        span: SpanContext,
    },
}

/// A job routed to a thread's original (pair) thread at the origin.
pub(crate) struct DelegationJob {
    pub op: DelegatedOp,
    pub from: NodeId,
    pub req_id: u64,
    /// The delegating thread's span, so the service span stitches to it.
    pub span: SpanContext,
}

/// Per-(process, node) migration bookkeeping.
#[derive(Default)]
pub(crate) struct RemoteNodeState {
    /// The remote worker for this process exists on this node.
    pub worker_started: bool,
    /// Channel to the remote worker (node-wide operations).
    pub worker_chan: Option<SimChannel<crate::msg::VmaOp>>,
    /// Ack routing for queued node-wide operations: `(req_id, reply_to)`
    /// in the same order ops were queued to the worker.
    pub pending_acks: Vec<(u64, NodeId)>,
}

/// Leader–follower fault coalescing table (§III-C): one entry per
/// in-flight (page, access-type) fault on a node.
#[derive(Default)]
pub(crate) struct FaultTable {
    pub entries: HashMap<(Vpn, bool), FaultEntry>,
}

/// The in-flight fault led by the first faulting thread.
#[derive(Default)]
pub(crate) struct FaultEntry {
    pub followers: Vec<ThreadId>,
    /// The leader's span id (0 when spans are disabled): followers read
    /// it before parking so their wait spans parent to the leader fault.
    pub leader_span: u64,
}

/// An object span registered by a tagged allocation; the profiler
/// attributes faults to the innermost covering span (the offline
/// equivalent of resolving the faulting address against debug info).
#[derive(Clone, Debug)]
pub struct ObjectSpan {
    /// First byte of the object.
    pub start: VirtAddr,
    /// One past the last byte.
    pub end: VirtAddr,
    /// The user-visible tag.
    pub tag: String,
}

/// Aggregate statistics of one run.
pub struct RunStats {
    /// Named protocol counters.
    pub counters: Counters,
    /// Distribution of protocol-fault handling times (per leader fault).
    pub fault_hist: Histogram,
    /// Per-migration timing samples.
    pub migrations: Mutex<Vec<MigrationSample>>,
}

/// Timing of one migration (drives Table II and Figure 3).
#[derive(Clone, Debug)]
pub struct MigrationSample {
    /// Forward (origin→remote) or backward.
    pub forward: bool,
    /// First migration of this process onto the destination node (pays
    /// remote-worker creation).
    pub first_on_node: bool,
    /// Time spent at the initiating side capturing/updating state.
    pub origin_side: SimDuration,
    /// Time spent at the receiving side (sum of `phases`).
    pub remote_side: SimDuration,
    /// End-to-end latency observed by the thread.
    pub total: SimDuration,
    /// Receiving-side phase breakdown.
    pub phases: MigrationPhases,
}

/// The cluster-wide shared state of one DEX process.
pub struct ProcessShared {
    /// Process id.
    pub pid: Pid,
    /// The node the process was created on.
    pub origin: NodeId,
    /// Number of nodes in the cluster.
    pub nodes: usize,
    /// Calibrated kernel-path costs.
    pub cost: CostModel,
    /// The messaging fabric.
    pub fabric: Arc<Fabric>,
    /// Per-node address-space replicas (`spaces[origin]` is authoritative
    /// for VMAs).
    pub spaces: Vec<Mutex<AddressSpace>>,
    /// Ownership-directory shards. The classic configuration has exactly
    /// one, living at the origin; with `dir_shards > 1` pages hash across
    /// per-node homes and each shard services its pages with owner
    /// forwarding. Route by page via [`ProcessShared::directory_for`].
    pub directories: Vec<Mutex<Directory>>,
    /// Number of directory homes pages hash across (1 = classic
    /// single-origin directory).
    pub dir_shards: usize,
    /// Per-node count of in-flight page requests keyed by page. Only
    /// maintained in the sharded configuration: protocol messages about
    /// a page with a grant still in flight are deferred until it lands.
    pub(crate) inflight_pages: Vec<Mutex<HashMap<Vpn, u32>>>,
    /// Per-node deferred protocol work (see [`DeferredWork`]), at most
    /// one entry per page (homes serialize transactions per page).
    pub(crate) deferred_work: Vec<Mutex<HashMap<Vpn, DeferredWork>>>,
    /// Page contents a home received in a batch-invalidation ack, staged
    /// until the transaction's grant consumes them (in sharded mode the
    /// home's own frame is not part of the transfer).
    pub(crate) staged_frames: Mutex<HashMap<(NodeId, Vpn), PageFrame>>,
    /// Origin-side futex wait queues (waiters keyed by request id).
    pub futex: Mutex<FutexTable>,
    /// Node each futex waiter's reply must be sent to.
    pub futex_nodes: Mutex<HashMap<u64, NodeId>>,
    /// Per-node leader–follower fault tables.
    pub(crate) fault_tables: Vec<Mutex<FaultTable>>,
    /// Per-node pending-request tables.
    pub(crate) pending: Vec<Mutex<PendingTable>>,
    /// Delegation channels to each migrated thread's original thread.
    pub(crate) delegation: Mutex<HashMap<Tid, SimChannel<DelegationJob>>>,
    /// Per-node migration bookkeeping.
    pub(crate) remote_nodes: Vec<Mutex<RemoteNodeState>>,
    /// Per-node shared memory-bandwidth pipes.
    pub mem_bw: Vec<Resource>,
    /// Per-node core pools.
    pub cores: Vec<MultiResource>,
    /// Statistics sinks.
    pub stats: Arc<RunStats>,
    /// Page-fault trace sink.
    pub trace: TraceBuffer,
    /// Causal span sink (disabled unless `ClusterConfig::with_spans`).
    pub spans: SpanBuffer,
    /// Per-node/per-link metrics (shared with the fabric; `None` unless
    /// `ClusterConfig::with_metrics`).
    pub metrics: Option<Arc<MetricsRegistry>>,
    /// Synchronization/access event sink for dynamic race detection.
    pub race: crate::race::RaceTrace,
    /// Seeded protocol bug, consulted by the coherence fault path
    /// (mutation testing of `dex-check explore`).
    pub mutation: crate::ProtocolMutation,
    /// Tagged object spans for fault attribution.
    pub objects: Mutex<Vec<ObjectSpan>>,
    /// Number of application threads currently executing on each node
    /// (drives load-aware placement).
    pub(crate) node_threads: Mutex<Vec<i64>>,
    /// Per-node flag: this node's crash has been processed (directory
    /// reclaim + broadcast completion ran). Idempotence guard for
    /// [`ProcessShared::maybe_handle_crashes`].
    crashes_handled: Mutex<Vec<bool>>,
    /// Bump pointer inside the shared heap VMA.
    pub(crate) heap_cursor: Mutex<u64>,
    /// End of the shared heap VMA.
    pub(crate) heap_end: u64,
    next_req_id: AtomicU64,
    next_tid: AtomicU64,
}

impl ProcessShared {
    /// Creates the process state. `heap_pages` sizes the shared heap VMA
    /// that the bump allocator hands out.
    #[allow(clippy::too_many_arguments)] // internal constructor mirroring the config
    pub(crate) fn new(
        pid: Pid,
        origin: NodeId,
        nodes: usize,
        cost: CostModel,
        fabric: Arc<Fabric>,
        trace: TraceBuffer,
        spans: SpanBuffer,
        metrics: Option<Arc<MetricsRegistry>>,
        race: crate::race::RaceTrace,
        heap_pages: u64,
        mutation: crate::ProtocolMutation,
        dir_shards: usize,
    ) -> Arc<Self> {
        let mut spaces: Vec<Mutex<AddressSpace>> = (0..nodes)
            .map(|_| Mutex::new(AddressSpace::new()))
            .collect();
        // Create the heap VMA on the origin replica; remote replicas learn
        // about it through on-demand VMA synchronization.
        let heap_base = {
            let space = spaces[origin.0 as usize].get_mut();
            space.vmas.mmap(
                heap_pages * PAGE_SIZE as u64,
                dex_os::Prot::RW,
                dex_os::VmaKind::Heap,
                Some("heap".to_string()),
            )
        };
        let mem_bw = (0..nodes)
            .map(|_| Resource::with_rate_bytes_per_sec(cost.mem_bandwidth_bytes_per_sec))
            .collect();
        let cores = (0..nodes)
            .map(|_| MultiResource::new(cost.cores_per_node))
            .collect();
        // The sharded configuration caps the home count at the cluster
        // size (a home must be a real node); `<= 1` is the classic
        // single-origin directory.
        let dir_shards = if dir_shards > 1 {
            dir_shards.min(nodes)
        } else {
            1
        };
        let directories = if dir_shards > 1 {
            (0..dir_shards)
                .map(|n| Mutex::new(Directory::forwarded(NodeId(n as u16), origin)))
                .collect()
        } else {
            vec![Mutex::new(Directory::new(origin))]
        };
        Arc::new(ProcessShared {
            pid,
            origin,
            nodes,
            cost,
            fabric,
            spaces,
            directories,
            dir_shards,
            inflight_pages: (0..nodes).map(|_| Mutex::new(HashMap::new())).collect(),
            deferred_work: (0..nodes).map(|_| Mutex::new(HashMap::new())).collect(),
            staged_frames: Mutex::new(HashMap::new()),
            futex: Mutex::new(FutexTable::new()),
            futex_nodes: Mutex::new(HashMap::new()),
            fault_tables: (0..nodes)
                .map(|_| Mutex::new(FaultTable::default()))
                .collect(),
            pending: (0..nodes)
                .map(|_| Mutex::new(PendingTable::default()))
                .collect(),
            delegation: Mutex::new(HashMap::new()),
            remote_nodes: (0..nodes)
                .map(|_| Mutex::new(RemoteNodeState::default()))
                .collect(),
            mem_bw,
            cores,
            stats: Arc::new(RunStats {
                counters: Counters::new(),
                fault_hist: Histogram::new(),
                migrations: Mutex::new(Vec::new()),
            }),
            trace,
            spans,
            metrics,
            race,
            mutation,
            objects: Mutex::new(Vec::new()),
            node_threads: Mutex::new(vec![0; nodes]),
            crashes_handled: Mutex::new(vec![false; nodes]),
            heap_cursor: Mutex::new(heap_base.as_u64()),
            heap_end: heap_base.as_u64() + heap_pages * PAGE_SIZE as u64,
            next_req_id: AtomicU64::new(1),
            next_tid: AtomicU64::new(0),
        })
    }

    /// Adjusts the application-thread count of `node` (placement policy
    /// bookkeeping).
    pub(crate) fn adjust_load(&self, node: NodeId, delta: i64) {
        let mut loads = self.node_threads.lock();
        loads[node.0 as usize] += delta;
        debug_assert!(loads[node.0 as usize] >= 0, "negative node load");
    }

    /// Application threads currently executing on each node.
    pub fn thread_counts(&self) -> Vec<i64> {
        self.node_threads.lock().clone()
    }

    /// Allocates a cluster-unique request id.
    pub(crate) fn new_req_id(&self) -> u64 {
        self.next_req_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Allocates the next thread id.
    pub(crate) fn new_tid(&self) -> Tid {
        Tid(self.next_tid.fetch_add(1, Ordering::Relaxed))
    }

    /// The address-space replica of `node`.
    pub fn space(&self, node: NodeId) -> &Mutex<AddressSpace> {
        &self.spaces[node.0 as usize]
    }

    /// Whether the sharded (owner-forwarding) directory configuration is
    /// active.
    pub fn is_sharded(&self) -> bool {
        self.dir_shards > 1
    }

    /// The directory home of `vpn`: the origin in the classic
    /// configuration, else the shard the page hashes to.
    pub fn home_of(&self, vpn: Vpn) -> NodeId {
        if self.dir_shards <= 1 {
            self.origin
        } else {
            NodeId((vpn.index() % self.dir_shards as u64) as u16)
        }
    }

    /// The directory (shard) responsible for `vpn`.
    pub fn directory_for(&self, vpn: Vpn) -> &Mutex<Directory> {
        if self.dir_shards <= 1 {
            &self.directories[0]
        } else {
            &self.directories[self.home_of(vpn).0 as usize]
        }
    }

    // ---- in-flight grant tracking (sharded configuration only) ----

    /// Records an in-flight page request at `node`. No-op in the classic
    /// configuration (grants and invalidations share the origin channel
    /// there, so they cannot reorder).
    pub(crate) fn mark_inflight(&self, node: NodeId, vpn: Vpn) {
        if !self.is_sharded() {
            return;
        }
        *self.inflight_pages[node.0 as usize]
            .lock()
            .entry(vpn)
            .or_insert(0) += 1;
    }

    /// Whether `node` has a page request for `vpn` still awaiting its
    /// grant.
    pub(crate) fn inflight(&self, node: NodeId, vpn: Vpn) -> bool {
        self.is_sharded()
            && self.inflight_pages[node.0 as usize]
                .lock()
                .contains_key(&vpn)
    }

    /// Drops one in-flight mark for `vpn` at `node`; when the last mark
    /// goes, returns the protocol work that was deferred behind the
    /// grant (the caller must run it now).
    pub(crate) fn unmark_inflight(&self, node: NodeId, vpn: Vpn) -> Option<DeferredWork> {
        if !self.is_sharded() {
            return None;
        }
        {
            let mut map = self.inflight_pages[node.0 as usize].lock();
            match map.get_mut(&vpn) {
                Some(count) => {
                    *count -= 1;
                    if *count > 0 {
                        return None;
                    }
                    map.remove(&vpn);
                }
                // A grant with no mark: a home-local fault's forwarded
                // grant (same-channel FIFO already orders those).
                None => return None,
            }
        }
        self.deferred_work[node.0 as usize].lock().remove(&vpn)
    }

    /// Defers protocol work for `vpn` at `node` until its in-flight
    /// grant lands. Homes serialize transactions per page, so at most
    /// one deferral can exist at a time.
    pub(crate) fn defer_work(&self, node: NodeId, vpn: Vpn, work: DeferredWork) {
        let prev = self.deferred_work[node.0 as usize].lock().insert(vpn, work);
        debug_assert!(
            prev.is_none(),
            "two deferred protocol actions for {vpn} at {node}"
        );
    }

    /// Stages page contents a batch-invalidation ack carried to `home`,
    /// replacing any stale leftover for the page.
    pub(crate) fn stage_frame(&self, home: NodeId, vpn: Vpn, frame: PageFrame) {
        self.staged_frames.lock().insert((home, vpn), frame);
    }

    /// Takes the staged contents for `vpn` at `home`, if any.
    pub(crate) fn take_staged(&self, home: NodeId, vpn: Vpn) -> Option<PageFrame> {
        self.staged_frames.lock().remove(&(home, vpn))
    }

    /// Bump-allocates `len` bytes in the shared heap with the given
    /// alignment, registering `tag` as an object span when provided.
    ///
    /// # Panics
    ///
    /// Panics when the heap VMA is exhausted.
    pub fn alloc_raw(&self, len: u64, align: u64, tag: Option<&str>) -> VirtAddr {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let mut cursor = self.heap_cursor.lock();
        let start = (*cursor + align - 1) & !(align - 1);
        let end = start + len.max(1);
        assert!(
            end <= self.heap_end,
            "shared heap exhausted: {} bytes requested, {} available",
            len,
            self.heap_end - *cursor
        );
        *cursor = end;
        if let Some(tag) = tag {
            self.objects.lock().push(ObjectSpan {
                start: VirtAddr::new(start),
                end: VirtAddr::new(end),
                tag: tag.to_string(),
            });
        }
        VirtAddr::new(start)
    }

    /// Resolves the attribution tag for `addr`: the innermost registered
    /// object span, falling back to the covering VMA's tag.
    pub fn tag_for(&self, node: NodeId, addr: VirtAddr) -> Option<String> {
        let objects = self.objects.lock();
        let mut best: Option<&ObjectSpan> = None;
        for span in objects.iter() {
            if span.start <= addr && addr < span.end {
                let better = match best {
                    None => true,
                    Some(b) => {
                        (span.end.as_u64() - span.start.as_u64())
                            < (b.end.as_u64() - b.start.as_u64())
                    }
                };
                if better {
                    best = Some(span);
                }
            }
        }
        if let Some(span) = best {
            return Some(span.tag.clone());
        }
        self.space(node)
            .lock()
            .vmas
            .find(addr)
            .and_then(|vma| vma.tag.clone())
    }

    /// Writes `bytes` directly into the origin replica (pre-run
    /// initialization; costs no virtual time, like data loaded before the
    /// parallel region starts).
    pub fn write_init(&self, addr: VirtAddr, bytes: &[u8]) {
        self.space(self.origin).lock().write(addr, bytes);
    }

    /// Reads bytes from the cluster-wide *up-to-date* view of memory:
    /// each page is sourced from its current exclusive writer, or the
    /// origin replica otherwise. Used to collect results after a run.
    pub fn read_coherent(&self, addr: VirtAddr, dst: &mut [u8]) {
        let mut cursor = addr;
        let mut filled = 0usize;
        while filled < dst.len() {
            let offset = cursor.page_offset();
            let chunk = (PAGE_SIZE - offset).min(dst.len() - filled);
            let node = self.up_to_date_node(cursor.vpn());
            self.space(node)
                .lock()
                .read(cursor, &mut dst[filled..filled + chunk]);
            filled += chunk;
            cursor = cursor.add(chunk as u64);
        }
    }

    fn up_to_date_node(&self, _vpn: Vpn) -> NodeId {
        // The directory does not expose writer lookup publicly; consult
        // per-node PTEs instead: a node with a writable mapping holds the
        // authoritative copy.
        for n in 0..self.nodes {
            let node = NodeId(n as u16);
            let space = self.space(node).lock();
            let pte = space.page_table.entry(_vpn);
            if pte.present && pte.writable {
                return node;
            }
        }
        self.origin
    }

    // ---- pending request plumbing ----

    /// Registers a pending request at `node` for the calling thread.
    pub(crate) fn register_pending(
        &self,
        ctx: &SimCtx,
        node: NodeId,
        req_id: u64,
    ) -> Arc<Mutex<Option<Reply>>> {
        self.register_pending_counted(ctx, node, req_id, 1)
    }

    /// Registers a pending broadcast expecting `count` acknowledgments.
    pub(crate) fn register_pending_counted(
        &self,
        ctx: &SimCtx,
        node: NodeId,
        req_id: u64,
        count: u32,
    ) -> Arc<Mutex<Option<Reply>>> {
        let slot = Arc::new(Mutex::new(None));
        self.pending[node.0 as usize].lock().map.insert(
            req_id,
            Pending {
                thread: ctx.id(),
                slot: Arc::clone(&slot),
                remaining: count,
                awaiting: Vec::new(),
            },
        );
        slot
    }

    /// Registers a pending broadcast whose acknowledgments must come from
    /// `peers` — crash recovery completes the entry on behalf of peers
    /// that fail-stop before acking.
    pub(crate) fn register_pending_broadcast(
        &self,
        ctx: &SimCtx,
        node: NodeId,
        req_id: u64,
        peers: &[NodeId],
    ) -> Arc<Mutex<Option<Reply>>> {
        let slot = self.register_pending_counted(ctx, node, req_id, peers.len() as u32);
        self.pending[node.0 as usize]
            .lock()
            .map
            .get_mut(&req_id)
            .expect("just inserted")
            .awaiting = peers.to_vec();
        slot
    }

    /// Drops the pending entry for an abandoned request (the waiting
    /// thread re-homed after its node crashed).
    pub(crate) fn abandon_pending(&self, node: NodeId, req_id: u64) {
        self.pending[node.0 as usize].lock().map.remove(&req_id);
    }

    /// Parks until the pending slot is filled, returning the reply.
    pub(crate) fn wait_reply(&self, ctx: &SimCtx, slot: &Arc<Mutex<Option<Reply>>>) -> Reply {
        loop {
            if let Some(reply) = slot.lock().take() {
                return reply;
            }
            ctx.park();
        }
    }

    /// Like [`ProcessShared::wait_reply`], but survives faults: instead of
    /// parking forever the thread wakes on a back-off schedule, processes
    /// any node crash it is the first to notice, and gives up when its own
    /// node (or `peer`, when given) is the casualty.
    ///
    /// With no fault plan active this *is* `wait_reply` — no timers are
    /// scheduled, so fault-free schedules stay bit-identical.
    ///
    /// `unbounded` suppresses the stuck-run panic for waits with no
    /// deadline of their own (futex waits).
    #[allow(clippy::too_many_arguments)] // the request's full identity
    pub(crate) fn wait_reply_watching(
        self: &Arc<Self>,
        ctx: &SimCtx,
        slot: &Arc<Mutex<Option<Reply>>>,
        local: NodeId,
        req_id: u64,
        peer: Option<NodeId>,
        unbounded: bool,
    ) -> Result<Reply, WaitError> {
        if !self.fabric.faults_enabled() {
            return Ok(self.wait_reply(ctx, slot));
        }
        let mut interval = self.cost.fault_watch_interval;
        let mut rounds = 0u32;
        loop {
            if let Some(reply) = slot.lock().take() {
                return Ok(reply);
            }
            if ctx.park_until(ctx.now() + interval) {
                rounds += 1;
                self.maybe_handle_crashes(ctx);
                let now = ctx.now();
                if self.fabric.node_crashed(local, now) {
                    self.abandon_pending(local, req_id);
                    return Err(WaitError::OwnNodeCrashed);
                }
                if let Some(p) = peer {
                    if self.fabric.node_crashed(p, now) {
                        self.abandon_pending(local, req_id);
                        return Err(WaitError::PeerCrashed(p));
                    }
                }
                assert!(
                    unbounded || rounds < MAX_WATCH_ROUNDS,
                    "request {req_id} at {local} got no reply after {rounds} \
                     crash-watch timeouts: protocol stuck without a crash"
                );
                interval = (interval + interval).min(self.cost.fault_watch_cap);
            }
        }
    }

    /// Runs crash recovery for every node whose crash time has passed and
    /// has not been processed yet. Idempotent; any thread that notices a
    /// crash (via a watch timeout) calls this, and exactly one performs
    /// the recovery.
    pub(crate) fn maybe_handle_crashes(self: &Arc<Self>, ctx: &SimCtx) {
        if !self.fabric.faults_enabled() {
            return;
        }
        let now = ctx.now();
        for n in 0..self.nodes {
            if !self.fabric.node_crashed(NodeId(n as u16), now) {
                continue;
            }
            let first = {
                let mut handled = self.crashes_handled.lock();
                !std::mem::replace(&mut handled[n], true)
            };
            if first {
                self.handle_node_crash(ctx, NodeId(n as u16));
            }
        }
    }

    /// Origin-side recovery from the fail-stop of `dead`: the directory
    /// reclaims the dead node's page ownership (re-granting to surviving
    /// requesters), and broadcasts waiting on its acknowledgment complete
    /// without it. Models the origin kernel's cleanup when the fabric
    /// reports a peer unreachable.
    ///
    /// # Panics
    ///
    /// Panics when `dead` is the origin: the directory and every thread's
    /// home live there, so an origin crash is process death.
    fn handle_node_crash(self: &Arc<Self>, ctx: &SimCtx, dead: NodeId) {
        assert_ne!(
            dead, self.origin,
            "origin node crashed: unsupported (process death)"
        );
        self.stats.counters.incr("faults.crashes_handled");
        for dir in &self.directories {
            let (home, reclaimed) = {
                let mut dir = dir.lock();
                // A shard homed on the dead node died with it: pages
                // hashed there are unrecoverable (their requesters see
                // the peer crash instead).
                if dir.home() == dead {
                    continue;
                }
                (dir.home(), dir.on_node_crash(dead))
            };
            let endpoint = self.fabric.endpoint(home);
            for (vpn, actions) in reclaimed {
                self.stats.counters.incr("faults.pages_reclaimed");
                crate::dispatch::apply_origin_actions(
                    ctx,
                    self,
                    &endpoint,
                    home,
                    vpn,
                    actions,
                    None,
                    SpanContext::NONE,
                );
            }
        }
        self.complete_broadcasts_for_dead(ctx, dead);
    }

    /// Completes (on behalf of `dead`) every origin-side broadcast entry
    /// still awaiting its acknowledgment.
    fn complete_broadcasts_for_dead(&self, ctx: &SimCtx, dead: NodeId) {
        let woken = {
            let mut table = self.pending[self.origin.0 as usize].lock();
            // Deterministic order: HashMap iteration order must not leak
            // into the unpark sequence.
            let mut ids: Vec<u64> = table.map.keys().copied().collect();
            ids.sort_unstable();
            let mut woken = Vec::new();
            for id in ids {
                let entry = table.map.get_mut(&id).expect("present");
                let Some(pos) = entry.awaiting.iter().position(|n| *n == dead) else {
                    continue;
                };
                entry.awaiting.swap_remove(pos);
                entry.remaining = entry.remaining.saturating_sub(1);
                if entry.remaining == 0 {
                    let entry = table.map.remove(&id).expect("present");
                    *entry.slot.lock() = Some(Reply::BroadcastDone);
                    woken.push(entry.thread);
                }
            }
            woken
        };
        for thread in woken {
            ctx.unpark(thread);
        }
    }

    /// Completes the pending request `req_id` at `node` with `reply`,
    /// waking the registered thread.
    pub(crate) fn complete_pending(&self, ctx: &SimCtx, node: NodeId, req_id: u64, reply: Reply) {
        let woken = {
            let mut table = self.pending[node.0 as usize].lock();
            let Some(pending) = table.map.get_mut(&req_id) else {
                if self.fabric.faults_enabled() {
                    // A reply for a request its waiter abandoned (crash
                    // recovery already resolved it another way).
                    self.stats.counters.incr("faults.stale_replies");
                    return;
                }
                panic!("completion for unknown request {req_id} at {node}");
            };
            pending.remaining = pending.remaining.saturating_sub(1);
            if pending.remaining > 0 {
                None
            } else {
                let pending = table.map.remove(&req_id).expect("present");
                *pending.slot.lock() = Some(reply);
                Some(pending.thread)
            }
        };
        if let Some(thread) = woken {
            ctx.unpark(thread);
        }
    }

    /// Completes one acknowledgment of the broadcast `req_id` at `node`,
    /// attributed to `from`. Ignores acks already accounted for by crash
    /// recovery (a peer's ack raced its own crash).
    pub(crate) fn complete_broadcast_ack(
        &self,
        ctx: &SimCtx,
        node: NodeId,
        req_id: u64,
        from: NodeId,
    ) {
        {
            let mut table = self.pending[node.0 as usize].lock();
            let Some(pending) = table.map.get_mut(&req_id) else {
                if self.fabric.faults_enabled() {
                    self.stats.counters.incr("faults.stale_replies");
                    return;
                }
                panic!("broadcast ack for unknown request {req_id} at {node}");
            };
            if !pending.awaiting.is_empty() {
                let Some(pos) = pending.awaiting.iter().position(|n| *n == from) else {
                    // Crash recovery already completed this peer's share.
                    self.stats.counters.incr("faults.stale_replies");
                    return;
                };
                pending.awaiting.swap_remove(pos);
            }
        }
        self.complete_pending(ctx, node, req_id, Reply::BroadcastDone);
    }
}

impl std::fmt::Debug for ProcessShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProcessShared")
            .field("pid", &self.pid)
            .field("origin", &self.origin)
            .field("nodes", &self.nodes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_net::NetConfig;

    fn shared(nodes: usize) -> Arc<ProcessShared> {
        let fabric = Fabric::new(NetConfig::default(), nodes);
        ProcessShared::new(
            Pid(1),
            NodeId(0),
            nodes,
            CostModel::default(),
            fabric,
            TraceBuffer::disabled(),
            SpanBuffer::disabled(),
            None,
            crate::race::RaceTrace::disabled(),
            1024,
            crate::ProtocolMutation::None,
            1,
        )
    }

    #[test]
    fn alloc_respects_alignment_and_packing() {
        let p = shared(2);
        let a = p.alloc_raw(10, 8, None);
        let b = p.alloc_raw(10, 8, None);
        // Packed allocations land on the same page (the false-sharing
        // hazard the paper optimizes away).
        assert_eq!(a.vpn(), b.vpn());
        let c = p.alloc_raw(10, PAGE_SIZE as u64, None);
        assert_eq!(c.page_offset(), 0);
        assert_ne!(c.vpn(), a.vpn());
    }

    #[test]
    #[should_panic(expected = "heap exhausted")]
    fn heap_exhaustion_panics() {
        let p = shared(1);
        let _ = p.alloc_raw(1024 * PAGE_SIZE as u64 + 1, 8, None);
    }

    #[test]
    fn tag_resolution_prefers_innermost_object() {
        let p = shared(1);
        let big = p.alloc_raw(PAGE_SIZE as u64 * 2, 8, Some("arena"));
        p.objects.lock().push(ObjectSpan {
            start: big,
            end: big.add(64),
            tag: "counter".to_string(),
        });
        assert_eq!(p.tag_for(NodeId(0), big.add(10)), Some("counter".into()));
        assert_eq!(p.tag_for(NodeId(0), big.add(100)), Some("arena".into()));
    }

    #[test]
    fn tag_falls_back_to_vma_tag() {
        let p = shared(1);
        let untagged = p.alloc_raw(64, 8, None);
        // The heap VMA itself is tagged "heap".
        assert_eq!(p.tag_for(NodeId(0), untagged), Some("heap".into()));
    }

    #[test]
    fn write_init_lands_in_origin_replica() {
        let p = shared(2);
        let addr = p.alloc_raw(16, 8, None);
        p.write_init(addr, &[1, 2, 3, 4]);
        let mut buf = [0u8; 4];
        p.space(NodeId(0)).lock().read(addr, &mut buf);
        assert_eq!(buf, [1, 2, 3, 4]);
    }

    #[test]
    fn read_coherent_prefers_writable_replica() {
        let p = shared(2);
        let addr = p.alloc_raw(8, 8, None);
        p.write_init(addr, &[1; 8]);
        // Simulate node 1 having taken the page exclusively.
        {
            let mut s1 = p.space(NodeId(1)).lock();
            s1.write(addr, &[9; 8]);
            s1.page_table.set(addr.vpn(), dex_os::Pte::READ_WRITE);
            let mut s0 = p.space(NodeId(0)).lock();
            s0.page_table.clear(addr.vpn());
        }
        let mut buf = [0u8; 8];
        p.read_coherent(addr, &mut buf);
        assert_eq!(buf, [9; 8]);
    }
}
