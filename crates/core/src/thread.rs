//! The per-thread execution context: transparent memory access, thread
//! migration, and delegated system calls.
//!
//! A [`ThreadCtx`] is what application code sees. Its memory operations
//! perform the same PTE permission check the MMU would; misses enter the
//! DEX fault path (leader–follower coalescing, then the ownership
//! protocol). [`ThreadCtx::migrate`] relocates the thread to another node
//! exactly as §III-A describes: context capture at the origin side,
//! remote-worker creation on the first migration of the process to a node,
//! thread fork on later ones, and a paired original thread at the origin
//! that services delegated work while the thread is away.

use std::cell::Cell;
use std::collections::hash_map::Entry;
use std::sync::Arc;

use parking_lot::Mutex;

use dex_net::{NodeId, SpanContext};
use dex_os::{Access, ExecutionContext, MemFault, Prot, Tid, VirtAddr, VmaKind, Vpn, PAGE_SIZE};
use dex_sim::{SimChannel, SimCtx, SimDuration, ThreadId};

use crate::directory::{DirAction, Requester};
use crate::msg::{DelegatedOp, DexMsg, VmaOp};
use crate::process::{DelegationJob, FaultEntry, MigrationSample, ProcessShared, Reply, WaitError};
use crate::race::{RaceEvent, RaceEventKind};
use crate::span::{Span, SpanId, SpanKind};
use crate::trace::{FaultEvent, FaultKind};

/// The wire form of an optional span id (0 encodes "no span").
fn span_ctx(span: Option<SpanId>) -> SpanContext {
    span.map_or(SpanContext::NONE, |s| SpanContext(s.0))
}

/// `EAGAIN`-style result of a futex wait whose word changed first.
pub const FUTEX_EAGAIN: i64 = -11;

/// The value an access event records: the first `min(len, 8)` bytes of
/// the transferred data, little-endian. Enough for the SC oracle to
/// distinguish the word-sized writes application workloads use.
fn access_value(bytes: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    let n = bytes.len().min(8);
    buf[..n].copy_from_slice(&bytes[..n]);
    u64::from_le_bytes(buf)
}

/// Error from [`ThreadCtx::migrate`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MigrateError {
    /// The destination node does not exist in this cluster.
    NoSuchNode {
        /// The requested destination.
        requested: NodeId,
        /// Number of nodes in the cluster.
        nodes: usize,
    },
    /// The destination node fail-stopped before the migration completed
    /// (fault-injection runs only); the thread stays where it was.
    NodeCrashed {
        /// The crashed destination.
        node: NodeId,
    },
}

impl std::fmt::Display for MigrateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MigrateError::NoSuchNode { requested, nodes } => {
                write!(
                    f,
                    "cannot migrate to {requested}: cluster has {nodes} nodes"
                )
            }
            MigrateError::NodeCrashed { node } => {
                write!(f, "cannot migrate to {node}: the node crashed")
            }
        }
    }
}

impl std::error::Error for MigrateError {}

/// Handle to a spawned application thread; lets the parent join it.
#[derive(Clone)]
pub struct DexThread {
    state: Arc<Mutex<JoinState>>,
}

#[derive(Default)]
struct JoinState {
    done: bool,
    waiters: Vec<ThreadId>,
}

impl DexThread {
    pub(crate) fn new() -> Self {
        DexThread {
            state: Arc::new(Mutex::new(JoinState::default())),
        }
    }

    pub(crate) fn mark_done(&self, ctx: &SimCtx) {
        let waiters = {
            let mut st = self.state.lock();
            st.done = true;
            std::mem::take(&mut st.waiters)
        };
        for w in waiters {
            ctx.unpark(w);
        }
    }

    /// Blocks (in virtual time) until the thread's closure returns.
    pub fn join(&self, ctx: &ThreadCtx<'_>) {
        loop {
            {
                let mut st = self.state.lock();
                if st.done {
                    return;
                }
                st.waiters.push(ctx.sim.id());
            }
            ctx.sim.park();
        }
    }

    /// Returns `true` once the thread's closure has returned.
    pub fn is_done(&self) -> bool {
        self.state.lock().done
    }
}

impl std::fmt::Debug for DexThread {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DexThread")
            .field("done", &self.is_done())
            .finish()
    }
}

/// The execution context of one application thread.
///
/// Obtained from [`DexProcess::spawn`](crate::DexProcess::spawn) or
/// [`ThreadCtx::spawn_thread`]; borrowed by the thread's closure for its
/// whole lifetime.
pub struct ThreadCtx<'a> {
    pub(crate) sim: &'a SimCtx,
    pub(crate) shared: Arc<ProcessShared>,
    tid: Tid,
    node: Cell<NodeId>,
    site: Cell<&'static str>,
    has_migrated: Cell<bool>,
    pair_started: Cell<bool>,
    /// Nesting depth inside synchronization primitives: while positive,
    /// raw access/futex events are suppressed and the primitives emit
    /// semantic race events instead.
    sync_depth: Cell<u32>,
}

impl<'a> ThreadCtx<'a> {
    pub(crate) fn new(sim: &'a SimCtx, shared: Arc<ProcessShared>, tid: Tid) -> Self {
        let origin = shared.origin;
        ThreadCtx {
            sim,
            shared,
            tid,
            node: Cell::new(origin),
            site: Cell::new("unknown"),
            has_migrated: Cell::new(false),
            pair_started: Cell::new(false),
            sync_depth: Cell::new(0),
        }
    }

    // ---- race-event recording ----

    /// Runs `f` with raw access/futex race recording suppressed; the
    /// synchronization primitives use this so their internal word traffic
    /// is never mistaken for an application race.
    pub(crate) fn sync_scope<R>(&self, f: impl FnOnce() -> R) -> R {
        self.sync_depth.set(self.sync_depth.get() + 1);
        let r = f();
        self.sync_depth.set(self.sync_depth.get() - 1);
        r
    }

    /// Records a semantic race event unconditionally (used by the
    /// synchronization primitives even inside [`ThreadCtx::sync_scope`]).
    pub(crate) fn record_sync_event(&self, kind: RaceEventKind) {
        if self.shared.race.is_enabled() {
            self.shared.race.record(RaceEvent {
                time: self.sim.now(),
                node: self.node.get(),
                task: self.tid,
                site: self.site.get(),
                kind,
            });
        }
    }

    /// Records an access/futex event unless inside a sync primitive.
    fn record_race_event(&self, kind: RaceEventKind) {
        if self.sync_depth.get() == 0 {
            self.record_sync_event(kind);
        }
    }

    /// The thread's id within the process.
    pub fn tid(&self) -> Tid {
        self.tid
    }

    /// The node the thread currently executes on.
    pub fn node(&self) -> NodeId {
        self.node.get()
    }

    /// The process origin node.
    pub fn origin(&self) -> NodeId {
        self.shared.origin
    }

    /// Number of nodes in the cluster.
    pub fn nodes(&self) -> usize {
        self.shared.nodes
    }

    /// The shared process state (allocation, statistics).
    pub fn process(&self) -> &Arc<ProcessShared> {
        &self.shared
    }

    /// The underlying simulation context.
    pub fn sim(&self) -> &SimCtx {
        self.sim
    }

    /// Labels subsequent memory accesses with a code-site string — the
    /// profiler's analogue of the faulting instruction address.
    pub fn set_site(&self, site: &'static str) {
        self.site.set(site);
    }

    // ---- compute model ----

    /// Performs `ops` abstract compute operations on one of this node's
    /// cores (queueing if the node is oversubscribed).
    pub fn compute_ops(&self, ops: u64) {
        let d = self.shared.cost.compute_time(ops);
        self.compute(d);
    }

    /// Occupies a core for `d` of virtual time.
    pub fn compute(&self, d: SimDuration) {
        if d.is_zero() {
            return;
        }
        self.shared.cores[self.node.get().0 as usize].acquire(self.sim, d);
    }

    /// Streams `bytes` through this node's shared memory-bandwidth pipe —
    /// the contended resource that caps memory-bound applications on a
    /// single machine.
    pub fn membound(&self, bytes: u64) {
        if bytes == 0 {
            return;
        }
        self.shared.mem_bw[self.node.get().0 as usize].acquire_bytes(self.sim, bytes);
    }

    // ---- transparent memory access ----

    /// Reads `dst.len()` bytes at `addr` through the consistency protocol.
    pub fn read_bytes(&self, addr: VirtAddr, dst: &mut [u8]) {
        let mut cursor = addr;
        let mut filled = 0usize;
        while filled < dst.len() {
            let offset = cursor.page_offset();
            let chunk = (PAGE_SIZE - offset).min(dst.len() - filled);
            self.ensure(cursor, Access::Read);
            self.shared
                .space(self.node.get())
                .lock()
                .read(cursor, &mut dst[filled..filled + chunk]);
            filled += chunk;
            cursor = cursor.add(chunk as u64);
        }
        // Recorded after the copy so the event carries the value the
        // application actually observed (reads-from for the SC oracle).
        self.record_race_event(RaceEventKind::Access {
            addr,
            len: dst.len() as u32,
            is_write: false,
            atomic: false,
            value: access_value(dst),
        });
    }

    /// Writes `src` at `addr` through the consistency protocol.
    pub fn write_bytes(&self, addr: VirtAddr, src: &[u8]) {
        self.record_race_event(RaceEventKind::Access {
            addr,
            len: src.len() as u32,
            is_write: true,
            atomic: false,
            value: access_value(src),
        });
        let mut cursor = addr;
        let mut written = 0usize;
        while written < src.len() {
            let offset = cursor.page_offset();
            let chunk = (PAGE_SIZE - offset).min(src.len() - written);
            self.ensure(cursor, Access::Write);
            self.shared
                .space(self.node.get())
                .lock()
                .write(cursor, &src[written..written + chunk]);
            written += chunk;
            cursor = cursor.add(chunk as u64);
        }
    }

    /// Reads a `u32` at `addr`.
    pub fn read_u32(&self, addr: VirtAddr) -> u32 {
        let mut buf = [0u8; 4];
        self.read_bytes(addr, &mut buf);
        u32::from_le_bytes(buf)
    }

    /// Writes a `u32` at `addr`.
    pub fn write_u32(&self, addr: VirtAddr, value: u32) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Atomically read-modify-writes up to one page at `addr`. The update
    /// closure runs with exclusive page ownership held and no intervening
    /// simulation yield, which is exactly how an x86 atomic behaves on a
    /// page the node owns exclusively — cluster-wide atomicity follows
    /// from the single-writer protocol.
    ///
    /// # Panics
    ///
    /// Panics if the range crosses a page boundary (hardware atomics do
    /// not either).
    pub fn rmw_bytes(&self, addr: VirtAddr, len: usize, f: impl FnOnce(&mut [u8])) {
        assert!(
            addr.page_offset() + len <= PAGE_SIZE,
            "atomic access must not straddle a page boundary"
        );
        self.ensure(addr, Access::Write);
        let buf = {
            let mut space = self.shared.space(self.node.get()).lock();
            let mut buf = vec![0u8; len];
            space.read(addr, &mut buf);
            f(&mut buf);
            space.write(addr, &buf);
            buf
        };
        // Recorded after the update so the event carries the value the
        // atomic deposited (reads-from for the SC oracle).
        self.record_race_event(RaceEventKind::Access {
            addr,
            len: len as u32,
            is_write: true,
            atomic: true,
            value: access_value(&buf),
        });
    }

    /// Atomic compare-and-swap on a `u32`; returns the previous value.
    pub fn cas_u32(&self, addr: VirtAddr, expected: u32, new: u32) -> u32 {
        let mut old = 0u32;
        self.rmw_bytes(addr, 4, |b| {
            old = u32::from_le_bytes(b.try_into().expect("4 bytes"));
            if old == expected {
                b.copy_from_slice(&new.to_le_bytes());
            }
        });
        old
    }

    /// Atomic fetch-add on a `u32`; returns the previous value.
    pub fn fetch_add_u32(&self, addr: VirtAddr, delta: u32) -> u32 {
        let mut old = 0u32;
        self.rmw_bytes(addr, 4, |b| {
            old = u32::from_le_bytes(b.try_into().expect("4 bytes"));
            b.copy_from_slice(&old.wrapping_add(delta).to_le_bytes());
        });
        old
    }

    /// Atomic swap on a `u32`; returns the previous value.
    pub fn swap_u32(&self, addr: VirtAddr, new: u32) -> u32 {
        let mut old = 0u32;
        self.rmw_bytes(addr, 4, |b| {
            old = u32::from_le_bytes(b.try_into().expect("4 bytes"));
            b.copy_from_slice(&new.to_le_bytes());
        });
        old
    }

    // ---- the fault path ----

    /// Ensures an access of kind `access` at `addr` can proceed locally,
    /// running VMA synchronization and the consistency protocol as needed.
    pub(crate) fn ensure(&self, addr: VirtAddr, access: Access) {
        loop {
            let node = self.node.get();
            let check = self.shared.space(node).lock().check(addr, access);
            match check {
                Ok(()) => return,
                Err(MemFault::VmaMiss { .. }) => self.vma_fault(addr, access),
                Err(MemFault::Protocol { vpn, .. }) => self.page_fault(vpn, access, addr),
            }
        }
    }

    fn vma_fault(&self, addr: VirtAddr, access: Access) {
        let shared = &self.shared;
        let node = self.node.get();
        if node == shared.origin {
            // The origin's VMAs are authoritative: this is a real illegal
            // access.
            panic!(
                "segmentation fault: {} {access} at {addr} (site {})",
                self.tid,
                self.site.get()
            );
        }
        shared.stats.counters.incr("vma.syncs");
        let t0 = self.sim.now();
        let span = shared.spans.is_enabled().then(|| shared.spans.alloc_id());
        let req_id = shared.new_req_id();
        let slot = shared.register_pending(self.sim, node, req_id);
        self.endpoint(node).send_traced(
            self.sim,
            shared.origin,
            DexMsg::VmaRequest {
                pid: shared.pid,
                addr,
                req_id,
            },
            span_ctx(span),
        );
        match shared.wait_reply_watching(self.sim, &slot, node, req_id, None, false) {
            Err(WaitError::OwnNodeCrashed) => {
                // The node fail-stopped; re-home and let ensure() re-check
                // at the origin, where the VMAs are authoritative.
                self.rehome_after_crash();
            }
            Err(WaitError::PeerCrashed(p)) => unreachable!("unwatched peer {p}"),
            Ok(Reply::Vma(Some(vma))) => {
                // Check the authoritative protection before installing:
                // a permission mismatch is a real fault, not staleness.
                let ok = match access {
                    Access::Read => vma.prot.read,
                    Access::Write => vma.prot.write,
                };
                if !ok {
                    panic!(
                        "segmentation fault: {} {access} at {addr} (protection) (site {})",
                        self.tid,
                        self.site.get()
                    );
                }
                shared.space(node).lock().vmas.install(vma);
            }
            Ok(Reply::Vma(None)) => panic!(
                "segmentation fault: {} {access} at {addr} (no mapping) (site {})",
                self.tid,
                self.site.get()
            ),
            Ok(other) => unreachable!("vma request answered with {other:?}"),
        }
        if let Some(id) = span {
            shared.spans.record(Span {
                id,
                parent: SpanId::NONE,
                kind: SpanKind::VmaSync,
                node,
                task: self.tid,
                start: t0,
                end: self.sim.now(),
                label: "vma_pull",
                tag: None,
            });
        }
    }

    fn page_fault(&self, vpn: Vpn, access: Access, addr: VirtAddr) {
        let shared = Arc::clone(&self.shared);
        let node = self.node.get();
        let is_write = access.is_write();
        let ctx = self.sim;

        let span_t0 = ctx.now();
        let fault_span = shared.spans.is_enabled().then(|| shared.spans.alloc_id());

        ctx.advance(shared.cost.fault_entry);

        // Leader–follower coalescing: the first thread to fault on this
        // (page, access-type) pair leads; the rest park until it finishes.
        // (Disabled only for the ablation study: every thread then runs
        // the full protocol itself.)
        let coalesce = shared.cost.coalesce_faults;
        let mut leader_span = 0u64;
        let is_leader = !coalesce || {
            let mut table = shared.fault_tables[node.0 as usize].lock();
            match table.entries.entry((vpn, is_write)) {
                Entry::Occupied(mut e) => {
                    e.get_mut().followers.push(ctx.id());
                    leader_span = e.get().leader_span;
                    false
                }
                Entry::Vacant(v) => {
                    v.insert(FaultEntry {
                        followers: Vec::new(),
                        leader_span: fault_span.map_or(0, |s| s.0),
                    });
                    true
                }
            }
        };
        if !is_leader {
            shared.stats.counters.incr("faults.coalesced");
            if let Some(m) = &shared.metrics {
                m.node(node).incr("dsm.faults_coalesced");
            }
            ctx.park();
            // The follower's wait parents to the leader's fault span —
            // the coalescing relationship made visible in the timeline.
            if let Some(id) = fault_span {
                shared.spans.record(Span {
                    id,
                    parent: SpanId(leader_span),
                    kind: SpanKind::FollowerWait,
                    node,
                    task: self.tid,
                    start: span_t0,
                    end: ctx.now(),
                    label: "follower_wait",
                    tag: None,
                });
            }
            return; // the outer ensure() loop re-checks the updated PTE
        }

        let t0 = ctx.now();
        let wire_span = span_ctx(fault_span);
        let mut rounds = 0u64;
        let mut origin_inline = false;
        loop {
            rounds += 1;
            // Re-read the node each round: a crash may have re-homed the
            // thread to the origin mid-fault. With the sharded directory
            // a page's transactions run at its home node — which is the
            // origin for every page when sharding is off.
            let granted = if self.node.get() == shared.home_of(vpn) {
                let (granted, inline) = self.origin_fault_round(vpn, access, wire_span);
                origin_inline = inline;
                granted
            } else {
                self.remote_fault_round(vpn, access, wire_span)
            };
            if granted {
                break;
            }
            shared.stats.counters.incr("faults.retried");
            if let Some(m) = &shared.metrics {
                m.node(node).incr("dsm.faults_retried");
            }
            // Deterministic per-thread jitter keeps retrying threads from
            // re-colliding in lockstep (the kernel's backoff has natural
            // jitter from scheduling).
            let retry_t0 = ctx.now();
            let retry_span = shared.spans.is_enabled().then(|| shared.spans.alloc_id());
            let jitter = (self.tid.0 * 7_000 + rounds * 13_000) % 60_000;
            ctx.advance(shared.cost.retry_backoff + dex_sim::SimDuration::from_nanos(jitter));
            if let Some(id) = retry_span {
                shared.spans.record(Span {
                    id,
                    parent: fault_span.unwrap_or(SpanId::NONE),
                    kind: SpanKind::FaultRetry,
                    node,
                    task: self.tid,
                    start: retry_t0,
                    end: ctx.now(),
                    label: "retry_backoff",
                    tag: None,
                });
            }
        }
        ctx.advance(shared.cost.fault_fixup);

        // An origin fault resolved inline on the first try involved no
        // other node: it is an ordinary minor fault (demand-zero paging),
        // not a consistency-protocol fault, and is reported separately.
        let minor = origin_inline && rounds == 1;
        if minor {
            shared.stats.counters.incr("faults.minor");
        } else {
            shared.stats.counters.incr(if is_write {
                "faults.write"
            } else {
                "faults.read"
            });
            shared.stats.fault_hist.record(ctx.now() - t0);
            if let Some(m) = &shared.metrics {
                m.node(node).incr(if is_write {
                    "dsm.faults_write"
                } else {
                    "dsm.faults_read"
                });
            }
            if shared.trace.is_enabled() {
                shared.trace.record(FaultEvent {
                    time: t0,
                    node,
                    task: self.tid,
                    kind: if is_write {
                        FaultKind::Write
                    } else {
                        FaultKind::Read
                    },
                    site: self.site.get(),
                    addr,
                    tag: shared.tag_for(node, addr),
                });
            }
        }
        if let Some(id) = fault_span {
            shared.spans.record(Span {
                id,
                parent: SpanId::NONE,
                kind: SpanKind::Fault,
                node,
                task: self.tid,
                start: span_t0,
                end: ctx.now(),
                label: match (minor, is_write) {
                    (true, _) => "minor_fault",
                    (false, true) => "write_fault",
                    (false, false) => "read_fault",
                },
                tag: shared.tag_for(node, addr),
            });
        }

        if coalesce {
            let followers = {
                let mut table = shared.fault_tables[node.0 as usize].lock();
                table
                    .entries
                    .remove(&(vpn, is_write))
                    .expect("leader owns the entry")
                    .followers
            };
            for f in followers {
                ctx.unpark(f);
            }
        }
    }

    /// One protocol round for a fault at the page's directory home (the
    /// origin in classic mode, any node in sharded mode); returns
    /// `(granted, inline)` where `inline` means the directory granted
    /// immediately with no remote involvement (a minor fault).
    fn origin_fault_round(&self, vpn: Vpn, access: Access, span: SpanContext) -> (bool, bool) {
        let shared = &self.shared;
        let ctx = self.sim;
        let node = self.node.get();
        let req_id = shared.new_req_id();
        let actions =
            shared
                .directory_for(vpn)
                .lock()
                .request(vpn, access, Requester::Local { req_id });

        // Apply local actions and gather sends *without yielding*, so the
        // directory transition and the PTE changes are atomic with respect
        // to other simulated threads.
        let mut sends: Vec<(NodeId, DexMsg)> = Vec::new();
        let mut granted = false;
        let mut retry = false;
        let mut opened_txn = false;
        {
            let mut space = shared.space(node).lock();
            for action in &actions {
                match action {
                    DirAction::Grant { access, .. } => {
                        space.page_table.set(
                            vpn,
                            if access.is_write() {
                                dex_os::Pte::READ_WRITE
                            } else {
                                dex_os::Pte::READ_ONLY
                            },
                        );
                        // Touch the frame so reads observe the page even
                        // if it was never written.
                        let _ = space.frame_mut(vpn);
                        granted = true;
                    }
                    DirAction::Retry { .. } => retry = true,
                    DirAction::ClearOriginPte => space.page_table.clear(vpn),
                    DirAction::DowngradeOriginPte => space.page_table.downgrade(vpn),
                    DirAction::SendFlush { to } => {
                        opened_txn = true;
                        sends.push((
                            *to,
                            DexMsg::Flush {
                                pid: shared.pid,
                                vpn,
                            },
                        ));
                    }
                    DirAction::SendInvalidate { to, needs_data } => {
                        opened_txn = true;
                        sends.push((
                            *to,
                            DexMsg::Invalidate {
                                pid: shared.pid,
                                vpn,
                                needs_data: *needs_data,
                            },
                        ));
                    }
                    DirAction::Forward {
                        to,
                        access: fwd_access,
                        ..
                    } => {
                        // Sharded mode: the current owner grants straight
                        // to us (the home); the home's directory waits for
                        // its async ownership ack.
                        opened_txn = true;
                        shared.stats.counters.incr("protocol.forwards");
                        if let Some(m) = &shared.metrics {
                            m.node(node).incr("protocol.forwards");
                        }
                        sends.push((
                            *to,
                            DexMsg::OwnerForward {
                                pid: shared.pid,
                                vpn,
                                access: *fwd_access,
                                requester: node,
                                req_id,
                            },
                        ));
                    }
                    DirAction::SendInvalidateBatch { to, entries } => {
                        opened_txn = true;
                        sends.push((
                            *to,
                            DexMsg::InvalidateBatch {
                                pid: shared.pid,
                                entries: entries.clone(),
                            },
                        ));
                    }
                    DirAction::DropHomeCopy { .. } => {
                        // A local requester is never elected as a doomed
                        // replica holder: the directory skips the
                        // requesting node when revoking.
                        unreachable!("home asked to drop its copy for its own request")
                    }
                    DirAction::SetOriginPteRo | DirAction::InstallOriginData => {
                        unreachable!("ack-only action out of request()")
                    }
                }
            }
        }
        if granted {
            return (true, true);
        }
        if retry {
            return (false, false);
        }
        assert!(
            opened_txn,
            "request must grant, retry, or open a transaction"
        );
        let slot = shared.register_pending(ctx, node, req_id);
        let endpoint = self.endpoint(node);
        for (to, msg) in sends {
            endpoint.send_traced(ctx, to, msg, span);
        }
        match shared.wait_reply_watching(ctx, &slot, node, req_id, None, false) {
            Ok(Reply::PageGrant { retry }) => (!retry, false),
            Ok(other) => unreachable!("page fault answered with {other:?}"),
            Err(WaitError::OwnNodeCrashed) => {
                // Only reachable in sharded mode: a non-origin home
                // fail-stopped under its own faulting thread.
                assert_ne!(node, shared.origin, "the origin cannot crash");
                self.rehome_after_crash();
                (false, false)
            }
            Err(WaitError::PeerCrashed(p)) => unreachable!("unwatched peer {p}"),
        }
    }

    /// One protocol round for a fault away from the page's home. The
    /// fault span rides the request so home-side handling stitches to
    /// this fault.
    fn remote_fault_round(&self, vpn: Vpn, access: Access, span: SpanContext) -> bool {
        let shared = &self.shared;
        let ctx = self.sim;
        let node = self.node.get();
        let home = shared.home_of(vpn);
        let req_id = shared.new_req_id();
        let slot = shared.register_pending(ctx, node, req_id);
        // Sharded mode: a grant for this page may be forwarded by a third
        // node, racing protocol traffic from the home on another channel.
        // Mark the page in flight so the dispatcher defers such traffic
        // until the grant lands (no-op when sharding is off).
        shared.mark_inflight(node, vpn);
        self.endpoint(node).send_traced(
            ctx,
            home,
            DexMsg::PageRequest {
                pid: shared.pid,
                vpn,
                access,
                req_id,
            },
            span,
        );
        let peer = shared.is_sharded().then_some(home);
        match shared.wait_reply_watching(ctx, &slot, node, req_id, peer, false) {
            Ok(Reply::PageGrant { retry }) => !retry,
            Ok(other) => unreachable!("page fault answered with {other:?}"),
            Err(WaitError::OwnNodeCrashed) => {
                // The node fail-stopped under the thread; re-home and let
                // the fault path retry from the origin.
                self.rehome_after_crash();
                false
            }
            Err(WaitError::PeerCrashed(p)) => panic!(
                "directory home {p:?} crashed with page {vpn:?} outstanding: \
                 sharded homes hold authoritative ownership state and are \
                 not fault-tolerant (keep fault plans away from home shards)"
            ),
        }
    }

    // ---- futexes ----

    /// `FUTEX_WAIT`: blocks while the word at `addr` equals `expected`.
    /// Returns `0` when woken, [`FUTEX_EAGAIN`] when the word had already
    /// changed. Remote threads delegate this to their original thread at
    /// the origin (§III-A).
    pub fn futex_wait(&self, addr: VirtAddr, expected: u32) -> i64 {
        let result = self.futex_wait_inner(addr, expected);
        if result == 0 {
            // An actual wakeup orders this thread after the waker.
            self.record_race_event(RaceEventKind::FutexWaitReturn { addr });
        }
        result
    }

    fn futex_wait_inner(&self, addr: VirtAddr, expected: u32) -> i64 {
        let shared = &self.shared;
        let t0 = self.sim.now();
        let span = shared.spans.is_enabled().then(|| shared.spans.alloc_id());
        let result = self.futex_wait_dispatch(addr, expected, span_ctx(span));
        if let Some(id) = span {
            shared.spans.record(Span {
                id,
                parent: SpanId::NONE,
                kind: SpanKind::FutexWait,
                node: self.node.get(),
                task: self.tid,
                start: t0,
                end: self.sim.now(),
                label: if result == 0 {
                    "futex_woken"
                } else {
                    "futex_eagain"
                },
                tag: None,
            });
        }
        result
    }

    fn futex_wait_dispatch(&self, addr: VirtAddr, expected: u32, span: SpanContext) -> i64 {
        let shared = &self.shared;
        shared.stats.counters.incr("futex.waits");
        let node = self.node.get();
        if node == shared.origin {
            let req_id = shared.new_req_id();
            match futex_wait_at_origin(self, addr, expected, node, req_id) {
                FutexWaitOutcome::ValueMismatch => FUTEX_EAGAIN,
                FutexWaitOutcome::Enqueued(slot) => match shared.wait_reply(self.sim, &slot) {
                    Reply::FutexWoken => 0,
                    other => unreachable!("futex wait answered with {other:?}"),
                },
            }
        } else {
            shared.stats.counters.incr("delegations");
            let req_id = shared.new_req_id();
            let slot = shared.register_pending(self.sim, node, req_id);
            self.endpoint(node).send_traced(
                self.sim,
                shared.origin,
                DexMsg::Delegate {
                    pid: shared.pid,
                    tid: self.tid,
                    op: DelegatedOp::FutexWait { addr, expected },
                    req_id,
                },
                span,
            );
            // Unbounded: a futex wait legitimately blocks for as long as
            // the application keeps the waiter asleep.
            match shared.wait_reply_watching(self.sim, &slot, node, req_id, None, true) {
                Ok(Reply::Delegate(result)) => result,
                Ok(Reply::FutexWoken) => 0,
                Ok(other) => unreachable!("futex wait answered with {other:?}"),
                Err(WaitError::OwnNodeCrashed) => {
                    // Remove the (possibly) queued waiter so a later wake
                    // does not target the dead node, then retry at the
                    // origin. A wake lost in the crash window is recovered
                    // by the standard futex pattern: the retry re-checks
                    // the word value before sleeping.
                    shared.futex.lock().cancel(addr, ThreadId(req_id));
                    shared.futex_nodes.lock().remove(&req_id);
                    self.rehome_after_crash();
                    self.futex_wait_dispatch(addr, expected, span)
                }
                Err(WaitError::PeerCrashed(p)) => unreachable!("unwatched peer {p}"),
            }
        }
    }

    /// `FUTEX_WAKE`: wakes up to `count` waiters of the word at `addr`.
    /// Returns the number woken.
    pub fn futex_wake(&self, addr: VirtAddr, count: u32) -> i64 {
        self.record_race_event(RaceEventKind::FutexWake { addr });
        let shared = &self.shared;
        shared.stats.counters.incr("futex.wakes");
        let t0 = self.sim.now();
        let span = shared.spans.is_enabled().then(|| shared.spans.alloc_id());
        let node = self.node.get();
        let result = if node == shared.origin {
            futex_wake_at_origin(self.sim, shared, addr, count)
        } else {
            shared.stats.counters.incr("delegations");
            let req_id = shared.new_req_id();
            let slot = shared.register_pending(self.sim, node, req_id);
            self.endpoint(node).send_traced(
                self.sim,
                shared.origin,
                DexMsg::Delegate {
                    pid: shared.pid,
                    tid: self.tid,
                    op: DelegatedOp::FutexWake { addr, count },
                    req_id,
                },
                span_ctx(span),
            );
            match shared.wait_reply_watching(self.sim, &slot, node, req_id, None, false) {
                Ok(Reply::Delegate(result)) => result,
                Ok(other) => unreachable!("futex wake answered with {other:?}"),
                Err(WaitError::OwnNodeCrashed) => {
                    // At-least-once: the origin may have already woken the
                    // waiters; re-issuing the wake at home is safe because
                    // FUTEX_WAKE is idempotent for already-empty queues.
                    self.rehome_after_crash();
                    futex_wake_at_origin(self.sim, shared, addr, count)
                }
                Err(WaitError::PeerCrashed(p)) => unreachable!("unwatched peer {p}"),
            }
        };
        if let Some(id) = span {
            shared.spans.record(Span {
                id,
                parent: SpanId::NONE,
                kind: SpanKind::FutexWake,
                node,
                task: self.tid,
                start: t0,
                end: self.sim.now(),
                label: "futex_wake",
                tag: None,
            });
        }
        result
    }

    // ---- migration ----

    /// Relocates this thread to `dst`. A no-op when already there; a
    /// remote→remote move goes home first (backward) and then forward.
    ///
    /// # Errors
    ///
    /// [`MigrateError::NoSuchNode`] if `dst` is outside the cluster;
    /// [`MigrateError::NodeCrashed`] if a fault plan crashed `dst` (the
    /// thread stays at the origin in that case).
    pub fn migrate(&self, dst: impl Into<NodeId>) -> Result<(), MigrateError> {
        let dst = dst.into();
        let shared = Arc::clone(&self.shared);
        if (dst.0 as usize) >= shared.nodes {
            return Err(MigrateError::NoSuchNode {
                requested: dst,
                nodes: shared.nodes,
            });
        }
        if dst == self.node.get() {
            return Ok(());
        }
        if self.node.get() != shared.origin {
            self.migrate_back_inner();
        }
        if dst == shared.origin {
            return Ok(());
        }
        self.migrate_forward(dst)
    }

    /// Brings the thread back to its origin node (backward migration).
    /// No-op when already home.
    pub fn migrate_back(&self) -> Result<(), MigrateError> {
        if self.node.get() != self.shared.origin {
            self.migrate_back_inner();
        }
        Ok(())
    }

    /// The node currently holding the page of `addr` exclusively (the
    /// origin when the page is shared or untouched). At the origin this
    /// reads the directory; remote threads delegate the query to their
    /// original thread, like any stateful kernel feature.
    pub fn data_home(&self, addr: VirtAddr) -> NodeId {
        let shared = &self.shared;
        if self.node.get() == shared.origin {
            shared
                .directory_for(addr.vpn())
                .lock()
                .current_writer(addr.vpn())
                .unwrap_or(shared.origin)
        } else {
            let node = self.delegate(DelegatedOp::QueryOwner { addr });
            NodeId(u16::try_from(node).expect("node id fits"))
        }
    }

    /// Relocates this thread to the node that owns the data at `addr` —
    /// the "relocating the computation near data" scenario of the paper's
    /// conclusion (§VII). Returns the destination.
    ///
    /// # Errors
    ///
    /// Propagates [`MigrateError`] from the underlying migration.
    pub fn migrate_to_data(&self, addr: VirtAddr) -> Result<NodeId, MigrateError> {
        let target = self.data_home(addr);
        self.migrate(target)?;
        Ok(target)
    }

    /// Relocates this thread to the node currently running the fewest
    /// application threads (itself excluded) — the simple load-balancing
    /// policy §III-A says schedulers or user-space libraries could drive.
    /// Returns the destination (possibly the current node).
    ///
    /// # Errors
    ///
    /// Propagates [`MigrateError`] from the underlying migration.
    pub fn migrate_least_loaded(&self) -> Result<NodeId, MigrateError> {
        let here = self.node.get();
        let target = {
            let loads = self.shared.thread_counts();
            let mut best = here;
            let mut best_load = loads[here.0 as usize] - 1; // exclude self
            for (n, &load) in loads.iter().enumerate() {
                let node = NodeId(n as u16);
                if node != here && load < best_load {
                    best = node;
                    best_load = load;
                }
            }
            best
        };
        self.migrate(target)?;
        Ok(target)
    }

    /// Requests read or write ownership of every page covering
    /// `[addr, addr + len)` in one pipelined batch — the data-access-hint
    /// mechanism of §IV-A, which amortizes protocol round trips that a
    /// faulting loop would pay one at a time. Advisory: pages that cannot
    /// be granted immediately (conflicting transactions) are simply left
    /// for the regular fault path.
    pub fn prefetch(&self, addr: VirtAddr, len: u64, access: Access) {
        let shared = &self.shared;
        if self.node.get() == shared.origin && !shared.is_sharded() {
            return; // the origin serves itself through the fault path
        }
        // Make sure the VMA is known first (one on-demand sync at most).
        self.ensure(addr, access);
        // The sync above runs the regular fault path, which re-homes the
        // thread if its node dies — re-read the node (and re-check the
        // origin shortcut) rather than trusting a pre-fault snapshot.
        let node = self.node.get();
        if node == shared.origin && !shared.is_sharded() {
            return;
        }
        let missing: Vec<Vpn> = {
            let space = shared.space(node).lock();
            dex_os::pages_covering(addr, len)
                .filter(|vpn| {
                    // Pages homed here are served through the local fault
                    // path; only remote homes are worth a request.
                    !space.page_table.entry(*vpn).permits(access) && shared.home_of(*vpn) != node
                })
                .collect()
        };
        if missing.is_empty() {
            return;
        }
        let endpoint = self.endpoint(node);
        let mut slots = Vec::with_capacity(missing.len());
        for vpn in &missing {
            let req_id = shared.new_req_id();
            let slot = shared.register_pending(self.sim, node, req_id);
            shared.mark_inflight(node, *vpn);
            endpoint.send(
                self.sim,
                shared.home_of(*vpn),
                DexMsg::PageRequest {
                    pid: shared.pid,
                    vpn: *vpn,
                    access,
                    req_id,
                },
            );
            slots.push((*vpn, req_id, slot));
        }
        // Prefetch is advisory end to end: grants are counted, denials
        // (conflicting transactions answered with a retry, or anything
        // else the protocol sends back) are left to the regular fault
        // path on first touch — never treated as protocol errors.
        let mut granted = 0u64;
        let mut denied = 0u64;
        let mut outstanding = slots.into_iter();
        while let Some((vpn, req_id, slot)) = outstanding.next() {
            let peer = shared.is_sharded().then(|| shared.home_of(vpn));
            match shared.wait_reply_watching(self.sim, &slot, node, req_id, peer, false) {
                // Granted pages were installed by the dispatcher.
                Ok(Reply::PageGrant { retry: false }) => granted += 1,
                Ok(_) => denied += 1,
                Err(WaitError::OwnNodeCrashed) => {
                    // Drop the remaining requests and go home. Grants
                    // already applied to the dead node's page table are
                    // moot.
                    denied += 1;
                    for (_, rid, _) in outstanding.by_ref() {
                        shared.abandon_pending(node, rid);
                        denied += 1;
                    }
                    self.rehome_after_crash();
                    break;
                }
                Err(WaitError::PeerCrashed(_)) => {
                    // A directory home died mid-prefetch. Unlike the
                    // mandatory fault path, a hint can simply be dropped:
                    // abandon the outstanding slots and let first touch
                    // (and crash recovery) sort the rest out.
                    denied += 1;
                    for (_, rid, _) in outstanding.by_ref() {
                        shared.abandon_pending(node, rid);
                        denied += 1;
                    }
                    break;
                }
            }
        }
        shared.stats.counters.add("prefetch.pages", granted);
        shared.stats.counters.add("prefetch.denied", denied);
        if let Some(m) = &shared.metrics {
            m.node(node).add("prefetch.pages", granted);
            m.node(node).add("prefetch.denied", denied);
        }
    }

    /// Picks the thread up off its fail-stopped node and re-homes it to
    /// the origin — the graceful-degradation half of the fault model. Any
    /// dirty pages whose only copy lived on the dead node are lost (the
    /// directory reverts them to the origin's last flushed frame);
    /// cluster-wide recovery itself is idempotent and may already have
    /// run on behalf of another thread.
    fn rehome_after_crash(&self) {
        let shared = &self.shared;
        shared.stats.counters.incr("migrations.crash_rehomed");
        shared.maybe_handle_crashes(self.sim);
        let old = self.node.get();
        shared.adjust_load(old, -1);
        shared.adjust_load(shared.origin, 1);
        self.node.set(shared.origin);
    }

    fn migrate_forward(&self, dst: NodeId) -> Result<(), MigrateError> {
        let shared = &self.shared;
        let ctx = self.sim;
        let t0 = ctx.now();
        let span = shared.spans.is_enabled().then(|| shared.spans.alloc_id());
        shared.stats.counters.incr("migrations.forward");

        // Origin side: capture the execution context; the first migration
        // of a thread also builds its per-thread migration structures.
        let origin_cost = if self.has_migrated.get() {
            shared.cost.context_capture_next
        } else {
            shared.cost.context_capture_first
        };
        ctx.advance(origin_cost);

        let context = self.synthesize_context();
        let req_id = shared.new_req_id();
        let node = self.node.get();
        let slot = shared.register_pending(ctx, node, req_id);
        self.endpoint(node).send_traced(
            ctx,
            dst,
            DexMsg::MigrateRequest {
                pid: shared.pid,
                tid: self.tid,
                context,
                req_id,
            },
            span_ctx(span),
        );
        let phases = match shared.wait_reply_watching(ctx, &slot, node, req_id, Some(dst), false) {
            Ok(Reply::MigrateAck(phases)) => phases,
            Ok(other) => unreachable!("migration answered with {other:?}"),
            Err(WaitError::PeerCrashed(node)) => {
                // The destination died before acking: the thread never
                // left the origin, so it simply stays put.
                shared.stats.counters.incr("migrations.dest_crashed");
                return Err(MigrateError::NodeCrashed { node });
            }
            Err(WaitError::OwnNodeCrashed) => {
                unreachable!("forward migration starts at the origin, which cannot crash")
            }
        };
        shared.adjust_load(self.node.get(), -1);
        shared.adjust_load(dst, 1);
        self.node.set(dst);
        self.has_migrated.set(true);
        self.ensure_pair_thread();

        let remote_side: SimDuration = phases.iter().map(|(_, d)| *d).sum();
        let first_on_node = phases.iter().any(|(name, _)| *name == "remote_worker");
        shared.stats.migrations.lock().push(MigrationSample {
            forward: true,
            first_on_node,
            origin_side: origin_cost,
            remote_side,
            total: ctx.now() - t0,
            phases,
        });
        if let Some(id) = span {
            shared.spans.record(Span {
                id,
                parent: SpanId::NONE,
                kind: SpanKind::MigrationForward,
                node,
                task: self.tid,
                start: t0,
                end: ctx.now(),
                label: if first_on_node {
                    "first_on_node"
                } else {
                    "worker_reused"
                },
                tag: None,
            });
        }
        Ok(())
    }

    fn migrate_back_inner(&self) {
        let shared = &self.shared;
        let ctx = self.sim;
        let node = self.node.get();
        if shared.fabric.node_crashed(node, ctx.now()) {
            // The node died under the thread: there is no remote side left
            // to capture context from, so skip the protocol round trip.
            self.rehome_after_crash();
            return;
        }
        let t0 = ctx.now();
        let span = shared.spans.is_enabled().then(|| shared.spans.alloc_id());
        shared.stats.counters.incr("migrations.backward");
        ctx.advance(shared.cost.backward_capture);

        let req_id = shared.new_req_id();
        let slot = shared.register_pending(ctx, node, req_id);
        self.endpoint(node).send_traced(
            ctx,
            shared.origin,
            DexMsg::MigrateBack {
                pid: shared.pid,
                tid: self.tid,
                context: self.synthesize_context(),
                req_id,
            },
            span_ctx(span),
        );
        match shared.wait_reply_watching(ctx, &slot, node, req_id, None, false) {
            Ok(Reply::MigrateBackAck) => {}
            Ok(other) => unreachable!("backward migration answered with {other:?}"),
            Err(WaitError::OwnNodeCrashed) => {
                // Crashed mid-backward-migration: the context capture is
                // lost with the node; re-home the thread directly.
                self.rehome_after_crash();
                return;
            }
            Err(WaitError::PeerCrashed(p)) => unreachable!("unwatched peer {p}"),
        }
        shared.adjust_load(self.node.get(), -1);
        shared.adjust_load(shared.origin, 1);
        self.node.set(shared.origin);
        shared.stats.migrations.lock().push(MigrationSample {
            forward: false,
            first_on_node: false,
            origin_side: shared.cost.backward_update,
            remote_side: shared.cost.backward_capture,
            total: ctx.now() - t0,
            phases: vec![("capture", shared.cost.backward_capture)],
        });
        if let Some(id) = span {
            shared.spans.record(Span {
                id,
                parent: SpanId::NONE,
                kind: SpanKind::MigrationBack,
                node,
                task: self.tid,
                start: t0,
                end: ctx.now(),
                label: "migrate_back",
                tag: None,
            });
        }
    }

    /// Builds a deterministic register file for the context transfer so
    /// its integrity is testable end to end.
    fn synthesize_context(&self) -> ExecutionContext {
        let mut context = ExecutionContext::default();
        for (i, r) in context.regs.iter_mut().enumerate() {
            *r = self.tid.0.wrapping_mul(0x9E3779B9).wrapping_add(i as u64);
        }
        context.ip = 0x400000 + self.tid.0 * 0x10;
        context.sp = 0x7fff_0000_0000 - self.tid.0 * 0x100000;
        context
    }

    fn ensure_pair_thread(&self) {
        if self.pair_started.get() {
            return;
        }
        self.pair_started.set(true);
        let chan: SimChannel<DelegationJob> = SimChannel::unbounded();
        self.shared.delegation.lock().insert(self.tid, chan.clone());
        let shared = Arc::clone(&self.shared);
        let tid = self.tid;
        self.sim.spawn_daemon(format!("pair-{tid}"), move |ctx| {
            pair_thread_loop(ctx, shared, tid, chan);
        });
    }

    // ---- address-space system calls ----

    /// `mmap`: creates an anonymous mapping (performed at the origin via
    /// delegation when the thread is remote; permissive, so not eagerly
    /// broadcast).
    pub fn mmap(&self, len: u64, prot: Prot) -> VirtAddr {
        let shared = &self.shared;
        if self.node.get() == shared.origin {
            shared
                .space(shared.origin)
                .lock()
                .vmas
                .mmap(len, prot, VmaKind::Anon, None)
        } else {
            let result = self.delegate(DelegatedOp::Mmap { len, prot });
            assert!(result >= 0, "delegated mmap failed: {result}");
            VirtAddr::new(result as u64)
        }
    }

    /// `munmap`: removes mappings. Shrinking operations are broadcast
    /// eagerly to every node (§III-D).
    pub fn munmap(&self, addr: VirtAddr, len: u64) {
        let shared = &self.shared;
        if self.node.get() == shared.origin {
            munmap_at_origin(self.sim, shared, addr, len);
        } else {
            let result = self.delegate(DelegatedOp::Munmap { addr, len });
            assert!(result >= 0, "delegated munmap failed: {result}");
        }
    }

    /// `mprotect`: changes protection; downgrades are broadcast eagerly.
    pub fn mprotect(&self, addr: VirtAddr, len: u64, prot: Prot) {
        let shared = &self.shared;
        if self.node.get() == shared.origin {
            mprotect_at_origin(self.sim, shared, addr, len, prot);
        } else {
            let result = self.delegate(DelegatedOp::Mprotect { addr, len, prot });
            assert!(result >= 0, "delegated mprotect failed: {result}");
        }
    }

    /// Performs a stateful system call at the origin (file I/O stand-in),
    /// keeping the original thread busy for `busy`.
    pub fn syscall(&self, busy: SimDuration) {
        if self.node.get() == self.shared.origin {
            self.sim.advance(busy);
        } else {
            let result = self.delegate(DelegatedOp::Syscall { busy });
            assert_eq!(result, 0);
        }
    }

    fn delegate(&self, op: DelegatedOp) -> i64 {
        let shared = &self.shared;
        let t0 = self.sim.now();
        let span = shared.spans.is_enabled().then(|| shared.spans.alloc_id());
        let result = self.delegate_inner(&op, span_ctx(span));
        if let Some(id) = span {
            shared.spans.record(Span {
                id,
                parent: SpanId::NONE,
                kind: SpanKind::Delegation,
                node: self.node.get(),
                task: self.tid,
                start: t0,
                end: self.sim.now(),
                label: "delegate",
                tag: None,
            });
        }
        result
    }

    fn delegate_inner(&self, op: &DelegatedOp, span: SpanContext) -> i64 {
        let shared = &self.shared;
        loop {
            let node = self.node.get();
            if node == shared.origin {
                // Reached after a crash re-homed the thread mid-delegation:
                // run the operation directly, like any origin-resident
                // thread would.
                return self.run_delegated_locally(op);
            }
            shared.stats.counters.incr("delegations");
            let req_id = shared.new_req_id();
            let slot = shared.register_pending(self.sim, node, req_id);
            self.endpoint(node).send_traced(
                self.sim,
                shared.origin,
                DexMsg::Delegate {
                    pid: shared.pid,
                    tid: self.tid,
                    op: op.clone(),
                    req_id,
                },
                span,
            );
            match shared.wait_reply_watching(self.sim, &slot, node, req_id, None, false) {
                Ok(Reply::Delegate(result)) => return result,
                Ok(other) => unreachable!("delegation answered with {other:?}"),
                Err(WaitError::OwnNodeCrashed) => {
                    // At-least-once semantics: the origin may have executed
                    // the operation before the crash ate the reply, and the
                    // re-homed retry runs it again. The shipped fault
                    // scenarios only delegate idempotent operations; see
                    // DESIGN.md for the discussion.
                    self.rehome_after_crash();
                }
                Err(WaitError::PeerCrashed(p)) => unreachable!("unwatched peer {p}"),
            }
        }
    }

    /// Runs a delegated operation in place at the origin — the fallback a
    /// re-homed thread uses when its node crashed mid-delegation.
    fn run_delegated_locally(&self, op: &DelegatedOp) -> i64 {
        let shared = &self.shared;
        match op {
            DelegatedOp::Mmap { len, prot } => shared
                .space(shared.origin)
                .lock()
                .vmas
                .mmap(*len, *prot, VmaKind::Anon, None)
                .as_u64() as i64,
            DelegatedOp::Munmap { addr, len } => {
                munmap_at_origin(self.sim, shared, *addr, *len);
                0
            }
            DelegatedOp::Mprotect { addr, len, prot } => {
                mprotect_at_origin(self.sim, shared, *addr, *len, *prot);
                0
            }
            DelegatedOp::QueryOwner { addr } => {
                shared
                    .directory_for(addr.vpn())
                    .lock()
                    .current_writer(addr.vpn())
                    .unwrap_or(shared.origin)
                    .0 as i64
            }
            DelegatedOp::Syscall { busy } => {
                self.sim.advance(*busy);
                0
            }
            DelegatedOp::FutexWait { .. } | DelegatedOp::FutexWake { .. } => {
                unreachable!("futex ops have dedicated origin paths")
            }
        }
    }

    // ---- synchronization primitive constructors ----

    /// Creates a cluster-wide mutex (threads may create primitives at any
    /// time, like `pthread_mutex_init`).
    pub fn new_mutex(&self, tag: &str) -> crate::sync::DexMutex {
        crate::sync::new_mutex(self, tag)
    }

    /// Creates a cluster-wide barrier for `parties` threads.
    pub fn new_barrier(&self, parties: u32, tag: &str) -> crate::sync::DexBarrier {
        crate::sync::new_barrier(self, parties, tag)
    }

    /// Creates a cluster-wide condition variable.
    pub fn new_condvar(&self, tag: &str) -> crate::sync::DexCondvar {
        crate::sync::new_condvar(self, tag)
    }

    /// Creates a cluster-wide readers-writer lock.
    pub fn new_rwlock(&self, tag: &str) -> crate::sync::DexRwLock {
        crate::sync::new_rwlock(self, tag)
    }

    // ---- thread management ----

    /// Spawns a sibling application thread (created at the origin, like
    /// every thread of the process), returning a joinable handle.
    pub fn spawn_thread<F>(&self, name: impl Into<String>, f: F) -> DexThread
    where
        F: FnOnce(&ThreadCtx<'_>) + Send + 'static,
    {
        let shared = Arc::clone(&self.shared);
        let handle = DexThread::new();
        let handle2 = handle.clone();
        let tid = shared.new_tid();
        self.record_race_event(RaceEventKind::Spawn { child: tid });
        self.sim.spawn(name, move |ctx| {
            shared.adjust_load(shared.origin, 1);
            let tctx = ThreadCtx::new(ctx, shared, tid);
            f(&tctx);
            tctx.process().adjust_load(tctx.node(), -1);
            handle2.mark_done(ctx);
        });
        handle
    }

    fn endpoint(&self, node: NodeId) -> crate::process::Endpoint {
        self.shared.fabric.endpoint(node)
    }
}

impl std::fmt::Debug for ThreadCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadCtx")
            .field("tid", &self.tid)
            .field("node", &self.node.get())
            .finish()
    }
}

/// Outcome of the atomic check-and-enqueue half of `FUTEX_WAIT`.
pub(crate) enum FutexWaitOutcome {
    /// The word no longer matched; the caller returns `EAGAIN`.
    ValueMismatch,
    /// The waiter is queued; the slot resolves on `FUTEX_WAKE`.
    Enqueued(Arc<Mutex<Option<Reply>>>),
}

/// The origin-side half of `FUTEX_WAIT`: runs in the context of a thread
/// executing at the origin (an origin-resident app thread, or a migrated
/// thread's original thread servicing a delegation).
///
/// `waiter_node`/`waiter_req` identify where the eventual wake must be
/// delivered. Reading the futex word may itself fault through the DSM —
/// exactly what happens on Linux when the futex syscall touches the word.
pub(crate) fn futex_wait_at_origin(
    tctx: &ThreadCtx<'_>,
    addr: VirtAddr,
    expected: u32,
    waiter_node: NodeId,
    waiter_req: u64,
) -> FutexWaitOutcome {
    let shared = &tctx.shared;
    tctx.ensure(addr, Access::Read);
    // Value check and enqueue must be atomic: no yields below.
    let space = shared.space(shared.origin).lock();
    let mut buf = [0u8; 4];
    space.read(addr, &mut buf);
    let value = u32::from_le_bytes(buf);
    if value != expected {
        return FutexWaitOutcome::ValueMismatch;
    }
    let mut futex = shared.futex.lock();
    futex.enqueue(addr, ThreadId(waiter_req));
    shared.futex_nodes.lock().insert(waiter_req, waiter_node);
    drop(futex);
    drop(space);
    // For a local waiter the pending entry is registered by the caller
    // before parking; for a remote waiter the pending entry lives at the
    // remote node and resolves via FutexWoken.
    let slot = if waiter_node == shared.origin {
        shared.register_pending(tctx.sim, shared.origin, waiter_req)
    } else {
        Arc::new(Mutex::new(None))
    };
    FutexWaitOutcome::Enqueued(slot)
}

/// The origin-side half of `FUTEX_WAKE`. Returns the number woken.
pub(crate) fn futex_wake_at_origin(
    ctx: &SimCtx,
    shared: &Arc<ProcessShared>,
    addr: VirtAddr,
    count: u32,
) -> i64 {
    let woken: Vec<u64> = shared
        .futex
        .lock()
        .wake(addr, count as usize)
        .into_iter()
        .map(|t| t.0)
        .collect();
    let mut remote: Vec<(NodeId, u64)> = Vec::new();
    {
        let mut nodes = shared.futex_nodes.lock();
        for req in &woken {
            let node = nodes.remove(req).expect("waiter node recorded");
            remote.push((node, *req));
        }
    }
    let n = woken.len() as i64;
    let endpoint = shared.fabric.endpoint(shared.origin);
    for (node, req) in remote {
        if node == shared.origin {
            shared.complete_pending(ctx, node, req, Reply::FutexWoken);
        } else {
            endpoint.send(
                ctx,
                node,
                DexMsg::FutexWoken {
                    pid: shared.pid,
                    req_id: req,
                },
            );
        }
    }
    n
}

/// `munmap` executed at the origin: updates the authoritative VMAs, drops
/// directory state, and eagerly broadcasts the shrink to every node.
pub(crate) fn munmap_at_origin(
    ctx: &SimCtx,
    shared: &Arc<ProcessShared>,
    addr: VirtAddr,
    len: u64,
) {
    let pages = {
        let mut space = shared.space(shared.origin).lock();
        let pages = space.vmas.munmap(addr, len).expect("munmap with bad range");
        for vpn in &pages {
            space.page_table.clear(*vpn);
            space.evict_frame(*vpn);
        }
        pages
    };
    for dir in &shared.directories {
        let _ = dir.lock().drop_pages(&pages);
    }
    broadcast_vma_op(ctx, shared, VmaOp::Unmap { addr, len });
}

/// `mprotect` executed at the origin; downgrades broadcast eagerly,
/// permissive changes propagate lazily through on-demand synchronization.
pub(crate) fn mprotect_at_origin(
    ctx: &SimCtx,
    shared: &Arc<ProcessShared>,
    addr: VirtAddr,
    len: u64,
    prot: Prot,
) {
    let downgraded = shared
        .space(shared.origin)
        .lock()
        .vmas
        .mprotect(addr, len, prot)
        .expect("mprotect with bad range");
    if downgraded {
        broadcast_vma_op(ctx, shared, VmaOp::Protect { addr, len, prot });
    }
}

fn broadcast_vma_op(ctx: &SimCtx, shared: &Arc<ProcessShared>, op: VmaOp) {
    let now = ctx.now();
    let peers: Vec<NodeId> = (0..shared.nodes as u16)
        .map(NodeId)
        .filter(|n| *n != shared.origin && !shared.fabric.node_crashed(*n, now))
        .collect();
    if peers.is_empty() {
        return;
    }
    shared.stats.counters.incr("vma.broadcasts");
    let req_id = shared.new_req_id();
    let slot = shared.register_pending_broadcast(ctx, shared.origin, req_id, &peers);
    let endpoint = shared.fabric.endpoint(shared.origin);
    for peer in &peers {
        endpoint.send(
            ctx,
            *peer,
            DexMsg::VmaUpdate {
                pid: shared.pid,
                op: op.clone(),
                req_id,
            },
        );
    }
    // A peer that crashes after the filter above is handled by crash
    // recovery (`complete_broadcasts_for_dead`), which the watching wait
    // triggers on timeout.
    match shared.wait_reply_watching(ctx, &slot, shared.origin, req_id, None, false) {
        Ok(Reply::BroadcastDone) => {}
        Ok(other) => unreachable!("vma broadcast answered with {other:?}"),
        Err(e) => unreachable!("origin wait failed with {e:?}: the origin cannot crash"),
    }
}

/// Service loop of a migrated thread's original thread at the origin: it
/// sleeps until a work request arrives, performs it in the origin context,
/// and replies (§III-A).
fn pair_thread_loop(
    ctx: &SimCtx,
    shared: Arc<ProcessShared>,
    tid: Tid,
    chan: SimChannel<DelegationJob>,
) {
    let tctx = ThreadCtx::new(ctx, Arc::clone(&shared), tid);
    let endpoint = shared.fabric.endpoint(shared.origin);
    while let Some(job) = chan.recv(ctx) {
        let t0 = ctx.now();
        let service = shared.spans.is_enabled().then(|| shared.spans.alloc_id());
        let reply = match job.op {
            DelegatedOp::FutexWait { addr, expected } => {
                match futex_wait_at_origin(&tctx, addr, expected, job.from, job.req_id) {
                    FutexWaitOutcome::ValueMismatch => Some(FUTEX_EAGAIN),
                    // The waiter stays parked until FUTEX_WAKE reaches it.
                    FutexWaitOutcome::Enqueued(_slot) => None,
                }
            }
            DelegatedOp::FutexWake { addr, count } => {
                Some(futex_wake_at_origin(ctx, &shared, addr, count))
            }
            DelegatedOp::Mmap { len, prot } => {
                let addr =
                    shared
                        .space(shared.origin)
                        .lock()
                        .vmas
                        .mmap(len, prot, VmaKind::Anon, None);
                Some(addr.as_u64() as i64)
            }
            DelegatedOp::Munmap { addr, len } => {
                munmap_at_origin(ctx, &shared, addr, len);
                Some(0)
            }
            DelegatedOp::Mprotect { addr, len, prot } => {
                mprotect_at_origin(ctx, &shared, addr, len, prot);
                Some(0)
            }
            DelegatedOp::QueryOwner { addr } => {
                let node = shared
                    .directory_for(addr.vpn())
                    .lock()
                    .current_writer(addr.vpn())
                    .unwrap_or(shared.origin);
                Some(node.0 as i64)
            }
            DelegatedOp::Syscall { busy } => {
                ctx.advance(busy);
                Some(0)
            }
        };
        if let Some(id) = service {
            shared.spans.record(Span {
                id,
                parent: SpanId(job.span.0),
                kind: SpanKind::DelegationService,
                node: shared.origin,
                task: tid,
                start: t0,
                end: ctx.now(),
                label: "delegation_service",
                tag: None,
            });
        }
        if let Some(result) = reply {
            endpoint.send_traced(
                ctx,
                job.from,
                DexMsg::DelegateReply {
                    pid: shared.pid,
                    result,
                    req_id: job.req_id,
                },
                job.span,
            );
        }
    }
}
