//! Continuous telemetry: the window collector and online health
//! monitors.
//!
//! With [`ClusterConfig::with_telemetry`](crate::ClusterConfig::with_telemetry)
//! enabled, the cluster installs a virtual-time sampler on the engine
//! (see `dex_sim::Engine::set_sampler`). At every window boundary the
//! sampler closes one window of the [`TimeSeries`] (counter deltas from
//! the [`MetricsRegistry`](dex_net::MetricsRegistry), latency quantiles
//! from its window tap) and hands the fresh window — plus the spans that
//! completed inside it — to the **health monitors**, which emit
//! structured [`HealthEvent`]s:
//!
//! * **page ping-pong** — faults on one allocation tag from several
//!   nodes within one window (the §IV-B false-sharing signature);
//! * **retry storm** — a burst of fault retries on one node
//!   (conflicting directory transactions);
//! * **stalled request** — a protocol operation whose span exceeded a
//!   deadline;
//! * **fabric queue buildup** — a link carrying an outsized message
//!   burst in one window.
//!
//! Each event carries the causal [`SpanId`] that triggered it (the
//! offending span, or the window's longest span on the node for
//! metric-derived events), so a health alarm links straight into the
//! span timeline / Perfetto export.
//!
//! Like spans and metrics, telemetry is pure bookkeeping: the sampler
//! runs on the driver thread between events and never advances time,
//! parks, or sends, so a telemetry-enabled run takes byte-for-byte the
//! same schedule as a bare one (enforced by
//! `crates/core/tests/telemetry.rs`).

use dex_net::{NodeId, SeriesBuilder, SeriesScope, TimeSeries, WindowPoints};
use dex_sim::{SimDuration, SimTime};

use crate::span::{Span, SpanBuffer, SpanId, SpanKind};

/// Telemetry configuration: window width plus monitor thresholds.
#[derive(Clone, Debug)]
pub struct TelemetryConfig {
    /// Virtual-time window width for the time-series and monitors.
    pub window: SimDuration,
    /// Health-monitor thresholds.
    pub monitors: MonitorConfig,
}

/// Thresholds of the online health monitors. The defaults are tuned for
/// the calibrated cost model (microsecond-scale protocol operations).
#[derive(Clone, Debug)]
pub struct MonitorConfig {
    /// Page ping-pong: fault spans carrying the same allocation tag,
    /// from at least two distinct nodes, totalling at least this many in
    /// one window.
    pub pingpong_faults: u64,
    /// Retry storm: at least this many fault retries on one node in one
    /// window.
    pub retry_storm: u64,
    /// Stalled request: any protocol span (futex waits excluded — an
    /// application is allowed to block on purpose) lasting at least this
    /// long.
    pub stall_deadline: SimDuration,
    /// Fabric queue buildup: at least this many messages on one directed
    /// link in one window.
    pub link_msgs_buildup: u64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            pingpong_faults: 8,
            retry_storm: 8,
            stall_deadline: SimDuration::from_millis(1),
            link_msgs_buildup: 64,
        }
    }
}

/// What a [`HealthEvent`] reports.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum HealthEventKind {
    /// One allocation tag faulted from several nodes in one window.
    PagePingPong,
    /// A burst of fault retries on one node in one window.
    RetryStorm,
    /// A protocol operation exceeded the stall deadline.
    StalledRequest,
    /// A directed link carried an outsized message burst in one window.
    FabricQueueBuildup,
}

impl HealthEventKind {
    /// Stable lowercase name (used by exporters).
    pub fn as_str(self) -> &'static str {
        match self {
            HealthEventKind::PagePingPong => "page_ping_pong",
            HealthEventKind::RetryStorm => "retry_storm",
            HealthEventKind::StalledRequest => "stalled_request",
            HealthEventKind::FabricQueueBuildup => "fabric_queue_buildup",
        }
    }

    /// Parses the name produced by [`HealthEventKind::as_str`].
    pub fn parse(name: &str) -> Option<HealthEventKind> {
        Some(match name {
            "page_ping_pong" => HealthEventKind::PagePingPong,
            "retry_storm" => HealthEventKind::RetryStorm,
            "stalled_request" => HealthEventKind::StalledRequest,
            "fabric_queue_buildup" => HealthEventKind::FabricQueueBuildup,
            _ => return None,
        })
    }
}

impl std::fmt::Display for HealthEventKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One structured alarm from the online health monitors.
#[derive(Clone, Debug)]
pub struct HealthEvent {
    /// The window the condition was detected in.
    pub window: u64,
    /// The virtual instant of detection (the window's closing boundary,
    /// or the end of the run for a partial tail window).
    pub at: SimTime,
    /// What was detected.
    pub kind: HealthEventKind,
    /// The node the condition is attributed to (the `src` side for link
    /// conditions).
    pub node: NodeId,
    /// The causal span that triggered the alarm: the offending span
    /// itself, or — for purely metric-derived conditions — the longest
    /// span that completed on `node` in the window ([`SpanId::NONE`]
    /// when spans are disabled or none completed).
    pub span: SpanId,
    /// Human-readable specifics (tag names, counts, durations).
    pub detail: String,
}

impl std::fmt::Display for HealthEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[w{} {}] {} node{}: {} ({})",
            self.window, self.at, self.kind, self.node.0, self.detail, self.span
        )
    }
}

/// The per-run telemetry state driven by the engine sampler: one series
/// builder plus the monitors, behind a single lock.
pub(crate) struct Telemetry {
    builder: SeriesBuilder,
    monitors: HealthMonitors,
}

impl Telemetry {
    pub(crate) fn new(
        registry: std::sync::Arc<dex_net::MetricsRegistry>,
        config: &TelemetryConfig,
        span_buffers: Vec<SpanBuffer>,
    ) -> Self {
        Telemetry {
            builder: SeriesBuilder::new(registry, config.window),
            monitors: HealthMonitors::new(config.monitors.clone(), span_buffers),
        }
    }

    /// One sampler tick: closes the current window and runs the monitors
    /// over it.
    pub(crate) fn on_boundary(&mut self, boundary: SimTime) {
        let points = self.builder.sample();
        self.monitors.process(boundary, &points);
    }

    /// Closes the partial tail window (if it saw activity) and returns
    /// the finished series and every health event.
    pub(crate) fn finish(mut self, end: SimTime) -> (TimeSeries, Vec<HealthEvent>) {
        let (series, tail) = self.builder.finish(end);
        if let Some(points) = tail {
            self.monitors.process(end, &points);
        }
        (series, self.monitors.events)
    }
}

/// The four online monitors, fed one window at a time.
struct HealthMonitors {
    cfg: MonitorConfig,
    /// Every process's span buffer with a drain cursor (spans recorded
    /// since the previous boundary belong to the window being closed —
    /// spans are recorded at completion, and the sampler fires before
    /// the boundary event runs).
    spans: Vec<(SpanBuffer, u64)>,
    events: Vec<HealthEvent>,
}

impl HealthMonitors {
    fn new(cfg: MonitorConfig, span_buffers: Vec<SpanBuffer>) -> Self {
        HealthMonitors {
            cfg,
            spans: span_buffers.into_iter().map(|b| (b, 0)).collect(),
            events: Vec::new(),
        }
    }

    fn process(&mut self, at: SimTime, points: &WindowPoints) {
        let window = points.window;
        let mut completed: Vec<Span> = Vec::new();
        for (buffer, cursor) in &mut self.spans {
            let (batch, next) = buffer.snapshot_since(*cursor);
            *cursor = next;
            completed.extend(batch);
        }

        // The fallback causal anchor for metric-derived alarms: the
        // longest span that completed on each node this window.
        let longest_on = |node: NodeId| {
            completed
                .iter()
                .filter(|s| s.node == node)
                .max_by_key(|s| s.duration())
                .map(|s| s.id)
                .unwrap_or(SpanId::NONE)
        };

        // Page ping-pong: same tag faulted from >= 2 nodes, enough times.
        let mut by_tag: std::collections::BTreeMap<&str, Vec<&Span>> =
            std::collections::BTreeMap::new();
        for s in completed.iter().filter(|s| s.kind == SpanKind::Fault) {
            if let Some(tag) = &s.tag {
                by_tag.entry(tag.as_str()).or_default().push(s);
            }
        }
        for (tag, faults) in by_tag {
            let nodes: std::collections::BTreeSet<u16> = faults.iter().map(|s| s.node.0).collect();
            if faults.len() as u64 >= self.cfg.pingpong_faults && nodes.len() >= 2 {
                let last = faults.last().expect("non-empty group");
                self.events.push(HealthEvent {
                    window,
                    at,
                    kind: HealthEventKind::PagePingPong,
                    node: last.node,
                    span: last.id,
                    detail: format!(
                        "tag '{tag}' faulted {}x across {} nodes",
                        faults.len(),
                        nodes.len()
                    ),
                });
            }
        }

        // Retry storm: too many fault retries on one node.
        let mut retries: std::collections::BTreeMap<u16, Vec<&Span>> =
            std::collections::BTreeMap::new();
        for s in completed.iter().filter(|s| s.kind == SpanKind::FaultRetry) {
            retries.entry(s.node.0).or_default().push(s);
        }
        for (node, batch) in retries {
            if batch.len() as u64 >= self.cfg.retry_storm {
                let last = batch.last().expect("non-empty group");
                self.events.push(HealthEvent {
                    window,
                    at,
                    kind: HealthEventKind::RetryStorm,
                    node: NodeId(node),
                    span: last.id,
                    detail: format!("{} fault retries", batch.len()),
                });
            }
        }

        // Stalled requests: any protocol span past the deadline. Futex
        // waits are excluded — blocking there is application intent.
        for s in &completed {
            if matches!(s.kind, SpanKind::FutexWait | SpanKind::FutexWake) {
                continue;
            }
            let d = s.duration();
            if d >= self.cfg.stall_deadline {
                self.events.push(HealthEvent {
                    window,
                    at,
                    kind: HealthEventKind::StalledRequest,
                    node: s.node,
                    span: s.id,
                    detail: format!(
                        "{} '{}' took {} (deadline {})",
                        s.kind, s.label, d, self.cfg.stall_deadline
                    ),
                });
            }
        }

        // Fabric queue buildup: an outsized per-window message burst on
        // one directed link.
        for p in &points.counters {
            if let SeriesScope::Link(src, dst) = p.scope {
                if p.name == "msgs" && p.delta >= self.cfg.link_msgs_buildup {
                    self.events.push(HealthEvent {
                        window,
                        at,
                        kind: HealthEventKind::FabricQueueBuildup,
                        node: NodeId(src),
                        span: longest_on(NodeId(src)),
                        detail: format!("link {src}->{dst} carried {} msgs", p.delta),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_net::MetricsRegistry;
    use dex_os::Tid;
    use std::sync::Arc;

    fn span(id: u64, kind: SpanKind, node: u16, dur_us: u64, tag: Option<&str>) -> Span {
        Span {
            id: SpanId(id),
            parent: SpanId::NONE,
            kind,
            node: NodeId(node),
            task: Tid(0),
            start: SimTime::ZERO,
            end: SimTime::ZERO + SimDuration::from_micros(dur_us),
            label: "test",
            tag: tag.map(str::to_string),
        }
    }

    fn telemetry_with(cfg: MonitorConfig, spans: &SpanBuffer) -> Telemetry {
        Telemetry::new(
            MetricsRegistry::new(2),
            &TelemetryConfig {
                window: SimDuration::from_micros(10),
                monitors: cfg,
            },
            vec![spans.clone()],
        )
    }

    #[test]
    fn pingpong_needs_two_nodes_and_enough_faults() {
        let spans = SpanBuffer::enabled();
        let mut t = telemetry_with(
            MonitorConfig {
                pingpong_faults: 3,
                ..MonitorConfig::default()
            },
            &spans,
        );
        // Three faults on the same tag, but all on one node: no alarm.
        for i in 1..=3 {
            spans.record(span(i, SpanKind::Fault, 0, 1, Some("hot")));
        }
        t.on_boundary(SimTime::from_nanos(10_000));
        // Three more, now split across nodes: alarm.
        spans.record(span(4, SpanKind::Fault, 0, 1, Some("hot")));
        spans.record(span(5, SpanKind::Fault, 1, 1, Some("hot")));
        spans.record(span(6, SpanKind::Fault, 1, 1, Some("hot")));
        t.on_boundary(SimTime::from_nanos(20_000));
        let (_, events) = t.finish(SimTime::from_nanos(20_000));
        assert_eq!(events.len(), 1, "{events:?}");
        let e = &events[0];
        assert_eq!(e.kind, HealthEventKind::PagePingPong);
        assert_eq!(e.window, 1);
        assert_eq!(e.span, SpanId(6), "anchored to the last offending fault");
        assert!(e.detail.contains("'hot'"), "{}", e.detail);
    }

    #[test]
    fn retry_storm_and_stall_fire_per_span_conditions() {
        let spans = SpanBuffer::enabled();
        let mut t = telemetry_with(
            MonitorConfig {
                retry_storm: 2,
                stall_deadline: SimDuration::from_micros(100),
                ..MonitorConfig::default()
            },
            &spans,
        );
        spans.record(span(1, SpanKind::FaultRetry, 1, 1, None));
        spans.record(span(2, SpanKind::FaultRetry, 1, 1, None));
        spans.record(span(3, SpanKind::Delegation, 0, 500, None)); // stalled
        spans.record(span(4, SpanKind::FutexWait, 0, 900, None)); // exempt
        t.on_boundary(SimTime::from_nanos(10_000));
        let (_, events) = t.finish(SimTime::from_nanos(10_000));
        let kinds: Vec<_> = events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![HealthEventKind::RetryStorm, HealthEventKind::StalledRequest],
            "{events:?}"
        );
        assert_eq!(events[0].node, NodeId(1));
        assert_eq!(events[1].span, SpanId(3));
    }

    #[test]
    fn fabric_buildup_uses_link_deltas_and_anchors_a_span() {
        let registry = MetricsRegistry::new(2);
        let spans = SpanBuffer::enabled();
        let mut t = Telemetry::new(
            Arc::clone(&registry),
            &TelemetryConfig {
                window: SimDuration::from_micros(10),
                monitors: MonitorConfig {
                    link_msgs_buildup: 5,
                    ..MonitorConfig::default()
                },
            },
            vec![spans.clone()],
        );
        registry.link(NodeId(0), NodeId(1)).add("msgs", 6);
        spans.record(span(1, SpanKind::DirectoryHandling, 0, 3, None));
        spans.record(span(2, SpanKind::Fault, 0, 9, None)); // longest on node 0
        t.on_boundary(SimTime::from_nanos(10_000));
        // Below threshold in the next window: no second alarm.
        registry.link(NodeId(0), NodeId(1)).add("msgs", 2);
        t.on_boundary(SimTime::from_nanos(20_000));
        let (series, events) = t.finish(SimTime::from_nanos(20_000));
        assert_eq!(events.len(), 1, "{events:?}");
        let e = &events[0];
        assert_eq!(e.kind, HealthEventKind::FabricQueueBuildup);
        assert_eq!(e.node, NodeId(0));
        assert_eq!(e.span, SpanId(2), "anchored to the window's longest span");
        assert!(e.detail.contains("0->1"), "{}", e.detail);
        assert_eq!(series.windows, 2);
    }
}
