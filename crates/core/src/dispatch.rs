//! Per-node message dispatchers and remote workers.
//!
//! Each node runs one dispatcher daemon that drains the node's fabric
//! inbox and handles DEX protocol messages: it is the simulated analogue
//! of the kernel message-handler context. The dispatcher never blocks on
//! another node — requests that need remote acknowledgments are turned
//! into directory transactions that later acks complete — so the protocol
//! cannot deadlock across dispatchers.
//!
//! The first migration of a process onto a node also creates the
//! *remote worker* (§III-A): a per-process daemon that applies node-wide
//! operations (eager VMA updates) in its own context.

use std::sync::Arc;

use parking_lot::Mutex;

use dex_net::{NodeId, SpanContext};
use dex_os::{Access, PageFrame, Pid, Pte, Tid, Vpn, PAGE_SIZE};
use dex_sim::{SimChannel, SimCtx, SimDuration};

use crate::directory::DirAction;
use crate::msg::{DexMsg, MigrationPhases, VmaOp};
use crate::mutation::ProtocolMutation;
use crate::process::{DeferredWork, DelegationJob, ProcessShared, Reply};
use crate::span::{Span, SpanId, SpanKind};
use crate::trace::{FaultEvent, FaultKind};

/// The task id span records use for protocol handlers (no app thread).
const PROTOCOL_TASK: Tid = Tid(u64::MAX);

/// The cluster-level registry the dispatchers consult to find process
/// state by pid.
#[derive(Default)]
pub(crate) struct ProcessRegistry {
    processes: Mutex<Vec<(Pid, Arc<ProcessShared>)>>,
}

impl ProcessRegistry {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    pub(crate) fn insert(&self, shared: Arc<ProcessShared>) {
        self.processes.lock().push((shared.pid, shared));
    }

    pub(crate) fn get(&self, pid: Pid) -> Arc<ProcessShared> {
        self.processes
            .lock()
            .iter()
            .find(|(p, _)| *p == pid)
            .map(|(_, s)| Arc::clone(s))
            .unwrap_or_else(|| panic!("message for unknown process {pid}"))
    }
}

/// Runs the dispatcher loop for `node`. Spawned as a daemon by the
/// cluster; exits when the engine drains.
pub(crate) fn dispatcher_loop(
    ctx: &SimCtx,
    node: NodeId,
    registry: Arc<ProcessRegistry>,
    endpoint: crate::process::Endpoint,
) {
    while let Some(delivery) = endpoint.recv(ctx) {
        let from = delivery.src;
        let span = delivery.span;
        match delivery.msg {
            DexMsg::PageRequest {
                pid,
                vpn,
                access,
                req_id,
            } => {
                let shared = registry.get(pid);
                handle_page_request(
                    ctx, &shared, &endpoint, node, from, vpn, access, req_id, span,
                );
            }
            DexMsg::PageGrant {
                pid,
                vpn,
                access,
                data,
                retry,
                req_id,
            } => {
                let shared = registry.get(pid);
                handle_page_grant(
                    ctx, &shared, &endpoint, node, vpn, access, data, retry, req_id, span,
                );
            }
            DexMsg::Invalidate {
                pid,
                vpn,
                needs_data,
            } => {
                let shared = registry.get(pid);
                handle_invalidate(ctx, &shared, &endpoint, node, from, vpn, needs_data, span);
            }
            DexMsg::InvalidateAck { pid, vpn, data } => {
                let shared = registry.get(pid);
                ctx.advance(shared.cost.protocol_handling);
                let actions =
                    shared
                        .directory_for(vpn)
                        .lock()
                        .invalidate_ack(vpn, from, data.is_some());
                // `span` is the original directory-handling span, echoed
                // back by the sharer so the deferred grant stays stitched.
                apply_origin_actions(ctx, &shared, &endpoint, node, vpn, actions, data, span);
            }
            DexMsg::OwnerForward {
                pid,
                vpn,
                access,
                requester,
                req_id,
            } => {
                let shared = registry.get(pid);
                if shared.inflight(node, vpn) {
                    // This node's own grant for the page is still in
                    // flight on another channel: it cannot service the
                    // forward until it actually owns the copy.
                    shared.defer_work(
                        node,
                        vpn,
                        DeferredWork::Forward {
                            home: from,
                            access,
                            requester,
                            req_id,
                            span,
                        },
                    );
                } else {
                    handle_owner_forward(
                        ctx, &shared, &endpoint, node, from, vpn, access, requester, req_id, span,
                    );
                }
            }
            DexMsg::OwnerAck { pid, vpn, .. } => {
                let shared = registry.get(pid);
                ctx.advance(shared.cost.protocol_handling);
                let actions = shared.directory_for(vpn).lock().owner_ack(vpn, from);
                apply_origin_actions(ctx, &shared, &endpoint, node, vpn, actions, None, span);
            }
            DexMsg::InvalidateBatch { pid, entries } => {
                let shared = registry.get(pid);
                handle_invalidate_batch(ctx, &shared, &endpoint, node, from, entries, span);
            }
            DexMsg::InvalidateBatchAck { pid, entries } => {
                let shared = registry.get(pid);
                ctx.advance(shared.cost.protocol_handling);
                for (vpn, data) in entries {
                    let carried = data.is_some();
                    if let Some(frame) = data {
                        // Stage the contents out of band: the home's own
                        // frame is not part of a forwarded transfer, and
                        // the grant may wait on further acks.
                        shared.stage_frame(node, vpn, frame);
                    }
                    let actions = shared
                        .directory_for(vpn)
                        .lock()
                        .invalidate_ack(vpn, from, carried);
                    if actions.is_empty() {
                        continue;
                    }
                    let staged = shared.take_staged(node, vpn);
                    apply_origin_actions(ctx, &shared, &endpoint, node, vpn, actions, staged, span);
                }
            }
            DexMsg::Flush { pid, vpn } => {
                let shared = registry.get(pid);
                ctx.advance(shared.cost.protocol_handling);
                let data = {
                    let mut space = shared.space(node).lock();
                    space.page_table.downgrade(vpn);
                    space.frame(vpn).cloned().unwrap_or_else(PageFrame::zeroed)
                };
                endpoint.send_traced(ctx, from, DexMsg::FlushAck { pid, vpn, data }, span);
            }
            DexMsg::FlushAck { pid, vpn, data } => {
                let shared = registry.get(pid);
                ctx.advance(shared.cost.protocol_handling);
                let actions = shared.directory_for(vpn).lock().flush_ack(vpn, from);
                apply_origin_actions(
                    ctx,
                    &shared,
                    &endpoint,
                    node,
                    vpn,
                    actions,
                    Some(data),
                    span,
                );
            }
            DexMsg::VmaRequest { pid, addr, req_id } => {
                let shared = registry.get(pid);
                ctx.advance(shared.cost.protocol_handling);
                let vma = shared.space(shared.origin).lock().vmas.find(addr).cloned();
                endpoint.send(ctx, from, DexMsg::VmaReply { pid, vma, req_id });
            }
            DexMsg::VmaReply { pid, vma, req_id } => {
                let shared = registry.get(pid);
                shared.complete_pending(ctx, node, req_id, Reply::Vma(vma));
            }
            DexMsg::VmaUpdate { pid, op, req_id } => {
                let shared = registry.get(pid);
                // Node-wide operations are handed to the remote worker when
                // one exists; otherwise (no thread ever migrated here) the
                // dispatcher applies them directly.
                let chan = shared.remote_nodes[node.0 as usize]
                    .lock()
                    .worker_chan
                    .clone();
                match chan {
                    Some(chan) => {
                        // Queue the op for the remote worker; it applies the
                        // change in its own context and acks the origin
                        // itself, so the dispatcher never blocks. Ack
                        // routing is stashed before the op is queued.
                        shared.remote_nodes[node.0 as usize]
                            .lock()
                            .pending_acks
                            .push((req_id, from));
                        chan.send(ctx, op).expect("remote worker channel open");
                    }
                    None => {
                        apply_vma_op(&shared, node, &op);
                        endpoint.send(ctx, from, DexMsg::VmaUpdateAck { pid, req_id });
                    }
                }
            }
            DexMsg::VmaUpdateAck { pid, req_id } => {
                let shared = registry.get(pid);
                shared.complete_broadcast_ack(ctx, node, req_id, from);
            }
            DexMsg::MigrateRequest {
                pid,
                tid,
                context,
                req_id,
            } => {
                let shared = registry.get(pid);
                handle_migrate_request(
                    ctx, &shared, &endpoint, node, from, tid, context, req_id, span,
                );
            }
            DexMsg::MigrateAck {
                pid,
                phases,
                req_id,
                ..
            } => {
                let shared = registry.get(pid);
                shared.complete_pending(ctx, node, req_id, Reply::MigrateAck(phases));
            }
            DexMsg::MigrateBack { pid, req_id, .. } => {
                let shared = registry.get(pid);
                // Backward migration only updates the original thread's
                // state — two orders of magnitude cheaper than forward.
                let t0 = ctx.now();
                let update = shared.spans.is_enabled().then(|| shared.spans.alloc_id());
                ctx.advance(shared.cost.backward_update);
                if let Some(id) = update {
                    shared.spans.record(Span {
                        id,
                        parent: SpanId(span.0),
                        kind: SpanKind::MigrationPhase,
                        node,
                        task: PROTOCOL_TASK,
                        start: t0,
                        end: ctx.now(),
                        label: "backward_update",
                        tag: None,
                    });
                }
                endpoint.send_traced(
                    ctx,
                    from,
                    DexMsg::MigrateBackAck {
                        pid,
                        tid: Tid(0),
                        req_id,
                    },
                    span,
                );
            }
            DexMsg::MigrateBackAck { pid, req_id, .. } => {
                let shared = registry.get(pid);
                shared.complete_pending(ctx, node, req_id, Reply::MigrateBackAck);
            }
            DexMsg::Delegate {
                pid,
                tid,
                op,
                req_id,
            } => {
                let shared = registry.get(pid);
                let chan = shared.delegation.lock().get(&tid).cloned();
                let chan =
                    chan.unwrap_or_else(|| panic!("delegation for {tid} with no original thread"));
                chan.send(
                    ctx,
                    DelegationJob {
                        op,
                        from,
                        req_id,
                        span,
                    },
                )
                .expect("pair channel open");
            }
            DexMsg::DelegateReply {
                pid,
                result,
                req_id,
            } => {
                let shared = registry.get(pid);
                shared.complete_pending(ctx, node, req_id, Reply::Delegate(result));
            }
            DexMsg::FutexWoken { pid, req_id } => {
                let shared = registry.get(pid);
                shared.complete_pending(ctx, node, req_id, Reply::FutexWoken);
            }
        }
    }
}

/// Home-side handling of a remote page request: run the directory state
/// machine and apply/dispatch its actions. `node` is the handling node —
/// the origin classically, the page's home shard otherwise.
#[allow(clippy::too_many_arguments)]
fn handle_page_request(
    ctx: &SimCtx,
    shared: &Arc<ProcessShared>,
    endpoint: &crate::process::Endpoint,
    node: NodeId,
    from: NodeId,
    vpn: Vpn,
    access: Access,
    req_id: u64,
    span: SpanContext,
) {
    let t0 = ctx.now();
    let handling = shared.spans.is_enabled().then(|| shared.spans.alloc_id());
    ctx.advance(shared.cost.protocol_handling);
    let actions = shared.directory_for(vpn).lock().request(
        vpn,
        access,
        crate::directory::Requester::Remote { node: from, req_id },
    );
    // Grants and invalidations stitch to the *handling* span so the
    // requester-side fixup becomes its child; with spans off the incoming
    // context (necessarily NONE then) is forwarded unchanged.
    let out = handling.map_or(span, |id| SpanContext(id.0));
    apply_origin_actions(ctx, shared, endpoint, node, vpn, actions, None, out);
    if let Some(id) = handling {
        shared.spans.record(Span {
            id,
            parent: SpanId(span.0),
            kind: SpanKind::DirectoryHandling,
            node,
            task: PROTOCOL_TASK,
            start: t0,
            end: ctx.now(),
            label: if access.is_write() {
                "page_request_write"
            } else {
                "page_request_read"
            },
            tag: None,
        });
    }
}

/// Applies directory actions at the handling node (`home`: the origin
/// classically, the page's home shard otherwise): local PTE/frame changes
/// happen atomically (no yield), then grants/messages are sent. Also the
/// engine behind crash recovery's page reclamation (`handle_node_crash`).
///
/// `span` rides every outgoing message, so grants/invalidations carry the
/// directory-handling span of the transaction that produced them.
#[allow(clippy::too_many_arguments)]
pub(crate) fn apply_origin_actions(
    ctx: &SimCtx,
    shared: &Arc<ProcessShared>,
    endpoint: &crate::process::Endpoint,
    home: NodeId,
    vpn: Vpn,
    actions: Vec<DirAction>,
    mut staged: Option<PageFrame>,
    span: SpanContext,
) {
    let mut sends: Vec<(NodeId, DexMsg)> = Vec::new();
    let mut local_completions: Vec<(u64, Reply)> = Vec::new();
    {
        let mut space = shared.space(home).lock();
        for action in actions {
            match action {
                DirAction::Grant {
                    to,
                    access,
                    with_data,
                } => match to {
                    crate::directory::Requester::Remote { node, req_id } => {
                        // Data source: contents staged by this transaction
                        // (a data-carrying ack or the home's own dropped
                        // copy), else the handling node's frame. A page
                        // the origin never materialized is the kernel
                        // zero page; with the optimization enabled the
                        // receiver zero-fills locally instead of pulling
                        // 4 KiB of zeros over the wire.
                        let data = if with_data {
                            match staged.take().or_else(|| space.frame(vpn).cloned()) {
                                // Mutation: grant a zeroed page instead of
                                // the live frame, losing every write.
                                Some(_) if shared.mutation == ProtocolMutation::StaleGrantData => {
                                    Some(PageFrame::zeroed())
                                }
                                Some(frame) => Some(frame),
                                None if shared.cost.zero_page_optimization => {
                                    shared.stats.counters.incr("protocol.zero_page_grants");
                                    None
                                }
                                None => Some(PageFrame::zeroed()),
                            }
                        } else {
                            None
                        };
                        sends.push((
                            node,
                            DexMsg::PageGrant {
                                pid: shared.pid,
                                vpn,
                                access,
                                data,
                                retry: false,
                                req_id,
                            },
                        ));
                    }
                    crate::directory::Requester::Local { req_id } => {
                        if let Some(frame) = staged.take() {
                            // A completed forwarded transaction staged the
                            // contents for the home's own waiter.
                            space.install_frame(vpn, frame);
                        }
                        space.page_table.set(
                            vpn,
                            if access.is_write() {
                                Pte::READ_WRITE
                            } else {
                                Pte::READ_ONLY
                            },
                        );
                        let _ = space.frame_mut(vpn);
                        local_completions.push((req_id, Reply::PageGrant { retry: false }));
                    }
                },
                DirAction::Retry { to } => match to {
                    crate::directory::Requester::Remote { node, req_id } => {
                        sends.push((
                            node,
                            DexMsg::PageGrant {
                                pid: shared.pid,
                                vpn,
                                access: Access::Read,
                                data: None,
                                retry: true,
                                req_id,
                            },
                        ));
                    }
                    crate::directory::Requester::Local { req_id } => {
                        local_completions.push((req_id, Reply::PageGrant { retry: true }));
                    }
                },
                DirAction::SendFlush { to } => {
                    sends.push((
                        to,
                        DexMsg::Flush {
                            pid: shared.pid,
                            vpn,
                        },
                    ));
                }
                DirAction::SendInvalidate { to, needs_data } => {
                    sends.push((
                        to,
                        DexMsg::Invalidate {
                            pid: shared.pid,
                            vpn,
                            needs_data,
                        },
                    ));
                }
                DirAction::ClearOriginPte => {
                    // Mutation: the origin keeps its PTE after handing
                    // ownership away, so origin accesses bypass the
                    // protocol and read stale data.
                    if shared.mutation == ProtocolMutation::KeepOriginPte {
                        continue;
                    }
                    space.page_table.clear(vpn);
                }
                DirAction::DowngradeOriginPte => {
                    space.page_table.downgrade(vpn);
                }
                DirAction::SetOriginPteRo => {
                    space.page_table.set(vpn, Pte::READ_ONLY);
                }
                DirAction::InstallOriginData => {
                    if let Some(frame) = staged.clone() {
                        space.install_frame(vpn, frame);
                    }
                }
                DirAction::Forward {
                    to,
                    requester,
                    access,
                } => {
                    let (rnode, req_id) = match requester {
                        crate::directory::Requester::Remote { node, req_id } => (node, req_id),
                        crate::directory::Requester::Local { req_id } => (home, req_id),
                    };
                    shared.stats.counters.incr("protocol.forwards");
                    if let Some(m) = &shared.metrics {
                        m.node(home).incr("protocol.forwards");
                    }
                    sends.push((
                        to,
                        DexMsg::OwnerForward {
                            pid: shared.pid,
                            vpn,
                            access,
                            requester: rnode,
                            req_id,
                        },
                    ));
                }
                DirAction::SendInvalidateBatch { to, entries } => {
                    sends.push((
                        to,
                        DexMsg::InvalidateBatch {
                            pid: shared.pid,
                            entries,
                        },
                    ));
                }
                DirAction::DropHomeCopy { needs_data } => {
                    if needs_data {
                        // The home's copy is the elected data source:
                        // stage it for the grant before dropping it.
                        staged = Some(space.frame(vpn).cloned().unwrap_or_else(PageFrame::zeroed));
                    }
                    space.page_table.clear(vpn);
                    space.evict_frame(vpn);
                }
            }
        }
    }
    // Local waiters were parked at the handling node: retry completions
    // must be delivered like grants.
    for (req_id, reply) in local_completions {
        shared.complete_pending(ctx, home, req_id, reply);
    }
    for (to, msg) in sends {
        endpoint.send_traced(ctx, to, msg, span);
    }
}

/// Requester-side handling of a page grant: install data + PTE, run any
/// protocol work deferred behind the grant, then wake the leader.
#[allow(clippy::too_many_arguments)]
fn handle_page_grant(
    ctx: &SimCtx,
    shared: &Arc<ProcessShared>,
    endpoint: &crate::process::Endpoint,
    node: NodeId,
    vpn: Vpn,
    access: Access,
    data: Option<PageFrame>,
    retry: bool,
    req_id: u64,
    span: SpanContext,
) {
    let t0 = ctx.now();
    let fixup = shared.spans.is_enabled().then(|| shared.spans.alloc_id());
    let with_data = data.is_some();
    if !retry {
        let mut space = shared.space(node).lock();
        if let Some(frame) = data {
            shared
                .stats
                .counters
                .add("protocol.page_bytes_received", PAGE_SIZE as u64);
            space.install_frame(vpn, frame);
        }
        space.page_table.set(
            vpn,
            if access.is_write() {
                Pte::READ_WRITE
            } else {
                Pte::READ_ONLY
            },
        );
        let _ = space.frame_mut(vpn);
    }
    if let Some(id) = fixup {
        shared.spans.record(Span {
            id,
            parent: SpanId(span.0),
            kind: SpanKind::PageFixup,
            node,
            task: PROTOCOL_TASK,
            start: t0,
            end: ctx.now(),
            label: match (retry, with_data) {
                (true, _) => "grant_retry",
                (false, true) => "grant_with_data",
                (false, false) => "grant_no_transfer",
            },
            tag: None,
        });
    }
    // Sharded mode: the grant the deferred work was waiting for has
    // landed (or been turned into a retry) — run it before waking the
    // requester so the node's state is protocol-consistent.
    if let Some(work) = shared.unmark_inflight(node, vpn) {
        run_deferred(ctx, shared, endpoint, node, vpn, work);
    }
    shared.complete_pending(ctx, node, req_id, Reply::PageGrant { retry });
}

/// Runs protocol work a node deferred until its in-flight grant landed.
fn run_deferred(
    ctx: &SimCtx,
    shared: &Arc<ProcessShared>,
    endpoint: &crate::process::Endpoint,
    node: NodeId,
    vpn: Vpn,
    work: DeferredWork,
) {
    shared.stats.counters.incr("protocol.deferred_work");
    match work {
        DeferredWork::Invalidate {
            home,
            needs_data,
            span,
        } => {
            let data = invalidate_local(shared, node, vpn, needs_data);
            shared.stats.counters.incr("protocol.invalidations");
            if let Some(m) = &shared.metrics {
                m.node(node).incr("dsm.invalidations");
            }
            endpoint.send_traced(
                ctx,
                home,
                DexMsg::InvalidateBatchAck {
                    pid: shared.pid,
                    entries: vec![(vpn, data)],
                },
                span,
            );
        }
        DeferredWork::Forward {
            home,
            access,
            requester,
            req_id,
            span,
        } => {
            handle_owner_forward(
                ctx, shared, endpoint, node, home, vpn, access, requester, req_id, span,
            );
        }
    }
}

/// Owner-side handling of a forwarded request (sharded mode): adjust the
/// local mapping, grant (with data) straight to the requester — the
/// two-hop critical path — and acknowledge the ownership change to the
/// home asynchronously.
#[allow(clippy::too_many_arguments)]
fn handle_owner_forward(
    ctx: &SimCtx,
    shared: &Arc<ProcessShared>,
    endpoint: &crate::process::Endpoint,
    node: NodeId,
    from: NodeId,
    vpn: Vpn,
    access: Access,
    requester: NodeId,
    req_id: u64,
    span: SpanContext,
) {
    let t0 = ctx.now();
    let handling = shared.spans.is_enabled().then(|| shared.spans.alloc_id());
    ctx.advance(shared.cost.forward_handling);
    let data = {
        let mut space = shared.space(node).lock();
        let frame = space.frame(vpn).cloned().unwrap_or_else(PageFrame::zeroed);
        if access.is_write() {
            // Mutation: the owner keeps its mapping after handing
            // exclusivity away (the sharded analogue of keep-origin-pte),
            // so its threads keep reading the stale copy.
            if shared.mutation != ProtocolMutation::KeepOriginPte {
                space.page_table.clear(vpn);
                space.evict_frame(vpn);
            }
        } else {
            // The owner keeps a shared copy, downgrading if it was the
            // exclusive writer.
            space.page_table.downgrade(vpn);
        }
        if shared.mutation == ProtocolMutation::StaleGrantData {
            PageFrame::zeroed()
        } else {
            frame
        }
    };
    shared.stats.counters.incr("protocol.forwards_serviced");
    if let Some(m) = &shared.metrics {
        m.node(node).incr("protocol.forwards_serviced");
    }
    let out = handling.map_or(span, |id| SpanContext(id.0));
    endpoint.send_traced(
        ctx,
        requester,
        DexMsg::PageGrant {
            pid: shared.pid,
            vpn,
            access,
            data: Some(data),
            retry: false,
            req_id,
        },
        out,
    );
    endpoint.send_traced(
        ctx,
        from,
        DexMsg::OwnerAck {
            pid: shared.pid,
            vpn,
            access,
        },
        out,
    );
    if let Some(id) = handling {
        shared.spans.record(Span {
            id,
            parent: SpanId(span.0),
            kind: SpanKind::OwnerForward,
            node,
            task: PROTOCOL_TASK,
            start: t0,
            end: ctx.now(),
            label: if access.is_write() {
                "owner_forward_write"
            } else {
                "owner_forward_read"
            },
            tag: None,
        });
    }
}

/// Clears a node's copy of one page for an invalidation, returning the
/// contents when the ack must carry them. Shared by the unicast and
/// batched invalidation paths.
fn invalidate_local(
    shared: &Arc<ProcessShared>,
    node: NodeId,
    vpn: Vpn,
    needs_data: bool,
) -> Option<PageFrame> {
    let mut space = shared.space(node).lock();
    let data = if needs_data {
        // Mutation: ack with a zeroed page instead of the dirty frame,
        // dropping this node's writes on ownership transfer.
        if shared.mutation == ProtocolMutation::LoseInvalidateData {
            Some(PageFrame::zeroed())
        } else {
            Some(space.frame(vpn).cloned().unwrap_or_else(PageFrame::zeroed))
        }
    } else {
        None
    };
    // Mutation: ack the invalidation but keep the local PTE and frame,
    // so this node keeps reading its stale copy.
    if shared.mutation != ProtocolMutation::SkipInvalidateClear {
        space.page_table.clear(vpn);
        space.evict_frame(vpn);
    }
    data
}

/// A node's handling of a batched ownership revocation (sharded mode):
/// every doomed replica the home condemned at this node is cleared in one
/// message, acknowledged with one aggregated ack, and accounted as one
/// span. Entries whose page has a grant still in flight are deferred and
/// acknowledged in a later partial ack.
fn handle_invalidate_batch(
    ctx: &SimCtx,
    shared: &Arc<ProcessShared>,
    endpoint: &crate::process::Endpoint,
    node: NodeId,
    from: NodeId,
    entries: Vec<(Vpn, bool)>,
    span: SpanContext,
) {
    let t0 = ctx.now();
    let inval = shared.spans.is_enabled().then(|| shared.spans.alloc_id());
    ctx.advance(shared.cost.protocol_handling);
    let mut acks: Vec<(Vpn, Option<PageFrame>)> = Vec::new();
    let mut carried = false;
    for (vpn, needs_data) in entries {
        if shared.inflight(node, vpn) {
            // The grant for this page is still in flight on another
            // channel: revoking now would ack a copy the node does not
            // hold yet. Defer; the ack follows the grant.
            shared.defer_work(
                node,
                vpn,
                DeferredWork::Invalidate {
                    home: from,
                    needs_data,
                    span,
                },
            );
            continue;
        }
        let data = invalidate_local(shared, node, vpn, needs_data);
        carried |= data.is_some();
        shared.stats.counters.incr("protocol.invalidations");
        if let Some(m) = &shared.metrics {
            m.node(node).incr("dsm.invalidations");
        }
        if shared.trace.is_enabled() {
            shared.trace.record(FaultEvent {
                time: ctx.now(),
                node,
                task: Tid(u64::MAX),
                kind: FaultKind::Invalidate,
                site: "protocol.invalidate_batch",
                addr: vpn.base(),
                tag: shared.tag_for(shared.origin, vpn.base()),
            });
        }
        acks.push((vpn, data));
    }
    shared.stats.counters.incr("protocol.invalidate_batches");
    if let Some(m) = &shared.metrics {
        m.node(node).incr("protocol.invalidate_batches");
    }
    if let Some(id) = inval {
        shared.spans.record(Span {
            id,
            parent: SpanId(span.0),
            kind: SpanKind::InvalidateBatch,
            node,
            task: PROTOCOL_TASK,
            start: t0,
            end: ctx.now(),
            label: if carried {
                "invalidate_batch_flush"
            } else {
                "invalidate_batch_drop"
            },
            tag: None,
        });
    }
    // One aggregated ack for every entry applied now; deferred entries
    // follow in partial acks of their own. The ack echoes the incoming
    // directory span so the home's deferred grant stays stitched.
    if !acks.is_empty() {
        endpoint.send_traced(
            ctx,
            from,
            DexMsg::InvalidateBatchAck {
                pid: shared.pid,
                entries: acks,
            },
            span,
        );
    }
}

/// A node's handling of an ownership revocation.
#[allow(clippy::too_many_arguments)]
fn handle_invalidate(
    ctx: &SimCtx,
    shared: &Arc<ProcessShared>,
    endpoint: &crate::process::Endpoint,
    node: NodeId,
    from: NodeId,
    vpn: Vpn,
    needs_data: bool,
    span: SpanContext,
) {
    let t0 = ctx.now();
    let inval = shared.spans.is_enabled().then(|| shared.spans.alloc_id());
    ctx.advance(shared.cost.protocol_handling);
    let data = {
        let mut space = shared.space(node).lock();
        let data = if needs_data {
            // Mutation: ack with a zeroed page instead of the dirty
            // frame, dropping this node's writes on ownership transfer.
            if shared.mutation == ProtocolMutation::LoseInvalidateData {
                Some(PageFrame::zeroed())
            } else {
                Some(space.frame(vpn).cloned().unwrap_or_else(PageFrame::zeroed))
            }
        } else {
            None
        };
        // Mutation: ack the invalidation but keep the local PTE and
        // frame, so this node keeps reading its stale copy.
        if shared.mutation != ProtocolMutation::SkipInvalidateClear {
            space.page_table.clear(vpn);
            space.evict_frame(vpn);
        }
        data
    };
    if shared.trace.is_enabled() {
        shared.trace.record(FaultEvent {
            time: ctx.now(),
            node,
            task: Tid(u64::MAX),
            kind: FaultKind::Invalidate,
            site: "protocol.invalidate",
            addr: vpn.base(),
            tag: shared.tag_for(shared.origin, vpn.base()),
        });
    }
    shared.stats.counters.incr("protocol.invalidations");
    if let Some(m) = &shared.metrics {
        m.node(node).incr("dsm.invalidations");
    }
    if let Some(id) = inval {
        shared.spans.record(Span {
            id,
            parent: SpanId(span.0),
            kind: SpanKind::Invalidation,
            node,
            task: PROTOCOL_TASK,
            start: t0,
            end: ctx.now(),
            label: if needs_data {
                "invalidate_flush"
            } else {
                "invalidate_drop"
            },
            tag: None,
        });
    }
    // The ack echoes the *incoming* (directory) span, not the local
    // invalidation span, so the origin's deferred grant stays parented to
    // the directory transaction that caused the fan-out.
    endpoint.send_traced(
        ctx,
        from,
        DexMsg::InvalidateAck {
            pid: shared.pid,
            vpn,
            data,
        },
        span,
    );
}

/// Remote-node handling of a forward migration: create the per-process
/// remote worker on first contact, fork a remote thread, install the
/// context, and ack with the phase breakdown (Figure 3).
#[allow(clippy::too_many_arguments)]
fn handle_migrate_request(
    ctx: &SimCtx,
    shared: &Arc<ProcessShared>,
    endpoint: &crate::process::Endpoint,
    node: NodeId,
    from: NodeId,
    tid: Tid,
    context: dex_os::ExecutionContext,
    req_id: u64,
    span: SpanContext,
) {
    // Times one remote-side phase and records it as a child of the
    // origin's migration span when spans are on.
    let record_phase = |label: &'static str, start, end| {
        let phase = shared.spans.is_enabled().then(|| shared.spans.alloc_id());
        if let Some(id) = phase {
            shared.spans.record(Span {
                id,
                parent: SpanId(span.0),
                kind: SpanKind::MigrationPhase,
                node,
                task: tid,
                start,
                end,
                label,
                tag: None,
            });
        }
    };
    // Verify the context transferred intact (serialization round-trip).
    let roundtrip =
        dex_os::ExecutionContext::from_bytes(&context.to_bytes()).expect("context deserializes");
    assert_eq!(roundtrip, context, "execution context corrupted in transit");

    let mut phases: MigrationPhases = Vec::new();
    let first = {
        let mut state = shared.remote_nodes[node.0 as usize].lock();
        if state.worker_started {
            false
        } else {
            state.worker_started = true;
            let chan: SimChannel<VmaOp> = SimChannel::unbounded();
            state.worker_chan = Some(chan.clone());
            let shared2 = Arc::clone(shared);
            let endpoint2 = endpoint.clone();
            ctx.spawn_daemon(format!("remote-worker-{}-{node}", shared.pid), move |ctx| {
                remote_worker_loop(ctx, shared2, endpoint2, node, chan);
            });
            true
        }
    };
    let t0 = ctx.now();
    if first {
        // Per-process setup: remote worker creation dominates the first
        // migration (620 µs of the 800 µs remote side, Figure 3).
        ctx.advance(shared.cost.remote_worker_setup);
        phases.push(("remote_worker", shared.cost.remote_worker_setup));
        record_phase("remote_worker", t0, ctx.now());
    } else {
        ctx.advance(shared.cost.worker_reuse);
        phases.push(("worker_reuse", shared.cost.worker_reuse));
        record_phase("worker_reuse", t0, ctx.now());
    }
    let t1 = ctx.now();
    ctx.advance(shared.cost.thread_fork);
    phases.push(("thread_fork", shared.cost.thread_fork));
    record_phase("thread_fork", t1, ctx.now());
    let t2 = ctx.now();
    ctx.advance(shared.cost.context_install);
    phases.push(("context_install", shared.cost.context_install));
    record_phase("context_install", t2, ctx.now());

    endpoint.send_traced(
        ctx,
        from,
        DexMsg::MigrateAck {
            pid: shared.pid,
            tid,
            phases,
            req_id,
        },
        span,
    );
}

/// The remote worker: applies node-wide operations in its own context and
/// acknowledges them to the origin.
fn remote_worker_loop(
    ctx: &SimCtx,
    shared: Arc<ProcessShared>,
    endpoint: crate::process::Endpoint,
    node: NodeId,
    chan: SimChannel<VmaOp>,
) {
    while let Some(op) = chan.recv(ctx) {
        ctx.advance(SimDuration::from_micros(2)); // apply cost
        apply_vma_op(&shared, node, &op);
        let (req_id, to) = shared.remote_nodes[node.0 as usize]
            .lock()
            .pending_acks
            .remove(0);
        endpoint.send(
            ctx,
            to,
            DexMsg::VmaUpdateAck {
                pid: shared.pid,
                req_id,
            },
        );
    }
}

/// Applies a broadcast VMA operation to a node's replica: shrink/downgrade
/// the VMAs and drop any local page state in the range.
fn apply_vma_op(shared: &Arc<ProcessShared>, node: NodeId, op: &VmaOp) {
    let mut space = shared.space(node).lock();
    match op {
        VmaOp::Unmap { addr, len } => {
            let pages = space.vmas.munmap(*addr, *len).unwrap_or_default();
            for vpn in pages {
                space.page_table.clear(vpn);
                space.evict_frame(vpn);
            }
        }
        VmaOp::Protect { addr, len, prot } => {
            // Replicas may not have pulled the VMA yet; only apply where
            // known. Clear PTEs so the next touch revalidates.
            let _ = space.vmas.mprotect(*addr, *len, *prot);
            for vpn in dex_os::pages_covering(*addr, *len) {
                space.page_table.clear(vpn);
            }
        }
    }
}
