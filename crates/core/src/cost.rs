//! The DEX cost model.
//!
//! Kernel-path costs that the paper measures on its testbed (Table II,
//! Figure 3, §V-D) appear here as explicit constants, calibrated so the
//! simulated microbenchmarks land near the published numbers. They are
//! *model inputs*, not results — what the reproduction validates is the
//! relative behaviour that emerges from them (which applications scale,
//! where the bimodality comes from, what dominates first-migration cost).

use dex_sim::SimDuration;

/// Calibrated timing constants for DEX kernel paths.
///
/// # Examples
///
/// ```
/// use dex_core::CostModel;
///
/// let cost = CostModel::default();
/// // First forward migration is dominated by remote-worker creation.
/// assert!(cost.remote_worker_setup > cost.thread_fork * 3);
/// ```
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Nanoseconds of virtual time per abstract compute operation
    /// (≈ 1 / (2.1 GHz · IPC)).
    pub ns_per_op: f64,

    // ---- page fault path (§V-D) ----
    /// Trap + fault-handler entry on the faulting node.
    pub fault_entry: SimDuration,
    /// PTE update + bookkeeping when the fault resolves.
    pub fault_fixup: SimDuration,
    /// Directory/ownership work per protocol message at the handling node.
    pub protocol_handling: SimDuration,
    /// Back-off before a requester retries after a conflicting in-flight
    /// transaction (produces the paper's 158.8 µs slow mode).
    pub retry_backoff: SimDuration,
    /// Owner-side work to service a forwarded request (sharded directory
    /// mode): PTE adjustment plus grant preparation, cheaper than a full
    /// directory transition since the ownership bookkeeping stays home.
    pub forward_handling: SimDuration,

    // ---- thread migration path (Table II / Figure 3) ----
    /// Origin-side context capture on the *first* migration of a thread
    /// (per-thread data structures are built: 12.1 µs measured).
    pub context_capture_first: SimDuration,
    /// Origin-side context capture on subsequent migrations (6.6 µs).
    pub context_capture_next: SimDuration,
    /// Creating the per-process remote worker on a node (first migration
    /// of the process to that node only; 620 µs measured — Figure 3).
    pub remote_worker_setup: SimDuration,
    /// Forking a remote thread from the remote worker.
    pub thread_fork: SimDuration,
    /// Installing the received execution context into the forked thread.
    pub context_install: SimDuration,
    /// Resetting bookkeeping left by a previous remote thread when the
    /// remote worker is reused (second and later migrations).
    pub worker_reuse: SimDuration,
    /// Remote-side context capture for a backward migration.
    pub backward_capture: SimDuration,
    /// Origin-side state update when a thread migrates back (the backward
    /// path only updates the original thread: ~20 µs).
    pub backward_update: SimDuration,

    // ---- fault recovery (fault-injection runs only) ----
    /// Interval between crash-detection timeouts while a thread waits for
    /// a protocol reply. Only consulted when a fault plan is active:
    /// fault-free runs park without timers, so their schedules are
    /// bit-identical to builds without the fault layer.
    pub fault_watch_interval: SimDuration,
    /// Cap for the exponential back-off of the watch interval.
    pub fault_watch_cap: SimDuration,

    // ---- node hardware ----
    /// Per-node memory bandwidth shared by all local threads, bytes/s.
    /// This is the resource whose aggregation across nodes makes
    /// bandwidth-bound applications (BP) scale super-linearly.
    pub mem_bandwidth_bytes_per_sec: u64,
    /// Cores per node (the paper pins 8 threads on 8 physical cores).
    pub cores_per_node: usize,
    /// Leader–follower coalescing of concurrent same-page faults
    /// (§III-C). Disable only for the ablation study.
    pub coalesce_faults: bool,
    /// Skip the wire transfer when granting a page the origin has never
    /// materialized (it is the kernel zero page; the receiver zero-fills
    /// locally). Off by default: the paper does not describe this
    /// optimization, so the calibrated behaviour ships zero pages like a
    /// stock kernel would. Enable to study the win (`ablation` harness).
    pub zero_page_optimization: bool,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            ns_per_op: 0.5,
            fault_entry: SimDuration::from_nanos(1_500),
            fault_fixup: SimDuration::from_nanos(1_200),
            protocol_handling: SimDuration::from_nanos(4_000),
            retry_backoff: SimDuration::from_micros(120),
            forward_handling: SimDuration::from_nanos(2_500),
            context_capture_first: SimDuration::from_micros_f64(12.1),
            context_capture_next: SimDuration::from_micros_f64(6.6),
            remote_worker_setup: SimDuration::from_micros(620),
            thread_fork: SimDuration::from_micros(150),
            context_install: SimDuration::from_micros(30),
            worker_reuse: SimDuration::from_micros(50),
            backward_capture: SimDuration::from_micros_f64(3.0),
            backward_update: SimDuration::from_micros(20),
            fault_watch_interval: SimDuration::from_micros(200),
            fault_watch_cap: SimDuration::from_micros(1_600),
            mem_bandwidth_bytes_per_sec: 20_000_000_000,
            cores_per_node: 8,
            coalesce_faults: true,
            zero_page_optimization: false,
        }
    }
}

/// The tunable components of the [`CostModel`], by registry name — the
/// sweep surface of the `dex-check whatif` causal profiler. Every timed
/// field is listed; structural knobs (`cores_per_node`,
/// `coalesce_faults`, `zero_page_optimization`) are deliberately absent
/// because a multiplicative factor has no meaning for them.
pub const COST_COMPONENTS: &[&str] = &[
    "ns_per_op",
    "fault_entry",
    "fault_fixup",
    "protocol_handling",
    "retry_backoff",
    "forward_handling",
    "context_capture_first",
    "context_capture_next",
    "remote_worker_setup",
    "thread_fork",
    "context_install",
    "worker_reuse",
    "backward_capture",
    "backward_update",
    "fault_watch_interval",
    "fault_watch_cap",
    "mem_bandwidth",
];

impl CostModel {
    /// Virtual time for `ops` abstract compute operations.
    pub fn compute_time(&self, ops: u64) -> SimDuration {
        SimDuration::from_nanos((ops as f64 * self.ns_per_op).ceil() as u64)
    }

    /// The registry of perturbable component names, in declaration order.
    pub fn components() -> &'static [&'static str] {
        COST_COMPONENTS
    }

    /// Scales one named component's *time cost* by `factor` — the
    /// virtual-speedup primitive of Coz-style causal profiling. A factor
    /// of `0.5` makes the component twice as fast, `2.0` twice as slow.
    /// Bandwidth components are inverted (halving the cost doubles the
    /// bandwidth) so `factor` always reads as "what happens to the time
    /// this component charges".
    ///
    /// Errors on an unknown component name or a non-finite/non-positive
    /// factor; the model is unchanged on error.
    ///
    /// # Examples
    ///
    /// ```
    /// use dex_core::CostModel;
    ///
    /// let mut cost = CostModel::default();
    /// let before = cost.retry_backoff;
    /// cost.perturb("retry_backoff", 0.5).unwrap();
    /// assert_eq!(cost.retry_backoff.as_nanos(), before.as_nanos() / 2);
    /// assert!(cost.perturb("no_such_component", 0.5).is_err());
    /// ```
    pub fn perturb(&mut self, component: &str, factor: f64) -> Result<(), String> {
        if !factor.is_finite() || factor <= 0.0 {
            return Err(format!(
                "perturbation factor must be finite and positive, got {factor}"
            ));
        }
        let scale = |d: &mut SimDuration| {
            *d = SimDuration::from_nanos((d.as_nanos() as f64 * factor).round() as u64);
        };
        match component {
            "ns_per_op" => self.ns_per_op *= factor,
            "fault_entry" => scale(&mut self.fault_entry),
            "fault_fixup" => scale(&mut self.fault_fixup),
            "protocol_handling" => scale(&mut self.protocol_handling),
            "retry_backoff" => scale(&mut self.retry_backoff),
            "forward_handling" => scale(&mut self.forward_handling),
            "context_capture_first" => scale(&mut self.context_capture_first),
            "context_capture_next" => scale(&mut self.context_capture_next),
            "remote_worker_setup" => scale(&mut self.remote_worker_setup),
            "thread_fork" => scale(&mut self.thread_fork),
            "context_install" => scale(&mut self.context_install),
            "worker_reuse" => scale(&mut self.worker_reuse),
            "backward_capture" => scale(&mut self.backward_capture),
            "backward_update" => scale(&mut self.backward_update),
            "fault_watch_interval" => scale(&mut self.fault_watch_interval),
            "fault_watch_cap" => scale(&mut self.fault_watch_cap),
            "mem_bandwidth" => {
                // Time per byte is 1/bandwidth: scaling the cost by
                // `factor` divides the bandwidth by it.
                self.mem_bandwidth_bytes_per_sec =
                    ((self.mem_bandwidth_bytes_per_sec as f64 / factor).round() as u64).max(1);
            }
            other => {
                return Err(format!(
                    "unknown cost component `{other}` (known: {})",
                    COST_COMPONENTS.join(", ")
                ))
            }
        }
        Ok(())
    }

    /// The current magnitude of one component, in the unit `perturb`
    /// scales (nanoseconds for durations, ns/op for `ns_per_op`,
    /// ns-per-KiB for `mem_bandwidth`). `None` for unknown names.
    pub fn component_magnitude(&self, component: &str) -> Option<f64> {
        Some(match component {
            "ns_per_op" => self.ns_per_op,
            "fault_entry" => self.fault_entry.as_nanos() as f64,
            "fault_fixup" => self.fault_fixup.as_nanos() as f64,
            "protocol_handling" => self.protocol_handling.as_nanos() as f64,
            "retry_backoff" => self.retry_backoff.as_nanos() as f64,
            "forward_handling" => self.forward_handling.as_nanos() as f64,
            "context_capture_first" => self.context_capture_first.as_nanos() as f64,
            "context_capture_next" => self.context_capture_next.as_nanos() as f64,
            "remote_worker_setup" => self.remote_worker_setup.as_nanos() as f64,
            "thread_fork" => self.thread_fork.as_nanos() as f64,
            "context_install" => self.context_install.as_nanos() as f64,
            "worker_reuse" => self.worker_reuse.as_nanos() as f64,
            "backward_capture" => self.backward_capture.as_nanos() as f64,
            "backward_update" => self.backward_update.as_nanos() as f64,
            "fault_watch_interval" => self.fault_watch_interval.as_nanos() as f64,
            "fault_watch_cap" => self.fault_watch_cap.as_nanos() as f64,
            "mem_bandwidth" => 4096.0 * 1e9 / self.mem_bandwidth_bytes_per_sec as f64,
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_time_scales_with_ops() {
        let cost = CostModel::default();
        assert_eq!(cost.compute_time(0), SimDuration::ZERO);
        assert_eq!(
            cost.compute_time(2_000).as_nanos(),
            2 * cost.compute_time(1_000).as_nanos()
        );
    }

    #[test]
    fn first_migration_remote_side_sums_to_800us() {
        // Table II: remote side of the first forward migration = 800 µs.
        let c = CostModel::default();
        let total = c.remote_worker_setup + c.thread_fork + c.context_install;
        assert_eq!(total, SimDuration::from_micros(800));
    }

    #[test]
    fn repeat_migration_remote_side_sums_to_230us() {
        // Table II: remote side of the second forward migration = 230 µs.
        let c = CostModel::default();
        let total = c.worker_reuse + c.thread_fork + c.context_install;
        assert_eq!(total, SimDuration::from_micros(230));
    }

    #[test]
    fn every_registered_component_perturbs_and_reports() {
        for &name in CostModel::components() {
            let mut c = CostModel::default();
            let before = c.component_magnitude(name).unwrap();
            assert!(before > 0.0, "{name} magnitude must be positive");
            c.perturb(name, 2.0).unwrap();
            let after = c.component_magnitude(name).unwrap();
            // Doubling the cost roughly doubles the reported magnitude
            // (rounding to whole nanoseconds allows small error).
            let ratio = after / before;
            assert!(
                (ratio - 2.0).abs() < 0.01,
                "{name}: {before} -> {after} (ratio {ratio})"
            );
        }
    }

    #[test]
    fn perturb_rejects_bad_input() {
        let mut c = CostModel::default();
        assert!(c.perturb("bogus", 0.5).is_err());
        assert!(c.perturb("retry_backoff", 0.0).is_err());
        assert!(c.perturb("retry_backoff", -1.0).is_err());
        assert!(c.perturb("retry_backoff", f64::NAN).is_err());
        assert!(c.perturb("retry_backoff", f64::INFINITY).is_err());
        assert_eq!(c.retry_backoff, CostModel::default().retry_backoff);
        assert!(c.component_magnitude("bogus").is_none());
    }

    #[test]
    fn bandwidth_perturb_inverts() {
        // Slowing memory by 2x halves the bandwidth; cost reads as time.
        let mut c = CostModel::default();
        let before = c.mem_bandwidth_bytes_per_sec;
        c.perturb("mem_bandwidth", 2.0).unwrap();
        assert_eq!(c.mem_bandwidth_bytes_per_sec, before / 2);
    }

    #[test]
    fn backward_migration_is_two_orders_cheaper() {
        let c = CostModel::default();
        let fwd = c.remote_worker_setup + c.thread_fork + c.context_install;
        let bwd = c.backward_capture + c.backward_update;
        assert!(fwd.as_nanos() > 30 * bwd.as_nanos());
    }
}
