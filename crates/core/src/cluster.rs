//! The public entry point: build a cluster, run a distributed process.
//!
//! [`Cluster::run`] stands up the simulated rack (fabric, per-node
//! dispatchers), creates one process at the origin node, hands the setup
//! closure a [`DexProcess`] to allocate distributed memory and spawn
//! threads, then drives the simulation to completion and returns a
//! [`RunReport`] with timing, protocol statistics, migration samples, and
//! (optionally) the page-fault trace.

use std::sync::Arc;

use dex_net::{MetricsRegistry, MetricsSnapshot, NetConfig, NodeId, TimeSeries};
use dex_os::{Pid, VirtAddr, PAGE_SIZE};
use dex_sim::{Engine, Histogram, SchedulePolicyHandle, SimDuration, SimTime};

use crate::cost::CostModel;
use crate::dispatch::{dispatcher_loop, ProcessRegistry};
use crate::handle::{DsmCell, DsmMatrix, DsmScalar, DsmVec, ProcessRef};
use crate::mutation::ProtocolMutation;
use crate::process::{MigrationSample, ProcessShared};
use crate::race::{RaceEvent, RaceTrace};
use crate::span::{Span, SpanBuffer};
use crate::sync::{
    new_barrier, new_condvar, new_mutex, new_rwlock, DexBarrier, DexCondvar, DexMutex, DexRwLock,
};
use crate::telemetry::{HealthEvent, Telemetry, TelemetryConfig};
use crate::thread::{DexThread, ThreadCtx};
use crate::trace::{FaultEvent, TraceBuffer};

/// Configuration of a simulated DEX cluster.
///
/// # Examples
///
/// ```
/// use dex_core::{Cluster, ClusterConfig};
///
/// let config = ClusterConfig::new(8).with_trace();
/// assert_eq!(config.nodes, 8);
/// let cluster = Cluster::new(config);
/// let report = cluster.run(|proc_| {
///     proc_.spawn(|ctx| ctx.compute_ops(1_000));
/// });
/// assert!(report.virtual_time.as_micros_f64() > 0.0);
/// ```
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of nodes (the paper's testbed has 8).
    pub nodes: usize,
    /// Messaging-layer cost model.
    pub net: NetConfig,
    /// Kernel-path cost model.
    pub cost: CostModel,
    /// Collect the page-fault trace (profiling mode).
    pub trace: bool,
    /// Record causal spans (fault/migration/delegation timelines).
    pub spans: bool,
    /// Attach a per-node/per-link [`MetricsRegistry`] to the run.
    pub metrics: bool,
    /// Continuous telemetry: windowed time-series and online health
    /// monitors driven by the engine's virtual-time sampler. `None` —
    /// the default — installs no sampler; the run is byte-identical to
    /// builds without the telemetry subsystem.
    pub telemetry: Option<TelemetryConfig>,
    /// Record the deterministic schedule (driver accept order) for
    /// bit-identity comparisons.
    pub record_schedule: bool,
    /// Record synchronization/access events for `dex-check races`.
    pub race: bool,
    /// Abort the run after this many simulation events (livelock guard).
    pub event_budget: u64,
    /// Pages in the process's shared heap VMA.
    pub heap_pages: u64,
    /// Deterministic fault plan to inject (delay spikes, stalls, node
    /// crashes). `None` — the default — runs the fabric with the fault
    /// layer disabled, which is schedule-identical to builds without it.
    pub fault_plan: Option<dex_sim::FaultPlan>,
    /// Seeded protocol bug for mutation testing the exploration tooling
    /// (`dex-check explore`). Default: [`ProtocolMutation::None`].
    pub mutation: ProtocolMutation,
    /// Schedule policy to install on the engine — the hook `dex-check
    /// explore` drives alternative interleavings through. `None` runs
    /// the engine's built-in (deterministic heap-order) scheduling.
    pub schedule_policy: Option<SchedulePolicyHandle>,
    /// Directory shards for page-ownership state. `1` — the default —
    /// keeps the classic single-origin directory and is bit-identical to
    /// earlier builds. Values above one hash each page to a home node
    /// (`vpn % dir_shards`) that runs its ownership transactions with
    /// owner-forwarded grants and batched invalidation fan-out; capped
    /// at the node count.
    pub dir_shards: usize,
}

impl ClusterConfig {
    /// A cluster of `nodes` nodes with the calibrated default cost models.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero or exceeds 64 (the ownership bitmap
    /// width).
    pub fn new(nodes: usize) -> Self {
        assert!((1..=64).contains(&nodes), "cluster size must be 1..=64");
        ClusterConfig {
            nodes,
            net: NetConfig::default(),
            cost: CostModel::default(),
            trace: false,
            spans: false,
            metrics: false,
            telemetry: None,
            record_schedule: false,
            race: false,
            event_budget: u64::MAX,
            heap_pages: 1 << 18, // 1 GiB of address space; frames on demand
            fault_plan: None,
            mutation: ProtocolMutation::None,
            schedule_policy: None,
            dir_shards: 1,
        }
    }

    /// Enables page-fault tracing.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Enables causal span tracing: fault, migration, delegation, and
    /// futex timelines stitched across nodes (exported by `dex-prof`).
    /// The instrumented schedule is identical to the uninstrumented one.
    pub fn with_spans(mut self) -> Self {
        self.spans = true;
        self
    }

    /// Attaches a [`MetricsRegistry`]: per-node and per-link counters and
    /// wait-time histograms, snapshotted into the report.
    pub fn with_metrics(mut self) -> Self {
        self.metrics = true;
        self
    }

    /// Enables continuous telemetry with the given virtual-time window
    /// and default monitor thresholds: the engine samples the metrics
    /// registry at every window boundary into a [`TimeSeries`], and the
    /// online health monitors watch each window for page ping-pong,
    /// retry storms, stalled requests, and fabric queue buildup.
    /// Implies [`ClusterConfig::with_spans`] and
    /// [`ClusterConfig::with_metrics`].
    pub fn with_telemetry(self, window: SimDuration) -> Self {
        self.with_telemetry_config(TelemetryConfig {
            window,
            monitors: crate::telemetry::MonitorConfig::default(),
        })
    }

    /// Enables continuous telemetry with explicit monitor thresholds.
    /// Implies [`ClusterConfig::with_spans`] and
    /// [`ClusterConfig::with_metrics`].
    pub fn with_telemetry_config(mut self, telemetry: TelemetryConfig) -> Self {
        self.telemetry = Some(telemetry);
        self.spans = true;
        self.metrics = true;
        self
    }

    /// Records the deterministic schedule (the order the engine accepted
    /// thread steps) so two runs can be compared byte for byte.
    pub fn with_schedule_recording(mut self) -> Self {
        self.record_schedule = true;
        self
    }

    /// Enables synchronization/access event recording so the run can be
    /// analyzed offline by `dex-check races` (dynamic race detection).
    pub fn with_race_detection(mut self) -> Self {
        self.race = true;
        self
    }

    /// Replaces the network cost model.
    pub fn with_net(mut self, net: NetConfig) -> Self {
        self.net = net;
        self
    }

    /// Replaces the kernel-path cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Caps the simulation event count.
    pub fn with_event_budget(mut self, budget: u64) -> Self {
        self.event_budget = budget;
        self
    }

    /// Injects a deterministic fault plan (see [`dex_sim::FaultPlan`]).
    pub fn with_fault_plan(mut self, plan: dex_sim::FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Injects a seeded protocol bug (mutation testing of the checker).
    pub fn with_mutation(mut self, mutation: ProtocolMutation) -> Self {
        self.mutation = mutation;
        self
    }

    /// Installs a schedule policy on the engine, routing every scheduling
    /// tie and value choice through it (systematic exploration).
    pub fn with_schedule_policy(mut self, policy: SchedulePolicyHandle) -> Self {
        self.schedule_policy = Some(policy);
        self
    }

    /// Shards the page-ownership directory across `shards` home nodes
    /// (two-hop ownership: owner-forwarded grants, batched invalidation
    /// fan-out). `1` restores the classic single-origin directory; values
    /// above the node count are capped to it.
    pub fn with_directory_shards(mut self, shards: usize) -> Self {
        self.dir_shards = shards.max(1);
        self
    }
}

/// A simulated DEX cluster, ready to run distributed processes.
#[derive(Debug)]
pub struct Cluster {
    config: ClusterConfig,
}

impl Cluster {
    /// Creates a cluster from `config`.
    pub fn new(config: ClusterConfig) -> Self {
        Cluster { config }
    }

    /// The configuration this cluster was built with.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Runs one distributed process to completion.
    ///
    /// `setup` receives the process handle to allocate distributed memory
    /// and spawn threads; it runs before virtual time starts. The report
    /// is produced when every spawned thread has finished.
    ///
    /// # Panics
    ///
    /// Panics if the simulation deadlocks, exceeds its event budget, or an
    /// application thread panics (e.g. a simulated segmentation fault).
    pub fn run<F>(&self, setup: F) -> RunReport
    where
        F: FnOnce(&DexProcess<'_>),
    {
        self.run_multi(|cluster| {
            let proc_ = cluster.create_process(NodeId(0));
            setup(&proc_);
        })
        .into_iter()
        .next()
        .expect("run created one process")
    }

    /// Runs any number of distributed processes to completion — DEX
    /// supports several processes sharing the rack, each with its own
    /// origin node, address space, ownership directory, and futex table
    /// (messages carry the pid throughout).
    ///
    /// Returns one report per created process, in creation order.
    ///
    /// # Panics
    ///
    /// As for [`Cluster::run`]; additionally if `setup` creates no
    /// process.
    pub fn run_multi<F>(&self, setup: F) -> Vec<RunReport>
    where
        F: FnOnce(&ClusterHandle<'_>),
    {
        let cfg = &self.config;
        let engine = Engine::with_event_budget(cfg.event_budget);
        if let Some(policy) = &cfg.schedule_policy {
            engine.set_schedule_policy(policy.clone());
        }
        let schedule = cfg
            .record_schedule
            .then(|| engine.record_schedule(format!("dex run, {} nodes", cfg.nodes)));
        let metrics = (cfg.metrics || cfg.telemetry.is_some()).then(|| {
            // Telemetry needs the registry even if the caller set the
            // `telemetry` field directly without `with_metrics`.
            MetricsRegistry::new(cfg.nodes)
        });
        let fabric = crate::process::Fabric::with_instrumentation(
            cfg.net.clone(),
            cfg.nodes,
            cfg.fault_plan.clone().unwrap_or_default(),
            metrics.clone(),
        );
        let registry = ProcessRegistry::new();

        // One dispatcher daemon per node drains that node's inbox.
        for n in 0..cfg.nodes {
            let node = NodeId(n as u16);
            let registry = Arc::clone(&registry);
            let endpoint = fabric.endpoint(node);
            engine.spawn_daemon(format!("dispatcher-{node}"), move |ctx| {
                dispatcher_loop(ctx, node, registry, endpoint);
            });
        }

        let handle = ClusterHandle {
            engine: &engine,
            fabric,
            registry,
            config: cfg,
            metrics: metrics.clone(),
            created: std::cell::RefCell::new(Vec::new()),
        };
        setup(&handle);
        let created = handle.created.into_inner();
        assert!(
            !created.is_empty(),
            "setup must create at least one process"
        );

        // Telemetry: install the virtual-time sampler after setup so the
        // monitors see every created process's span buffer. The sampler
        // is pure observation (it snapshots counters and drains the span
        // cursor between events) — installing it adds no events.
        let telemetry = cfg.telemetry.as_ref().map(|tcfg| {
            let registry = metrics.clone().expect("telemetry implies metrics");
            let buffers = created.iter().map(|s| s.spans.clone()).collect();
            let state = Arc::new(parking_lot::Mutex::new(Some(Telemetry::new(
                registry, tcfg, buffers,
            ))));
            let sampler_state = Arc::clone(&state);
            engine.set_sampler(tcfg.window, move |boundary| {
                if let Some(t) = sampler_state.lock().as_mut() {
                    t.on_boundary(boundary);
                }
            });
            state
        });

        let end: SimTime = match engine.run() {
            Ok(end) => end,
            Err(e) => panic!("dex simulation failed: {e}"),
        };

        let (series, health) = match telemetry {
            Some(state) => {
                let t = state.lock().take().expect("telemetry finishes once");
                let (series, health) = t.finish(end);
                (Some(series), health)
            }
            None => (None, Vec::new()),
        };
        let schedule_text = schedule.map(|log| log.lock().to_text());
        created
            .into_iter()
            .map(|shared| {
                let stats = DexStats::collect(&shared);
                let fault_hist = shared.stats.fault_hist.clone();
                let migrations = shared.stats.migrations.lock().clone();
                let trace = shared.trace.snapshot();
                let spans = shared.spans.snapshot();
                let metrics = shared.metrics.as_ref().map(|m| m.snapshot());
                let race_events = shared.race.snapshot();
                RunReport {
                    virtual_time: end.saturating_since(SimTime::ZERO),
                    stats,
                    fault_hist,
                    migrations,
                    trace,
                    spans,
                    metrics,
                    series: series.clone(),
                    health: health.clone(),
                    schedule: schedule_text.clone(),
                    race_events,
                    shared,
                }
            })
            .collect()
    }
}

/// Handle for creating processes inside [`Cluster::run_multi`].
pub struct ClusterHandle<'e> {
    engine: &'e Engine,
    fabric: Arc<crate::process::Fabric>,
    registry: Arc<ProcessRegistry>,
    config: &'e ClusterConfig,
    metrics: Option<Arc<MetricsRegistry>>,
    created: std::cell::RefCell<Vec<Arc<ProcessShared>>>,
}

impl<'e> ClusterHandle<'e> {
    /// Creates a new process whose threads originate at `origin`.
    ///
    /// # Panics
    ///
    /// Panics if `origin` is outside the cluster.
    pub fn create_process(&self, origin: NodeId) -> DexProcess<'e> {
        assert!(
            (origin.0 as usize) < self.config.nodes,
            "origin {origin} outside the {}-node cluster",
            self.config.nodes
        );
        let trace = if self.config.trace {
            TraceBuffer::enabled()
        } else {
            TraceBuffer::disabled()
        };
        let race = if self.config.race {
            RaceTrace::enabled()
        } else {
            RaceTrace::disabled()
        };
        let spans = if self.config.spans {
            SpanBuffer::enabled()
        } else {
            SpanBuffer::disabled()
        };
        let pid = Pid(self.created.borrow().len() as u64 + 1);
        let shared = ProcessShared::new(
            pid,
            origin,
            self.config.nodes,
            self.config.cost.clone(),
            Arc::clone(&self.fabric),
            trace,
            spans,
            self.metrics.clone(),
            race,
            self.config.heap_pages,
            self.config.mutation,
            self.config.dir_shards,
        );
        self.registry.insert(Arc::clone(&shared));
        self.created.borrow_mut().push(Arc::clone(&shared));
        DexProcess {
            shared,
            engine: self.engine,
        }
    }
}

impl std::fmt::Debug for ClusterHandle<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterHandle")
            .field("processes", &self.created.borrow().len())
            .finish()
    }
}

/// Handle to the distributed process during setup: allocate memory, create
/// synchronization primitives, spawn threads.
pub struct DexProcess<'e> {
    shared: Arc<ProcessShared>,
    engine: &'e Engine,
}

impl ProcessRef for DexProcess<'_> {
    fn shared_ref(&self) -> &ProcessShared {
        &self.shared
    }
}

impl DexProcess<'_> {
    /// The shared process state (advanced use).
    pub fn shared(&self) -> &Arc<ProcessShared> {
        &self.shared
    }

    /// The origin node of the process.
    pub fn origin(&self) -> NodeId {
        self.shared.origin
    }

    /// Number of nodes in the cluster.
    pub fn nodes(&self) -> usize {
        self.shared.nodes
    }

    /// Spawns an application thread at the origin. The closure runs in
    /// virtual time with a [`ThreadCtx`].
    pub fn spawn<F>(&self, f: F) -> DexThread
    where
        F: FnOnce(&ThreadCtx<'_>) + Send + 'static,
    {
        let shared = Arc::clone(&self.shared);
        let tid = shared.new_tid();
        let handle = DexThread::new();
        let handle2 = handle.clone();
        self.engine.spawn(format!("app-{tid}"), move |ctx| {
            shared.adjust_load(shared.origin, 1);
            let tctx = ThreadCtx::new(ctx, shared, tid);
            f(&tctx);
            tctx.process().adjust_load(tctx.node(), -1);
            handle2.mark_done(ctx);
        });
        handle
    }

    /// Allocates a typed vector, packed at element alignment (objects
    /// share pages — the paper's false-sharing hazard).
    pub fn alloc_vec<T: DsmScalar>(&self, len: usize, tag: &str) -> DsmVec<T> {
        let addr = self.shared.alloc_raw(
            (len * T::BYTES) as u64,
            T::BYTES.next_power_of_two().min(4096) as u64,
            Some(tag),
        );
        DsmVec::from_raw(addr, len)
    }

    /// Allocates a typed vector aligned to a page boundary *and padded to
    /// whole pages*, so no other object shares its pages (the
    /// `posix_memalign`-plus-padding fix from §IV-B).
    pub fn alloc_vec_aligned<T: DsmScalar>(&self, len: usize, tag: &str) -> DsmVec<T> {
        let bytes = ((len * T::BYTES) as u64).div_ceil(PAGE_SIZE as u64) * PAGE_SIZE as u64;
        let addr = self
            .shared
            .alloc_raw(bytes.max(PAGE_SIZE as u64), PAGE_SIZE as u64, Some(tag));
        DsmVec::from_raw(addr, len)
    }

    /// Allocates and initializes a single cell (packed).
    pub fn alloc_cell<T: DsmScalar>(&self, init: T) -> DsmCell<T> {
        self.alloc_cell_tagged(init, "cell")
    }

    /// Allocates and initializes a tagged cell (packed).
    pub fn alloc_cell_tagged<T: DsmScalar>(&self, init: T, tag: &str) -> DsmCell<T> {
        let addr = self.shared.alloc_raw(
            T::BYTES as u64,
            T::BYTES.next_power_of_two().min(4096) as u64,
            Some(tag),
        );
        let cell = DsmCell::from_raw(addr);
        cell.init(self, init);
        cell
    }

    /// Allocates and initializes a cell on its own *whole* page (padded,
    /// so nothing else ever shares it).
    pub fn alloc_cell_aligned<T: DsmScalar>(&self, init: T, tag: &str) -> DsmCell<T> {
        let addr = self
            .shared
            .alloc_raw(PAGE_SIZE as u64, PAGE_SIZE as u64, Some(tag));
        let cell = DsmCell::from_raw(addr);
        cell.init(self, init);
        cell
    }

    /// Allocates a row-major 2-D matrix, packed.
    pub fn alloc_matrix<T: DsmScalar>(&self, rows: usize, cols: usize, tag: &str) -> DsmMatrix<T> {
        let addr = self.shared.alloc_raw(
            (rows * cols * T::BYTES) as u64,
            T::BYTES.next_power_of_two().min(4096) as u64,
            Some(tag),
        );
        DsmMatrix::from_raw(addr, rows, cols, cols)
    }

    /// Allocates a 2-D matrix with every row padded to whole pages, so
    /// row partitions never share pages across workers (the grid layout
    /// BT/FT-style applications want after optimization).
    pub fn alloc_matrix_row_aligned<T: DsmScalar>(
        &self,
        rows: usize,
        cols: usize,
        tag: &str,
    ) -> DsmMatrix<T> {
        let row_bytes = (cols * T::BYTES).div_ceil(PAGE_SIZE) * PAGE_SIZE;
        let stride = row_bytes / T::BYTES;
        let addr = self
            .shared
            .alloc_raw((rows * row_bytes) as u64, PAGE_SIZE as u64, Some(tag));
        DsmMatrix::from_raw(addr, rows, cols, stride)
    }

    /// Allocates raw bytes (packed by default; pass `PAGE_SIZE` alignment
    /// to isolate).
    pub fn alloc_raw(&self, len: u64, align: u64, tag: &str) -> VirtAddr {
        self.shared.alloc_raw(len, align, Some(tag))
    }

    /// Creates a cluster-wide mutex.
    pub fn new_mutex(&self, tag: &str) -> DexMutex {
        new_mutex(self, tag)
    }

    /// Creates a cluster-wide barrier for `parties` threads.
    pub fn new_barrier(&self, parties: u32, tag: &str) -> DexBarrier {
        new_barrier(self, parties, tag)
    }

    /// Creates a cluster-wide condition variable.
    pub fn new_condvar(&self, tag: &str) -> DexCondvar {
        new_condvar(self, tag)
    }

    /// Creates a cluster-wide readers-writer lock.
    pub fn new_rwlock(&self, tag: &str) -> DexRwLock {
        new_rwlock(self, tag)
    }
}

impl std::fmt::Debug for DexProcess<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DexProcess")
            .field("pid", &self.shared.pid)
            .finish()
    }
}

/// Aggregate protocol statistics of one run (friendly snapshot of the raw
/// counters).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DexStats {
    /// Forward thread migrations.
    pub forward_migrations: u64,
    /// Backward thread migrations.
    pub backward_migrations: u64,
    /// Read faults entering the protocol.
    pub read_faults: u64,
    /// Write faults entering the protocol.
    pub write_faults: u64,
    /// Faults absorbed as followers by leader–follower coalescing.
    pub coalesced_faults: u64,
    /// Fault rounds retried after conflicting transactions.
    pub retried_faults: u64,
    /// Ownership revocations applied.
    pub invalidations: u64,
    /// On-demand VMA pulls.
    pub vma_syncs: u64,
    /// Eager VMA broadcasts (munmap/mprotect downgrades).
    pub vma_broadcasts: u64,
    /// Operations delegated to original threads.
    pub delegations: u64,
    /// Futex wait operations.
    pub futex_waits: u64,
    /// Futex wake operations.
    pub futex_wakes: u64,
    /// Messages sent on the fabric.
    pub msgs_sent: u64,
    /// Page payloads sent on the fabric.
    pub pages_sent: u64,
    /// Total bytes sent on the fabric.
    pub bytes_sent: u64,
}

impl DexStats {
    fn collect(shared: &ProcessShared) -> Self {
        let c = &shared.stats.counters;
        let n = shared.fabric.counters();
        DexStats {
            forward_migrations: c.get("migrations.forward"),
            backward_migrations: c.get("migrations.backward"),
            read_faults: c.get("faults.read"),
            write_faults: c.get("faults.write"),
            coalesced_faults: c.get("faults.coalesced"),
            retried_faults: c.get("faults.retried"),
            invalidations: c.get("protocol.invalidations"),
            vma_syncs: c.get("vma.syncs"),
            vma_broadcasts: c.get("vma.broadcasts"),
            delegations: c.get("delegations"),
            futex_waits: c.get("futex.waits"),
            futex_wakes: c.get("futex.wakes"),
            msgs_sent: n.get("msgs.sent"),
            pages_sent: n.get("pages.sent"),
            bytes_sent: n.get("bytes.sent"),
        }
    }

    /// Total faults that entered the protocol (reads + writes).
    pub fn total_faults(&self) -> u64 {
        self.read_faults + self.write_faults
    }
}

/// Everything a completed run reports.
pub struct RunReport {
    /// Total virtual time the run took.
    pub virtual_time: SimDuration,
    /// Aggregate protocol statistics.
    pub stats: DexStats,
    /// Distribution of protocol-fault handling latencies.
    pub fault_hist: Histogram,
    /// Per-migration timing samples (Table II / Figure 3 inputs).
    pub migrations: Vec<MigrationSample>,
    /// The page-fault trace (empty unless tracing was enabled).
    pub trace: Vec<FaultEvent>,
    /// Synchronization/access events (empty unless race detection was
    /// enabled via [`ClusterConfig::with_race_detection`]).
    pub race_events: Vec<RaceEvent>,
    /// Causal spans (empty unless [`ClusterConfig::with_spans`] was set).
    pub spans: Vec<Span>,
    /// Cluster-wide counters/histograms (present only when
    /// [`ClusterConfig::with_metrics`] was set).
    pub metrics: Option<MetricsSnapshot>,
    /// Windowed time-series (present only when
    /// [`ClusterConfig::with_telemetry`] was set). Cluster-wide: every
    /// process of a multi-process run reports the same series.
    pub series: Option<TimeSeries>,
    /// Health events from the online monitors (empty unless
    /// [`ClusterConfig::with_telemetry`] was set). Cluster-wide.
    pub health: Vec<HealthEvent>,
    /// Text rendering of the deterministic schedule (present only when
    /// [`ClusterConfig::with_schedule_recording`] was set).
    pub schedule: Option<String>,
    shared: Arc<ProcessShared>,
}

impl ProcessRef for RunReport {
    fn shared_ref(&self) -> &ProcessShared {
        &self.shared
    }
}

impl RunReport {
    /// The shared process state, for reading final memory contents via
    /// [`DsmVec::snapshot`] / [`DsmCell::snapshot`].
    pub fn process(&self) -> &Arc<ProcessShared> {
        &self.shared
    }
}

impl std::fmt::Debug for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunReport")
            .field("virtual_time", &self.virtual_time)
            .field("stats", &self.stats)
            .field("migrations", &self.migrations.len())
            .field("trace_events", &self.trace.len())
            .finish()
    }
}
