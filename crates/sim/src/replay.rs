//! Deterministic schedule recording and replay.
//!
//! The simulation kernel is deterministic, so a run is fully described
//! by the sequence of scheduling decisions taken — which actor acted,
//! and what it did. This module provides the substrate verification
//! tooling builds on:
//!
//! * [`ScheduleLog`] — an append-only log of [`ScheduleStep`]s with a
//!   line-oriented text serialization (one step per line), so a model
//!   checker can persist the exact interleaving that exposed a bug;
//! * [`ReplayCursor`] — a consumer that feeds the recorded decisions
//!   back one at a time and verifies the replayed run does not diverge
//!   from the log.
//!
//! `dex-check model` writes counterexample traces in this format and
//! `dex-check replay <file>` re-executes them step by step.

/// One recorded scheduling decision.
///
/// `actor` identifies who acted (a thread id, node id, or message slot —
/// the producer chooses the encoding); `label` is the human-readable
/// rendering of the action. Both are preserved verbatim by the text
/// round-trip.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ScheduleStep {
    /// Monotone step index (0-based).
    pub seq: u64,
    /// Stable encoding of the decision, fed back on replay.
    pub actor: u64,
    /// Human-readable description of the decision.
    pub label: String,
}

/// An append-only log of scheduling decisions with text round-trip.
///
/// # Examples
///
/// ```
/// use dex_sim::ScheduleLog;
///
/// let mut log = ScheduleLog::new("model nodes=2 pages=1");
/// log.push(3, "T1: write page 0");
/// log.push(7, "deliver message #0");
/// let text = log.to_text();
/// let back = ScheduleLog::parse(&text).unwrap();
/// assert_eq!(back, log);
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ScheduleLog {
    /// Free-form description of the run the log captures.
    pub header: String,
    steps: Vec<ScheduleStep>,
}

impl ScheduleLog {
    /// Creates an empty log with a descriptive header.
    pub fn new(header: impl Into<String>) -> Self {
        ScheduleLog {
            header: header.into(),
            steps: Vec::new(),
        }
    }

    /// Appends a decision.
    pub fn push(&mut self, actor: u64, label: impl Into<String>) {
        self.steps.push(ScheduleStep {
            seq: self.steps.len() as u64,
            actor,
            label: label.into(),
        });
    }

    /// The recorded steps in order.
    pub fn steps(&self) -> &[ScheduleStep] {
        &self.steps
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Returns `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Serializes to the line-oriented text format:
    ///
    /// ```text
    /// # <header>
    /// <seq>\t<actor>\t<label>
    /// ```
    ///
    /// Labels are escaped reversibly (`\\`, `\t`, `\n`, `\r` — the same
    /// scheme the `dex-prof` codecs use), so arbitrary label content
    /// round-trips byte for byte through [`ScheduleLog::parse`].
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("# ");
        out.push_str(&self.header.replace('\n', " "));
        out.push('\n');
        for step in &self.steps {
            out.push_str(&format!(
                "{}\t{}\t{}\n",
                step.seq,
                step.actor,
                escape_label(&step.label)
            ));
        }
        out
    }

    /// Parses the text format produced by [`ScheduleLog::to_text`].
    /// Blank lines are ignored; extra `#` lines extend the header.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut log = ScheduleLog::default();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim_end_matches(['\r', '\n']);
            if line.trim().is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('#') {
                if !log.header.is_empty() {
                    log.header.push(' ');
                }
                log.header.push_str(rest.trim());
                continue;
            }
            let mut parts = line.splitn(3, '\t');
            let seq: u64 = parts
                .next()
                .ok_or_else(|| format!("line {}: missing seq", lineno + 1))?
                .trim()
                .parse()
                .map_err(|e| format!("line {}: bad seq: {e}", lineno + 1))?;
            let actor: u64 = parts
                .next()
                .ok_or_else(|| format!("line {}: missing actor", lineno + 1))?
                .trim()
                .parse()
                .map_err(|e| format!("line {}: bad actor: {e}", lineno + 1))?;
            let label = unescape_label(parts.next().unwrap_or(""))
                .map_err(|e| format!("line {}: {e}", lineno + 1))?;
            if seq != log.steps.len() as u64 {
                return Err(format!(
                    "line {}: out-of-order seq {seq} (expected {})",
                    lineno + 1,
                    log.steps.len()
                ));
            }
            log.steps.push(ScheduleStep { seq, actor, label });
        }
        Ok(log)
    }
}

/// Escapes a label for one tab-separated field: `\\`, `\t`, `\n`, `\r`
/// (matching the `dex-prof` codec escaping, so tooling that understands
/// one format understands both).
fn escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Reverses [`escape_label`]. Unknown or truncated escapes are errors.
fn unescape_label(s: &str) -> Result<String, String> {
    if !s.contains('\\') {
        return Ok(s.to_string());
    }
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(other) => return Err(format!("bad label escape `\\{other}`")),
            None => return Err("truncated label escape at end of field".to_string()),
        }
    }
    Ok(out)
}

/// Feeds a [`ScheduleLog`] back one decision at a time, verifying the
/// replayed run matches the recording.
#[derive(Debug)]
pub struct ReplayCursor {
    log: ScheduleLog,
    next: usize,
}

impl ReplayCursor {
    /// Starts replaying `log` from the beginning.
    pub fn new(log: ScheduleLog) -> Self {
        ReplayCursor { log, next: 0 }
    }

    /// The header of the log being replayed.
    pub fn header(&self) -> &str {
        &self.log.header
    }

    /// The next decision to apply, without consuming it.
    pub fn peek(&self) -> Option<&ScheduleStep> {
        self.log.steps.get(self.next)
    }

    /// Consumes the next decision.
    pub fn advance(&mut self) -> Option<&ScheduleStep> {
        let step = self.log.steps.get(self.next)?;
        self.next += 1;
        Some(step)
    }

    /// Consumes the next decision, verifying the replayer resolved it to
    /// the same actor the recording did. A mismatch means the replayed
    /// system diverged from the recorded one (nondeterminism bug).
    pub fn advance_checked(&mut self, actor: u64) -> Result<&ScheduleStep, String> {
        self.advance_checked_named(actor, "?")
    }

    /// Like [`ReplayCursor::advance_checked`], but the caller also names
    /// the actor the replayed run chose, so divergence reports read as
    /// expected-vs-actual *names* (with step position and the expected
    /// step's label) rather than bare ids.
    pub fn advance_checked_named(
        &mut self,
        actor: u64,
        name: &str,
    ) -> Result<&ScheduleStep, String> {
        let idx = self.next;
        let len = self.log.steps.len();
        match self.log.steps.get(idx) {
            None => Err(format!(
                "replay ran past the end of the log (step {idx} of {len}): \
                 run chose actor {actor} (`{name}`) but the recording has no more steps"
            )),
            Some(step) if step.actor != actor => Err(format!(
                "replay diverged at step {idx} of {len}: log expected actor {} (`{}`), \
                 run chose actor {actor} (`{name}`)",
                step.actor, step.label
            )),
            Some(_) => {
                self.next += 1;
                Ok(&self.log.steps[idx])
            }
        }
    }

    /// Steps consumed so far.
    pub fn position(&self) -> usize {
        self.next
    }

    /// Returns `true` when every step has been consumed.
    pub fn is_finished(&self) -> bool {
        self.next >= self.log.steps.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_round_trip_preserves_everything() {
        let mut log = ScheduleLog::new("model nodes=3 pages=2 mutation=skip-invalidate");
        log.push(1, "T1: write page 0");
        log.push(42, "deliver message #0");
        log.push(7, "label with\ttab and\nnewline plus back\\slash");
        log.push(9, "trailing space \u{1F9EA} unicode ");
        let back = ScheduleLog::parse(&log.to_text()).unwrap();
        assert_eq!(back, log, "hostile labels round-trip byte for byte");
    }

    #[test]
    fn parse_rejects_out_of_order_and_garbage() {
        assert!(ScheduleLog::parse("0\t1\tok\n2\t1\tskipped-a-step\n").is_err());
        assert!(ScheduleLog::parse("zero\t1\tbad-seq\n").is_err());
        assert!(ScheduleLog::parse("0\tnope\tbad-actor\n").is_err());
        assert!(ScheduleLog::parse("0\t1\tbad escape \\x\n").is_err());
        assert!(ScheduleLog::parse("0\t1\ttruncated escape \\").is_err());
    }

    #[test]
    fn cursor_detects_divergence() {
        let mut log = ScheduleLog::new("t");
        log.push(5, "first");
        log.push(6, "second");
        let mut cur = ReplayCursor::new(log);
        assert_eq!(cur.peek().unwrap().actor, 5);
        assert!(cur.advance_checked(5).is_ok());
        let err = cur.advance_checked_named(9, "node-9").unwrap_err();
        assert!(err.contains("diverged at step 1 of 2"), "{err}");
        assert!(err.contains("`second`"), "expected label named: {err}");
        assert!(err.contains("`node-9`"), "actual name named: {err}");
        assert!(cur.advance_checked(6).is_ok());
        assert!(cur.is_finished());
        let err = cur.advance_checked(0).unwrap_err();
        assert!(
            err.contains("past the end of the log (step 2 of 2)"),
            "{err}"
        );
    }

    #[test]
    fn empty_lines_and_extra_comments_are_tolerated() {
        let log = ScheduleLog::parse("# part one\n\n# part two\n0\t1\tstep\n").unwrap();
        assert_eq!(log.header, "part one part two");
        assert_eq!(log.len(), 1);
    }
}
