//! Deterministic schedule recording and replay.
//!
//! The simulation kernel is deterministic, so a run is fully described
//! by the sequence of scheduling decisions taken — which actor acted,
//! and what it did. This module provides the substrate verification
//! tooling builds on:
//!
//! * [`ScheduleLog`] — an append-only log of [`ScheduleStep`]s with a
//!   line-oriented text serialization (one step per line), so a model
//!   checker can persist the exact interleaving that exposed a bug;
//! * [`ReplayCursor`] — a consumer that feeds the recorded decisions
//!   back one at a time and verifies the replayed run does not diverge
//!   from the log.
//!
//! `dex-check model` writes counterexample traces in this format and
//! `dex-check replay <file>` re-executes them step by step.

/// One recorded scheduling decision.
///
/// `actor` identifies who acted (a thread id, node id, or message slot —
/// the producer chooses the encoding); `label` is the human-readable
/// rendering of the action. Both are preserved verbatim by the text
/// round-trip.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ScheduleStep {
    /// Monotone step index (0-based).
    pub seq: u64,
    /// Stable encoding of the decision, fed back on replay.
    pub actor: u64,
    /// Human-readable description of the decision.
    pub label: String,
}

/// An append-only log of scheduling decisions with text round-trip.
///
/// # Examples
///
/// ```
/// use dex_sim::ScheduleLog;
///
/// let mut log = ScheduleLog::new("model nodes=2 pages=1");
/// log.push(3, "T1: write page 0");
/// log.push(7, "deliver message #0");
/// let text = log.to_text();
/// let back = ScheduleLog::parse(&text).unwrap();
/// assert_eq!(back, log);
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ScheduleLog {
    /// Free-form description of the run the log captures.
    pub header: String,
    steps: Vec<ScheduleStep>,
}

impl ScheduleLog {
    /// Creates an empty log with a descriptive header.
    pub fn new(header: impl Into<String>) -> Self {
        ScheduleLog {
            header: header.into(),
            steps: Vec::new(),
        }
    }

    /// Appends a decision.
    pub fn push(&mut self, actor: u64, label: impl Into<String>) {
        self.steps.push(ScheduleStep {
            seq: self.steps.len() as u64,
            actor,
            label: label.into(),
        });
    }

    /// The recorded steps in order.
    pub fn steps(&self) -> &[ScheduleStep] {
        &self.steps
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Returns `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Serializes to the line-oriented text format:
    ///
    /// ```text
    /// # <header>
    /// <seq>\t<actor>\t<label>
    /// ```
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("# ");
        out.push_str(&self.header.replace('\n', " "));
        out.push('\n');
        for step in &self.steps {
            out.push_str(&format!(
                "{}\t{}\t{}\n",
                step.seq,
                step.actor,
                step.label.replace(['\t', '\n'], " ")
            ));
        }
        out
    }

    /// Parses the text format produced by [`ScheduleLog::to_text`].
    /// Blank lines are ignored; extra `#` lines extend the header.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut log = ScheduleLog::default();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('#') {
                if !log.header.is_empty() {
                    log.header.push(' ');
                }
                log.header.push_str(rest.trim());
                continue;
            }
            let mut parts = line.splitn(3, '\t');
            let seq: u64 = parts
                .next()
                .ok_or_else(|| format!("line {}: missing seq", lineno + 1))?
                .trim()
                .parse()
                .map_err(|e| format!("line {}: bad seq: {e}", lineno + 1))?;
            let actor: u64 = parts
                .next()
                .ok_or_else(|| format!("line {}: missing actor", lineno + 1))?
                .trim()
                .parse()
                .map_err(|e| format!("line {}: bad actor: {e}", lineno + 1))?;
            let label = parts.next().unwrap_or("").to_string();
            if seq != log.steps.len() as u64 {
                return Err(format!(
                    "line {}: out-of-order seq {seq} (expected {})",
                    lineno + 1,
                    log.steps.len()
                ));
            }
            log.steps.push(ScheduleStep { seq, actor, label });
        }
        Ok(log)
    }
}

/// Feeds a [`ScheduleLog`] back one decision at a time, verifying the
/// replayed run matches the recording.
#[derive(Debug)]
pub struct ReplayCursor {
    log: ScheduleLog,
    next: usize,
}

impl ReplayCursor {
    /// Starts replaying `log` from the beginning.
    pub fn new(log: ScheduleLog) -> Self {
        ReplayCursor { log, next: 0 }
    }

    /// The header of the log being replayed.
    pub fn header(&self) -> &str {
        &self.log.header
    }

    /// The next decision to apply, without consuming it.
    pub fn peek(&self) -> Option<&ScheduleStep> {
        self.log.steps.get(self.next)
    }

    /// Consumes the next decision.
    pub fn advance(&mut self) -> Option<&ScheduleStep> {
        let step = self.log.steps.get(self.next)?;
        self.next += 1;
        Some(step)
    }

    /// Consumes the next decision, verifying the replayer resolved it to
    /// the same actor the recording did. A mismatch means the replayed
    /// system diverged from the recorded one (nondeterminism bug).
    pub fn advance_checked(&mut self, actor: u64) -> Result<&ScheduleStep, String> {
        let idx = self.next;
        match self.log.steps.get(idx) {
            None => Err(format!("replay ran past the end of the log (step {idx})")),
            Some(step) if step.actor != actor => Err(format!(
                "replay diverged at step {idx}: log says actor {} ({}), run chose actor {actor}",
                step.actor, step.label
            )),
            Some(_) => {
                self.next += 1;
                Ok(&self.log.steps[idx])
            }
        }
    }

    /// Steps consumed so far.
    pub fn position(&self) -> usize {
        self.next
    }

    /// Returns `true` when every step has been consumed.
    pub fn is_finished(&self) -> bool {
        self.next >= self.log.steps.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_round_trip_preserves_everything() {
        let mut log = ScheduleLog::new("model nodes=3 pages=2 mutation=skip-invalidate");
        log.push(1, "T1: write page 0");
        log.push(42, "deliver message #0");
        log.push(7, "label with\ttab and\nnewline");
        let back = ScheduleLog::parse(&log.to_text()).unwrap();
        assert_eq!(back.header, log.header);
        assert_eq!(back.len(), 3);
        assert_eq!(back.steps()[1].actor, 42);
        // Control characters are flattened to spaces, content preserved.
        assert_eq!(back.steps()[2].label, "label with tab and newline");
    }

    #[test]
    fn parse_rejects_out_of_order_and_garbage() {
        assert!(ScheduleLog::parse("0\t1\tok\n2\t1\tskipped-a-step\n").is_err());
        assert!(ScheduleLog::parse("zero\t1\tbad-seq\n").is_err());
        assert!(ScheduleLog::parse("0\tnope\tbad-actor\n").is_err());
    }

    #[test]
    fn cursor_detects_divergence() {
        let mut log = ScheduleLog::new("t");
        log.push(5, "first");
        log.push(6, "second");
        let mut cur = ReplayCursor::new(log);
        assert_eq!(cur.peek().unwrap().actor, 5);
        assert!(cur.advance_checked(5).is_ok());
        let err = cur.advance_checked(9).unwrap_err();
        assert!(err.contains("diverged"), "{err}");
        assert!(cur.advance_checked(6).is_ok());
        assert!(cur.is_finished());
        assert!(cur.advance_checked(0).is_err(), "past the end");
    }

    #[test]
    fn empty_lines_and_extra_comments_are_tolerated() {
        let log = ScheduleLog::parse("# part one\n\n# part two\n0\t1\tstep\n").unwrap();
        assert_eq!(log.header, "part one part two");
        assert_eq!(log.len(), 1);
    }
}
