//! Shared-resource contention models.
//!
//! Two queueing models back the simulator's hardware resources:
//!
//! * [`Resource`] — a single FIFO server with a fixed service rate. Used
//!   for serialized links (a NIC port, a memory channel pair modeled as one
//!   pipe).
//! * [`MultiResource`] — `k` identical FIFO servers. Used for CPU cores on
//!   a node: a compute burst occupies the earliest-free core.
//!
//! Both advance the *calling* simulated thread to the finish time of its
//! request, so contention appears as queueing delay in virtual time. With
//! `k` threads hammering a resource of rate `r`, each observes throughput
//! `r / k` — this is what makes memory-bandwidth-bound applications (the
//! paper's BP) scale super-linearly when spread over more nodes.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::engine::SimCtx;
use crate::time::{SimDuration, SimTime};

/// A single-server FIFO resource with a byte-rate service model.
///
/// # Examples
///
/// ```
/// use dex_sim::{Engine, Resource, SimDuration};
///
/// let engine = Engine::new();
/// // 1 GiB/s memory pipe shared by two threads.
/// let mem = Resource::with_rate_bytes_per_sec(1 << 30);
/// for i in 0..2 {
///     let mem = mem.clone();
///     engine.spawn(format!("t{i}"), move |ctx| {
///         mem.acquire_bytes(ctx, 1 << 20); // each moves 1 MiB
///     });
/// }
/// let end = engine.run().unwrap();
/// // Total 2 MiB through a 1 GiB/s pipe: ~2 ms of virtual time.
/// assert!(end.as_secs_f64() > 0.0019 && end.as_secs_f64() < 0.0021);
/// ```
#[derive(Clone)]
pub struct Resource {
    inner: Arc<Mutex<SimTime>>,
    nanos_per_byte: f64,
}

impl Resource {
    /// Creates a resource that serves `bytes_per_sec` bytes per virtual
    /// second.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is zero.
    pub fn with_rate_bytes_per_sec(bytes_per_sec: u64) -> Self {
        assert!(bytes_per_sec > 0, "resource rate must be non-zero");
        Resource {
            inner: Arc::new(Mutex::new(SimTime::ZERO)),
            nanos_per_byte: 1e9 / bytes_per_sec as f64,
        }
    }

    /// Serves a request of `bytes`, advancing the calling thread to the
    /// finish time. Returns the total time spent (queueing + service).
    pub fn acquire_bytes(&self, ctx: &SimCtx, bytes: u64) -> SimDuration {
        let service = SimDuration::from_nanos((bytes as f64 * self.nanos_per_byte).ceil() as u64);
        self.acquire(ctx, service)
    }

    /// Serves a request with an explicit service time.
    pub fn acquire(&self, ctx: &SimCtx, service: SimDuration) -> SimDuration {
        let now = ctx.now();
        let finish = {
            let mut available_at = self.inner.lock();
            let start = available_at.max(now);
            let finish = start + service;
            *available_at = finish;
            finish
        };
        ctx.sleep_until(finish);
        finish.saturating_since(now)
    }

    /// The earliest instant at which a new request could start service.
    pub fn available_at(&self) -> SimTime {
        *self.inner.lock()
    }

    /// Reserves service for `bytes` starting no earlier than `now`
    /// *without blocking the caller*, returning the finish time. Models
    /// asynchronous posting (e.g. an RDMA work request): the caller
    /// continues while the resource works.
    pub fn reserve_bytes(&self, now: SimTime, bytes: u64) -> SimTime {
        let service = SimDuration::from_nanos((bytes as f64 * self.nanos_per_byte).ceil() as u64);
        self.reserve(now, service)
    }

    /// Reserves `service` time starting no earlier than `now` without
    /// blocking; returns the finish time.
    pub fn reserve(&self, now: SimTime, service: SimDuration) -> SimTime {
        let mut available_at = self.inner.lock();
        let start = available_at.max(now);
        let finish = start + service;
        *available_at = finish;
        finish
    }
}

impl std::fmt::Debug for Resource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Resource")
            .field("available_at", &*self.inner.lock())
            .field("nanos_per_byte", &self.nanos_per_byte)
            .finish()
    }
}

/// A pool of `k` identical FIFO servers (e.g. the cores of one node).
///
/// # Examples
///
/// ```
/// use dex_sim::{Engine, MultiResource, SimDuration};
///
/// let engine = Engine::new();
/// let cores = MultiResource::new(2); // 2-core node
/// for i in 0..4 {
///     let cores = cores.clone();
///     engine.spawn(format!("t{i}"), move |ctx| {
///         cores.acquire(ctx, SimDuration::from_micros(10));
///     });
/// }
/// // 4 bursts of 10 us on 2 cores: finishes at 20 us.
/// assert_eq!(engine.run().unwrap().as_nanos(), 20_000);
/// ```
#[derive(Clone)]
pub struct MultiResource {
    servers: Arc<Mutex<Vec<SimTime>>>,
}

impl MultiResource {
    /// Creates a pool of `k` servers.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "resource pool must have at least one server");
        MultiResource {
            servers: Arc::new(Mutex::new(vec![SimTime::ZERO; k])),
        }
    }

    /// Number of servers in the pool.
    pub fn servers(&self) -> usize {
        self.servers.lock().len()
    }

    /// Occupies the earliest-free server for `service`, advancing the
    /// caller to the finish time. Returns total time spent.
    pub fn acquire(&self, ctx: &SimCtx, service: SimDuration) -> SimDuration {
        let now = ctx.now();
        let finish = {
            let mut servers = self.servers.lock();
            let earliest = servers
                .iter_mut()
                .min_by_key(|t| **t)
                .expect("non-empty server pool");
            let start = (*earliest).max(now);
            let finish = start + service;
            *earliest = finish;
            finish
        };
        ctx.sleep_until(finish);
        finish.saturating_since(now)
    }
}

impl std::fmt::Debug for MultiResource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiResource")
            .field("servers", &*self.servers.lock())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;

    #[test]
    fn uncontended_resource_adds_only_service_time() {
        let engine = Engine::new();
        let r = Resource::with_rate_bytes_per_sec(1_000_000_000); // 1 B/ns
        engine.spawn("t", move |ctx| {
            let spent = r.acquire_bytes(ctx, 4096);
            assert_eq!(spent, SimDuration::from_nanos(4096));
            assert_eq!(ctx.now().as_nanos(), 4096);
        });
        engine.run().unwrap();
    }

    #[test]
    fn contended_resource_serializes_fifo() {
        let engine = Engine::new();
        let r = Resource::with_rate_bytes_per_sec(1_000_000_000);
        let finishes = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3 {
            let r = r.clone();
            let finishes = Arc::clone(&finishes);
            engine.spawn(format!("t{i}"), move |ctx| {
                r.acquire_bytes(ctx, 1000);
                finishes.lock().push((i, ctx.now().as_nanos()));
            });
        }
        engine.run().unwrap();
        assert_eq!(
            *finishes.lock(),
            vec![(0, 1000), (1, 2000), (2, 3000)],
            "requests issued at the same instant serialize in spawn order"
        );
    }

    #[test]
    fn resource_idles_between_bursts() {
        let engine = Engine::new();
        let r = Resource::with_rate_bytes_per_sec(1_000_000_000);
        engine.spawn("t", move |ctx| {
            r.acquire_bytes(ctx, 100);
            ctx.advance(SimDuration::from_nanos(900)); // let it idle
            let spent = r.acquire_bytes(ctx, 100);
            assert_eq!(spent, SimDuration::from_nanos(100), "no residual queue");
        });
        engine.run().unwrap();
    }

    #[test]
    fn multi_resource_runs_k_in_parallel() {
        let engine = Engine::new();
        let cores = MultiResource::new(3);
        for i in 0..3 {
            let cores = cores.clone();
            engine.spawn(format!("t{i}"), move |ctx| {
                cores.acquire(ctx, SimDuration::from_micros(5));
                assert_eq!(ctx.now().as_nanos(), 5_000);
            });
        }
        assert_eq!(engine.run().unwrap().as_nanos(), 5_000);
    }

    #[test]
    fn multi_resource_queues_beyond_k() {
        let engine = Engine::new();
        let cores = MultiResource::new(2);
        let finishes = Arc::new(Mutex::new(Vec::new()));
        for i in 0..5 {
            let cores = cores.clone();
            let finishes = Arc::clone(&finishes);
            engine.spawn(format!("t{i}"), move |ctx| {
                cores.acquire(ctx, SimDuration::from_micros(10));
                finishes.lock().push(ctx.now().as_nanos());
            });
        }
        engine.run().unwrap();
        assert_eq!(
            *finishes.lock(),
            vec![10_000, 10_000, 20_000, 20_000, 30_000]
        );
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_rate_rejected() {
        let _ = Resource::with_rate_bytes_per_sec(0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_servers_rejected() {
        let _ = MultiResource::new(0);
    }
}
