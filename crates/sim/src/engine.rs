//! The discrete-event simulation engine.
//!
//! # Execution model
//!
//! Simulated threads are real OS threads that run **one at a time** under a
//! strict handshake with the engine's driver loop: the driver resumes a
//! thread, then blocks until that thread yields back (by advancing virtual
//! time, parking, or exiting). All inter-thread ordering is decided by a
//! single event queue ordered by `(virtual time, sequence number)`, so a
//! simulation is fully deterministic regardless of host scheduling.
//!
//! Because exactly one simulated thread runs at any moment (and the driver
//! is blocked while it does), simulated threads may freely share state via
//! ordinary `Mutex`es — the locks are never contended.
//!
//! # Thread lifecycle
//!
//! * [`Engine::spawn`] / [`SimCtx::spawn`] create a thread; it first runs at
//!   the virtual instant it was spawned.
//! * [`SimCtx::advance`] moves the thread forward in virtual time.
//! * [`SimCtx::park`] blocks until another thread calls [`SimCtx::unpark`].
//! * Returning from the closure exits the thread.
//!
//! When the event queue drains, the engine shuts down remaining *daemon*
//! threads (infrastructure loops such as message handlers) by unwinding
//! them; a remaining parked **non-daemon** thread is reported as a
//! deadlock.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::panic::{self, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

use crate::replay::ScheduleLog;
use crate::time::{SimDuration, SimTime};

/// Identifies a simulated thread within one [`Engine`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ThreadId(pub u64);

impl std::fmt::Display for ThreadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sim-thread-{}", self.0)
    }
}

/// Error returned by [`Engine::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The event queue drained while non-daemon threads were still parked;
    /// the named threads can never run again.
    Deadlock {
        /// Names of the parked non-daemon threads.
        parked: Vec<String>,
    },
    /// The configured event budget was exhausted, which usually indicates a
    /// livelock in the simulated system.
    EventBudgetExhausted {
        /// The budget that was exceeded.
        budget: u64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { parked } => {
                write!(f, "simulation deadlock: threads parked forever: {parked:?}")
            }
            SimError::EventBudgetExhausted { budget } => {
                write!(f, "simulation exceeded event budget of {budget} events")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Token unwound through a simulated thread when the engine shuts it down.
///
/// Library code never needs to touch this: the per-thread wrapper catches
/// it. It is public only so that `catch_unwind`-using callers can
/// distinguish engine shutdown from a genuine panic.
pub struct ShutdownToken;

/// One candidate event at a scheduling frontier — an event the driver
/// could legally accept next. All candidates handed to a policy are
/// pending at the *same* virtual instant; picking among them permutes a
/// same-timestamp tie, never reorders virtual time itself.
#[derive(Clone, Debug)]
pub struct ScheduleChoice {
    /// The thread the event would resume.
    pub tid: ThreadId,
    /// The thread's name (as given at spawn).
    pub name: String,
    /// `true` for a park-timeout timer firing, `false` for an ordinary
    /// resume (advance, unpark, first run).
    pub is_timer: bool,
}

/// Hook through which every nondeterministic decision of the engine is
/// routed: which same-instant event runs next ([`choose_event`]) and
/// auxiliary value choices raised by simulated code via
/// [`SimCtx::choose`] ([`choose_value`]).
///
/// The engine without a policy installed behaves byte-identically to
/// [`DefaultSchedulePolicy`] (always picks the lowest sequence number —
/// today's fixed heap order). Exploration tools install policies that
/// permute the ties to enumerate alternative schedules.
///
/// [`choose_event`]: SchedulePolicy::choose_event
/// [`choose_value`]: SchedulePolicy::choose_value
pub trait SchedulePolicy: Send {
    /// Picks which of `candidates` runs next. All candidates are pending
    /// at virtual instant `now` and are presented in queue order (lowest
    /// sequence number first), so returning `0` reproduces the default
    /// schedule. Out-of-range returns are clamped.
    fn choose_event(&mut self, now: SimTime, candidates: &[ScheduleChoice]) -> usize {
        let _ = (now, candidates);
        0
    }

    /// Resolves an `n`-way value choice raised by simulated code (e.g.
    /// which of several already-arrived messages to deliver first). `tag`
    /// identifies the choice site. Returning `0` reproduces the default
    /// behavior. Out-of-range returns are clamped.
    fn choose_value(&mut self, tag: &str, n: usize) -> usize {
        let _ = (tag, n);
        0
    }
}

/// The identity policy: always picks candidate `0`, reproducing the
/// engine's built-in `(time, seq)` heap order byte for byte. Installing
/// it is indistinguishable from installing no policy at all (enforced by
/// test).
#[derive(Clone, Copy, Debug, Default)]
pub struct DefaultSchedulePolicy;

impl SchedulePolicy for DefaultSchedulePolicy {}

/// Shared, cloneable handle to a [`SchedulePolicy`], installable via
/// [`Engine::set_schedule_policy`].
#[derive(Clone)]
pub struct SchedulePolicyHandle {
    inner: Arc<Mutex<Box<dyn SchedulePolicy>>>,
}

impl SchedulePolicyHandle {
    /// Wraps a policy for installation.
    pub fn new(policy: impl SchedulePolicy + 'static) -> Self {
        SchedulePolicyHandle {
            inner: Arc::new(Mutex::new(Box::new(policy))),
        }
    }

    fn choose_event(&self, now: SimTime, candidates: &[ScheduleChoice]) -> usize {
        self.inner.lock().choose_event(now, candidates)
    }

    fn choose_value(&self, tag: &str, n: usize) -> usize {
        self.inner.lock().choose_value(tag, n)
    }
}

impl std::fmt::Debug for SchedulePolicyHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SchedulePolicyHandle(..)")
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ParkState {
    /// Running or scheduled to run; not waiting for an unpark.
    Running,
    /// An unpark arrived while running; the next `park()` returns at once.
    Notified,
    /// Blocked in `park()`, no resume scheduled yet.
    Parked,
    /// Blocked in `park()` with a resume event already queued.
    ParkedScheduled,
}

enum Resume {
    Go,
    Shutdown,
}

enum YieldMsg {
    /// The thread scheduled its own resume (via `advance`).
    Scheduled,
    /// The thread parked and must be woken via `unpark`.
    Parked,
    /// The thread's closure returned (or it was shut down).
    Exited,
    /// The thread's closure panicked with this message.
    Panicked(String),
}

struct ThreadSlot {
    name: String,
    daemon: bool,
    resume_tx: mpsc::Sender<Resume>,
    park: ParkState,
    exited: bool,
    /// Bumped on every `park`/`park_until` entry; a queued timer event
    /// whose epoch does not match is stale and is skipped by the driver.
    park_epoch: u64,
    /// Set by the driver when the thread is resumed by its own timer
    /// (deadline reached) rather than by an `unpark`.
    timed_out: bool,
    join: Option<JoinHandle<()>>,
}

/// Sentinel epoch marking an ordinary (non-timer) event in the queue.
const NORMAL_EVENT: u64 = u64::MAX;

#[derive(PartialEq, Eq)]
struct EventKey {
    time: SimTime,
    seq: u64,
}

impl Ord for EventKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for EventKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct State {
    clock: SimTime,
    next_seq: u64,
    next_tid: u64,
    queue: BinaryHeap<Reverse<(EventKey, ThreadId, u64)>>,
    threads: HashMap<ThreadId, ThreadSlot>,
    yield_tx: mpsc::Sender<(ThreadId, YieldMsg)>,
    events_processed: u64,
    /// When present, every accepted scheduling decision is appended here
    /// (pure bookkeeping: recording never schedules, parks, or advances,
    /// so it cannot perturb the run it observes).
    schedule: Option<Arc<Mutex<ScheduleLog>>>,
    /// When present, same-instant event ties and `SimCtx::choose` calls
    /// are routed through this policy instead of the fixed heap order.
    policy: Option<SchedulePolicyHandle>,
}

impl State {
    fn schedule(&mut self, at: SimTime, tid: ThreadId) {
        let key = EventKey {
            time: at,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        self.queue.push(Reverse((key, tid, NORMAL_EVENT)));
    }

    /// Schedules a park-timeout event for `tid`. The event only fires if the
    /// thread is still parked in the same `park_until` call (identified by
    /// `epoch`) when it is popped; otherwise the driver discards it without
    /// touching the clock or the event counter.
    fn schedule_timer(&mut self, at: SimTime, tid: ThreadId, epoch: u64) {
        debug_assert_ne!(epoch, NORMAL_EVENT);
        let at = at.max(self.clock);
        let key = EventKey {
            time: at,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        self.queue.push(Reverse((key, tid, epoch)));
    }

    /// Whether a popped timer event is still live: the thread must be
    /// parked in the same `park_until` call that queued it.
    fn timer_valid(&self, tid: ThreadId, epoch: u64) -> bool {
        self.threads
            .get(&tid)
            .is_some_and(|s| !s.exited && s.park_epoch == epoch && s.park == ParkState::Parked)
    }

    /// Accepts an event: advances the clock, counts it, and records it to
    /// the schedule log if recording is on. The single point every
    /// scheduling decision — default or policy-picked — flows through.
    fn accept(&mut self, time: SimTime, tid: ThreadId) {
        self.events_processed += 1;
        self.clock = time;
        if self.schedule.is_some() {
            let label = format!(
                "t={} {}",
                time.as_nanos(),
                self.threads
                    .get(&tid)
                    .map(|s| s.name.as_str())
                    .unwrap_or("?")
            );
            if let Some(log) = &self.schedule {
                log.lock().push(tid.0, label);
            }
        }
    }
}

/// The policy scheduling path: collects the full frontier (every event
/// pending at the earliest instant, stale timers discarded), asks the
/// policy which candidate runs, re-queues the rest with their original
/// keys (they are re-validated when the next frontier is built), and
/// accepts the chosen event exactly as the default path would.
fn pick_with_policy(st: &mut State, policy: &SchedulePolicyHandle) -> Option<(SimTime, ThreadId)> {
    // Find the first live event; its time defines the frontier.
    let mut frontier: Vec<(EventKey, ThreadId, u64)> = Vec::new();
    let time = loop {
        let Reverse((key, tid, epoch)) = st.queue.pop()?;
        if epoch != NORMAL_EVENT && !st.timer_valid(tid, epoch) {
            continue;
        }
        let t = key.time;
        frontier.push((key, tid, epoch));
        break t;
    };
    // Gather every other live event at the same instant. Candidates come
    // off the min-heap in ascending sequence order, so index 0 is exactly
    // what the default path would have popped.
    while let Some(Reverse((key, _, _))) = st.queue.peek() {
        if key.time != time {
            break;
        }
        let Reverse((key, tid, epoch)) = st.queue.pop().expect("peeked entry exists");
        if epoch != NORMAL_EVENT && !st.timer_valid(tid, epoch) {
            continue;
        }
        frontier.push((key, tid, epoch));
    }
    let candidates: Vec<ScheduleChoice> = frontier
        .iter()
        .map(|(_, tid, epoch)| ScheduleChoice {
            tid: *tid,
            name: st
                .threads
                .get(tid)
                .map(|s| s.name.clone())
                .unwrap_or_else(|| "?".to_string()),
            is_timer: *epoch != NORMAL_EVENT,
        })
        .collect();
    let chosen = policy
        .choose_event(time, &candidates)
        .min(frontier.len() - 1);
    let mut picked = None;
    for (i, (key, tid, epoch)) in frontier.into_iter().enumerate() {
        if i == chosen {
            picked = Some((tid, epoch));
        } else {
            st.queue.push(Reverse((key, tid, epoch)));
        }
    }
    let (tid, epoch) = picked.expect("chosen index within frontier");
    if epoch != NORMAL_EVENT {
        if let Some(slot) = st.threads.get_mut(&tid) {
            slot.timed_out = true;
        }
    }
    st.accept(time, tid);
    Some((time, tid))
}

/// A recurring virtual-time sampler installed via [`Engine::set_sampler`].
///
/// The sampler is a *driver-level* callback, not a queued event: the
/// driver invokes it between accepting an event and resuming the chosen
/// thread, once for every window boundary at or before the accepted
/// instant. Because it adds nothing to the event queue, touches no
/// timers, and runs while no simulated thread does, an installed sampler
/// is schedule-invisible — runs with and without one are byte-identical
/// (enforced by test).
struct Sampler {
    period: SimDuration,
    next_boundary: SimTime,
    callback: Box<dyn FnMut(SimTime) + Send>,
}

struct Shared {
    state: Mutex<State>,
    /// Separate lock from `state`: the callback runs with the state lock
    /// released, so it may freely read shared simulation data (metric
    /// registries, span buffers) without deadlocking against the driver.
    sampler: Mutex<Option<Sampler>>,
}

/// The discrete-event simulation engine. See the crate-level docs for
/// the execution model.
///
/// # Examples
///
/// ```
/// use dex_sim::{Engine, SimDuration, SimTime};
/// use std::sync::Arc;
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// let engine = Engine::new();
/// let hits = Arc::new(AtomicU64::new(0));
/// for i in 0..4 {
///     let hits = Arc::clone(&hits);
///     engine.spawn(format!("worker-{i}"), move |ctx| {
///         ctx.advance(SimDuration::from_micros(i + 1));
///         hits.fetch_add(1, Ordering::Relaxed);
///     });
/// }
/// let end = engine.run().expect("no deadlock");
/// assert_eq!(hits.load(Ordering::Relaxed), 4);
/// assert_eq!(end, SimTime::ZERO + SimDuration::from_micros(4));
/// ```
pub struct Engine {
    shared: Arc<Shared>,
    yield_rx: mpsc::Receiver<(ThreadId, YieldMsg)>,
    event_budget: u64,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// Creates an engine with an effectively unlimited event budget.
    pub fn new() -> Self {
        Self::with_event_budget(u64::MAX)
    }

    /// Creates an engine that aborts with
    /// [`SimError::EventBudgetExhausted`] after processing `budget` events —
    /// a guard against livelocked simulations.
    pub fn with_event_budget(budget: u64) -> Self {
        let (yield_tx, yield_rx) = mpsc::channel();
        Engine {
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    clock: SimTime::ZERO,
                    next_seq: 0,
                    next_tid: 0,
                    queue: BinaryHeap::new(),
                    threads: HashMap::new(),
                    yield_tx,
                    events_processed: 0,
                    schedule: None,
                    policy: None,
                }),
                sampler: Mutex::new(None),
            }),
            yield_rx,
            event_budget: budget,
        }
    }

    /// Turns on schedule recording: every scheduling decision the driver
    /// accepts (which thread ran, at what virtual time) is appended to
    /// the returned [`ScheduleLog`]. Read it after [`Engine::run`]
    /// finishes.
    ///
    /// Recording is pure observation — it adds no events, timers, or
    /// wakeups — so a recorded run takes exactly the same schedule as an
    /// unrecorded one. This is the substrate of the observability
    /// layer's bit-identity guarantee: two runs are the same run iff
    /// their recorded logs are byte-identical.
    pub fn record_schedule(&self, header: impl Into<String>) -> Arc<Mutex<ScheduleLog>> {
        let log = Arc::new(Mutex::new(ScheduleLog::new(header)));
        self.shared.state.lock().schedule = Some(Arc::clone(&log));
        log
    }

    /// Installs a [`SchedulePolicy`]: every same-instant event tie (and
    /// every [`SimCtx::choose`] call) is resolved by the policy instead of
    /// the fixed `(time, seq)` heap order. With no policy installed — or
    /// with [`DefaultSchedulePolicy`] — the engine produces byte-identical
    /// schedules to builds that predate the hook.
    pub fn set_schedule_policy(&self, policy: SchedulePolicyHandle) {
        self.shared.state.lock().policy = Some(policy);
    }

    /// Installs a recurring virtual-time sampler: `callback` is invoked
    /// with each window boundary `period, 2*period, 3*period, …` as the
    /// simulation clock crosses it. Windows are half-open `[k*period,
    /// (k+1)*period)` — an event at exactly the boundary belongs to the
    /// *next* window, so the callback for boundary `b` observes precisely
    /// the events that happened strictly before `b`.
    ///
    /// The callback runs on the driver thread while every simulated
    /// thread is suspended and the engine's scheduling state is unlocked:
    /// it may read any shared simulation data, but it cannot advance
    /// time, park, send, or spawn. Like schedule recording, sampling is
    /// pure observation — it adds no events and is byte-identical to a
    /// run without a sampler (enforced by test).
    ///
    /// Virtual instants with no events are never sampled on their own:
    /// boundaries fire lazily when the clock next moves past them, and
    /// any boundaries still pending when the queue drains are left to the
    /// caller (see [`Engine::run`]'s return value for the final clock).
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn set_sampler<F>(&self, period: SimDuration, callback: F)
    where
        F: FnMut(SimTime) + Send + 'static,
    {
        assert!(!period.is_zero(), "sampler period must be positive");
        *self.shared.sampler.lock() = Some(Sampler {
            period,
            next_boundary: SimTime::ZERO + period,
            callback: Box::new(callback),
        });
    }

    /// Spawns a non-daemon simulated thread that first runs at the current
    /// virtual time. The engine reports a deadlock if it can never finish.
    pub fn spawn<F>(&self, name: impl Into<String>, f: F) -> ThreadId
    where
        F: FnOnce(&SimCtx) + Send + 'static,
    {
        spawn_thread(&self.shared, name.into(), false, f)
    }

    /// Spawns a *daemon* thread: an infrastructure loop (e.g. a message
    /// handler) that the engine silently shuts down once the event queue
    /// drains.
    pub fn spawn_daemon<F>(&self, name: impl Into<String>, f: F) -> ThreadId
    where
        F: FnOnce(&SimCtx) + Send + 'static,
    {
        spawn_thread(&self.shared, name.into(), true, f)
    }

    /// Runs the simulation to completion.
    ///
    /// Returns the final virtual time.
    ///
    /// # Errors
    ///
    /// * [`SimError::Deadlock`] if non-daemon threads remain parked when no
    ///   events are left.
    /// * [`SimError::EventBudgetExhausted`] if the event budget runs out.
    ///
    /// # Panics
    ///
    /// Re-raises any panic from a simulated thread (so `assert!` inside
    /// simulated code fails the enclosing test).
    pub fn run(self) -> Result<SimTime, SimError> {
        let mut deadlocked: Vec<String> = Vec::new();
        let mut budget_hit = false;
        let mut panic_msg: Option<String> = None;

        loop {
            let next = {
                let mut st = self.shared.state.lock();
                if st.events_processed >= self.event_budget {
                    budget_hit = true;
                    None
                } else if let Some(policy) = st.policy.clone() {
                    pick_with_policy(&mut st, &policy)
                } else {
                    loop {
                        let Some(Reverse((key, tid, epoch))) = st.queue.pop() else {
                            break None;
                        };
                        if epoch != NORMAL_EVENT {
                            // Park-timeout event: only valid if the thread is
                            // still parked in the same park_until call. Stale
                            // timers are discarded *before* the clock/event
                            // counter update so runs that never time out are
                            // indistinguishable from runs without timers.
                            if !st.timer_valid(tid, epoch) {
                                continue;
                            }
                            if let Some(slot) = st.threads.get_mut(&tid) {
                                slot.timed_out = true;
                            }
                        }
                        st.accept(key.time, tid);
                        break Some((key.time, tid));
                    }
                }
            };
            let Some((time, tid)) = next else { break };

            // Fire the sampler for every window boundary the clock just
            // crossed, *before* the chosen thread runs: the event at
            // `time` belongs to the window starting at the boundary, so a
            // callback at boundary `b` sees exactly the state produced by
            // events strictly before `b`. The state lock is released here
            // — the callback may read shared simulation data freely.
            {
                let mut sampler = self.shared.sampler.lock();
                if let Some(s) = sampler.as_mut() {
                    while s.next_boundary <= time {
                        let boundary = s.next_boundary;
                        s.next_boundary = boundary + s.period;
                        (s.callback)(boundary);
                    }
                }
            }

            // Resume the thread and wait for it to yield back.
            {
                let mut st = self.shared.state.lock();
                let slot = st.threads.get_mut(&tid).expect("event for unknown thread");
                if slot.exited {
                    continue;
                }
                slot.park = ParkState::Running;
                // Thread may not be at its receiver yet only on the very
                // first resume; mpsc buffers the message either way.
                let _ = slot.resume_tx.send(Resume::Go);
            }
            match self.yield_rx.recv() {
                Ok((ytid, msg)) => {
                    debug_assert_eq!(ytid, tid, "yield from unexpected thread");
                    match msg {
                        YieldMsg::Scheduled | YieldMsg::Parked => {}
                        YieldMsg::Exited => {
                            let mut st = self.shared.state.lock();
                            if let Some(slot) = st.threads.get_mut(&tid) {
                                slot.exited = true;
                            }
                        }
                        YieldMsg::Panicked(msg) => {
                            let mut st = self.shared.state.lock();
                            if let Some(slot) = st.threads.get_mut(&tid) {
                                slot.exited = true;
                            }
                            panic_msg = Some(msg);
                            break;
                        }
                    }
                }
                Err(_) => break,
            }
        }

        // The queue is drained (or we aborted). Shut down every thread that
        // is still alive; collect non-daemon ones as deadlocked unless we
        // are aborting for another reason.
        let alive: Vec<ThreadId> = {
            let st = self.shared.state.lock();
            st.threads
                .iter()
                .filter(|(_, s)| !s.exited)
                .map(|(tid, _)| *tid)
                .collect()
        };
        for tid in alive {
            let (is_daemon, name) = {
                let mut st = self.shared.state.lock();
                let slot = match st.threads.get_mut(&tid) {
                    Some(s) if !s.exited => s,
                    _ => continue,
                };
                let info = (slot.daemon, slot.name.clone());
                let _ = slot.resume_tx.send(Resume::Shutdown);
                info
            };
            if !is_daemon && panic_msg.is_none() && !budget_hit {
                deadlocked.push(name);
            }
            // Wait for the Exited acknowledgment so joins cannot hang.
            loop {
                match self.yield_rx.recv() {
                    Ok((ytid, YieldMsg::Exited)) if ytid == tid => break,
                    Ok((ytid, YieldMsg::Panicked(m))) if ytid == tid => {
                        if panic_msg.is_none() {
                            panic_msg = Some(m);
                        }
                        break;
                    }
                    Ok(_) => continue,
                    Err(_) => break,
                }
            }
            let mut st = self.shared.state.lock();
            if let Some(slot) = st.threads.get_mut(&tid) {
                slot.exited = true;
            }
        }

        // Join all real threads.
        let joins: Vec<JoinHandle<()>> = {
            let mut st = self.shared.state.lock();
            st.threads
                .values_mut()
                .filter_map(|s| s.join.take())
                .collect()
        };
        for j in joins {
            let _ = j.join();
        }

        if let Some(msg) = panic_msg {
            panic!("simulated thread panicked: {msg}");
        }
        if budget_hit {
            return Err(SimError::EventBudgetExhausted {
                budget: self.event_budget,
            });
        }
        if !deadlocked.is_empty() {
            deadlocked.sort();
            return Err(SimError::Deadlock { parked: deadlocked });
        }
        let clock = self.shared.state.lock().clock;
        Ok(clock)
    }
}

fn spawn_thread<F>(shared: &Arc<Shared>, name: String, daemon: bool, f: F) -> ThreadId
where
    F: FnOnce(&SimCtx) + Send + 'static,
{
    let (resume_tx, resume_rx) = mpsc::channel();
    let mut st = shared.state.lock();
    let tid = ThreadId(st.next_tid);
    st.next_tid += 1;
    let yield_tx = st.yield_tx.clone();
    let ctx = SimCtx {
        tid,
        shared: Arc::clone(shared),
        resume_rx,
        yield_tx: yield_tx.clone(),
    };
    let tname = name.clone();
    let join = std::thread::Builder::new()
        .name(format!("{tname}#{}", tid.0))
        .stack_size(512 * 1024)
        .spawn(move || {
            // Wait for the first resume before touching anything.
            match ctx.resume_rx.recv() {
                Ok(Resume::Go) => {}
                Ok(Resume::Shutdown) | Err(_) => {
                    let _ = ctx.yield_tx.send((tid, YieldMsg::Exited));
                    return;
                }
            }
            let result = panic::catch_unwind(AssertUnwindSafe(|| f(&ctx)));
            let msg = match result {
                Ok(()) => YieldMsg::Exited,
                Err(payload) => {
                    if payload.downcast_ref::<ShutdownToken>().is_some() {
                        YieldMsg::Exited
                    } else if let Some(s) = payload.downcast_ref::<&str>() {
                        YieldMsg::Panicked((*s).to_string())
                    } else if let Some(s) = payload.downcast_ref::<String>() {
                        YieldMsg::Panicked(s.clone())
                    } else {
                        YieldMsg::Panicked("non-string panic payload".to_string())
                    }
                }
            };
            let _ = ctx.yield_tx.send((tid, msg));
        })
        .expect("failed to spawn simulated thread");
    st.threads.insert(
        tid,
        ThreadSlot {
            name,
            daemon,
            resume_tx,
            park: ParkState::Running,
            exited: false,
            park_epoch: 0,
            timed_out: false,
            join: Some(join),
        },
    );
    // First run at the current virtual instant.
    let now = st.clock;
    st.schedule(now, tid);
    tid
}

/// Handle through which a simulated thread interacts with virtual time and
/// other simulated threads. Each thread receives a `&SimCtx` for its whole
/// lifetime; the context is bound to that thread and is not `Sync`.
pub struct SimCtx {
    tid: ThreadId,
    shared: Arc<Shared>,
    resume_rx: mpsc::Receiver<Resume>,
    yield_tx: mpsc::Sender<(ThreadId, YieldMsg)>,
}

impl SimCtx {
    /// The identifier of this simulated thread.
    pub fn id(&self) -> ThreadId {
        self.tid
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.shared.state.lock().clock
    }

    /// Number of events the engine has processed so far (a monotone,
    /// deterministic activity measure).
    pub fn events_processed(&self) -> u64 {
        self.shared.state.lock().events_processed
    }

    /// Resolves an `n`-way nondeterministic value choice through the
    /// installed [`SchedulePolicy`] (`tag` names the choice site, e.g.
    /// `"fabric.recv"`). Returns `0` — the canonical deterministic pick —
    /// when no policy is installed or `n <= 1`. Never touches the
    /// schedule log or the event queue, so calling it is pure observation
    /// under the default policy.
    pub fn choose(&self, tag: &str, n: usize) -> usize {
        if n <= 1 {
            return 0;
        }
        let policy = self.shared.state.lock().policy.clone();
        match policy {
            Some(p) => p.choose_value(tag, n).min(n - 1),
            None => 0,
        }
    }

    /// `true` when a [`SchedulePolicy`] is installed (exploration mode).
    /// Lets hot paths skip building candidate sets for [`SimCtx::choose`]
    /// when nobody is listening.
    pub fn has_schedule_policy(&self) -> bool {
        self.shared.state.lock().policy.is_some()
    }

    /// Advances this thread's virtual time by `d`, letting other threads run
    /// in the meantime. `advance(ZERO)` yields the (virtual) CPU without
    /// moving the clock.
    pub fn advance(&self, d: SimDuration) {
        {
            let mut st = self.shared.state.lock();
            let at = st.clock + d;
            st.schedule(at, self.tid);
        }
        self.yield_and_wait(YieldMsg::Scheduled);
    }

    /// Advances this thread to the absolute instant `t` (no-op if `t` is in
    /// the past).
    pub fn sleep_until(&self, t: SimTime) {
        let now = self.now();
        self.advance(t.saturating_since(now));
    }

    /// Blocks this thread until another thread calls [`SimCtx::unpark`] with
    /// its id. If an unpark was already delivered since the last `park`,
    /// returns immediately (token semantics, like [`std::thread::park`]).
    pub fn park(&self) {
        {
            let mut st = self.shared.state.lock();
            let slot = st.threads.get_mut(&self.tid).expect("own slot missing");
            slot.park_epoch += 1; // invalidate timers from earlier park_untils
            match slot.park {
                ParkState::Notified => {
                    slot.park = ParkState::Running;
                    return;
                }
                ParkState::Running => slot.park = ParkState::Parked,
                ParkState::Parked | ParkState::ParkedScheduled => {
                    unreachable!("thread parked while already parked")
                }
            }
        }
        self.yield_and_wait(YieldMsg::Parked);
    }

    /// Like [`SimCtx::park`], but with a deadline: blocks until another
    /// thread calls [`SimCtx::unpark`] **or** virtual time reaches
    /// `deadline`, whichever comes first.
    ///
    /// Returns `true` if the deadline fired (timeout) and `false` if the
    /// thread was woken by an unpark. A pending unpark token makes it return
    /// `false` immediately, mirroring `park`'s token semantics. A deadline
    /// at or before the current instant still yields to the scheduler once
    /// before timing out.
    ///
    /// Timer events for parks that were resolved by an unpark are discarded
    /// without advancing the clock or the event counter, so code that never
    /// actually times out produces exactly the same schedule as code using
    /// plain `park`.
    pub fn park_until(&self, deadline: SimTime) -> bool {
        {
            let mut st = self.shared.state.lock();
            let slot = st.threads.get_mut(&self.tid).expect("own slot missing");
            slot.park_epoch += 1;
            slot.timed_out = false;
            match slot.park {
                ParkState::Notified => {
                    slot.park = ParkState::Running;
                    return false;
                }
                ParkState::Running => slot.park = ParkState::Parked,
                ParkState::Parked | ParkState::ParkedScheduled => {
                    unreachable!("thread parked while already parked")
                }
            }
            let epoch = slot.park_epoch;
            st.schedule_timer(deadline, self.tid, epoch);
        }
        self.yield_and_wait(YieldMsg::Parked);
        let mut st = self.shared.state.lock();
        let slot = st.threads.get_mut(&self.tid).expect("own slot missing");
        std::mem::take(&mut slot.timed_out)
    }

    /// Wakes the thread `target`. If it is parked, it resumes at the current
    /// virtual time; otherwise its next `park()` returns immediately.
    pub fn unpark(&self, target: ThreadId) {
        let mut st = self.shared.state.lock();
        let now = st.clock;
        let Some(slot) = st.threads.get_mut(&target) else {
            return;
        };
        if slot.exited {
            return;
        }
        match slot.park {
            ParkState::Running => slot.park = ParkState::Notified,
            ParkState::Notified | ParkState::ParkedScheduled => {}
            ParkState::Parked => {
                slot.park = ParkState::ParkedScheduled;
                st.schedule(now, target);
            }
        }
    }

    /// Spawns a new non-daemon simulated thread starting at the current
    /// virtual time.
    pub fn spawn<F>(&self, name: impl Into<String>, f: F) -> ThreadId
    where
        F: FnOnce(&SimCtx) + Send + 'static,
    {
        spawn_thread(&self.shared, name.into(), false, f)
    }

    /// Spawns a daemon (infrastructure) thread; see [`Engine::spawn_daemon`].
    pub fn spawn_daemon<F>(&self, name: impl Into<String>, f: F) -> ThreadId
    where
        F: FnOnce(&SimCtx) + Send + 'static,
    {
        spawn_thread(&self.shared, name.into(), true, f)
    }

    fn yield_and_wait(&self, msg: YieldMsg) {
        self.yield_tx
            .send((self.tid, msg))
            .expect("engine dropped yield channel");
        match self.resume_rx.recv() {
            Ok(Resume::Go) => {}
            Ok(Resume::Shutdown) | Err(_) => {
                panic::resume_unwind(Box::new(ShutdownToken));
            }
        }
    }
}

impl std::fmt::Debug for SimCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimCtx").field("tid", &self.tid).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc as StdArc;

    #[test]
    fn empty_engine_finishes_at_zero() {
        let engine = Engine::new();
        assert_eq!(engine.run().unwrap(), SimTime::ZERO);
    }

    #[test]
    fn single_thread_advances_clock() {
        let engine = Engine::new();
        engine.spawn("t", |ctx| {
            assert_eq!(ctx.now(), SimTime::ZERO);
            ctx.advance(SimDuration::from_micros(5));
            assert_eq!(ctx.now(), SimTime::from_nanos(5_000));
        });
        assert_eq!(engine.run().unwrap(), SimTime::from_nanos(5_000));
    }

    #[test]
    fn threads_interleave_in_time_order() {
        let engine = Engine::new();
        let log = StdArc::new(Mutex::new(Vec::new()));
        for (name, delay) in [("late", 30u64), ("early", 10), ("mid", 20)] {
            let log = StdArc::clone(&log);
            engine.spawn(name, move |ctx| {
                ctx.advance(SimDuration::from_nanos(delay));
                log.lock().push(name);
            });
        }
        engine.run().unwrap();
        assert_eq!(*log.lock(), vec!["early", "mid", "late"]);
    }

    #[test]
    fn same_time_events_run_in_schedule_order() {
        let engine = Engine::new();
        let log = StdArc::new(Mutex::new(Vec::new()));
        for i in 0..8 {
            let log = StdArc::clone(&log);
            engine.spawn(format!("t{i}"), move |ctx| {
                ctx.advance(SimDuration::from_nanos(7));
                log.lock().push(i);
            });
        }
        engine.run().unwrap();
        assert_eq!(*log.lock(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn park_unpark_roundtrip() {
        let engine = Engine::new();
        let waiter_tid = StdArc::new(Mutex::new(None));
        let order = StdArc::new(Mutex::new(Vec::new()));
        {
            let waiter_tid = StdArc::clone(&waiter_tid);
            let order = StdArc::clone(&order);
            let tid_holder = StdArc::clone(&waiter_tid);
            engine.spawn("waiter", move |ctx| {
                *tid_holder.lock() = Some(ctx.id());
                order.lock().push("waiting");
                ctx.park();
                order.lock().push("woken");
            });
        }
        {
            let waiter_tid = StdArc::clone(&waiter_tid);
            let order = StdArc::clone(&order);
            engine.spawn("waker", move |ctx| {
                ctx.advance(SimDuration::from_micros(1));
                order.lock().push("waking");
                let tid = waiter_tid.lock().unwrap();
                ctx.unpark(tid);
            });
        }
        engine.run().unwrap();
        assert_eq!(*order.lock(), vec!["waiting", "waking", "woken"]);
    }

    #[test]
    fn unpark_before_park_is_not_lost() {
        let engine = Engine::new();
        engine.spawn("self-notify", |ctx| {
            // Unpark self while running: next park returns immediately.
            ctx.unpark(ctx.id());
            ctx.park();
            // A second park would block forever, proving the token was
            // consumed; we don't test that here (it would deadlock).
        });
        engine.run().unwrap();
    }

    #[test]
    fn deadlock_is_reported_with_thread_name() {
        let engine = Engine::new();
        engine.spawn("stuck-thread", |ctx| {
            ctx.park();
        });
        match engine.run() {
            Err(SimError::Deadlock { parked }) => {
                assert_eq!(parked, vec!["stuck-thread".to_string()])
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn daemon_threads_do_not_deadlock() {
        let engine = Engine::new();
        let ran = StdArc::new(AtomicU64::new(0));
        {
            let ran = StdArc::clone(&ran);
            engine.spawn_daemon("handler-loop", move |ctx| {
                ran.fetch_add(1, Ordering::Relaxed);
                loop {
                    ctx.park(); // shut down by the engine at drain
                }
            });
        }
        engine.spawn("work", |ctx| ctx.advance(SimDuration::from_micros(2)));
        let end = engine.run().unwrap();
        assert_eq!(end, SimTime::from_nanos(2_000));
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn spawn_from_sim_thread_starts_at_now() {
        let engine = Engine::new();
        let seen = StdArc::new(Mutex::new(Vec::new()));
        {
            let seen = StdArc::clone(&seen);
            engine.spawn("parent", move |ctx| {
                ctx.advance(SimDuration::from_micros(3));
                let seen2 = StdArc::clone(&seen);
                ctx.spawn("child", move |ctx| {
                    seen2.lock().push(ctx.now());
                });
                ctx.advance(SimDuration::from_micros(1));
                seen.lock().push(ctx.now());
            });
        }
        engine.run().unwrap();
        assert_eq!(
            *seen.lock(),
            vec![SimTime::from_nanos(3_000), SimTime::from_nanos(4_000)]
        );
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn panic_in_sim_thread_propagates() {
        let engine = Engine::new();
        engine.spawn("bomber", |_ctx| panic!("boom"));
        let _ = engine.run();
    }

    #[test]
    fn event_budget_detects_livelock() {
        let engine = Engine::with_event_budget(100);
        engine.spawn("spinner", |ctx| loop {
            ctx.advance(SimDuration::ZERO);
        });
        match engine.run() {
            Err(SimError::EventBudgetExhausted { budget }) => assert_eq!(budget, 100),
            other => panic!("expected budget exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn determinism_same_run_same_trace() {
        fn run_once() -> Vec<(u64, u64)> {
            let engine = Engine::new();
            let log = StdArc::new(Mutex::new(Vec::new()));
            for i in 0..10u64 {
                let log = StdArc::clone(&log);
                engine.spawn(format!("t{i}"), move |ctx| {
                    for k in 0..5 {
                        ctx.advance(SimDuration::from_nanos((i * 7 + k * 13) % 29 + 1));
                        log.lock().push((i, ctx.now().as_nanos()));
                    }
                });
            }
            engine.run().unwrap();
            let v = log.lock().clone();
            v
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn schedule_recording_is_pure_observation() {
        fn run_once(record: bool) -> (SimTime, Option<String>) {
            let engine = Engine::new();
            let log = record.then(|| engine.record_schedule("unit"));
            for i in 0..4u64 {
                engine.spawn(format!("t{i}"), move |ctx| {
                    for k in 0..3 {
                        ctx.advance(SimDuration::from_nanos((i * 11 + k * 5) % 17 + 1));
                    }
                });
            }
            let end = engine.run().unwrap();
            (end, log.map(|l| l.lock().to_text()))
        }
        let (plain_end, none) = run_once(false);
        let (rec_end, text_a) = run_once(true);
        let (_, text_b) = run_once(true);
        assert!(none.is_none());
        assert_eq!(plain_end, rec_end, "recording must not change the run");
        let text_a = text_a.unwrap();
        assert_eq!(text_a, text_b.unwrap(), "recorded runs are reproducible");
        let log = ScheduleLog::parse(&text_a).unwrap();
        assert!(!log.is_empty());
        assert!(log.steps()[0].label.starts_with("t="));
    }

    fn policy_workload(engine: &Engine) {
        // A mix of same-time spawns (t=0 ties), park/unpark, and a
        // park_until whose timer goes stale — every choice-point class.
        let waiter_tid = StdArc::new(Mutex::new(None));
        {
            let waiter_tid = StdArc::clone(&waiter_tid);
            engine.spawn("waiter", move |ctx| {
                *waiter_tid.lock() = Some(ctx.id());
                let timed_out = ctx.park_until(SimTime::from_nanos(90_000));
                assert!(!timed_out);
                ctx.advance(SimDuration::from_nanos(3));
            });
        }
        {
            let waiter_tid = StdArc::clone(&waiter_tid);
            engine.spawn("waker", move |ctx| {
                ctx.advance(SimDuration::from_micros(1));
                let tid = waiter_tid.lock().unwrap();
                ctx.unpark(tid);
            });
        }
        for i in 0..3u64 {
            engine.spawn(format!("t{i}"), move |ctx| {
                for k in 0..4 {
                    ctx.advance(SimDuration::from_nanos((i * 5 + k * 3) % 11 + 1));
                }
            });
        }
    }

    #[test]
    fn default_policy_is_byte_identical_to_no_policy() {
        fn run_once(install: bool) -> (SimTime, String) {
            let engine = Engine::new();
            let log = engine.record_schedule("policy-identity");
            if install {
                engine.set_schedule_policy(SchedulePolicyHandle::new(DefaultSchedulePolicy));
            }
            policy_workload(&engine);
            let end = engine.run().unwrap();
            let text = log.lock().to_text();
            (end, text)
        }
        let (plain_end, plain_text) = run_once(false);
        let (policy_end, policy_text) = run_once(true);
        assert_eq!(plain_end, policy_end);
        assert_eq!(plain_text, policy_text, "default policy must not perturb");
        assert!(!plain_text.is_empty());
    }

    #[test]
    fn policy_can_flip_same_time_ties() {
        struct LastPick;
        impl SchedulePolicy for LastPick {
            fn choose_event(&mut self, _now: SimTime, candidates: &[ScheduleChoice]) -> usize {
                candidates.len() - 1
            }
        }
        fn run_once(flip: bool) -> Vec<&'static str> {
            let engine = Engine::new();
            if flip {
                engine.set_schedule_policy(SchedulePolicyHandle::new(LastPick));
            }
            let order = StdArc::new(Mutex::new(Vec::new()));
            for name in ["a", "b", "c"] {
                let order = StdArc::clone(&order);
                // No advance: the t=0 spawn tie alone decides the order.
                engine.spawn(name, move |_ctx| {
                    order.lock().push(name);
                });
            }
            engine.run().unwrap();
            let v = order.lock().clone();
            v
        }
        assert_eq!(run_once(false), vec!["a", "b", "c"]);
        assert_eq!(run_once(true), vec!["c", "b", "a"]);
    }

    #[test]
    fn policy_sees_candidate_names_and_timer_flags() {
        struct Spy(StdArc<Mutex<Vec<(String, bool)>>>);
        impl SchedulePolicy for Spy {
            fn choose_event(&mut self, _now: SimTime, candidates: &[ScheduleChoice]) -> usize {
                if candidates.len() > 1 {
                    self.0
                        .lock()
                        .extend(candidates.iter().map(|c| (c.name.clone(), c.is_timer)));
                }
                0
            }
        }
        let engine = Engine::new();
        let seen = StdArc::new(Mutex::new(Vec::new()));
        engine.set_schedule_policy(SchedulePolicyHandle::new(Spy(StdArc::clone(&seen))));
        engine.spawn("left", |ctx| ctx.advance(SimDuration::from_nanos(1)));
        engine.spawn("right", |ctx| ctx.advance(SimDuration::from_nanos(2)));
        engine.run().unwrap();
        let seen = seen.lock();
        // The t=0 spawn tie exposes both threads as non-timer candidates.
        assert!(seen.contains(&("left".to_string(), false)), "{seen:?}");
        assert!(seen.contains(&("right".to_string(), false)), "{seen:?}");
    }

    #[test]
    fn choose_routes_through_policy_and_defaults_to_zero() {
        struct PickOne;
        impl SchedulePolicy for PickOne {
            fn choose_value(&mut self, tag: &str, n: usize) -> usize {
                assert_eq!(tag, "test.choice");
                assert_eq!(n, 3);
                1
            }
        }
        let engine = Engine::new();
        let picks = StdArc::new(Mutex::new(Vec::new()));
        {
            let picks = StdArc::clone(&picks);
            engine.spawn("chooser", move |ctx| {
                picks.lock().push(ctx.choose("test.choice", 3));
                picks.lock().push(ctx.choose("test.choice", 1)); // n<=1: no policy call
            });
        }
        engine.set_schedule_policy(SchedulePolicyHandle::new(PickOne));
        engine.run().unwrap();
        assert_eq!(*picks.lock(), vec![1, 0]);

        let engine = Engine::new();
        let got = StdArc::new(Mutex::new(None));
        {
            let got = StdArc::clone(&got);
            engine.spawn("no-policy", move |ctx| {
                assert!(!ctx.has_schedule_policy());
                *got.lock() = Some(ctx.choose("test.choice", 5));
            });
        }
        engine.run().unwrap();
        assert_eq!(*got.lock(), Some(0));
    }

    #[test]
    fn sampler_fires_at_boundaries_and_sees_prefix_state() {
        // Thread bumps a counter at t = 4, 8, 12, 16, 20 µs. With a 10µs
        // window, boundary 10µs must see the bumps strictly before it
        // (two), and boundary 20µs must NOT see the bump at exactly 20µs
        // (half-open windows: the boundary event is in the next window).
        let engine = Engine::new();
        let counter = StdArc::new(AtomicU64::new(0));
        let samples = StdArc::new(Mutex::new(Vec::new()));
        {
            let counter = StdArc::clone(&counter);
            let samples = StdArc::clone(&samples);
            engine.set_sampler(SimDuration::from_micros(10), move |boundary| {
                samples
                    .lock()
                    .push((boundary.as_nanos(), counter.load(Ordering::Relaxed)));
            });
        }
        {
            let counter = StdArc::clone(&counter);
            engine.spawn("worker", move |ctx| {
                for _ in 0..5 {
                    ctx.advance(SimDuration::from_micros(4));
                    counter.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        engine.run().unwrap();
        assert_eq!(*samples.lock(), vec![(10_000, 2), (20_000, 4)]);
    }

    #[test]
    fn sampler_catches_up_over_idle_gaps() {
        // One event far past several boundaries: every skipped boundary
        // fires, in order, before the event's thread resumes.
        let engine = Engine::new();
        let samples = StdArc::new(Mutex::new(Vec::new()));
        {
            let samples = StdArc::clone(&samples);
            engine.set_sampler(SimDuration::from_micros(1), move |boundary| {
                samples.lock().push(boundary.as_nanos());
            });
        }
        engine.spawn("jumper", |ctx| ctx.advance(SimDuration::from_micros(3)));
        engine.run().unwrap();
        // t=0 spawn event fires no boundary; the jump to 3µs fires 1, 2, 3.
        assert_eq!(*samples.lock(), vec![1_000, 2_000, 3_000]);
    }

    #[test]
    fn sampler_is_schedule_invisible() {
        fn run_once(sample: bool) -> (SimTime, String) {
            let engine = Engine::new();
            let log = engine.record_schedule("sampler-identity");
            if sample {
                engine.set_sampler(SimDuration::from_nanos(7), |_| {});
            }
            policy_workload(&engine);
            let end = engine.run().unwrap();
            let text = log.lock().to_text();
            (end, text)
        }
        let (plain_end, plain_text) = run_once(false);
        let (sampled_end, sampled_text) = run_once(true);
        assert_eq!(plain_end, sampled_end);
        assert_eq!(
            plain_text, sampled_text,
            "an installed sampler must not perturb the schedule"
        );
        assert!(!plain_text.is_empty());
    }

    #[test]
    #[should_panic(expected = "sampler period must be positive")]
    fn zero_period_sampler_is_rejected() {
        let engine = Engine::new();
        engine.set_sampler(SimDuration::ZERO, |_| {});
    }

    #[test]
    fn park_until_times_out_at_deadline() {
        let engine = Engine::new();
        engine.spawn("sleeper", |ctx| {
            let timed_out = ctx.park_until(SimTime::from_nanos(5_000));
            assert!(timed_out);
            assert_eq!(ctx.now(), SimTime::from_nanos(5_000));
        });
        assert_eq!(engine.run().unwrap(), SimTime::from_nanos(5_000));
    }

    #[test]
    fn park_until_woken_early_returns_false_and_discards_timer() {
        let engine = Engine::new();
        let waiter_tid = StdArc::new(Mutex::new(None));
        {
            let waiter_tid = StdArc::clone(&waiter_tid);
            engine.spawn("waiter", move |ctx| {
                *waiter_tid.lock() = Some(ctx.id());
                let timed_out = ctx.park_until(SimTime::from_nanos(100_000));
                assert!(!timed_out);
                assert_eq!(ctx.now(), SimTime::from_nanos(1_000));
            });
        }
        {
            let waiter_tid = StdArc::clone(&waiter_tid);
            engine.spawn("waker", move |ctx| {
                ctx.advance(SimDuration::from_micros(1));
                let tid = waiter_tid.lock().unwrap();
                ctx.unpark(tid);
            });
        }
        // The stale timer must not drag the final clock out to 100µs.
        assert_eq!(engine.run().unwrap(), SimTime::from_nanos(1_000));
    }

    #[test]
    fn park_until_consumes_pending_unpark_token() {
        let engine = Engine::new();
        engine.spawn("self-notify", |ctx| {
            ctx.unpark(ctx.id());
            let timed_out = ctx.park_until(SimTime::from_nanos(50_000));
            assert!(!timed_out);
            assert_eq!(ctx.now(), SimTime::ZERO);
        });
        assert_eq!(engine.run().unwrap(), SimTime::ZERO);
    }

    #[test]
    fn park_after_timed_out_park_until_still_works() {
        let engine = Engine::new();
        let waiter_tid = StdArc::new(Mutex::new(None));
        let order = StdArc::new(Mutex::new(Vec::new()));
        {
            let waiter_tid = StdArc::clone(&waiter_tid);
            let order = StdArc::clone(&order);
            engine.spawn("waiter", move |ctx| {
                *waiter_tid.lock() = Some(ctx.id());
                assert!(ctx.park_until(SimTime::from_nanos(1_000)));
                order.lock().push("timed-out");
                ctx.park();
                order.lock().push("woken");
            });
        }
        {
            let waiter_tid = StdArc::clone(&waiter_tid);
            let order = StdArc::clone(&order);
            engine.spawn("waker", move |ctx| {
                ctx.advance(SimDuration::from_micros(2));
                order.lock().push("waking");
                let tid = waiter_tid.lock().unwrap();
                ctx.unpark(tid);
            });
        }
        engine.run().unwrap();
        assert_eq!(*order.lock(), vec!["timed-out", "waking", "woken"]);
    }

    #[test]
    fn park_until_past_deadline_fires_at_now() {
        let engine = Engine::new();
        engine.spawn("t", |ctx| {
            ctx.advance(SimDuration::from_micros(10));
            // Deadline in the past: clamped to now, still a clean timeout.
            assert!(ctx.park_until(SimTime::from_nanos(1)));
            assert_eq!(ctx.now(), SimTime::from_nanos(10_000));
        });
        engine.run().unwrap();
    }

    #[test]
    fn sleep_until_past_is_noop() {
        let engine = Engine::new();
        engine.spawn("t", |ctx| {
            ctx.advance(SimDuration::from_micros(10));
            ctx.sleep_until(SimTime::from_nanos(1)); // in the past
            assert_eq!(ctx.now(), SimTime::from_nanos(10_000));
            ctx.sleep_until(SimTime::from_nanos(20_000));
            assert_eq!(ctx.now(), SimTime::from_nanos(20_000));
        });
        engine.run().unwrap();
    }
}
