//! # dex-sim — deterministic discrete-event simulation kernel
//!
//! This crate is the foundation of the DEX reproduction: a discrete-event
//! simulator whose "threads" are real OS threads cooperatively scheduled
//! one at a time under a strict handshake, giving bit-for-bit reproducible
//! runs in *virtual* time.
//!
//! The pieces:
//!
//! * [`Engine`] / [`SimCtx`] — the driver loop and the per-thread handle
//!   (spawn, advance virtual time, park/unpark).
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution virtual time.
//! * [`SimChannel`] — deterministic FIFO channels with virtual-time
//!   blocking and optional backpressure.
//! * [`Resource`] / [`MultiResource`] — FIFO queueing models for links,
//!   memory bandwidth, and CPU cores.
//! * [`SimRng`] — a self-contained deterministic PRNG for workloads.
//! * [`FaultPlan`] — seeded, replayable schedules of link faults and
//!   node crashes for fault-injection runs.
//! * [`SchedulePolicy`] — pluggable resolution of same-instant scheduling
//!   ties and value choices, the hook systematic concurrency testing
//!   (`dex-check explore`) drives alternative interleavings through.
//! * [`Histogram`] / [`Counters`] — measurement collection.
//!
//! # Examples
//!
//! A two-thread producer/consumer in virtual time:
//!
//! ```
//! use dex_sim::{Engine, SimChannel, SimDuration};
//!
//! let engine = Engine::new();
//! let chan = SimChannel::unbounded();
//! let tx = chan.clone();
//! engine.spawn("producer", move |ctx| {
//!     for i in 0..3 {
//!         ctx.advance(SimDuration::from_micros(10));
//!         tx.send(ctx, i).unwrap();
//!     }
//! });
//! engine.spawn("consumer", move |ctx| {
//!     for expect in 0..3 {
//!         assert_eq!(chan.recv(ctx), Some(expect));
//!     }
//! });
//! let end = engine.run().expect("no deadlock");
//! assert_eq!(end.as_nanos(), 30_000);
//! ```

#![warn(missing_docs)]

mod channel;
mod engine;
mod fault;
mod replay;
mod resource;
mod rng;
mod stats;
mod time;

pub use channel::{SendError, SimChannel};
pub use engine::{
    DefaultSchedulePolicy, Engine, ScheduleChoice, SchedulePolicy, SchedulePolicyHandle,
    ShutdownToken, SimCtx, SimError, ThreadId,
};
pub use fault::{FaultPlan, LinkFault, LinkFaultKind, NodeCrash};
pub use replay::{ReplayCursor, ScheduleLog, ScheduleStep};
pub use resource::{MultiResource, Resource};
pub use rng::SimRng;
pub use stats::{Counters, Histogram};
pub use time::{SimDuration, SimTime};
