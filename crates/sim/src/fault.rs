//! Deterministic fault injection plans.
//!
//! A [`FaultPlan`] is a *seeded, replayable* schedule of faults applied to a
//! simulated fabric: per-link delay spikes, message stalls, and
//! node-crash-at-time-T events. The plan is pure data — the network layer
//! consults it from its send/recv hooks — so the same plan always produces
//! the same run, and an **empty plan is exactly equivalent to no plan**
//! (every query short-circuits, no timers are created, the schedule is
//! bit-identical).
//!
//! Plans round-trip through a line-oriented text format (header `# faultplan
//! ...`) so `dex-check` can persist a scenario's plan and `dex-check replay`
//! can re-execute it:
//!
//! ```text
//! # faultplan seed=42 nodes=3
//! delay 0 1 10000 50000 7000
//! stall 1 0 20000 90000
//! crash 2 400000
//! ```
//!
//! Node indices are raw `u16`s here; the network layer maps them onto its
//! own node-id type.

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// What a link fault does to messages sent inside its window.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LinkFaultKind {
    /// Every message sent in the window is delivered late by the given
    /// extra delay (a congestion spike on the link).
    Delay(SimDuration),
    /// Every message sent in the window is held until the window closes
    /// (a stalled link that drains when it recovers).
    Stall,
}

/// A fault on one directed link, active for messages *sent* in
/// `[from, until)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LinkFault {
    /// Source node of the affected link.
    pub src: u16,
    /// Destination node of the affected link.
    pub dst: u16,
    /// First instant (inclusive) at which sends are affected.
    pub from: SimTime,
    /// First instant (exclusive) at which sends are no longer affected.
    pub until: SimTime,
    /// What happens to affected messages.
    pub kind: LinkFaultKind,
}

/// A node that fails permanently (fail-stop) at a given instant.
///
/// From `at` onward the node neither sends nor receives: messages it emits
/// are dropped at the source, and messages addressed to it are dropped at
/// delivery.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NodeCrash {
    /// The crashing node.
    pub node: u16,
    /// The instant it fail-stops.
    pub at: SimTime,
}

/// A deterministic, replayable schedule of fabric faults.
///
/// # Examples
///
/// ```
/// use dex_sim::{FaultPlan, SimDuration, SimTime};
///
/// let mut plan = FaultPlan::new();
/// plan.delay(
///     0,
///     1,
///     SimTime::from_nanos(10_000),
///     SimTime::from_nanos(50_000),
///     SimDuration::from_micros(7),
/// );
/// plan.crash(2, SimTime::from_nanos(400_000));
///
/// // A message sent on link 0→1 inside the window is delayed by 7µs.
/// let d = plan.extra_delay(0, 1, SimTime::from_nanos(20_000));
/// assert_eq!(d, SimDuration::from_micros(7));
/// assert!(plan.crashed(2, SimTime::from_nanos(400_000)));
/// assert!(!plan.crashed(2, SimTime::from_nanos(399_999)));
///
/// // Plans round-trip through text for replay.
/// let back = FaultPlan::parse(&plan.to_text()).unwrap();
/// assert_eq!(back, plan);
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct FaultPlan {
    link_faults: Vec<LinkFault>,
    crashes: Vec<NodeCrash>,
    header: String,
}

impl FaultPlan {
    /// Creates an empty plan (equivalent to running without faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Generates a small random-but-reproducible plan from a seed: a couple
    /// of delay spikes, one stalled link, and (when `with_crash` is set) one
    /// non-origin node crash, all within `[0, horizon)`. Node 0 is treated
    /// as the origin and never crashes.
    pub fn generate(seed: u64, nodes: u16, horizon: SimTime, with_crash: bool) -> Self {
        assert!(nodes >= 2, "a fault plan needs at least two nodes");
        let mut rng = SimRng::new(seed ^ 0xfau64.wrapping_shl(56));
        let mut plan = FaultPlan::new();
        plan.header = format!("seed={seed} nodes={nodes}");
        let span = horizon.as_nanos().max(4);
        let pick_link = |rng: &mut SimRng| {
            let src = rng.gen_range(0..nodes as u64) as u16;
            let mut dst = rng.gen_range(0..nodes as u64) as u16;
            if dst == src {
                dst = (dst + 1) % nodes;
            }
            (src, dst)
        };
        for _ in 0..2 {
            let (src, dst) = pick_link(&mut rng);
            let from = SimTime::from_nanos(rng.gen_range(0..span / 2));
            let len = 1 + rng.gen_range(0..span / 4);
            let extra = SimDuration::from_nanos(1_000 + rng.gen_range(0..20_000));
            plan.delay(src, dst, from, from + SimDuration::from_nanos(len), extra);
        }
        {
            let (src, dst) = pick_link(&mut rng);
            let from = SimTime::from_nanos(rng.gen_range(0..span / 2));
            let len = 1 + rng.gen_range(0..span / 4);
            plan.stall(src, dst, from, from + SimDuration::from_nanos(len));
        }
        if with_crash && nodes > 1 {
            let node = 1 + rng.gen_range(0..nodes as u64 - 1) as u16;
            let at = SimTime::from_nanos(span / 4 + rng.gen_range(0..span / 2));
            plan.crash(node, at);
        }
        plan
    }

    /// Adds a delay spike on the directed link `src → dst` for messages
    /// sent in `[from, until)`.
    pub fn delay(&mut self, src: u16, dst: u16, from: SimTime, until: SimTime, extra: SimDuration) {
        self.link_faults.push(LinkFault {
            src,
            dst,
            from,
            until,
            kind: LinkFaultKind::Delay(extra),
        });
    }

    /// Adds a stall on the directed link `src → dst`: messages sent in
    /// `[from, until)` are held until `until`.
    pub fn stall(&mut self, src: u16, dst: u16, from: SimTime, until: SimTime) {
        self.link_faults.push(LinkFault {
            src,
            dst,
            from,
            until,
            kind: LinkFaultKind::Stall,
        });
    }

    /// Schedules a fail-stop crash of `node` at `at`.
    pub fn crash(&mut self, node: u16, at: SimTime) {
        self.crashes.push(NodeCrash { node, at });
    }

    /// Returns `true` when the plan contains no faults at all. The fault
    /// layer disables itself entirely for empty plans so that runs stay
    /// bit-identical to runs without a plan.
    pub fn is_empty(&self) -> bool {
        self.link_faults.is_empty() && self.crashes.is_empty()
    }

    /// The link faults in insertion order.
    pub fn link_faults(&self) -> &[LinkFault] {
        &self.link_faults
    }

    /// The scheduled crashes in insertion order.
    pub fn crashes(&self) -> &[NodeCrash] {
        &self.crashes
    }

    /// Total extra delivery delay for a message sent on `src → dst` at
    /// `sent_at`. Stalls contribute the time remaining until the window
    /// closes; overlapping faults stack.
    pub fn extra_delay(&self, src: u16, dst: u16, sent_at: SimTime) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for f in &self.link_faults {
            if f.src == src && f.dst == dst && sent_at >= f.from && sent_at < f.until {
                total += match f.kind {
                    LinkFaultKind::Delay(extra) => extra,
                    LinkFaultKind::Stall => f.until.saturating_since(sent_at),
                };
            }
        }
        total
    }

    /// The instant `node` fail-stops, if the plan crashes it.
    pub fn crash_time(&self, node: u16) -> Option<SimTime> {
        self.crashes
            .iter()
            .filter(|c| c.node == node)
            .map(|c| c.at)
            .min()
    }

    /// Whether `node` has fail-stopped at or before `at`.
    pub fn crashed(&self, node: u16, at: SimTime) -> bool {
        self.crash_time(node).is_some_and(|t| at >= t)
    }

    /// Serializes to the `# faultplan` text format (see module docs).
    pub fn to_text(&self) -> String {
        let mut out = String::from("# faultplan");
        if !self.header.is_empty() {
            out.push(' ');
            out.push_str(&self.header.replace('\n', " "));
        }
        out.push('\n');
        for f in &self.link_faults {
            match f.kind {
                LinkFaultKind::Delay(extra) => out.push_str(&format!(
                    "delay {} {} {} {} {}\n",
                    f.src,
                    f.dst,
                    f.from.as_nanos(),
                    f.until.as_nanos(),
                    extra.as_nanos()
                )),
                LinkFaultKind::Stall => out.push_str(&format!(
                    "stall {} {} {} {}\n",
                    f.src,
                    f.dst,
                    f.from.as_nanos(),
                    f.until.as_nanos()
                )),
            }
        }
        for c in &self.crashes {
            out.push_str(&format!("crash {} {}\n", c.node, c.at.as_nanos()));
        }
        out
    }

    /// Returns `true` when `text` looks like a fault-plan file (starts with
    /// a `# faultplan` header).
    pub fn looks_like_plan(text: &str) -> bool {
        text.trim_start().starts_with("# faultplan")
    }

    /// Parses the text format produced by [`FaultPlan::to_text`].
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::new();
        let mut saw_magic = false;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('#') {
                let rest = rest.trim();
                if let Some(hdr) = rest.strip_prefix("faultplan") {
                    saw_magic = true;
                    let hdr = hdr.trim();
                    if !hdr.is_empty() {
                        if !plan.header.is_empty() {
                            plan.header.push(' ');
                        }
                        plan.header.push_str(hdr);
                    }
                }
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            let want = |n: usize| -> Result<(), String> {
                if fields.len() != n {
                    Err(format!(
                        "line {}: expected {} fields, got {}",
                        lineno + 1,
                        n,
                        fields.len()
                    ))
                } else {
                    Ok(())
                }
            };
            let num = |idx: usize| -> Result<u64, String> {
                fields[idx]
                    .parse()
                    .map_err(|e| format!("line {}: bad number {:?}: {e}", lineno + 1, fields[idx]))
            };
            match fields[0] {
                "delay" => {
                    want(6)?;
                    plan.delay(
                        num(1)? as u16,
                        num(2)? as u16,
                        SimTime::from_nanos(num(3)?),
                        SimTime::from_nanos(num(4)?),
                        SimDuration::from_nanos(num(5)?),
                    );
                }
                "stall" => {
                    want(5)?;
                    plan.stall(
                        num(1)? as u16,
                        num(2)? as u16,
                        SimTime::from_nanos(num(3)?),
                        SimTime::from_nanos(num(4)?),
                    );
                }
                "crash" => {
                    want(3)?;
                    plan.crash(num(1)? as u16, SimTime::from_nanos(num(2)?));
                }
                other => {
                    return Err(format!("line {}: unknown directive {other:?}", lineno + 1));
                }
            }
        }
        if !saw_magic {
            return Err("missing '# faultplan' header".to_string());
        }
        Ok(plan)
    }

    /// The free-form header carried in the text format (e.g. `seed=42`).
    pub fn header(&self) -> &str {
        &self.header
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_answers_no_to_everything() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert_eq!(
            plan.extra_delay(0, 1, SimTime::from_nanos(5)),
            SimDuration::ZERO
        );
        assert!(!plan.crashed(0, SimTime::from_nanos(u64::MAX / 2)));
        assert_eq!(plan.crash_time(3), None);
    }

    #[test]
    fn delay_applies_only_inside_window_and_link() {
        let mut plan = FaultPlan::new();
        plan.delay(
            1,
            2,
            SimTime::from_nanos(100),
            SimTime::from_nanos(200),
            SimDuration::from_nanos(40),
        );
        let d = |src, dst, at| plan.extra_delay(src, dst, SimTime::from_nanos(at));
        assert_eq!(d(1, 2, 150), SimDuration::from_nanos(40));
        assert_eq!(d(1, 2, 100), SimDuration::from_nanos(40), "inclusive start");
        assert_eq!(d(1, 2, 200), SimDuration::ZERO, "exclusive end");
        assert_eq!(d(1, 2, 99), SimDuration::ZERO);
        assert_eq!(d(2, 1, 150), SimDuration::ZERO, "reverse link unaffected");
    }

    #[test]
    fn stall_holds_messages_until_window_end() {
        let mut plan = FaultPlan::new();
        plan.stall(0, 1, SimTime::from_nanos(100), SimTime::from_nanos(500));
        assert_eq!(
            plan.extra_delay(0, 1, SimTime::from_nanos(120)),
            SimDuration::from_nanos(380)
        );
        assert_eq!(
            plan.extra_delay(0, 1, SimTime::from_nanos(499)),
            SimDuration::from_nanos(1)
        );
    }

    #[test]
    fn overlapping_faults_stack() {
        let mut plan = FaultPlan::new();
        plan.delay(
            0,
            1,
            SimTime::ZERO,
            SimTime::from_nanos(1_000),
            SimDuration::from_nanos(10),
        );
        plan.delay(
            0,
            1,
            SimTime::ZERO,
            SimTime::from_nanos(1_000),
            SimDuration::from_nanos(5),
        );
        assert_eq!(
            plan.extra_delay(0, 1, SimTime::from_nanos(1)),
            SimDuration::from_nanos(15)
        );
    }

    #[test]
    fn crash_is_permanent_from_its_instant() {
        let mut plan = FaultPlan::new();
        plan.crash(2, SimTime::from_nanos(1_000));
        assert!(!plan.crashed(2, SimTime::from_nanos(999)));
        assert!(plan.crashed(2, SimTime::from_nanos(1_000)));
        assert!(plan.crashed(2, SimTime::from_nanos(u64::MAX / 2)));
        assert!(!plan.crashed(1, SimTime::from_nanos(u64::MAX / 2)));
    }

    #[test]
    fn text_round_trip_preserves_plan() {
        let mut plan = FaultPlan::new();
        plan.delay(
            0,
            1,
            SimTime::from_nanos(10),
            SimTime::from_nanos(20),
            SimDuration::from_nanos(3),
        );
        plan.stall(1, 0, SimTime::from_nanos(5), SimTime::from_nanos(50));
        plan.crash(2, SimTime::from_nanos(99));
        let back = FaultPlan::parse(&plan.to_text()).unwrap();
        assert_eq!(back, plan);
        assert!(FaultPlan::looks_like_plan(&plan.to_text()));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("delay 0 1 2 3 4\n").is_err(), "no header");
        assert!(FaultPlan::parse("# faultplan\nwarp 0 1\n").is_err());
        assert!(FaultPlan::parse("# faultplan\ndelay 0 1 2\n").is_err());
        assert!(FaultPlan::parse("# faultplan\ncrash x 5\n").is_err());
    }

    #[test]
    fn generate_is_deterministic_and_respects_origin() {
        let horizon = SimTime::from_nanos(1_000_000);
        let a = FaultPlan::generate(42, 4, horizon, true);
        let b = FaultPlan::generate(42, 4, horizon, true);
        assert_eq!(a, b);
        let c = FaultPlan::generate(43, 4, horizon, true);
        assert_ne!(a, c, "different seeds should differ");
        assert!(!a.is_empty());
        for crash in a.crashes() {
            assert_ne!(crash.node, 0, "origin must never crash");
        }
        for f in a.link_faults() {
            assert_ne!(f.src, f.dst, "no self-link faults");
            assert!(f.until > f.from);
        }
        // Generated plans replay through the text format too.
        assert_eq!(FaultPlan::parse(&a.to_text()).unwrap(), a);
    }
}
