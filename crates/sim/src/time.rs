//! Virtual time for the discrete-event simulation.
//!
//! All simulated latencies and timestamps are expressed in nanoseconds of
//! *virtual* time. [`SimTime`] is an absolute instant on the simulation
//! clock; [`SimDuration`] is a span between two instants. Both are thin
//! newtypes over `u64` so they are free to copy and order, while keeping
//! instants and spans statically distinct (you cannot add two instants).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the virtual simulation clock, in nanoseconds
/// since the start of the simulation.
///
/// # Examples
///
/// ```
/// use dex_sim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_micros(3);
/// assert_eq!(t.as_nanos(), 3_000);
/// assert_eq!(t - SimTime::ZERO, SimDuration::from_nanos(3_000));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use dex_sim::SimDuration;
///
/// let d = SimDuration::from_micros(2) + SimDuration::from_nanos(500);
/// assert_eq!(d.as_nanos(), 2_500);
/// assert_eq!(d * 4, SimDuration::from_micros(10));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// The latest representable instant; used as an "infinitely far" bound.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Returns the number of nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns this instant as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns this instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Returns the span from `earlier` to `self`, saturating to zero if
    /// `earlier` is actually later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a span of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a span of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a span of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a span from fractional microseconds, rounding to nanoseconds.
    pub fn from_micros_f64(micros: f64) -> Self {
        SimDuration((micros * 1_000.0).round().max(0.0) as u64)
    }

    /// Returns the span in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the span as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Returns `true` if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns the larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Saturating subtraction of spans.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        assert!(
            self.0 >= rhs.0,
            "SimTime subtraction underflow: {self:?} - {rhs:?}"
        );
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        assert!(
            self.0 >= rhs.0,
            "SimDuration subtraction underflow: {self:?} - {rhs:?}"
        );
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", format_nanos(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_nanos(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

fn format_nanos(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{:.3}s", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.3}ms", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.3}us", n as f64 / 1e3)
    } else {
        format!("{n}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_nanos(1_000) + SimDuration::from_micros(2);
        assert_eq!(t.as_nanos(), 3_000);
        assert_eq!(t - SimTime::from_nanos(1_000), SimDuration::from_micros(2));
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1_000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1_000));
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1_000));
    }

    #[test]
    fn duration_from_micros_f64_rounds() {
        assert_eq!(SimDuration::from_micros_f64(1.5).as_nanos(), 1_500);
        assert_eq!(SimDuration::from_micros_f64(0.0004).as_nanos(), 0);
        assert_eq!(SimDuration::from_micros_f64(-3.0).as_nanos(), 0);
    }

    #[test]
    fn saturating_ops_do_not_underflow() {
        let early = SimTime::from_nanos(10);
        let late = SimTime::from_nanos(50);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_nanos(40));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn strict_subtraction_panics_on_underflow() {
        let _ = SimTime::from_nanos(1) - SimTime::from_nanos(2);
    }

    #[test]
    fn display_picks_readable_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(17)), "17ns");
        assert_eq!(format!("{}", SimDuration::from_micros(5)), "5.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(7)), "7.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
    }

    #[test]
    fn sum_and_scale() {
        let total: SimDuration = (1..=4).map(SimDuration::from_micros).sum();
        assert_eq!(total, SimDuration::from_micros(10));
        assert_eq!(SimDuration::from_micros(3) * 3, SimDuration::from_micros(9));
        assert_eq!(SimDuration::from_micros(9) / 3, SimDuration::from_micros(3));
    }
}
