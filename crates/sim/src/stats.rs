//! Measurement utilities: sample histograms and named counters collected
//! under virtual time.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::time::SimDuration;

/// A reservoir of raw duration samples with summary statistics.
///
/// Samples are stored exactly (the evaluation microbenchmarks need true
/// percentiles and bimodality detection, not bucketed approximations); a
/// configurable cap bounds memory for very long runs.
///
/// # Examples
///
/// ```
/// use dex_sim::{Histogram, SimDuration};
///
/// let h = Histogram::new();
/// h.record(SimDuration::from_micros(10));
/// h.record(SimDuration::from_micros(30));
/// assert_eq!(h.count(), 2);
/// assert_eq!(h.mean().as_nanos(), 20_000);
/// ```
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<Mutex<HistInner>>,
}

struct HistInner {
    samples: Vec<u64>,
    /// Whether `samples` is currently sorted ascending. Percentile
    /// queries sort in place under the lock and set this; `record`
    /// clears it. Avoids the old clone-and-sort on every query.
    sorted: bool,
    cap: usize,
    dropped: u64,
    sum: u128,
    count: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates a histogram retaining up to 1M raw samples.
    pub fn new() -> Self {
        Self::with_sample_cap(1 << 20)
    }

    /// Creates a histogram retaining at most `cap` raw samples (summary
    /// statistics remain exact; percentiles become approximate past the
    /// cap).
    pub fn with_sample_cap(cap: usize) -> Self {
        Histogram {
            inner: Arc::new(Mutex::new(HistInner {
                samples: Vec::new(),
                sorted: true,
                cap,
                dropped: 0,
                sum: 0,
                count: 0,
                min: u64::MAX,
                max: 0,
            })),
        }
    }

    /// Records one sample.
    pub fn record(&self, d: SimDuration) {
        let n = d.as_nanos();
        let mut inner = self.inner.lock();
        inner.sum += n as u128;
        inner.count += 1;
        inner.min = inner.min.min(n);
        inner.max = inner.max.max(n);
        if inner.samples.len() < inner.cap {
            // Appending keeps a sorted vector sorted only when the new
            // sample is ≥ the current tail; otherwise the cache goes
            // stale and the next percentile query re-sorts.
            if inner.sorted && inner.samples.last().is_some_and(|&last| n < last) {
                inner.sorted = false;
            }
            inner.samples.push(n);
        } else {
            inner.dropped += 1;
        }
    }

    /// Samples discarded once the retention cap was reached. When this
    /// is non-zero, [`Histogram::percentile`] and
    /// [`Histogram::split_at`] cover only the first `cap` samples;
    /// `count`/`mean`/`min`/`max` remain exact.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.inner.lock().count
    }

    /// Arithmetic mean (zero when empty).
    pub fn mean(&self) -> SimDuration {
        let inner = self.inner.lock();
        if inner.count == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos((inner.sum / inner.count as u128) as u64)
    }

    /// Smallest sample (zero when empty).
    pub fn min(&self) -> SimDuration {
        let inner = self.inner.lock();
        if inner.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(inner.min)
        }
    }

    /// Largest sample.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_nanos(self.inner.lock().max)
    }

    /// The `p`-th percentile (0.0–100.0) over retained samples.
    ///
    /// When [`Histogram::dropped`] is non-zero the percentile is
    /// computed over the retained prefix only (the first `cap` samples
    /// recorded), not the full population.
    ///
    /// Sorts the retained samples **in place** under the lock the first
    /// time after a record; repeated queries reuse the sorted cache, so
    /// a report that asks for p50/p95/p99 sorts once, not three times.
    pub fn percentile(&self, p: f64) -> SimDuration {
        let mut inner = self.inner.lock();
        if inner.samples.is_empty() {
            return SimDuration::ZERO;
        }
        if !inner.sorted {
            inner.samples.sort_unstable();
            inner.sorted = true;
        }
        let n = inner.samples.len();
        let rank = ((p / 100.0) * (n - 1) as f64).round() as usize;
        SimDuration::from_nanos(inner.samples[rank.min(n - 1)])
    }

    /// Splits samples at `threshold` and returns
    /// `(count_below, mean_below, count_at_or_above, mean_at_or_above)` —
    /// used to report the bimodal fault-handling cost of §V-D.
    pub fn split_at(&self, threshold: SimDuration) -> (u64, SimDuration, u64, SimDuration) {
        let inner = self.inner.lock();
        let t = threshold.as_nanos();
        let (mut cb, mut sb, mut ca, mut sa) = (0u64, 0u128, 0u64, 0u128);
        for &s in &inner.samples {
            if s < t {
                cb += 1;
                sb += s as u128;
            } else {
                ca += 1;
                sa += s as u128;
            }
        }
        let mean = |sum: u128, count: u64| {
            if count == 0 {
                SimDuration::ZERO
            } else {
                SimDuration::from_nanos((sum / count as u128) as u64)
            }
        };
        (cb, mean(sb, cb), ca, mean(sa, ca))
    }

    /// A copy of the retained raw samples (nanoseconds). Order is
    /// unspecified: percentile queries may have sorted the reservoir in
    /// place.
    pub fn samples(&self) -> Vec<u64> {
        self.inner.lock().samples.clone()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("mean", &self.mean())
            .field("min", &self.min())
            .field("max", &self.max())
            .finish()
    }
}

/// A set of named monotone counters.
///
/// # Examples
///
/// ```
/// use dex_sim::Counters;
///
/// let c = Counters::new();
/// c.add("page_faults", 3);
/// c.incr("page_faults");
/// assert_eq!(c.get("page_faults"), 4);
/// assert_eq!(c.get("unknown"), 0);
/// ```
#[derive(Clone, Default)]
pub struct Counters {
    inner: Arc<Mutex<BTreeMap<String, u64>>>,
}

impl Counters {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter `name`, creating it at zero if absent.
    pub fn add(&self, name: &str, n: u64) {
        let mut inner = self.inner.lock();
        if let Some(v) = inner.get_mut(name) {
            *v += n;
        } else {
            inner.insert(name.to_string(), n);
        }
    }

    /// Increments the counter `name` by one.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Current value of `name` (zero if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.inner.lock().get(name).copied().unwrap_or(0)
    }

    /// Snapshot of every counter, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        self.inner
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }
}

impl std::fmt::Debug for Counters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.snapshot()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.min(), SimDuration::ZERO);
        assert_eq!(h.max(), SimDuration::ZERO);
        assert_eq!(h.percentile(50.0), SimDuration::ZERO);
    }

    #[test]
    fn summary_statistics_are_exact() {
        let h = Histogram::new();
        for n in [10, 20, 30, 40] {
            h.record(us(n));
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.mean(), us(25));
        assert_eq!(h.min(), us(10));
        assert_eq!(h.max(), us(40));
    }

    #[test]
    fn percentiles_are_order_statistics() {
        let h = Histogram::new();
        for n in 1..=100 {
            h.record(us(n));
        }
        assert_eq!(h.percentile(0.0), us(1));
        assert_eq!(h.percentile(100.0), us(100));
        let median = h.percentile(50.0).as_nanos();
        assert!((50_000..=51_000).contains(&median), "median {median}");
    }

    #[test]
    fn split_detects_bimodal_distribution() {
        let h = Histogram::new();
        for _ in 0..30 {
            h.record(us(19)); // fast path
        }
        for _ in 0..70 {
            h.record(us(159)); // retry path
        }
        let (fast_n, fast_mean, slow_n, slow_mean) = h.split_at(us(50));
        assert_eq!((fast_n, slow_n), (30, 70));
        assert_eq!(fast_mean, us(19));
        assert_eq!(slow_mean, us(159));
    }

    #[test]
    fn sample_cap_keeps_summary_exact() {
        let h = Histogram::with_sample_cap(10);
        for n in 1..=100 {
            h.record(us(n));
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.mean(), SimDuration::from_nanos(50_500));
        assert_eq!(h.samples().len(), 10);
        assert_eq!(h.dropped(), 90);
    }

    #[test]
    fn percentile_cache_invalidates_on_record() {
        let h = Histogram::new();
        for n in [30, 10, 20] {
            h.record(us(n));
        }
        assert_eq!(h.percentile(100.0), us(30));
        // A new minimum after a sorted query must be observed.
        h.record(us(1));
        assert_eq!(h.percentile(0.0), us(1));
        assert_eq!(h.percentile(100.0), us(30));
        // An in-order append keeps the cache valid; still correct.
        h.record(us(40));
        assert_eq!(h.percentile(100.0), us(40));
    }

    #[test]
    fn counters_accumulate_independently() {
        let c = Counters::new();
        c.incr("a");
        c.add("a", 2);
        c.incr("b");
        assert_eq!(c.get("a"), 3);
        assert_eq!(c.get("b"), 1);
        assert_eq!(
            c.snapshot(),
            vec![("a".to_string(), 3), ("b".to_string(), 1)]
        );
    }
}
