//! Deterministic pseudo-random number generation for workloads.
//!
//! The simulator must be reproducible bit-for-bit across runs and Rust
//! versions, so workload generators use a self-contained xoshiro256**
//! generator seeded via SplitMix64 rather than an external RNG whose
//! stream might change between releases.

/// A small, fast, deterministic PRNG (xoshiro256** seeded with SplitMix64).
///
/// # Examples
///
/// ```
/// use dex_sim::SimRng;
///
/// let mut a = SimRng::new(7);
/// let mut b = SimRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// let x = a.gen_range(10..20);
/// assert!((10..20).contains(&x));
/// ```
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        SimRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Derives an independent child generator (for per-thread streams).
    pub fn fork(&mut self, stream: u64) -> SimRng {
        SimRng::new(self.next_u64() ^ stream.wrapping_mul(0xA24BAED4963EE407))
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range on empty range");
        let span = range.end - range.start;
        // Lemire's multiply-shift rejection-free mapping is fine here: a
        // tiny modulo bias is acceptable for workload generation.
        range.start + (((self.next_u64() as u128 * span as u128) >> 64) as u64)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// A normally-distributed value (Box–Muller).
    pub fn gen_normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = self.gen_f64().max(f64::MIN_POSITIVE);
        let u2 = self.gen_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        mean + std_dev * z
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_range(0..(i as u64 + 1)) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SimRng::new(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(100..110);
            assert!((100..110).contains(&v));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = SimRng::new(9);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 8 buckets should be hit");
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = SimRng::new(11);
        for _ in 0..10_000 {
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn normal_has_roughly_right_moments() {
        let mut rng = SimRng::new(13);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gen_normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::new(17);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = SimRng::new(3);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let same = (0..32).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SimRng::new(1);
        let _ = rng.gen_range(5..5);
    }
}
