//! Deterministic FIFO channels between simulated threads.
//!
//! [`SimChannel`] is the building block for simulated message queues: a
//! bounded or unbounded FIFO whose blocking semantics are expressed in
//! *virtual* time via [`SimCtx::park`]/[`SimCtx::unpark`]. Waiters are
//! woken strictly in arrival order, so runs are reproducible.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::engine::{SimCtx, ThreadId};

/// Error returned by [`SimChannel::send`] when the channel was closed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendError;

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "send on closed channel")
    }
}

impl std::error::Error for SendError {}

struct ChanInner<T> {
    queue: VecDeque<T>,
    capacity: Option<usize>,
    recv_waiters: VecDeque<ThreadId>,
    send_waiters: VecDeque<ThreadId>,
    closed: bool,
}

/// A deterministic multi-producer multi-consumer FIFO between simulated
/// threads.
///
/// Cloning the channel clones a handle to the same queue. Blocking happens
/// in virtual time: a receiver on an empty channel (or a sender on a full
/// bounded channel) parks its simulated thread until a peer wakes it.
///
/// # Examples
///
/// ```
/// use dex_sim::{Engine, SimChannel, SimDuration};
///
/// let engine = Engine::new();
/// let chan: SimChannel<u32> = SimChannel::unbounded();
/// let tx = chan.clone();
/// engine.spawn("producer", move |ctx| {
///     ctx.advance(SimDuration::from_micros(1));
///     tx.send(ctx, 42).unwrap();
/// });
/// engine.spawn("consumer", move |ctx| {
///     let v = chan.recv(ctx).expect("channel open");
///     assert_eq!(v, 42);
/// });
/// engine.run().unwrap();
/// ```
pub struct SimChannel<T> {
    inner: Arc<Mutex<ChanInner<T>>>,
}

impl<T> Clone for SimChannel<T> {
    fn clone(&self) -> Self {
        SimChannel {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> std::fmt::Debug for SimChannel<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("SimChannel")
            .field("len", &inner.queue.len())
            .field("capacity", &inner.capacity)
            .field("closed", &inner.closed)
            .finish()
    }
}

impl<T> Default for SimChannel<T> {
    fn default() -> Self {
        Self::unbounded()
    }
}

impl<T> SimChannel<T> {
    /// Creates a channel with unlimited buffering.
    pub fn unbounded() -> Self {
        Self::with_capacity(None)
    }

    /// Creates a channel that blocks senders once `capacity` items are
    /// queued — used to model finite send-buffer pools.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (rendezvous channels are not modeled).
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity > 0, "bounded channel capacity must be non-zero");
        Self::with_capacity(Some(capacity))
    }

    fn with_capacity(capacity: Option<usize>) -> Self {
        SimChannel {
            inner: Arc::new(Mutex::new(ChanInner {
                queue: VecDeque::new(),
                capacity,
                recv_waiters: VecDeque::new(),
                send_waiters: VecDeque::new(),
                closed: false,
            })),
        }
    }

    /// Number of items currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// Returns `true` if no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sends `item`, parking in virtual time while a bounded channel is
    /// full.
    ///
    /// # Errors
    ///
    /// Returns [`SendError`] if the channel has been closed.
    pub fn send(&self, ctx: &SimCtx, mut item: T) -> Result<(), SendError> {
        loop {
            {
                let mut inner = self.inner.lock();
                if inner.closed {
                    return Err(SendError);
                }
                let full = inner
                    .capacity
                    .map(|c| inner.queue.len() >= c)
                    .unwrap_or(false);
                if !full {
                    inner.queue.push_back(item);
                    if let Some(waiter) = inner.recv_waiters.pop_front() {
                        drop(inner);
                        ctx.unpark(waiter);
                    }
                    return Ok(());
                }
                inner.send_waiters.push_back(ctx.id());
            }
            ctx.park();
            // Re-check; another sender may have raced us to the free slot.
            item = match self.try_reclaim(item) {
                Some(i) => i,
                None => return Ok(()),
            };
        }
    }

    /// Helper for the send retry loop: placeholder that simply returns the
    /// item so the loop re-attempts the send (kept separate for clarity).
    fn try_reclaim(&self, item: T) -> Option<T> {
        Some(item)
    }

    /// Attempts to send without blocking. Returns the item back if the
    /// channel is full or closed.
    pub fn try_send(&self, ctx: &SimCtx, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock();
        if inner.closed {
            return Err(item);
        }
        let full = inner
            .capacity
            .map(|c| inner.queue.len() >= c)
            .unwrap_or(false);
        if full {
            return Err(item);
        }
        inner.queue.push_back(item);
        if let Some(waiter) = inner.recv_waiters.pop_front() {
            drop(inner);
            ctx.unpark(waiter);
        }
        Ok(())
    }

    /// Receives the next item, parking in virtual time while the channel is
    /// empty. Returns `None` once the channel is closed *and* drained.
    pub fn recv(&self, ctx: &SimCtx) -> Option<T> {
        loop {
            {
                let mut inner = self.inner.lock();
                if let Some(item) = inner.queue.pop_front() {
                    if let Some(waiter) = inner.send_waiters.pop_front() {
                        drop(inner);
                        ctx.unpark(waiter);
                    }
                    return Some(item);
                }
                if inner.closed {
                    return None;
                }
                inner.recv_waiters.push_back(ctx.id());
            }
            ctx.park();
        }
    }

    /// Attempts to receive without blocking.
    pub fn try_recv(&self, ctx: &SimCtx) -> Option<T> {
        let mut inner = self.inner.lock();
        let item = inner.queue.pop_front();
        if item.is_some() {
            if let Some(waiter) = inner.send_waiters.pop_front() {
                drop(inner);
                ctx.unpark(waiter);
            }
        }
        item
    }

    /// Closes the channel: pending items may still be received; subsequent
    /// sends fail; all parked waiters are woken.
    pub fn close(&self, ctx: &SimCtx) {
        let waiters: Vec<ThreadId> = {
            let mut inner = self.inner.lock();
            inner.closed = true;
            let mut waiters: Vec<ThreadId> = inner.recv_waiters.drain(..).collect();
            waiters.extend(inner.send_waiters.drain(..));
            waiters
        };
        for w in waiters {
            ctx.unpark(w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::time::SimDuration;
    use std::sync::Arc as StdArc;

    #[test]
    fn fifo_order_is_preserved() {
        let engine = Engine::new();
        let chan = SimChannel::unbounded();
        let got = StdArc::new(Mutex::new(Vec::new()));
        {
            let chan = chan.clone();
            engine.spawn("producer", move |ctx| {
                for i in 0..10 {
                    chan.send(ctx, i).unwrap();
                    ctx.advance(SimDuration::from_nanos(5));
                }
            });
        }
        {
            let got = StdArc::clone(&got);
            engine.spawn("consumer", move |ctx| {
                for _ in 0..10 {
                    got.lock().push(chan.recv(ctx).unwrap());
                }
            });
        }
        engine.run().unwrap();
        assert_eq!(*got.lock(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_channel_applies_backpressure() {
        let engine = Engine::new();
        let chan = SimChannel::bounded(2);
        let produced_at = StdArc::new(Mutex::new(Vec::new()));
        {
            let chan = chan.clone();
            let produced_at = StdArc::clone(&produced_at);
            engine.spawn("producer", move |ctx| {
                for i in 0..4 {
                    chan.send(ctx, i).unwrap();
                    produced_at.lock().push(ctx.now().as_nanos());
                }
            });
        }
        {
            let chan = chan.clone();
            engine.spawn("slow-consumer", move |ctx| {
                for _ in 0..4 {
                    ctx.advance(SimDuration::from_micros(10));
                    chan.recv(ctx).unwrap();
                }
            });
        }
        engine.run().unwrap();
        let at = produced_at.lock().clone();
        // First two sends fill the buffer at t=0; the rest wait for drains.
        assert_eq!(at[0], 0);
        assert_eq!(at[1], 0);
        assert!(at[2] >= 10_000, "third send should block: {at:?}");
        assert!(at[3] >= 20_000, "fourth send should block: {at:?}");
    }

    #[test]
    fn recv_blocks_until_item_arrives() {
        let engine = Engine::new();
        let chan: SimChannel<&str> = SimChannel::unbounded();
        let when = StdArc::new(Mutex::new(None));
        {
            let chan = chan.clone();
            let when = StdArc::clone(&when);
            engine.spawn("consumer", move |ctx| {
                let item = chan.recv(ctx).unwrap();
                assert_eq!(item, "hello");
                *when.lock() = Some(ctx.now().as_nanos());
            });
        }
        {
            engine.spawn("producer", move |ctx| {
                ctx.advance(SimDuration::from_micros(7));
                chan.send(ctx, "hello").unwrap();
            });
        }
        engine.run().unwrap();
        assert_eq!(when.lock().unwrap(), 7_000);
    }

    #[test]
    fn close_wakes_blocked_receiver_with_none() {
        let engine = Engine::new();
        let chan: SimChannel<u8> = SimChannel::unbounded();
        let got_none = StdArc::new(Mutex::new(false));
        {
            let chan = chan.clone();
            let got_none = StdArc::clone(&got_none);
            engine.spawn("consumer", move |ctx| {
                assert!(chan.recv(ctx).is_none());
                *got_none.lock() = true;
            });
        }
        engine.spawn("closer", move |ctx| {
            ctx.advance(SimDuration::from_micros(1));
            chan.close(ctx);
        });
        engine.run().unwrap();
        assert!(*got_none.lock());
    }

    #[test]
    fn send_after_close_errors() {
        let engine = Engine::new();
        let chan: SimChannel<u8> = SimChannel::unbounded();
        engine.spawn("t", move |ctx| {
            chan.close(ctx);
            assert_eq!(chan.send(ctx, 1), Err(SendError));
        });
        engine.run().unwrap();
    }

    #[test]
    fn try_ops_do_not_block() {
        let engine = Engine::new();
        let chan: SimChannel<u8> = SimChannel::bounded(1);
        engine.spawn("t", move |ctx| {
            assert!(chan.try_recv(ctx).is_none());
            assert!(chan.try_send(ctx, 1).is_ok());
            assert_eq!(chan.try_send(ctx, 2), Err(2));
            assert_eq!(chan.try_recv(ctx), Some(1));
        });
        engine.run().unwrap();
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_is_rejected() {
        let _ = SimChannel::<u8>::bounded(0);
    }
}
