//! Property test: `ScheduleLog` text serialization round-trips any log —
//! including hostile labels full of tabs, newlines, backslashes, escape
//! lookalikes, trailing spaces, and multi-byte unicode — matching the
//! escaping guarantees of the `dex-prof` codecs.

use dex_sim::ScheduleLog;
use proptest::prelude::*;

/// Characters that stress the escaping: the structural bytes themselves,
/// the escape letters, spaces (incl. trailing), and multi-byte unicode.
const HOSTILE: &[char] = &[
    'a', 'z', '0', '\t', '\n', '\r', '\\', ' ', '#', 't', 'n', 'r', '日', '"',
];

/// A string of up to 16 hostile characters.
fn hostile_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..HOSTILE.len(), 0..17)
        .prop_map(|ix| ix.into_iter().map(|i| HOSTILE[i]).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn schedule_log_round_trips_hostile_labels(
        steps in proptest::collection::vec((any::<u64>(), hostile_string()), 0..12),
    ) {
        let mut log = ScheduleLog::new("explore scenario=prop budget=1");
        for (actor, label) in &steps {
            log.push(*actor, label.clone());
        }
        let text = log.to_text();
        let parsed = ScheduleLog::parse(&text);
        prop_assert!(parsed.is_ok(), "parse failed: {:?}\n{}", parsed.err(), text);
        let back = parsed.unwrap();
        prop_assert_eq!(back.header.as_str(), log.header.as_str());
        prop_assert_eq!(back.len(), log.len());
        for (a, b) in back.steps().iter().zip(log.steps()) {
            prop_assert_eq!(a.seq, b.seq);
            prop_assert_eq!(a.actor, b.actor);
            prop_assert_eq!(a.label.as_str(), b.label.as_str(), "label round-trip");
        }
        // Idempotence: re-serializing the parsed log is byte-identical.
        prop_assert_eq!(back.to_text(), text);
    }
}
