//! End-to-end tests for the causal profiler and the cross-run differ:
//! perturbed reruns must be bit-identical when repeated, and a seeded
//! `forward_handling` slowdown on the shard-bench shape must surface as
//! `owner_forward` being the top protocol-side mover in `dex-prof diff`.

use dex_check::run_whatif;
use dex_core::{Cluster, ClusterConfig, CostModel, RunReport};
use dex_prof::{diff_spans, render_diff, DiffInput};

/// The shard bench's ping-pong shape at smoke size, spans on: two
/// writers bounce exclusive ownership while a third node pulls read
/// replicas, so sharded homes route grants through the two-hop
/// owner-forwarded path.
fn shard_run(cost: CostModel) -> RunReport {
    let config = ClusterConfig::new(4)
        .with_cost(cost)
        .with_directory_shards(4)
        .with_spans();
    Cluster::new(config).run(|p| {
        let v = p.alloc_vec_aligned::<u64>(4 * 512, "shard_pingpong");
        p.spawn(move |ctx| {
            ctx.set_site("test.shard");
            ctx.migrate(1).expect("node 1 exists");
            for page in 0..4 {
                v.set(ctx, page * 512, page as u64);
            }
            for round in 0..3usize {
                ctx.migrate(3).expect("node 3 exists");
                for page in 0..4 {
                    let _ = v.get(ctx, page * 512);
                }
                let writer = if round % 2 == 0 { 2 } else { 1 };
                ctx.migrate(writer).expect("writer node exists");
                for page in 0..4 {
                    v.set(ctx, page * 512, round as u64);
                }
            }
        });
    })
}

#[test]
fn perturbed_reruns_are_bit_identical() {
    let components = vec![
        "forward_handling".to_string(),
        "net.verb_latency".to_string(),
    ];
    let a = run_whatif("shard", &components, 2.0).expect("sweep");
    let b = run_whatif("shard", &components, 2.0).expect("sweep");
    assert!(a.deterministic, "baseline rerun drifted");
    assert!(b.deterministic, "baseline rerun drifted");
    assert_eq!(a.report.baseline_ns, b.report.baseline_ns);
    for (ea, eb) in a.report.entries.iter().zip(&b.report.entries) {
        assert_eq!(ea.component, eb.component);
        assert_eq!(
            ea.perturbed_ns, eb.perturbed_ns,
            "perturbed rerun of {} must be bit-identical when repeated",
            ea.component
        );
    }
}

#[test]
fn seeded_forward_slowdown_names_owner_forward_as_top_mover() {
    let base = shard_run(CostModel::default());
    let mut slow = CostModel::default();
    slow.perturb("forward_handling", 4.0)
        .expect("known component");
    let cand = shard_run(slow);

    let diff = diff_spans(&base.spans, &cand.spans);
    // Among the protocol/handler span kinds, the slowed path must rank
    // first (fault/migration totals may out-delta it in absolute terms —
    // they contain it).
    let protocol = [
        "owner_forward",
        "invalidate_batch",
        "directory_handling",
        "invalidation",
        "page_fixup",
        "fault_retry",
    ];
    let top_protocol = diff
        .per_kind
        .iter()
        .find(|r| protocol.contains(&r.key.as_str()))
        .expect("a protocol span kind moved");
    assert_eq!(
        top_protocol.key,
        "owner_forward",
        "expected the seeded forward_handling slowdown to surface as owner_forward; \
         per-kind rows: {:?}",
        diff.per_kind
            .iter()
            .map(|r| (r.key.as_str(), r.delta_ns()))
            .collect::<Vec<_>>()
    );
    let ratio = top_protocol.ratio().expect("forwards ran in the baseline");
    assert!(
        ratio > 2.0,
        "a 4x forward_handling slowdown must show up as a large ratio, got {ratio:.2}"
    );

    // The rendered report names the mover and the nodes it moved on.
    let text = render_diff(
        &DiffInput::Spans(base.spans),
        &DiffInput::Spans(cand.spans),
        16,
    )
    .expect("same artifact kinds");
    assert!(text.contains("owner_forward @ node"), "{text}");
    assert!(text.contains("slower"), "{text}");
}
