//! Offline sequential-consistency oracle.
//!
//! Consumes the value-carrying access stream a cluster records under
//! [`dex_core::ClusterConfig::with_race_detection`] and checks that the
//! values observed by reads admit a legal sequentially consistent total
//! order. DEX promises SC through its single-writer ownership protocol,
//! so a protocol bug shows up here as a read observing a value no legal
//! order can justify.
//!
//! The check is deliberately conservative (no false positives on real
//! SC executions):
//!
//! 1. Rebuild happens-before with the same vector-clock pass as
//!    `dex-check races` (program order, lock release → acquire, futex
//!    wake → wait-return, barrier rounds, spawn).
//! 2. For every read *r* of value *v* at a location, collect the
//!    **reads-from candidates**: writes to the same location that
//!    deposited *v* and are not ordered *after* the read. The implicit
//!    initial write of zero (happens-before everything) is a candidate
//!    for *v = 0*.
//! 3. Flag a violation when the candidate set is empty (the value was
//!    never written — lost-update / out-of-thin-air), or when **every**
//!    candidate *w* is *stale*: some other write *w′* satisfies
//!    *w* →hb *w′* →hb *r*. Any total order extending happens-before
//!    must place *w′* between *w* and *r*, so *r* could not have
//!    observed *w* — the read returned provably overwritten data.
//!
//! Reads racing with concurrent writes are never flagged: an unordered
//! write is a legal reads-from source in *some* extension of
//! happens-before. That keeps the oracle sound; `dex-check races`
//! reports the race itself.

use std::collections::HashMap;

use dex_core::{NodeId, RaceEvent, RaceEventKind, Tid};
use dex_os::VirtAddr;
use dex_sim::SimTime;

/// One access with its happens-before clock snapshot.
#[derive(Clone, Debug)]
struct AccessInfo {
    /// Dense thread index.
    t: usize,
    /// The thread's own clock component at the access.
    epoch: u64,
    /// Full vector-clock snapshot taken at the access.
    clock: Vec<u64>,
    value: u64,
    index: usize,
    task: Tid,
    node: NodeId,
    site: &'static str,
    time: SimTime,
}

impl AccessInfo {
    /// `self` happens-before `other`.
    fn hb_before(&self, other: &AccessInfo) -> bool {
        other.clock.get(self.t).copied().unwrap_or(0) >= self.epoch
    }
}

/// A read that no sequentially consistent total order can explain.
#[derive(Clone, Debug)]
pub struct ScViolation {
    /// First byte of the location.
    pub addr: VirtAddr,
    /// Access length in bytes.
    pub len: u32,
    /// Index of the read in the analyzed event stream.
    pub read_index: usize,
    /// The reading thread.
    pub task: Tid,
    /// The node it read on.
    pub node: NodeId,
    /// Its code-site annotation.
    pub site: &'static str,
    /// Virtual time of the read.
    pub time: SimTime,
    /// The value the read observed.
    pub value: u64,
    /// Why the value is illegal.
    pub reason: String,
}

/// Result of the sequential-consistency check.
#[derive(Clone, Debug, Default)]
pub struct ScReport {
    /// Events analyzed.
    pub events: usize,
    /// Reads checked.
    pub reads: usize,
    /// Writes observed.
    pub writes: usize,
    /// Reads no legal total order can explain.
    pub violations: Vec<ScViolation>,
}

impl ScReport {
    /// `true` when every read admits a legal reads-from source.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Checks that observed read values admit a sequentially consistent
/// total order (see the module docs for the exact rule).
pub fn check_sequential_consistency(events: &[RaceEvent]) -> ScReport {
    // --- Pass 1: vector clocks, identical edges to `analyze_races`. ---
    let mut tindex: HashMap<Tid, usize> = HashMap::new();
    let mut clocks: Vec<Vec<u64>> = Vec::new();
    let mut spawn_seed: HashMap<Tid, Vec<u64>> = HashMap::new();
    let mut lock_release: HashMap<VirtAddr, Vec<u64>> = HashMap::new();
    let mut futex_wake: HashMap<VirtAddr, Vec<u64>> = HashMap::new();
    let mut barrier: HashMap<(VirtAddr, u32), Vec<u64>> = HashMap::new();

    fn join(dst: &mut Vec<u64>, src: &[u64]) {
        if dst.len() < src.len() {
            dst.resize(src.len(), 0);
        }
        for (d, s) in dst.iter_mut().zip(src) {
            *d = (*d).max(*s);
        }
    }

    // Per-location access history, keyed by exact (addr, len): values are
    // only comparable between same-shaped accesses. Partially overlapping
    // accesses are the race detector's problem, not the oracle's.
    let mut reads_by_loc: HashMap<(u64, u32), Vec<AccessInfo>> = HashMap::new();
    let mut writes_by_loc: HashMap<(u64, u32), Vec<AccessInfo>> = HashMap::new();
    let mut nreads = 0usize;
    let mut nwrites = 0usize;

    for (index, event) in events.iter().enumerate() {
        let t = match tindex.get(&event.task) {
            Some(&t) => t,
            None => {
                let t = clocks.len();
                tindex.insert(event.task, t);
                let mut vc = spawn_seed.remove(&event.task).unwrap_or_default();
                if vc.len() <= t {
                    vc.resize(t + 1, 0);
                }
                clocks.push(vc);
                t
            }
        };
        if clocks[t].len() <= t {
            clocks[t].resize(t + 1, 0);
        }
        clocks[t][t] += 1;
        let epoch = clocks[t][t];

        match event.kind {
            RaceEventKind::Access {
                addr,
                len,
                is_write,
                value,
                ..
            } => {
                let info = AccessInfo {
                    t,
                    epoch,
                    clock: clocks[t].clone(),
                    value,
                    index,
                    task: event.task,
                    node: event.node,
                    site: event.site,
                    time: event.time,
                };
                let key = (addr.as_u64(), len);
                if is_write {
                    nwrites += 1;
                    writes_by_loc.entry(key).or_default().push(info);
                } else {
                    nreads += 1;
                    reads_by_loc.entry(key).or_default().push(info);
                }
            }
            RaceEventKind::LockAcquire { lock } => {
                if let Some(vc) = lock_release.get(&lock) {
                    let vc = vc.clone();
                    join(&mut clocks[t], &vc);
                }
            }
            RaceEventKind::LockRelease { lock } => {
                let snapshot = clocks[t].clone();
                join(lock_release.entry(lock).or_default(), &snapshot);
            }
            RaceEventKind::FutexWake { addr } => {
                let snapshot = clocks[t].clone();
                join(futex_wake.entry(addr).or_default(), &snapshot);
            }
            RaceEventKind::FutexWaitReturn { addr } => {
                if let Some(vc) = futex_wake.get(&addr) {
                    let vc = vc.clone();
                    join(&mut clocks[t], &vc);
                }
            }
            RaceEventKind::BarrierEnter {
                barrier: b,
                generation,
            } => {
                let snapshot = clocks[t].clone();
                join(barrier.entry((b, generation)).or_default(), &snapshot);
            }
            RaceEventKind::BarrierLeave {
                barrier: b,
                generation,
            } => {
                if let Some(vc) = barrier.get(&(b, generation)) {
                    let vc = vc.clone();
                    join(&mut clocks[t], &vc);
                }
            }
            RaceEventKind::Spawn { child } => {
                let snapshot = clocks[t].clone();
                join(spawn_seed.entry(child).or_default(), &snapshot);
            }
        }
    }

    // --- Pass 2: reads-from justification per read. ---
    let mut violations = Vec::new();
    let empty: Vec<AccessInfo> = Vec::new();
    for (&(addr, len), reads) in &reads_by_loc {
        let writes = writes_by_loc.get(&(addr, len)).unwrap_or(&empty);
        for r in reads {
            // `w` happened after the read — impossible source.
            let not_after_read = |w: &&AccessInfo| !r.hb_before(w);
            // `w` provably overwritten before the read was issued.
            let stale = |w: &AccessInfo| {
                writes
                    .iter()
                    .any(|w2| w2.index != w.index && w.hb_before(w2) && w2.hb_before(r))
            };
            let candidates: Vec<&AccessInfo> = writes
                .iter()
                .filter(|w| w.value == r.value)
                .filter(not_after_read)
                .collect();
            // The implicit initial zero write happens-before everything;
            // it is stale once any write is ordered before the read.
            let init_candidate = r.value == 0;
            let init_stale = writes.iter().any(|w2| w2.hb_before(r));

            let justified = candidates.iter().any(|w| !stale(w)) || (init_candidate && !init_stale);
            if justified {
                continue;
            }
            let reason = if candidates.is_empty() && !init_candidate {
                format!(
                    "read of {addr:#x} observed value {} that was never written \
                     to the location (lost update / corrupted grant)",
                    r.value
                )
            } else {
                format!(
                    "read of {addr:#x} observed value {} but every write of that \
                     value is provably overwritten before the read (stale replica)",
                    r.value
                )
            };
            violations.push(ScViolation {
                addr: VirtAddr::new(addr),
                len,
                read_index: r.index,
                task: r.task,
                node: r.node,
                site: r.site,
                time: r.time,
                value: r.value,
                reason,
            });
        }
    }
    violations.sort_by_key(|v| v.read_index);

    ScReport {
        events: events.len(),
        reads: nreads,
        writes: nwrites,
        violations,
    }
}

/// Renders the oracle's verdict for the terminal.
pub fn render_sc_report(report: &ScReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "SC oracle: {} events ({} reads, {} writes): {} violation(s)\n",
        report.events,
        report.reads,
        report.writes,
        report.violations.len()
    ));
    for v in &report.violations {
        out.push_str(&format!(
            "  SC VIOLATION: {} read {} (len {}) = {} at t={}ns \
             (node {}, site `{}`): {}\n",
            v.task,
            v.addr,
            v.len,
            v.value,
            v.time.as_nanos(),
            v.node.0,
            v.site,
            v.reason
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(task: u64, kind: RaceEventKind) -> RaceEvent {
        RaceEvent {
            time: SimTime::ZERO,
            node: NodeId(0),
            task: Tid(task),
            site: "test",
            kind,
        }
    }

    fn access(task: u64, addr: u64, is_write: bool, value: u64) -> RaceEvent {
        ev(
            task,
            RaceEventKind::Access {
                addr: VirtAddr::new(addr),
                len: 8,
                is_write,
                atomic: false,
                value,
            },
        )
    }

    fn barrier_round(tasks: &[u64], generation: u32) -> Vec<RaceEvent> {
        let b = VirtAddr::new(0x80);
        let mut out = Vec::new();
        for &t in tasks {
            out.push(ev(
                t,
                RaceEventKind::BarrierEnter {
                    barrier: b,
                    generation,
                },
            ));
        }
        for &t in tasks {
            out.push(ev(
                t,
                RaceEventKind::BarrierLeave {
                    barrier: b,
                    generation,
                },
            ));
        }
        out
    }

    #[test]
    fn reading_the_ordered_write_is_clean() {
        let mut events = vec![access(1, 0x100, true, 42)];
        events.extend(barrier_round(&[1, 2], 0));
        events.push(access(2, 0x100, false, 42));
        assert!(check_sequential_consistency(&events).is_clean());
    }

    #[test]
    fn reading_zero_past_an_ordered_write_is_stale() {
        let mut events = vec![access(1, 0x100, true, 42)];
        events.extend(barrier_round(&[1, 2], 0));
        events.push(access(2, 0x100, false, 0));
        let report = check_sequential_consistency(&events);
        assert_eq!(report.violations.len(), 1, "{report:?}");
        assert!(report.violations[0].reason.contains("stale"));
    }

    #[test]
    fn reading_a_value_never_written_is_a_lost_update() {
        let events = vec![access(1, 0x100, true, 7), access(2, 0x100, false, 9)];
        let report = check_sequential_consistency(&events);
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].reason.contains("never"));
    }

    #[test]
    fn reading_an_overwritten_value_is_stale() {
        let mut events = vec![access(1, 0x100, true, 7), access(1, 0x100, true, 9)];
        events.extend(barrier_round(&[1, 2], 0));
        events.push(access(2, 0x100, false, 7));
        let report = check_sequential_consistency(&events);
        assert_eq!(report.violations.len(), 1, "{report:?}");
    }

    #[test]
    fn racy_reads_are_not_flagged() {
        // The write is unordered with the read, so both the old and the
        // new value are legal observations.
        let old = vec![access(1, 0x100, true, 5), access(2, 0x100, false, 0)];
        assert!(check_sequential_consistency(&old).is_clean());
        let new = vec![access(1, 0x100, true, 5), access(2, 0x100, false, 5)];
        assert!(check_sequential_consistency(&new).is_clean());
    }

    #[test]
    fn initial_zero_is_a_legal_source_until_overwritten() {
        let events = vec![access(2, 0x100, false, 0)];
        assert!(check_sequential_consistency(&events).is_clean());
    }

    #[test]
    fn distinct_locations_do_not_interfere() {
        let mut events = vec![access(1, 0x100, true, 1), access(1, 0x108, true, 2)];
        events.extend(barrier_round(&[1, 2], 0));
        events.push(access(2, 0x100, false, 1));
        events.push(access(2, 0x108, false, 2));
        assert!(check_sequential_consistency(&events).is_clean());
    }
}
