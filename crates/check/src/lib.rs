//! # dex-check — static and dynamic verification of the DEX protocol
//!
//! Three complementary passes over the reproduction:
//!
//! * [`model_check`] — exhaustive explicit-state exploration of the
//!   directory protocol over a closed finite world (2–4 nodes, 1–2
//!   pages, read/write/evict from every thread at any time). Checks
//!   single-writer exclusivity, owner-set/PTE agreement, no lost
//!   invalidations, leader-before-follower grant order, and quiescence
//!   co-reachability (transactions drain; retry never livelocks under
//!   fairness). Prints a *minimal* counterexample on violation and
//!   writes it in the [`dex_sim::ScheduleLog`] replay format.
//! * [`races`] — offline dynamic race and deadlock detection over the
//!   synchronization/access event stream a run records under
//!   [`dex_core::ClusterConfig::with_race_detection`]: vector-clock
//!   happens-before (lock release → acquire, futex wake → wait-return,
//!   barrier rounds, spawn), conflicting unordered accesses, and
//!   lock-order-graph cycles.
//! * [`lint`] — source-level invariant lints (raw `NodeSet`
//!   construction, PTE mutation outside the protocol allowlist,
//!   non-exhaustive `DirAction` consumers, `unwrap()` on fabric paths).
//! * [`explore`] — systematic schedule exploration over the *real*
//!   simulator through the engine's [`dex_sim::SchedulePolicy`] hook:
//!   exhaustive DFS with dynamic partial-order reduction ([`dpor`]),
//!   bounded-preemption search, and a seeded random walk, judged by an
//!   offline sequential-consistency oracle ([`sc`]) over the
//!   value-carrying access stream. Violations are minimized and emitted
//!   as replayable [`dex_sim::ScheduleLog`]s; a mutation sweep seeds
//!   protocol bugs in the real fault path and proves each is caught.
//! * [`faults`] — deterministic fault-injection scenarios: empty plans
//!   are byte-identical to no plan, seeded delay/stall/crash plans
//!   replay bit-for-bit, and node crashes quiesce with threads re-homed
//!   and no page ownership leaked to the dead node.
//! * [`observe`] — the sample traced workload behind `dex-check
//!   timeline` / `dex-check metrics`: runs with spans and metrics on,
//!   exports the Chrome trace-event JSON and the critical-path report,
//!   and verifies cross-node span stitching.
//! * [`perf`] — the perf-regression gate: diffs fresh `BENCH_*.json`
//!   results from the bench binaries against committed baselines with
//!   tolerance bands, and self-tests that a seeded regression is
//!   caught.
//! * [`whatif`] — the causal what-if profiler: per-component virtual
//!   speedups (exact under deterministic rerun) swept over named
//!   workloads, ranked into an attribution report, with a self-test
//!   that a seeded-dominant component must win the ranking.
//!
//! The `dex-check` binary wires all of them into CI:
//!
//! ```text
//! dex-check model --nodes 3 --pages 1
//! dex-check races
//! dex-check faults
//! dex-check lint
//! dex-check timeline --out trace.json
//! dex-check metrics
//! dex-check perf --results target/bench
//! dex-check all
//! ```

#![warn(missing_docs)]

pub mod dpor;
pub mod explore;
pub mod faults;
pub mod lint;
pub mod model_check;
pub mod observe;
pub mod perf;
pub mod races;
pub mod sc;
pub mod scenarios;
pub mod whatif;

pub use dpor::{footprints_after, rf_signature, worth_exploring, Footprint};
pub use explore::{
    explore_scenario_names, find_explore_scenario, looks_like_explore_log, replay_explore_log,
    ExploreConfig, ExploreOutcome, ExploreScenario, EXPLORE_SCENARIOS,
};
pub use faults::{
    fault_scenario_names, replay_plan, run_fault_scenario, FaultOutcome, FaultScenario,
    FAULT_SCENARIOS,
};
pub use lint::{run_lint, LintHit};
pub use model_check::{
    check_model, counterexample_to_log, mutation_sweep, render_counterexample, replay_log,
    CheckOptions, CheckOutcome, Counterexample, PassReport, ReplayOutcome,
};
pub use observe::{run_observed_workload, ObserveOutcome};
pub use perf::{
    compare_dirs, compare_results, load_results, self_test, PerfTolerance, PerfViolation,
};
pub use races::{analyze_races, render_race_report, Conflict, LockCycle, RaceReport};
pub use sc::{check_sequential_consistency, render_sc_report, ScReport, ScViolation};
pub use scenarios::{run_scenario, scenario_names, Scenario, SCENARIOS};
pub use whatif::{
    find_whatif_workload, full_component_registry, run_whatif, whatif_self_test,
    whatif_workload_names, WhatIfRun, WhatIfWorkload, WHATIF_WORKLOADS,
};
