//! Trace-based dynamic race and deadlock detection.
//!
//! Consumes the synchronization/access event stream a cluster records
//! under [`dex_core::ClusterConfig::with_race_detection`] and rebuilds
//! the happens-before relation with vector clocks:
//!
//! * **program order** — events of one thread are ordered as recorded
//!   (the deterministic simulator appends in execution order);
//! * **lock order** — a `LockRelease` happens-before every later
//!   `LockAcquire` of the same lock word;
//! * **futex order** — a `FutexWake` happens-before every later
//!   `FutexWaitReturn` on the same word (wait returns are only recorded
//!   for *actual* wakeups, not `EAGAIN`);
//! * **barrier order** — every `BarrierEnter` of round *g* happens-before
//!   every `BarrierLeave` of round *g*;
//! * **spawn order** — a `Spawn` happens-before every event of the child.
//!
//! Two accesses to overlapping bytes *conflict* when at least one is a
//! write, they are unordered by happens-before, and they are not both
//! cluster-atomic (`rmw_bytes` family). Conflicts are reported with both
//! code sites, threads, and nodes attributed.
//!
//! Independently, a **lock-order graph** is built from the nest order of
//! lock acquisitions (edge `A → B` when a thread acquires `B` while
//! holding `A`); a cycle means deadlock *potential* even if this
//! particular schedule did not hang.

use std::collections::{HashMap, HashSet};

use dex_core::{NodeId, RaceEvent, RaceEventKind, Tid};
use dex_os::VirtAddr;
use dex_sim::SimTime;

/// Bytes per conflict-tracking granule.
const GRANULE: u64 = 8;

/// A reference to one recorded access, with attribution.
#[derive(Clone, Copy, Debug)]
pub struct EventRef {
    /// Index into the analyzed event stream.
    pub index: usize,
    /// The accessing thread.
    pub task: Tid,
    /// The node the thread executed on.
    pub node: NodeId,
    /// The thread's code-site annotation.
    pub site: &'static str,
    /// Virtual time of the access.
    pub time: SimTime,
    /// Whether the access was a write.
    pub is_write: bool,
}

/// Two unordered conflicting accesses to the same bytes.
#[derive(Clone, Debug)]
pub struct Conflict {
    /// First byte of the conflicting granule.
    pub addr: VirtAddr,
    /// The access recorded earlier.
    pub first: EventRef,
    /// The access recorded later (unordered with `first`).
    pub second: EventRef,
}

/// One edge of a lock-order cycle.
#[derive(Clone, Copy, Debug)]
pub struct CycleEdge {
    /// The lock already held.
    pub held: VirtAddr,
    /// The lock acquired while holding `held`.
    pub acquired: VirtAddr,
    /// The thread that established the edge.
    pub task: Tid,
    /// The node it was on.
    pub node: NodeId,
    /// Its code site at acquisition.
    pub site: &'static str,
}

/// A cycle in the lock-order graph — deadlock potential.
#[derive(Clone, Debug)]
pub struct LockCycle {
    /// The edges forming the cycle, in order.
    pub edges: Vec<CycleEdge>,
}

/// Everything the analysis found.
#[derive(Clone, Debug, Default)]
pub struct RaceReport {
    /// Number of events analyzed.
    pub events: usize,
    /// Number of distinct threads observed.
    pub threads: usize,
    /// Unordered conflicting access pairs (deduplicated by site pair).
    pub conflicts: Vec<Conflict>,
    /// Lock-order-graph cycles.
    pub cycles: Vec<LockCycle>,
}

impl RaceReport {
    /// `true` when neither conflicts nor cycles were found.
    pub fn is_clean(&self) -> bool {
        self.conflicts.is_empty() && self.cycles.is_empty()
    }
}

/// One prior access remembered per granule.
#[derive(Clone, Debug)]
struct AccessRecord {
    /// Dense thread index.
    t: usize,
    /// The thread's clock component at the access.
    epoch: u64,
    atomic: bool,
    evref: EventRef,
}

#[derive(Clone, Debug, Default)]
struct GranuleState {
    last_write: Option<AccessRecord>,
    /// Reads since the last write (one per thread suffices — a newer
    /// read by the same thread supersedes the older for HB purposes).
    reads: Vec<AccessRecord>,
}

fn join(dst: &mut Vec<u64>, src: &[u64]) {
    if dst.len() < src.len() {
        dst.resize(src.len(), 0);
    }
    for (d, s) in dst.iter_mut().zip(src) {
        *d = (*d).max(*s);
    }
}

/// Rebuilds happens-before and reports conflicting unordered accesses
/// plus lock-order cycles.
pub fn analyze_races(events: &[RaceEvent]) -> RaceReport {
    let mut tindex: HashMap<Tid, usize> = HashMap::new();
    let mut clocks: Vec<Vec<u64>> = Vec::new();
    // Clock snapshot to seed a spawned child with.
    let mut spawn_seed: HashMap<Tid, Vec<u64>> = HashMap::new();
    // Release/wake/barrier clocks.
    let mut lock_release: HashMap<VirtAddr, Vec<u64>> = HashMap::new();
    let mut futex_wake: HashMap<VirtAddr, Vec<u64>> = HashMap::new();
    let mut barrier: HashMap<(VirtAddr, u32), Vec<u64>> = HashMap::new();
    // Per-granule access history.
    let mut mem: HashMap<u64, GranuleState> = HashMap::new();
    // Lock-order graph: held -> acquired, with one sample edge each.
    let mut lock_graph: HashMap<VirtAddr, HashMap<VirtAddr, CycleEdge>> = HashMap::new();
    let mut held: HashMap<usize, Vec<VirtAddr>> = HashMap::new();

    let mut conflicts: Vec<Conflict> = Vec::new();
    let mut seen_pairs: HashSet<(&'static str, &'static str, bool, bool)> = HashSet::new();

    for (index, event) in events.iter().enumerate() {
        let t = match tindex.get(&event.task) {
            Some(&t) => t,
            None => {
                let t = clocks.len();
                tindex.insert(event.task, t);
                let mut vc = spawn_seed.remove(&event.task).unwrap_or_default();
                if vc.len() <= t {
                    vc.resize(t + 1, 0);
                }
                clocks.push(vc);
                t
            }
        };
        // Program order: one tick per event.
        if clocks[t].len() <= t {
            clocks[t].resize(t + 1, 0);
        }
        clocks[t][t] += 1;
        let epoch = clocks[t][t];

        match event.kind {
            RaceEventKind::Access {
                addr,
                len,
                is_write,
                atomic,
                ..
            } => {
                let evref = EventRef {
                    index,
                    task: event.task,
                    node: event.node,
                    site: event.site,
                    time: event.time,
                    is_write,
                };
                let start = addr.as_u64() / GRANULE;
                let end = (addr.as_u64() + len.max(1) as u64 - 1) / GRANULE;
                for g in start..=end {
                    let state = mem.entry(g).or_default();
                    let record = AccessRecord {
                        t,
                        epoch,
                        atomic,
                        evref,
                    };
                    let hb = |prev: &AccessRecord, clocks: &[Vec<u64>]| -> bool {
                        clocks[t].get(prev.t).copied().unwrap_or(0) >= prev.epoch
                    };
                    let mut report = |prev: &AccessRecord, conflicts: &mut Vec<Conflict>| {
                        let key = (
                            prev.evref.site,
                            evref.site,
                            prev.evref.is_write,
                            evref.is_write,
                        );
                        if seen_pairs.insert(key) {
                            conflicts.push(Conflict {
                                addr: VirtAddr::new(g * GRANULE),
                                first: prev.evref,
                                second: evref,
                            });
                        }
                    };
                    if is_write {
                        if let Some(w) = &state.last_write {
                            if w.t != t && !(w.atomic && atomic) && !hb(w, &clocks) {
                                report(w, &mut conflicts);
                            }
                        }
                        for r in &state.reads {
                            if r.t != t && !(r.atomic && atomic) && !hb(r, &clocks) {
                                report(r, &mut conflicts);
                            }
                        }
                        state.last_write = Some(record);
                        state.reads.clear();
                    } else {
                        if let Some(w) = &state.last_write {
                            if w.t != t && !(w.atomic && atomic) && !hb(w, &clocks) {
                                report(w, &mut conflicts);
                            }
                        }
                        state.reads.retain(|r| r.t != t);
                        state.reads.push(record);
                    }
                }
            }
            RaceEventKind::LockAcquire { lock } => {
                if let Some(vc) = lock_release.get(&lock) {
                    let vc = vc.clone();
                    join(&mut clocks[t], &vc);
                }
                let stack = held.entry(t).or_default();
                for &h in stack.iter() {
                    if h != lock {
                        lock_graph
                            .entry(h)
                            .or_default()
                            .entry(lock)
                            .or_insert(CycleEdge {
                                held: h,
                                acquired: lock,
                                task: event.task,
                                node: event.node,
                                site: event.site,
                            });
                    }
                }
                stack.push(lock);
            }
            RaceEventKind::LockRelease { lock } => {
                let snapshot = clocks[t].clone();
                join(lock_release.entry(lock).or_default(), &snapshot);
                if let Some(stack) = held.get_mut(&t) {
                    if let Some(pos) = stack.iter().rposition(|&l| l == lock) {
                        stack.remove(pos);
                    }
                }
            }
            RaceEventKind::FutexWake { addr } => {
                let snapshot = clocks[t].clone();
                join(futex_wake.entry(addr).or_default(), &snapshot);
            }
            RaceEventKind::FutexWaitReturn { addr } => {
                if let Some(vc) = futex_wake.get(&addr) {
                    let vc = vc.clone();
                    join(&mut clocks[t], &vc);
                }
            }
            RaceEventKind::BarrierEnter {
                barrier: b,
                generation,
            } => {
                let snapshot = clocks[t].clone();
                join(barrier.entry((b, generation)).or_default(), &snapshot);
            }
            RaceEventKind::BarrierLeave {
                barrier: b,
                generation,
            } => {
                if let Some(vc) = barrier.get(&(b, generation)) {
                    let vc = vc.clone();
                    join(&mut clocks[t], &vc);
                }
            }
            RaceEventKind::Spawn { child } => {
                let snapshot = clocks[t].clone();
                join(spawn_seed.entry(child).or_default(), &snapshot);
            }
        }
    }

    let cycles = find_cycles(&lock_graph);
    RaceReport {
        events: events.len(),
        threads: clocks.len(),
        conflicts,
        cycles,
    }
}

/// Finds elementary cycles in the lock-order graph (DFS; one cycle
/// reported per back edge).
fn find_cycles(graph: &HashMap<VirtAddr, HashMap<VirtAddr, CycleEdge>>) -> Vec<LockCycle> {
    let mut cycles = Vec::new();
    let mut reported: HashSet<Vec<VirtAddr>> = HashSet::new();
    let mut nodes: Vec<VirtAddr> = graph.keys().copied().collect();
    nodes.sort_by_key(|a| a.as_u64());
    for &start in &nodes {
        // DFS from `start`, only visiting locks >= start so each cycle is
        // found once, rooted at its smallest lock.
        let mut stack: Vec<(VirtAddr, Vec<CycleEdge>)> = vec![(start, Vec::new())];
        while let Some((node, path)) = stack.pop() {
            if path.len() > 16 {
                continue; // bound the search depth
            }
            let Some(succs) = graph.get(&node) else {
                continue;
            };
            let mut nexts: Vec<(&VirtAddr, &CycleEdge)> = succs.iter().collect();
            nexts.sort_by_key(|(a, _)| a.as_u64());
            for (&next, &edge) in nexts {
                if next == start {
                    // The edge closes a cycle back to the root.
                    let mut edges = path.clone();
                    edges.push(edge);
                    let mut key: Vec<VirtAddr> = edges.iter().map(|e| e.held).collect();
                    key.sort_by_key(|a| a.as_u64());
                    if reported.insert(key) {
                        cycles.push(LockCycle { edges });
                    }
                } else if next.as_u64() > start.as_u64() && !path.iter().any(|e| e.held == next) {
                    let mut edges = path.clone();
                    edges.push(edge);
                    stack.push((next, edges));
                }
            }
        }
    }
    cycles
}

/// Renders the analysis for the terminal.
pub fn render_race_report(report: &RaceReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "analyzed {} events from {} threads: {} conflict(s), {} lock-order cycle(s)\n",
        report.events,
        report.threads,
        report.conflicts.len(),
        report.cycles.len()
    ));
    for c in &report.conflicts {
        out.push_str(&format!(
            "  DATA RACE at {}: {} by {} (node {}, site `{}`, t={}ns) \
             unordered with {} by {} (node {}, site `{}`, t={}ns)\n",
            c.addr,
            if c.first.is_write { "write" } else { "read" },
            c.first.task,
            c.first.node.0,
            c.first.site,
            c.first.time.as_nanos(),
            if c.second.is_write { "write" } else { "read" },
            c.second.task,
            c.second.node.0,
            c.second.site,
            c.second.time.as_nanos(),
        ));
    }
    for cycle in &report.cycles {
        out.push_str("  DEADLOCK POTENTIAL (lock-order cycle):\n");
        for e in &cycle.edges {
            out.push_str(&format!(
                "    {} acquired {} while holding {} (node {}, site `{}`)\n",
                e.task, e.acquired, e.held, e.node.0, e.site,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(task: u64, kind: RaceEventKind) -> RaceEvent {
        RaceEvent {
            time: SimTime::ZERO,
            node: NodeId(0),
            task: Tid(task),
            site: "test",
            kind,
        }
    }

    fn access(task: u64, addr: u64, is_write: bool) -> RaceEvent {
        ev(
            task,
            RaceEventKind::Access {
                addr: VirtAddr::new(addr),
                len: 4,
                is_write,
                atomic: false,
                value: 0,
            },
        )
    }

    #[test]
    fn unordered_write_write_is_a_conflict() {
        let events = vec![access(1, 0x100, true), access(2, 0x100, true)];
        let report = analyze_races(&events);
        assert_eq!(report.conflicts.len(), 1);
        assert!(report.conflicts[0].first.is_write);
        assert!(report.conflicts[0].second.is_write);
    }

    #[test]
    fn lock_ordered_accesses_do_not_conflict() {
        let lock = VirtAddr::new(0x40);
        let events = vec![
            ev(1, RaceEventKind::LockAcquire { lock }),
            access(1, 0x100, true),
            ev(1, RaceEventKind::LockRelease { lock }),
            ev(2, RaceEventKind::LockAcquire { lock }),
            access(2, 0x100, true),
            ev(2, RaceEventKind::LockRelease { lock }),
        ];
        let report = analyze_races(&events);
        assert!(report.is_clean(), "{report:?}");
    }

    #[test]
    fn read_read_never_conflicts() {
        let events = vec![access(1, 0x100, false), access(2, 0x100, false)];
        assert!(analyze_races(&events).is_clean());
    }

    #[test]
    fn atomics_do_not_conflict_with_atomics_but_do_with_plain() {
        let a = |task| {
            ev(
                task,
                RaceEventKind::Access {
                    addr: VirtAddr::new(0x200),
                    len: 4,
                    is_write: true,
                    atomic: true,
                    value: 0,
                },
            )
        };
        assert!(analyze_races(&[a(1), a(2)]).is_clean());
        let mixed = vec![a(1), access(2, 0x200, true)];
        assert_eq!(analyze_races(&mixed).conflicts.len(), 1);
    }

    #[test]
    fn barrier_rounds_order_across_the_round() {
        let b = VirtAddr::new(0x80);
        let events = vec![
            access(1, 0x300, true),
            ev(
                1,
                RaceEventKind::BarrierEnter {
                    barrier: b,
                    generation: 0,
                },
            ),
            ev(
                2,
                RaceEventKind::BarrierEnter {
                    barrier: b,
                    generation: 0,
                },
            ),
            ev(
                1,
                RaceEventKind::BarrierLeave {
                    barrier: b,
                    generation: 0,
                },
            ),
            ev(
                2,
                RaceEventKind::BarrierLeave {
                    barrier: b,
                    generation: 0,
                },
            ),
            access(2, 0x300, true),
        ];
        assert!(analyze_races(&events).is_clean());
    }

    #[test]
    fn spawn_orders_parent_writes_before_child() {
        let events = vec![
            access(1, 0x400, true),
            ev(1, RaceEventKind::Spawn { child: Tid(2) }),
            access(2, 0x400, false),
        ];
        assert!(analyze_races(&events).is_clean());
    }

    #[test]
    fn futex_wake_orders_waiter_after_waker() {
        let w = VirtAddr::new(0x90);
        let events = vec![
            access(1, 0x500, true),
            ev(1, RaceEventKind::FutexWake { addr: w }),
            ev(2, RaceEventKind::FutexWaitReturn { addr: w }),
            access(2, 0x500, false),
        ];
        assert!(analyze_races(&events).is_clean());
    }

    #[test]
    fn opposite_nest_order_is_a_cycle() {
        let a = VirtAddr::new(0x10);
        let b = VirtAddr::new(0x20);
        let events = vec![
            ev(1, RaceEventKind::LockAcquire { lock: a }),
            ev(1, RaceEventKind::LockAcquire { lock: b }),
            ev(1, RaceEventKind::LockRelease { lock: b }),
            ev(1, RaceEventKind::LockRelease { lock: a }),
            ev(2, RaceEventKind::LockAcquire { lock: b }),
            ev(2, RaceEventKind::LockAcquire { lock: a }),
            ev(2, RaceEventKind::LockRelease { lock: a }),
            ev(2, RaceEventKind::LockRelease { lock: b }),
        ];
        let report = analyze_races(&events);
        assert_eq!(report.cycles.len(), 1, "{report:?}");
        assert_eq!(report.cycles[0].edges.len(), 2);
    }

    #[test]
    fn consistent_nest_order_has_no_cycle() {
        let a = VirtAddr::new(0x10);
        let b = VirtAddr::new(0x20);
        let events = vec![
            ev(1, RaceEventKind::LockAcquire { lock: a }),
            ev(1, RaceEventKind::LockAcquire { lock: b }),
            ev(1, RaceEventKind::LockRelease { lock: b }),
            ev(1, RaceEventKind::LockRelease { lock: a }),
            ev(2, RaceEventKind::LockAcquire { lock: a }),
            ev(2, RaceEventKind::LockAcquire { lock: b }),
            ev(2, RaceEventKind::LockRelease { lock: b }),
            ev(2, RaceEventKind::LockRelease { lock: a }),
        ];
        assert!(analyze_races(&events).cycles.is_empty());
    }
}
