//! Source-level invariant lints.
//!
//! The protocol's correctness arguments lean on a few *encapsulation*
//! properties that the type system cannot fully enforce. This pass scans
//! the workspace sources (text-level, comment-aware, best-effort) and
//! fails CI when one is broken:
//!
//! * **nodeset-raw** — `NodeSet` values must come from the directory's
//!   own constructors; building one from a raw bitmask outside
//!   `core/src/directory.rs` bypasses the ≤64-node width discipline.
//! * **pte-mutation** — page-table entries may only be mutated by the
//!   protocol engines (fault path, dispatcher, process setup, the
//!   verification model) and the defining `dex-os` crate. A stray
//!   `page_table.set(...)` elsewhere silently breaks owner-set/PTE
//!   agreement.
//! * **diraction-wildcard** — every `match` consuming [`DirAction`]
//!   (`dex_core::DirAction`) must stay exhaustive. A `_ =>` wildcard
//!   would silently ignore actions added to the protocol later.
//! * **fabric-unwrap** — no `unwrap()` on the fabric send/receive paths
//!   (`crates/net` non-test code); messaging errors must propagate.
//! * **relaxed-ordering** — `Ordering::Relaxed` on shared atomics is
//!   reserved for an allowlist of counters and ID allocators whose
//!   values never order protocol state. A relaxed load/store on a
//!   protocol atomic would let the real-hardware build reorder what the
//!   simulator (and the exploration engine) treat as program order.
//! * **raw-park** — protocol and application code must block through
//!   the `dex_core::sync` primitives, never by calling `ctx.park()` /
//!   `ctx.unpark(..)` directly: raw parks bypass the schedule-policy
//!   choice point and the race recorder's wakeup edge, so `dex-check
//!   explore` could neither reorder nor order-justify them.
//! * **span-unguarded** — span instrumentation on the protocol hot path
//!   (`crates/core/src`) must follow the canonical zero-cost pattern:
//!   `alloc_id()` only behind `is_enabled()` on the same line, and
//!   `spans.record(...)` only inside an `if let Some(...)` guard (within
//!   a few lines above). An unguarded site would make tracing perturb
//!   the schedule, breaking the bit-identity guarantee.

use std::path::{Path, PathBuf};

/// One lint finding.
#[derive(Clone, Debug)]
pub struct LintHit {
    /// Rule identifier.
    pub rule: &'static str,
    /// File (workspace-relative).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending line, trimmed.
    pub text: String,
}

impl std::fmt::Display for LintHit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.text
        )
    }
}

/// Files allowed to construct `NodeSet` from raw bits.
const NODESET_ALLOWLIST: [&str; 1] = ["crates/core/src/directory.rs"];

/// Files allowed to mutate page-table entries (the protocol engines and
/// the defining crate; `crates/os/` as a whole is the definer).
const PTE_ALLOWLIST: [&str; 4] = [
    "crates/core/src/dispatch.rs",
    "crates/core/src/thread.rs",
    "crates/core/src/process.rs",
    "crates/core/src/directory/model.rs",
];

/// Files allowed to use `Ordering::Relaxed` on shared atomics: traffic
/// counters (fabric) and monotonic ID allocators (process) whose values
/// never order protocol state.
const RELAXED_ALLOWLIST: [&str; 2] = ["crates/net/src/fabric.rs", "crates/core/src/process.rs"];

/// Files allowed to call `ctx.park()` / `ctx.unpark(..)` directly — the
/// blocking primitives themselves. Everything else in the protocol and
/// application layers must go through `dex_core::sync`, which records
/// the wakeup edge for the race detector and routes the block through
/// the scheduler's choice points.
const PARK_ALLOWLIST: [&str; 3] = [
    "crates/core/src/sync.rs",
    "crates/core/src/process.rs",
    "crates/core/src/thread.rs",
];

/// Strips `//` comments (keeps string contents intact well enough for
/// these lints — the sources do not hide the flagged tokens in strings).
fn strip_line_comment(line: &str) -> &str {
    match line.find("//") {
        Some(pos) => &line[..pos],
        None => line,
    }
}

/// Lints one file's contents. `rel` is the workspace-relative path used
/// for allowlisting and reporting.
pub fn lint_source(rel: &str, content: &str) -> Vec<LintHit> {
    let mut hits = Vec::new();
    let in_os_crate = rel.starts_with("crates/os/");
    let in_net_crate = rel.starts_with("crates/net/src/");
    // The span hot path: everything in dex-core's sources except the
    // buffer's own definition.
    let span_hot_path = rel.starts_with("crates/core/src/") && rel != "crates/core/src/span.rs";
    let stripped: Vec<&str> = content.lines().map(strip_line_comment).collect();
    let mut in_tests = false;

    for (idx, raw) in content.lines().enumerate() {
        if raw.contains("#[cfg(test)]") {
            // Everything below the test-module marker is test code (the
            // workspace convention keeps test modules at the bottom).
            in_tests = true;
        }
        let line = strip_line_comment(raw);
        let lineno = idx + 1;
        let mut push = |rule: &'static str| {
            hits.push(LintHit {
                rule,
                file: rel.to_string(),
                line: lineno,
                text: raw.trim().to_string(),
            });
        };

        if !NODESET_ALLOWLIST.contains(&rel) && !in_tests {
            // Tuple-struct construction `NodeSet(bits)` — not `NodeSet::`.
            if let Some(pos) = line.find("NodeSet(") {
                let after = &line[pos + "NodeSet(".len()..];
                if !after.trim_start().starts_with(')') {
                    push("nodeset-raw");
                }
            }
        }

        if !in_os_crate && !PTE_ALLOWLIST.contains(&rel) && !in_tests {
            let mutates = ["\u{2e}set(", ".clear(", ".downgrade("].iter().any(|m| {
                line.find(m).is_some_and(|pos| {
                    let before = &line[..pos];
                    before.contains("page_table") || before.contains("ptes[")
                })
            });
            if mutates {
                push("pte-mutation");
            }
        }

        if in_net_crate && !in_tests && line.contains(".unwrap()") {
            push("fabric-unwrap");
        }

        if !RELAXED_ALLOWLIST.contains(&rel) && !in_tests && line.contains("Ordering::Relaxed") {
            push("relaxed-ordering");
        }

        let park_scope = rel.starts_with("crates/core/src/") || rel.starts_with("crates/apps/src/");
        if park_scope
            && !PARK_ALLOWLIST.contains(&rel)
            && !in_tests
            && (line.contains(".park()") || line.contains(".unpark("))
        {
            push("raw-park");
        }

        if span_hot_path && !in_tests {
            // `alloc_id()` must be conditioned on `is_enabled()` in the
            // same expression (the canonical one-liner).
            if line.contains(".alloc_id()") && !line.contains("is_enabled()") {
                push("span-unguarded");
            }
            // `spans.record(...)` must sit inside an `if let Some(...)`
            // guard; accept the guard up to 8 lines above (multi-line
            // `Span { ... }` literals put distance between them).
            if line.contains("spans.record(") {
                let guarded =
                    (idx.saturating_sub(8)..=idx).any(|i| stripped[i].contains("if let Some("));
                if !guarded {
                    push("span-unguarded");
                }
            }
        }
    }

    hits.extend(lint_diraction_matches(rel, content));
    hits
}

/// Flags `_ =>` wildcards at the top level of any `match` whose arms
/// consume `DirAction::` variants.
fn lint_diraction_matches(rel: &str, content: &str) -> Vec<LintHit> {
    let mut hits = Vec::new();
    // Join with comment stripping while remembering line starts. Stop at
    // the `#[cfg(test)]` marker — the exhaustiveness rule targets
    // production consumers; test helpers may pattern-pick one variant.
    let mut text = String::with_capacity(content.len());
    let mut line_starts = vec![0usize];
    for line in content.lines() {
        if line.contains("#[cfg(test)]") {
            break;
        }
        text.push_str(strip_line_comment(line));
        text.push('\n');
        line_starts.push(text.len());
    }
    let line_of = |pos: usize| -> usize {
        match line_starts.binary_search(&pos) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    };

    let bytes = text.as_bytes();
    let mut search = 0usize;
    while let Some(found) = text[search..].find("match ") {
        let start = search + found;
        search = start + 6;
        // Word boundary on the left.
        if start > 0 {
            let prev = bytes[start - 1] as char;
            if prev.is_alphanumeric() || prev == '_' || prev == '.' {
                continue;
            }
        }
        // Find the match-block body: first `{` at brace depth 0 relative
        // to the scrutinee expression.
        let mut i = start + 6;
        let mut paren = 0i32;
        let body_open = loop {
            if i >= bytes.len() {
                break None;
            }
            match bytes[i] as char {
                '(' | '[' => paren += 1,
                ')' | ']' => paren -= 1,
                '{' if paren == 0 => break Some(i),
                ';' if paren == 0 => break None, // not a match expression
                _ => {}
            }
            i += 1;
        };
        let Some(open) = body_open else { continue };
        // Scan the body, tracking depth; depth 1 = top-level arms.
        let mut depth = 0i32;
        let mut j = open;
        let mut top_level: Vec<(usize, usize)> = Vec::new(); // spans at depth 1
        let mut span_start = open + 1;
        while j < bytes.len() {
            match bytes[j] as char {
                '{' | '(' | '[' => {
                    if depth == 1 && j > span_start {
                        top_level.push((span_start, j));
                    }
                    depth += 1;
                }
                '}' | ')' | ']' => {
                    depth -= 1;
                    if depth == 1 {
                        span_start = j + 1;
                    }
                    if depth == 0 {
                        if j > span_start {
                            top_level.push((span_start, j));
                        }
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let body_end = j.min(bytes.len());
        let top_text: String = top_level
            .iter()
            .map(|&(a, b)| &text[a..b.min(body_end)])
            .collect::<Vec<_>>()
            .join("\u{0}");
        if !top_text.contains("DirAction::") {
            continue;
        }
        // A top-level wildcard arm?
        for &(a, b) in &top_level {
            let span = &text[a..b.min(body_end)];
            let mut from = 0usize;
            while let Some(p) = span[from..].find("_ =>") {
                let abs = from + p;
                let left_ok = span[..abs]
                    .chars()
                    .next_back()
                    .is_none_or(|c| !c.is_alphanumeric() && c != '_');
                if left_ok {
                    hits.push(LintHit {
                        rule: "diraction-wildcard",
                        file: rel.to_string(),
                        line: line_of(a + abs),
                        text: "`_ =>` in a match over DirAction".to_string(),
                    });
                    break;
                }
                from = abs + 4;
            }
        }
    }
    hits
}

/// Recursively collects the workspace `.rs` sources under `root/crates`
/// (skipping `target/` and `vendor/`).
fn collect_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.join("crates")];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name != "target" && name != "vendor" {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Lints every workspace source under `root`. Returns all findings.
///
/// # Errors
///
/// Propagates I/O errors reading the tree.
pub fn run_lint(root: &Path) -> std::io::Result<Vec<LintHit>> {
    let mut hits = Vec::new();
    for path in collect_sources(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let content = std::fs::read_to_string(&path)?;
        hits.extend(lint_source(&rel, &content));
    }
    Ok(hits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_nodeset_is_flagged_outside_directory() {
        let bad = "fn f() { let s = NodeSet(0b1011); }\n";
        let hits = lint_source("crates/core/src/handle.rs", bad);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "nodeset-raw");
        assert!(lint_source("crates/core/src/directory.rs", bad).is_empty());
    }

    #[test]
    fn nodeset_paths_and_comments_are_not_flagged() {
        let ok = "// NodeSet(bits) is private\nlet s = NodeSet::empty();\n";
        assert!(lint_source("crates/core/src/handle.rs", ok).is_empty());
    }

    #[test]
    fn pte_mutation_is_flagged_outside_the_allowlist() {
        let bad = "fn f(s: &mut AddressSpace) { s.page_table.set(vpn, Pte::READ_WRITE); }\n";
        let hits = lint_source("crates/core/src/handle.rs", bad);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "pte-mutation");
        assert!(lint_source("crates/core/src/thread.rs", bad).is_empty());
        assert!(lint_source("crates/os/src/mm.rs", bad).is_empty());
    }

    #[test]
    fn diraction_wildcard_is_flagged() {
        let bad = r#"
fn f(a: DirAction) {
    match a {
        DirAction::Grant { to, .. } => handle(to),
        _ => {}
    }
}
"#;
        let hits = lint_source("crates/core/src/x.rs", bad);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, "diraction-wildcard");
    }

    #[test]
    fn exhaustive_diraction_match_passes_even_with_nested_wildcards() {
        let ok = r#"
fn f(a: DirAction) {
    match a {
        DirAction::Grant { to, .. } => match to {
            Requester::Local { .. } => local(),
            _ => remote(),
        },
        DirAction::Retry { to } => retry(to),
    }
}
"#;
        assert!(lint_source("crates/core/src/x.rs", ok).is_empty());
    }

    #[test]
    fn wildcards_in_non_diraction_matches_pass() {
        let ok = "fn f(x: u32) { match x { 0 => a(), _ => b(), } }\n";
        assert!(lint_source("crates/core/src/x.rs", ok).is_empty());
    }

    #[test]
    fn fabric_unwrap_flagged_outside_tests_only() {
        let bad = "fn send() { chan.send(m).unwrap(); }\n";
        assert_eq!(lint_source("crates/net/src/fabric.rs", bad).len(), 1);
        assert!(lint_source("crates/core/src/thread.rs", bad).is_empty());
        let test_code = "#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\n";
        assert!(lint_source("crates/net/src/fabric.rs", test_code).is_empty());
    }

    #[test]
    fn unguarded_span_recording_is_flagged_on_the_hot_path() {
        let bad_alloc = "fn f() { let id = shared.spans.alloc_id(); }\n";
        let hits = lint_source("crates/core/src/thread.rs", bad_alloc);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, "span-unguarded");

        let bad_record = "fn f() { shared.spans.record(make_span()); }\n";
        let hits = lint_source("crates/core/src/dispatch.rs", bad_record);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, "span-unguarded");
    }

    #[test]
    fn canonically_guarded_span_sites_pass() {
        let ok = r#"
fn f() {
    let span = shared.spans.is_enabled().then(|| shared.spans.alloc_id());
    if let Some(id) = span {
        shared.spans.record(Span {
            id,
            parent: SpanId::NONE,
        });
    }
}
"#;
        assert!(lint_source("crates/core/src/thread.rs", ok).is_empty());
        // Outside the hot path (offline tooling, tests) the rule is off.
        let unguarded = "fn f() { spans.record(s); spans.alloc_id(); }\n";
        assert!(lint_source("crates/prof/src/span_codec.rs", unguarded).is_empty());
        assert!(lint_source("crates/core/src/span.rs", unguarded).is_empty());
        let test_code = "#[cfg(test)]\nmod tests {\n fn t() { spans.record(s); }\n}\n";
        assert!(lint_source("crates/core/src/thread.rs", test_code).is_empty());
    }

    #[test]
    fn relaxed_ordering_is_flagged_outside_the_allowlist() {
        let bad = "fn f() { c.fetch_add(1, Ordering::Relaxed); }\n";
        let hits = lint_source("crates/core/src/dispatch.rs", bad);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, "relaxed-ordering");
        // Counters and ID allocators are allowlisted.
        assert!(lint_source("crates/net/src/fabric.rs", bad).is_empty());
        assert!(lint_source("crates/core/src/process.rs", bad).is_empty());
        // Doc comments and test code do not count.
        let doc = "/// assert_eq!(hits.load(Ordering::Relaxed), 4);\nfn f() {}\n";
        assert!(lint_source("crates/sim/src/engine.rs", doc).is_empty());
        let test_code = "#[cfg(test)]\nmod tests {\n fn t() { c.load(Ordering::Relaxed); }\n}\n";
        assert!(lint_source("crates/core/src/dispatch.rs", test_code).is_empty());
    }

    #[test]
    fn raw_park_is_flagged_outside_the_sync_primitives() {
        let bad = "fn f(ctx: &Ctx) { ctx.park(); }\n";
        let hits = lint_source("crates/apps/src/bfs.rs", bad);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, "raw-park");
        let bad_unpark = "fn f(ctx: &Ctx) { ctx.unpark(w); }\n";
        let hits = lint_source("crates/core/src/cluster.rs", bad_unpark);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, "raw-park");
        // The blocking primitives themselves may park.
        assert!(lint_source("crates/core/src/sync.rs", bad).is_empty());
        assert!(lint_source("crates/core/src/thread.rs", bad).is_empty());
        assert!(lint_source("crates/core/src/process.rs", bad_unpark).is_empty());
        // The simulator and the fabric own their own blocking layer —
        // the rule scopes to the protocol and application crates.
        assert!(lint_source("crates/sim/src/engine.rs", bad).is_empty());
        assert!(lint_source("crates/net/src/pool.rs", bad).is_empty());
        // Comments and test code do not count.
        let ok = "// token semantics, like ctx.park()\nfn f() {}\n";
        assert!(lint_source("crates/apps/src/bfs.rs", ok).is_empty());
        let test_code = "#[cfg(test)]\nmod tests {\n fn t(ctx: &Ctx) { ctx.park(); }\n}\n";
        assert!(lint_source("crates/apps/src/bfs.rs", test_code).is_empty());
    }

    #[test]
    fn the_workspace_is_lint_clean() {
        // The crate's own CI invariant: the real tree has no violations.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root");
        let hits = run_lint(root).expect("lint walks the tree");
        assert!(
            hits.is_empty(),
            "workspace lint violations:\n{}",
            hits.iter()
                .map(|h| h.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
