//! Dynamic partial-order reduction for `dex-check explore`.
//!
//! The explorer enumerates schedules by forcing alternative picks at the
//! engine's choice points (see [`crate::explore`]). Naively every
//! alternative at every choice point spawns a subtree — factorial blowup.
//! Two classic reductions cut it down, both *dynamic* (driven by what the
//! executed schedule actually did, not by static analysis):
//!
//! * **Persistent-set style pruning** ([`worth_exploring`]): an
//!   alternative pick only deserves its own subtree when the thread it
//!   would run *conflicts* with the thread the executed schedule ran —
//!   they touch a common granule (at least one writing) or a common
//!   synchronization object — in the remainder of the execution.
//!   Independent steps commute: swapping them provably yields the same
//!   partial order, so the subtree is redundant. Footprints come from
//!   the happens-before event stream the race detector already records;
//!   steps that cannot be attributed to a recorded thread (dispatcher
//!   daemons, protocol timers) conservatively conflict with everything.
//! * **Sleep-set analogue** ([`rf_signature`]): executions are hashed by
//!   their per-thread event projections plus observed read values (their
//!   reads-from choice). Two interleavings with equal signatures are the
//!   same Mazurkiewicz trace — every thread runs through the same local
//!   states — so only the first is expanded.
//!
//! Both reductions are sound for the oracle: they only skip executions
//! equivalent to one already checked.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};

use dex_core::{RaceEvent, RaceEventKind, Tid};
use dex_sim::SimTime;

/// Conflict-tracking granule (matches the race detector).
const GRANULE: u64 = 8;

/// What one thread touched during (a suffix of) an execution.
#[derive(Clone, Debug, Default)]
pub struct Footprint {
    /// Granules read.
    pub reads: HashSet<u64>,
    /// Granules written.
    pub writes: HashSet<u64>,
    /// Synchronization objects operated on (locks, futex words,
    /// barriers).
    pub syncs: HashSet<u64>,
}

impl Footprint {
    /// Whether two footprints are *dependent*: a common granule with at
    /// least one side writing, or a common synchronization object.
    pub fn conflicts(&self, other: &Footprint) -> bool {
        if self.syncs.intersection(&other.syncs).next().is_some() {
            return true;
        }
        if self.writes.intersection(&other.writes).next().is_some() {
            return true;
        }
        if self.writes.intersection(&other.reads).next().is_some() {
            return true;
        }
        self.reads.intersection(&other.writes).next().is_some()
    }
}

/// Per-thread footprints over the events at or after `cutoff` (pass
/// [`SimTime::ZERO`] for the whole execution).
pub fn footprints_after(events: &[RaceEvent], cutoff: SimTime) -> HashMap<Tid, Footprint> {
    let mut out: HashMap<Tid, Footprint> = HashMap::new();
    for event in events {
        if event.time < cutoff {
            continue;
        }
        let fp = out.entry(event.task).or_default();
        match event.kind {
            RaceEventKind::Access {
                addr,
                len,
                is_write,
                ..
            } => {
                let start = addr.as_u64() / GRANULE;
                let end = (addr.as_u64() + len.max(1) as u64 - 1) / GRANULE;
                for g in start..=end {
                    if is_write {
                        fp.writes.insert(g);
                    } else {
                        fp.reads.insert(g);
                    }
                }
            }
            RaceEventKind::LockAcquire { lock } | RaceEventKind::LockRelease { lock } => {
                fp.syncs.insert(lock.as_u64());
            }
            RaceEventKind::FutexWake { addr } | RaceEventKind::FutexWaitReturn { addr } => {
                fp.syncs.insert(addr.as_u64());
            }
            RaceEventKind::BarrierEnter { barrier, .. }
            | RaceEventKind::BarrierLeave { barrier, .. } => {
                fp.syncs.insert(barrier.as_u64());
            }
            RaceEventKind::Spawn { .. } => {}
        }
    }
    out
}

/// Recovers the application [`Tid`] from an engine thread name
/// (`DexProcess::spawn` names them `app-tid-N`). `None` for dispatcher
/// daemons, remote workers, and other runtime threads.
pub fn tid_of_candidate(name: &str) -> Option<Tid> {
    name.strip_prefix("app-tid-")?.parse::<u64>().ok().map(Tid)
}

/// Persistent-set style filter: is forcing `alt_name` instead of
/// `picked_name` at a choice point at time `now` worth a subtree?
///
/// `events` is the executed schedule's happens-before stream. When either
/// side cannot be attributed to a recorded thread the answer is `true`
/// (conservative — runtime threads move protocol messages whose effects
/// the footprints do not capture).
pub fn worth_exploring(
    events: &[RaceEvent],
    now: SimTime,
    picked_name: &str,
    alt_name: &str,
) -> bool {
    let (Some(picked), Some(alt)) = (tid_of_candidate(picked_name), tid_of_candidate(alt_name))
    else {
        return true;
    };
    if picked == alt {
        // Same thread rescheduled (e.g. its timer vs. its wakeup) —
        // ordering against itself cannot change the partial order.
        return false;
    }
    let fps = footprints_after(events, now);
    let empty = Footprint::default();
    let a = fps.get(&picked).unwrap_or(&empty);
    let b = fps.get(&alt).unwrap_or(&empty);
    a.conflicts(b)
}

/// Hashes an execution down to its Mazurkiewicz-trace signature:
/// per-thread projections of the happens-before stream, including the
/// values reads observed (the reads-from function). Equal signatures ⇒
/// equivalent executions ⇒ expanding both is redundant.
pub fn rf_signature(events: &[RaceEvent]) -> u64 {
    let mut per_thread: HashMap<Tid, Vec<u64>> = HashMap::new();
    for event in events {
        let seq = per_thread.entry(event.task).or_default();
        match event.kind {
            RaceEventKind::Access {
                addr,
                len,
                is_write,
                atomic,
                value,
            } => {
                seq.push(1);
                seq.push(addr.as_u64());
                seq.push(len as u64);
                seq.push(is_write as u64 | (atomic as u64) << 1);
                seq.push(value);
            }
            RaceEventKind::LockAcquire { lock } => {
                seq.push(2);
                seq.push(lock.as_u64());
            }
            RaceEventKind::LockRelease { lock } => {
                seq.push(3);
                seq.push(lock.as_u64());
            }
            RaceEventKind::FutexWake { addr } => {
                seq.push(4);
                seq.push(addr.as_u64());
            }
            RaceEventKind::FutexWaitReturn { addr } => {
                seq.push(5);
                seq.push(addr.as_u64());
            }
            RaceEventKind::BarrierEnter {
                barrier,
                generation,
            } => {
                seq.push(6);
                seq.push(barrier.as_u64());
                seq.push(generation as u64);
            }
            RaceEventKind::BarrierLeave {
                barrier,
                generation,
            } => {
                seq.push(7);
                seq.push(barrier.as_u64());
                seq.push(generation as u64);
            }
            RaceEventKind::Spawn { child } => {
                seq.push(8);
                seq.push(child.0);
            }
        }
    }
    let mut threads: Vec<(Tid, Vec<u64>)> = per_thread.into_iter().collect();
    threads.sort_by_key(|(tid, _)| tid.0);
    let mut hasher = DefaultHasher::new();
    threads.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_core::NodeId;
    use dex_os::VirtAddr;

    fn access(task: u64, addr: u64, is_write: bool, value: u64) -> RaceEvent {
        RaceEvent {
            time: SimTime::ZERO,
            node: NodeId(0),
            task: Tid(task),
            site: "test",
            kind: RaceEventKind::Access {
                addr: VirtAddr::new(addr),
                len: 8,
                is_write,
                atomic: false,
                value,
            },
        }
    }

    #[test]
    fn candidate_names_parse_back_to_tids() {
        assert_eq!(tid_of_candidate("app-tid-3"), Some(Tid(3)));
        assert_eq!(tid_of_candidate("dispatcher-node0"), None);
        assert_eq!(tid_of_candidate("app-tid-x"), None);
    }

    #[test]
    fn disjoint_threads_are_independent() {
        let events = vec![access(1, 0x100, true, 1), access(2, 0x900, true, 2)];
        assert!(!worth_exploring(
            &events,
            SimTime::ZERO,
            "app-tid-1",
            "app-tid-2"
        ));
    }

    #[test]
    fn write_write_overlap_conflicts() {
        let events = vec![access(1, 0x100, true, 1), access(2, 0x100, true, 2)];
        assert!(worth_exploring(
            &events,
            SimTime::ZERO,
            "app-tid-1",
            "app-tid-2"
        ));
    }

    #[test]
    fn read_read_overlap_is_independent() {
        let events = vec![access(1, 0x100, false, 0), access(2, 0x100, false, 0)];
        assert!(!worth_exploring(
            &events,
            SimTime::ZERO,
            "app-tid-1",
            "app-tid-2"
        ));
    }

    #[test]
    fn runtime_threads_conservatively_conflict() {
        assert!(worth_exploring(
            &[],
            SimTime::ZERO,
            "dispatcher-node0",
            "app-tid-1"
        ));
    }

    #[test]
    fn same_thread_never_conflicts_with_itself() {
        let events = vec![access(1, 0x100, true, 1)];
        assert!(!worth_exploring(
            &events,
            SimTime::ZERO,
            "app-tid-1",
            "app-tid-1"
        ));
    }

    #[test]
    fn signature_tracks_read_values_and_ignores_interleaving() {
        let a = vec![access(1, 0x100, true, 1), access(2, 0x200, false, 0)];
        let b = vec![access(2, 0x200, false, 0), access(1, 0x100, true, 1)];
        assert_eq!(rf_signature(&a), rf_signature(&b), "interleaving-invariant");
        let c = vec![access(1, 0x100, true, 1), access(2, 0x200, false, 9)];
        assert_ne!(rf_signature(&a), rf_signature(&c), "read value matters");
    }
}
