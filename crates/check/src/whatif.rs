//! The causal what-if profiler behind `dex-check whatif`.
//!
//! Coz-style virtual speedups, made exact by determinism: for each named
//! cost component ([`CostModel`] kernel-path constants and [`NetConfig`]
//! fabric constants), scale its time cost by a factor, rerun the chosen
//! workload — bit-reproducibly — and record the end-to-end movement. The
//! ranked report answers "what is worth optimizing": a component whose
//! −50% perturbation moves the run −31% *causes* a third of the runtime;
//! one that moves nothing is off the critical path entirely.
//!
//! The rendering and the `# dex-whatif v1` codec live in `dex-prof`
//! ([`dex_prof::whatif`]); this module owns the workloads and the sweep.

use dex_core::{Cluster, ClusterConfig, CostModel, RunReport};
use dex_net::NetConfig;
use dex_prof::{WhatIfEntry, WhatIfReport};

/// One sweepable workload: a named deterministic scenario rerun once per
/// perturbation.
#[derive(Clone, Copy)]
pub struct WhatIfWorkload {
    /// CLI name.
    pub name: &'static str,
    /// One-line description for usage output.
    pub description: &'static str,
    run: fn(CostModel, NetConfig) -> RunReport,
}

/// A retry-dominated scenario: two writers on different nodes fault on
/// the same page *simultaneously* every round (the barrier re-syncs
/// their phases), so one write per round collides with the other's
/// in-flight invalidation transaction and pays the retry back-off — the
/// paper's slow mode, and the dominant cost here by design.
fn pingpong(cost: CostModel, net: NetConfig) -> RunReport {
    let config = ClusterConfig::new(3).with_cost(cost).with_net(net);
    Cluster::new(config).run(|p| {
        let v = p.alloc_vec_aligned::<u64>(512, "contended");
        let barrier = p.new_barrier(2, "round");
        for node in [1u16, 2u16] {
            p.spawn(move |ctx| {
                ctx.set_site("whatif.pingpong");
                ctx.migrate(node).expect("node exists");
                for round in 0..24u64 {
                    barrier.wait(ctx);
                    v.set(ctx, 0, round);
                }
            });
        }
    })
}

/// A migration-dominated scenario: threads bounce across nodes touching
/// almost no data, so first-migration remote-worker setup and the other
/// Table II phases dominate.
fn migrate(cost: CostModel, net: NetConfig) -> RunReport {
    let config = ClusterConfig::new(4).with_cost(cost).with_net(net);
    Cluster::new(config).run(|p| {
        let v = p.alloc_vec::<u64>(64, "tokens");
        for t in 0..2u16 {
            p.spawn(move |ctx| {
                ctx.set_site("whatif.migrate");
                for hop in 0..3u16 {
                    let dst = 1 + (t + hop) % 3;
                    ctx.migrate(dst).expect("node exists");
                    v.set(ctx, (t * 3 + hop) as usize, hop as u64);
                }
                ctx.migrate_back().expect("return home");
            });
        }
    })
}

/// The `shard` bench shape at smoke size: sharded directory homes with
/// two-hop owner-forwarded grants, ownership ping-ponging between two
/// writers while a third node pulls read replicas.
fn shard(cost: CostModel, net: NetConfig) -> RunReport {
    let config = ClusterConfig::new(4)
        .with_cost(cost)
        .with_net(net)
        .with_directory_shards(4);
    Cluster::new(config).run(|p| {
        let v = p.alloc_vec_aligned::<u64>(4 * 512, "shard_pingpong");
        p.spawn(move |ctx| {
            ctx.set_site("whatif.shard");
            ctx.migrate(1).expect("node 1 exists");
            for page in 0..4 {
                v.set(ctx, page * 512, page as u64);
            }
            for round in 0..3usize {
                ctx.migrate(3).expect("node 3 exists");
                for page in 0..4 {
                    let _ = v.get(ctx, page * 512);
                }
                let writer = if round % 2 == 0 { 2 } else { 1 };
                ctx.migrate(writer).expect("writer node exists");
                for page in 0..4 {
                    v.set(ctx, page * 512, round as u64);
                }
            }
        });
    })
}

/// The sweepable workloads.
pub const WHATIF_WORKLOADS: &[WhatIfWorkload] = &[
    WhatIfWorkload {
        name: "pingpong",
        description: "two writers colliding on one cell (retry-dominated)",
        run: pingpong,
    },
    WhatIfWorkload {
        name: "migrate",
        description: "threads hopping across nodes (migration-dominated)",
        run: migrate,
    },
    WhatIfWorkload {
        name: "shard",
        description: "sharded-directory ping-pong with a reader (two-hop grants)",
        run: shard,
    },
];

/// The workload names, for usage output.
pub fn whatif_workload_names() -> Vec<&'static str> {
    WHATIF_WORKLOADS.iter().map(|w| w.name).collect()
}

/// Finds a workload by CLI name.
pub fn find_whatif_workload(name: &str) -> Option<WhatIfWorkload> {
    WHATIF_WORKLOADS.iter().find(|w| w.name == name).copied()
}

/// Every perturbable component: the [`CostModel`] registry followed by
/// the `net.`-prefixed [`NetConfig`] registry.
pub fn full_component_registry() -> Vec<String> {
    CostModel::components()
        .iter()
        .chain(NetConfig::components())
        .map(|s| s.to_string())
        .collect()
}

/// Builds the (cost, net) pair with one component's time cost scaled by
/// `factor`; the component name decides which registry applies.
fn perturbed_models(component: &str, factor: f64) -> Result<(CostModel, NetConfig), String> {
    let mut cost = CostModel::default();
    let mut net = NetConfig::default();
    if component.starts_with("net.") {
        net.perturb(component, factor)?;
    } else {
        cost.perturb(component, factor)?;
    }
    Ok((cost, net))
}

/// The result of one sweep.
pub struct WhatIfRun {
    /// The ranked attribution report (codec + rendering in `dex-prof`).
    pub report: WhatIfReport,
    /// Whether the unperturbed baseline reran bit-identically — the
    /// determinism the exactness claim rests on. A `false` here means
    /// the virtual-speedup deltas cannot be trusted.
    pub deterministic: bool,
}

/// Sweeps `components` at `factor` over the named workload: one baseline
/// run (plus a determinism rerun), then one perturbed rerun per
/// component.
pub fn run_whatif(workload: &str, components: &[String], factor: f64) -> Result<WhatIfRun, String> {
    let w = find_whatif_workload(workload).ok_or_else(|| {
        format!(
            "unknown what-if workload `{workload}` (expected one of {:?})",
            whatif_workload_names()
        )
    })?;
    if !factor.is_finite() || factor <= 0.0 {
        return Err(format!(
            "perturbation factor must be finite and positive, got {factor}"
        ));
    }
    let baseline = (w.run)(CostModel::default(), NetConfig::default());
    let again = (w.run)(CostModel::default(), NetConfig::default());
    let deterministic = baseline.virtual_time == again.virtual_time;
    let mut entries = Vec::with_capacity(components.len());
    for component in components {
        let (cost, net) = perturbed_models(component, factor)?;
        let perturbed = (w.run)(cost, net);
        entries.push(WhatIfEntry {
            component: component.clone(),
            factor,
            perturbed_ns: perturbed.virtual_time.as_nanos(),
        });
    }
    Ok(WhatIfRun {
        report: WhatIfReport {
            workload: w.name.to_string(),
            baseline_ns: baseline.virtual_time.as_nanos(),
            entries,
        },
        deterministic,
    })
}

/// The component set the self-test sweeps: `retry_backoff` must dominate
/// the ping-pong scenario, and `backward_update` — no thread ever
/// migrates backward there — must have exactly zero causal impact.
pub const SELF_TEST_COMPONENTS: &[&str] = &[
    "retry_backoff",
    "protocol_handling",
    "fault_entry",
    "fault_fixup",
    "backward_update",
];

/// Proves the profiler has teeth: on the retry-dominated ping-pong
/// scenario, halving `retry_backoff` must produce the largest end-to-end
/// movement (rank 1), and the deliberately irrelevant `backward_update`
/// must rank last with zero movement. Returns the ranking lines on
/// success; errors describe which expectation failed.
pub fn whatif_self_test() -> Result<Vec<String>, String> {
    let components: Vec<String> = SELF_TEST_COMPONENTS.iter().map(|s| s.to_string()).collect();
    let run = run_whatif("pingpong", &components, 0.5)?;
    if !run.deterministic {
        return Err("baseline rerun was not bit-identical; virtual speedups are unsound".into());
    }
    let report = &run.report;
    let ranked = report.ranked();
    let mut lines = Vec::with_capacity(ranked.len() + 1);
    lines.push(format!(
        "pingpong baseline {} ns, factor 0.5, {} component(s)",
        report.baseline_ns,
        ranked.len()
    ));
    for (i, e) in ranked.iter().enumerate() {
        lines.push(format!(
            "rank {}: {} ({:+.1}%)",
            i + 1,
            e.component,
            e.delta_percent(report.baseline_ns)
        ));
    }
    let first = ranked.first().ok_or("empty sweep")?;
    if first.component != "retry_backoff" {
        return Err(format!(
            "expected retry_backoff to rank first on the retry-dominated scenario, got {} ({:+.1}%)",
            first.component,
            first.delta_percent(report.baseline_ns)
        ));
    }
    if first.delta_percent(report.baseline_ns) > -10.0 {
        return Err(format!(
            "halving retry_backoff moved the run only {:+.1}% — retries are not dominating",
            first.delta_percent(report.baseline_ns)
        ));
    }
    let last = ranked.last().expect("nonempty");
    if last.component != "backward_update" {
        return Err(format!(
            "expected backward_update to rank last (no backward migrations), got {}",
            last.component
        ));
    }
    if last.delta_ns(report.baseline_ns) != 0 {
        return Err(format!(
            "backward_update moved the run by {} ns; it must be causally irrelevant",
            last.delta_ns(report.baseline_ns)
        ));
    }
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_test_passes() {
        let lines = whatif_self_test().expect("self-test");
        assert!(lines.iter().any(|l| l.contains("rank 1: retry_backoff")));
        assert!(lines.last().unwrap().contains("backward_update"));
    }

    #[test]
    fn migration_workload_is_dominated_by_worker_setup() {
        let components = vec![
            "remote_worker_setup".to_string(),
            "retry_backoff".to_string(),
        ];
        let run = run_whatif("migrate", &components, 0.5).unwrap();
        assert!(run.deterministic);
        let ranked = run.report.ranked();
        assert_eq!(ranked[0].component, "remote_worker_setup");
        assert!(ranked[0].delta_percent(run.report.baseline_ns) < -5.0);
    }

    #[test]
    fn net_components_sweep_through_the_same_api() {
        let components = vec!["net.verb_latency".to_string()];
        let run = run_whatif("shard", &components, 2.0).unwrap();
        // Slowing every message leg must slow the run.
        assert!(run.report.entries[0].delta_ns(run.report.baseline_ns) > 0);
    }

    #[test]
    fn unknown_workload_and_component_error() {
        assert!(run_whatif("nope", &[], 0.5).is_err());
        assert!(run_whatif("pingpong", &["bogus".to_string()], 0.5).is_err());
        assert!(run_whatif("pingpong", &[], 0.0).is_err());
    }

    #[test]
    fn full_registry_covers_both_models() {
        let reg = full_component_registry();
        assert!(reg.iter().any(|c| c == "retry_backoff"));
        assert!(reg.iter().any(|c| c == "net.verb_latency"));
        assert_eq!(
            reg.len(),
            CostModel::components().len() + NetConfig::components().len()
        );
    }
}
