//! `dex-check explore` — systematic schedule exploration over the real
//! simulator, with a sequential-consistency oracle.
//!
//! The engine's [`dex_sim::SchedulePolicy`] hook routes every
//! nondeterministic choice point — same-instant runnable ties,
//! park-timeout races, and same-arrival fabric deliveries — through a
//! policy object. The explorer exploits that: it runs a scenario under a
//! recording policy, then forces *alternative* picks at recorded choice
//! points, enumerating genuinely different interleavings depth-first.
//! Every execution's value-carrying access stream is judged by the
//! offline SC oracle ([`crate::check_sequential_consistency`]).
//!
//! Reductions (see [`crate::dpor`]): persistent-set style independence
//! pruning on thread footprints, plus reads-from-signature memoization
//! so equivalent interleavings are never expanded twice. Two dispatcher
//! daemons are treated as independent at a tie: each only dequeues from
//! its own inbox, virtual time does not advance between same-instant
//! steps, and any downstream effect of their mutual order (same-instant
//! sends racing into one inbox) resurfaces as a later delivery tie that
//! is itself a choice point.
//!
//! Search modes:
//!
//! * **exhaustive DFS** (default) — complete up to the execution budget;
//!   when the frontier drains the scenario is *verified* over the
//!   DPOR-reduced schedule space;
//! * **bounded-preemption** (`--preemptions N`) — only prefixes with at
//!   most `N` non-default picks are expanded (most protocol bugs need
//!   very few preemptions);
//! * **seeded random walk** (`--seed S`) — PCT-style sampling for
//!   budgets too small to be exhaustive.
//!
//! A violating execution is **minimized** (non-default picks are
//! re-zeroed greedily while the failure reproduces) and emitted as a
//! replayable [`ScheduleLog`] that `dex-check replay` re-executes and
//! re-judges.

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

use dex_core::{Cluster, ClusterConfig, DexProcess, ProtocolMutation, RaceEvent, ALL_MUTATIONS};
use dex_sim::{
    FaultPlan, ScheduleChoice, ScheduleLog, SchedulePolicy, SchedulePolicyHandle, SimRng, SimTime,
};

use crate::dpor::{rf_signature, worth_exploring};
use crate::sc::{check_sequential_consistency, render_sc_report};

/// Cap on simulator events per explored execution (livelock guard for
/// mutated protocols).
const EXEC_EVENT_BUDGET: u64 = 200_000;

// ---------------------------------------------------------------------
// Recording / forcing policy
// ---------------------------------------------------------------------

/// One decision point the policy resolved (only points with more than
/// one option are recorded — singleton frontiers cannot branch).
#[derive(Clone, Debug)]
pub struct ChoiceRecord {
    /// Virtual time of the decision.
    pub time: SimTime,
    /// Choice-point kind (`event` for scheduler ties, else the
    /// `SimCtx::choose` tag, e.g. `fabric.recv`).
    pub tag: String,
    /// Number of options.
    pub n: usize,
    /// The option taken.
    pub picked: usize,
    /// Human-readable option labels (thread names for `event`).
    pub labels: Vec<String>,
}

enum Mode {
    /// Force `forced[k]` at decision point `k`, default pick beyond.
    Dfs { forced: Vec<usize> },
    /// Seeded uniform pick at every decision point.
    Random { rng: SimRng },
}

struct PolicyState {
    mode: Mode,
    taken: Vec<ChoiceRecord>,
}

/// The policy installed on the engine for one explored execution.
#[derive(Clone)]
struct ExplorePolicy {
    state: Arc<Mutex<PolicyState>>,
}

impl ExplorePolicy {
    fn new(mode: Mode) -> Self {
        ExplorePolicy {
            state: Arc::new(Mutex::new(PolicyState {
                mode,
                taken: Vec::new(),
            })),
        }
    }

    fn pick(&self, time: SimTime, tag: &str, labels: Vec<String>) -> usize {
        let mut st = self.state.lock().expect("policy state poisoned");
        let k = st.taken.len();
        let n = labels.len();
        let picked = match &mut st.mode {
            Mode::Dfs { forced } => forced.get(k).copied().unwrap_or(0).min(n - 1),
            Mode::Random { rng } => rng.gen_range(0..n as u64) as usize,
        };
        st.taken.push(ChoiceRecord {
            time,
            tag: tag.to_string(),
            n,
            picked,
            labels,
        });
        picked
    }

    fn taken(&self) -> Vec<ChoiceRecord> {
        self.state
            .lock()
            .expect("policy state poisoned")
            .taken
            .clone()
    }
}

impl SchedulePolicy for ExplorePolicy {
    fn choose_event(&mut self, now: SimTime, candidates: &[ScheduleChoice]) -> usize {
        if candidates.len() <= 1 {
            return 0;
        }
        let labels = candidates
            .iter()
            .map(|c| {
                if c.is_timer {
                    format!("{}(timeout)", c.name)
                } else {
                    c.name.clone()
                }
            })
            .collect();
        self.pick(now, "event", labels)
    }

    fn choose_value(&mut self, tag: &str, n: usize) -> usize {
        if n <= 1 {
            return 0;
        }
        // `choose` carries no timestamp; attribute to the latest decision
        // time (ZERO first), which only widens footprints — conservative.
        let time = {
            let st = self.state.lock().expect("policy state poisoned");
            st.taken.last().map_or(SimTime::ZERO, |c| c.time)
        };
        let labels = (0..n).map(|i| format!("{tag}#{i}")).collect();
        self.pick(time, tag, labels)
    }
}

// ---------------------------------------------------------------------
// Scenarios
// ---------------------------------------------------------------------

/// A small DSM workload for schedule exploration. Workloads never assert
/// on shared values — the oracle is the judge, so a protocol bug
/// surfaces as an SC violation, not an opaque panic.
#[derive(Clone, Copy)]
pub struct ExploreScenario {
    /// CLI name.
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// Cluster size.
    pub nodes: usize,
    /// Application threads spawned.
    pub threads: usize,
    /// Whether a deterministic crash plan is composed in.
    pub with_faults: bool,
    /// Directory shard count (1 — classic single-origin directory;
    /// &gt;1 — sharded homes with owner-forwarded two-hop grants).
    pub dir_shards: usize,
    setup: fn(&DexProcess<'_>),
}

impl std::fmt::Debug for ExploreScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExploreScenario")
            .field("name", &self.name)
            .field("nodes", &self.nodes)
            .field("threads", &self.threads)
            .finish()
    }
}

/// All built-in exploration workloads.
pub const EXPLORE_SCENARIOS: [ExploreScenario; 6] = [
    ExploreScenario {
        name: "mp",
        description: "message passing: origin writes, barrier, two nodes read (2 nodes, 3 threads)",
        nodes: 2,
        threads: 3,
        with_faults: false,
        dir_shards: 1,
        setup: mp_setup,
    },
    ExploreScenario {
        name: "invalidate",
        description: "ownership ping-pong on one shared page: remote write, origin write-back, \
                      cross reads (2 nodes, 2 threads)",
        nodes: 2,
        threads: 2,
        with_faults: false,
        dir_shards: 1,
        setup: invalidate_setup,
    },
    ExploreScenario {
        name: "atomics",
        description:
            "cluster-wide fetch-add from two nodes, barrier, final read (2 nodes, 3 threads)",
        nodes: 2,
        threads: 3,
        with_faults: false,
        dir_shards: 1,
        setup: atomics_setup,
    },
    ExploreScenario {
        name: "crash",
        description:
            "message passing on nodes 0-1 while node 2 fail-stops mid-run (3 nodes, 2 threads)",
        nodes: 3,
        threads: 2,
        with_faults: true,
        dir_shards: 1,
        setup: crash_setup,
    },
    ExploreScenario {
        name: "mp-fwd",
        description: "message passing under sharded directory homes: pages hash across both \
                      nodes, so faults route via a non-origin home and grants are \
                      owner-forwarded (2 nodes, 3 threads, 2 shards)",
        nodes: 2,
        threads: 3,
        with_faults: false,
        dir_shards: 2,
        setup: mp_setup,
    },
    ExploreScenario {
        name: "invalidate-fwd",
        description: "ownership ping-pong under sharded homes: two-hop forwarded grants race \
                      batched invalidation fan-out (2 nodes, 2 threads, 2 shards)",
        nodes: 2,
        threads: 2,
        with_faults: false,
        dir_shards: 2,
        setup: invalidate_setup,
    },
];

/// The CLI names of every exploration workload.
pub fn explore_scenario_names() -> Vec<&'static str> {
    EXPLORE_SCENARIOS.iter().map(|s| s.name).collect()
}

/// Looks up a workload by CLI name.
pub fn find_explore_scenario(name: &str) -> Option<ExploreScenario> {
    EXPLORE_SCENARIOS.iter().find(|s| s.name == name).copied()
}

/// Writer publishes, barrier, readers on both nodes observe. A stale or
/// zeroed grant makes a reader observe 0 after the write is ordered
/// before it.
fn mp_setup(p: &DexProcess<'_>) {
    let x = p.alloc_cell_aligned::<u64>(0, "mp.x");
    let b = p.new_barrier(3, "mp.barrier");
    p.spawn(move |ctx| {
        ctx.set_site("mp.writer");
        x.set(ctx, 42);
        b.wait(ctx);
    });
    p.spawn(move |ctx| {
        ctx.migrate(1).unwrap();
        ctx.set_site("mp.remote-reader");
        b.wait(ctx);
        let _ = x.get(ctx);
    });
    p.spawn(move |ctx| {
        ctx.set_site("mp.local-reader");
        b.wait(ctx);
        let _ = x.get(ctx);
    });
}

/// Two u64 slots on one page of their own (page-aligned so the barrier
/// word never shares it — barrier traffic would flush the page early and
/// mask the interesting transitions). The remote thread takes exclusive
/// ownership (invalidating the origin), then the origin writes the page
/// back (revoking the remote writer with `needs_data`), then both sides
/// read what the other wrote. Exercises origin-PTE clearing and
/// dirty-data hand-off on ownership transfer.
fn invalidate_setup(p: &DexProcess<'_>) {
    let v = p.alloc_vec_aligned::<u64>(2, "inv.page");
    let b = p.new_barrier(2, "inv.barrier");
    p.spawn(move |ctx| {
        ctx.set_site("inv.origin");
        b.wait(ctx); // A: remote write done
        v.set(ctx, 1, 5);
        b.wait(ctx); // B: origin write done
        let _ = v.get(ctx, 0);
    });
    p.spawn(move |ctx| {
        ctx.migrate(1).unwrap();
        ctx.set_site("inv.remote");
        v.set(ctx, 0, 2);
        b.wait(ctx); // A
        b.wait(ctx); // B
        let _ = v.get(ctx, 1);
        let _ = v.get(ctx, 0);
    });
}

/// Two nodes hammer one cluster-atomic counter; a final reader (ordered
/// by the barrier) observes the sum. Lost updates surface as a read of a
/// value that is either never deposited or provably overwritten.
fn atomics_setup(p: &DexProcess<'_>) {
    let counter = p.alloc_cell_aligned::<u64>(0, "atomics.counter");
    let b = p.new_barrier(3, "atomics.barrier");
    for w in 0..2u16 {
        p.spawn(move |ctx| {
            ctx.migrate(w).unwrap();
            ctx.set_site(if w == 0 {
                "atomics.home"
            } else {
                "atomics.remote"
            });
            for _ in 0..3 {
                counter.rmw(ctx, |v| v + 1);
            }
            b.wait(ctx);
        });
    }
    p.spawn(move |ctx| {
        ctx.set_site("atomics.reader");
        b.wait(ctx);
        let _ = counter.get(ctx);
    });
}

/// Message passing between nodes 0 and 1 while node 2 — which holds no
/// data — fail-stops mid-run. Crash handling (directory reclaim and
/// broadcast) injects extra protocol events whose ordering the explorer
/// walks; the oracle must stay clean in every interleaving.
fn crash_setup(p: &DexProcess<'_>) {
    let x = p.alloc_cell_aligned::<u64>(0, "crash.x");
    let b = p.new_barrier(2, "crash.barrier");
    p.spawn(move |ctx| {
        ctx.set_site("crash.writer");
        x.set(ctx, 7);
        b.wait(ctx);
    });
    p.spawn(move |ctx| {
        ctx.migrate(1).unwrap();
        ctx.set_site("crash.reader");
        b.wait(ctx);
        let _ = x.get(ctx);
    });
}

/// The fault plan composed into the `crash` scenario: node 2 fail-stops
/// at t = 30 µs, mid-way through the migration/fault traffic.
fn crash_plan() -> FaultPlan {
    let mut plan = FaultPlan::new();
    plan.crash(2, SimTime::ZERO + dex_sim::SimDuration::from_micros(30));
    plan
}

// ---------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------

/// One explored execution.
#[derive(Debug)]
struct Execution {
    taken: Vec<ChoiceRecord>,
    events: Vec<RaceEvent>,
    panic: Option<String>,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `scenario` once under `mode`, recording every decision point and
/// the value-carrying access stream. Panics (deadlock, event-budget
/// blowout, simulated segfault) are caught and reported as part of the
/// execution — under a mutated protocol they count as a detection.
fn run_once(scenario: &ExploreScenario, mutation: ProtocolMutation, mode: Mode) -> Execution {
    let policy = ExplorePolicy::new(mode);
    let handle = SchedulePolicyHandle::new(policy.clone());
    let setup = scenario.setup;
    let mut config = ClusterConfig::new(scenario.nodes)
        .with_race_detection()
        .with_event_budget(EXEC_EVENT_BUDGET)
        .with_mutation(mutation)
        .with_directory_shards(scenario.dir_shards)
        .with_schedule_policy(handle);
    if scenario.with_faults {
        config = config.with_fault_plan(crash_plan());
    }
    // Panics here are expected outcomes (deadlock detection, event-budget
    // livelock guards under mutated protocols) and are reported through
    // the judge — silence the default hook's backtrace spew for the
    // guarded window.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = catch_unwind(AssertUnwindSafe(|| {
        Cluster::new(config).run(setup).race_events
    }));
    std::panic::set_hook(prev_hook);
    match result {
        Ok(events) => Execution {
            taken: policy.taken(),
            events,
            panic: None,
        },
        Err(payload) => Execution {
            taken: policy.taken(),
            events: Vec::new(),
            panic: Some(panic_message(payload)),
        },
    }
}

/// Judges one execution: a panic or an SC violation is a failure.
fn judge(exec: &Execution) -> Option<String> {
    if let Some(msg) = &exec.panic {
        return Some(format!("execution panicked: {msg}"));
    }
    let report = check_sequential_consistency(&exec.events);
    if report.is_clean() {
        None
    } else {
        Some(render_sc_report(&report).trim_end().to_string())
    }
}

// ---------------------------------------------------------------------
// The explorer
// ---------------------------------------------------------------------

/// Knobs for one exploration run.
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Maximum executions (DFS frontier or random samples).
    pub budget: usize,
    /// Bounded-preemption search: expand only prefixes with at most this
    /// many non-default picks. `None` — unbounded (full DFS).
    pub preemptions: Option<usize>,
    /// Switch to a seeded random walk instead of DFS.
    pub seed: Option<u64>,
    /// Protocol mutation to inject (mutation testing of the checker).
    pub mutation: ProtocolMutation,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            budget: 2000,
            preemptions: None,
            seed: None,
            mutation: ProtocolMutation::None,
        }
    }
}

/// A minimized, replayable failing schedule.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// The forced picks that reproduce the failure.
    pub forced: Vec<usize>,
    /// Why the execution failed (oracle verdict or panic).
    pub reason: String,
    /// Replayable schedule (see `dex-check replay`).
    pub log: ScheduleLog,
}

/// What one exploration run found.
#[derive(Clone, Debug)]
pub struct ExploreOutcome {
    /// The scenario explored.
    pub scenario: &'static str,
    /// The injected mutation (`none` for a verification run).
    pub mutation: ProtocolMutation,
    /// Executions actually run.
    pub executions: usize,
    /// Prefixes skipped because the execution was equivalent to an
    /// already-expanded one (reads-from signature).
    pub pruned_equivalent: usize,
    /// Alternatives skipped by independence (persistent-set) pruning.
    pub pruned_independent: usize,
    /// `true` when the DFS frontier drained within budget: the scenario
    /// is verified over the DPOR-reduced schedule space.
    pub complete: bool,
    /// The failure, if one was found.
    pub counterexample: Option<Counterexample>,
}

fn build_log(
    scenario: &ExploreScenario,
    mutation: ProtocolMutation,
    taken: &[ChoiceRecord],
    reason: &str,
) -> ScheduleLog {
    let summary = reason.lines().last().unwrap_or(reason).trim();
    let mut log = ScheduleLog::new(format!(
        "dex-explore scenario={} mutation={} decisions={} | {}",
        scenario.name,
        mutation.name(),
        taken.len(),
        summary,
    ));
    for c in taken {
        log.push(
            c.picked as u64,
            format!("{} n={} -> {}", c.tag, c.n, c.labels[c.picked]),
        );
    }
    log
}

/// Greedily re-zeroes non-default picks (last to first) while the
/// failure still reproduces, then drops trailing defaults. Each attempt
/// is one execution; capped at `max_runs`.
fn minimize(
    scenario: &ExploreScenario,
    mutation: ProtocolMutation,
    mut forced: Vec<usize>,
    max_runs: usize,
) -> (Vec<usize>, Execution, String) {
    while forced.last() == Some(&0) {
        forced.pop();
    }
    let mut runs = 0usize;
    let mut i = forced.len();
    while i > 0 && runs < max_runs {
        i -= 1;
        if forced[i] == 0 {
            continue;
        }
        let mut candidate = forced.clone();
        candidate[i] = 0;
        while candidate.last() == Some(&0) {
            candidate.pop();
        }
        let exec = run_once(
            scenario,
            mutation,
            Mode::Dfs {
                forced: candidate.clone(),
            },
        );
        runs += 1;
        if judge(&exec).is_some() {
            forced = candidate;
            i = i.min(forced.len());
        }
    }
    // One final run of the minimized prefix for the definitive record.
    let exec = run_once(
        scenario,
        mutation,
        Mode::Dfs {
            forced: forced.clone(),
        },
    );
    let reason = judge(&exec).unwrap_or_else(|| "failure did not reproduce".to_string());
    (forced, exec, reason)
}

/// Explores `scenario` under `config`. DFS unless `config.seed` selects
/// the random walk.
pub fn explore(scenario: &ExploreScenario, config: &ExploreConfig) -> ExploreOutcome {
    let mut outcome = ExploreOutcome {
        scenario: scenario.name,
        mutation: config.mutation,
        executions: 0,
        pruned_equivalent: 0,
        pruned_independent: 0,
        complete: false,
        counterexample: None,
    };

    if let Some(seed) = config.seed {
        // Seeded random walk: `budget` independent samples.
        for i in 0..config.budget {
            let exec = run_once(
                scenario,
                config.mutation,
                Mode::Random {
                    rng: SimRng::new(seed.wrapping_add(i as u64)),
                },
            );
            outcome.executions += 1;
            if judge(&exec).is_some() {
                let forced: Vec<usize> = exec.taken.iter().map(|c| c.picked).collect();
                let budget = config.budget.saturating_sub(outcome.executions).max(8);
                let (forced, exec, reason) = minimize(scenario, config.mutation, forced, budget);
                outcome.counterexample = Some(Counterexample {
                    log: build_log(scenario, config.mutation, &exec.taken, &reason),
                    forced,
                    reason,
                });
                return outcome;
            }
        }
        return outcome;
    }

    // Exhaustive DFS with DPOR.
    let mut stack: Vec<Vec<usize>> = vec![Vec::new()];
    let mut seen: HashSet<u64> = HashSet::new();
    while let Some(forced) = stack.pop() {
        if outcome.executions >= config.budget {
            return outcome; // budget exhausted with frontier remaining
        }
        let exec = run_once(
            scenario,
            config.mutation,
            Mode::Dfs {
                forced: forced.clone(),
            },
        );
        outcome.executions += 1;

        if judge(&exec).is_some() {
            let budget = config.budget.saturating_sub(outcome.executions).max(8);
            let (forced, exec, reason) = minimize(scenario, config.mutation, forced, budget);
            outcome.counterexample = Some(Counterexample {
                log: build_log(scenario, config.mutation, &exec.taken, &reason),
                forced,
                reason,
            });
            return outcome;
        }

        // Sleep-set analogue: expand each equivalence class once.
        if !seen.insert(rf_signature(&exec.events)) {
            outcome.pruned_equivalent += 1;
            continue;
        }

        // Expand alternatives at decision points past the forced prefix.
        for k in forced.len()..exec.taken.len() {
            let cp = &exec.taken[k];
            let mut prefix: Vec<usize> = exec.taken[..k].iter().map(|c| c.picked).collect();
            for alt in 1..cp.n {
                if cp.tag == "event"
                    && !worth_exploring(
                        &exec.events,
                        cp.time,
                        &cp.labels[cp.picked],
                        &cp.labels[alt],
                    )
                {
                    outcome.pruned_independent += 1;
                    continue;
                }
                if cp.tag == "event" && both_dispatchers(&cp.labels[cp.picked], &cp.labels[alt]) {
                    outcome.pruned_independent += 1;
                    continue;
                }
                if let Some(bound) = config.preemptions {
                    let nonzero = prefix.iter().filter(|&&x| x != 0).count() + 1;
                    if nonzero > bound {
                        continue;
                    }
                }
                prefix.push(alt);
                stack.push(prefix.clone());
                prefix.pop();
            }
        }
    }
    outcome.complete = true;
    outcome
}

/// Two distinct dispatcher daemons at a same-instant tie commute: each
/// only dequeues from its own inbox, and their same-instant sends racing
/// into a common inbox resurface as a delivery choice point.
fn both_dispatchers(a: &str, b: &str) -> bool {
    a != b && a.starts_with("dispatcher-") && b.starts_with("dispatcher-")
}

/// Renders an outcome for the terminal.
pub fn render_outcome(o: &ExploreOutcome) -> String {
    let mut out = format!(
        "scenario `{}` (mutation {}): {} execution(s), {} equivalent + {} independent pruned — ",
        o.scenario, o.mutation, o.executions, o.pruned_equivalent, o.pruned_independent,
    );
    match (&o.counterexample, o.complete) {
        (Some(cx), _) => {
            out.push_str(&format!(
                "FAILED ({} forced pick(s) after minimization)\n  {}\n",
                cx.forced.len(),
                cx.reason.replace('\n', "\n  "),
            ));
        }
        (None, true) => out.push_str("VERIFIED (schedule space exhausted)\n"),
        (None, false) => out.push_str("no violation found (budget exhausted)\n"),
    }
    out
}

// ---------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------

/// `true` when a schedule-log header was produced by the explorer.
pub fn looks_like_explore_log(header: &str) -> bool {
    header.contains("dex-explore")
}

/// Re-executes a counterexample `ScheduleLog`: forces the recorded picks,
/// verifies each decision point matches the recording, and re-judges the
/// execution. Returns the verdict text; `Err` on divergence or if the
/// recorded failure no longer reproduces.
pub fn replay_explore_log(log: &ScheduleLog) -> Result<String, String> {
    let header = log.header.clone();
    let field = |key: &str| -> Option<String> {
        header
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix(key).map(|v| v.to_string()))
    };
    let scenario_name = field("scenario=").ok_or("explore log header missing `scenario=`")?;
    let scenario = find_explore_scenario(&scenario_name)
        .ok_or_else(|| format!("unknown explore scenario `{scenario_name}`"))?;
    let mutation = match field("mutation=") {
        Some(m) => ProtocolMutation::parse(&m)
            .ok_or_else(|| format!("unknown mutation `{m}` in explore log"))?,
        None => ProtocolMutation::None,
    };

    let forced: Vec<usize> = log.steps().iter().map(|s| s.actor as usize).collect();
    let exec = run_once(&scenario, mutation, Mode::Dfs { forced });

    // Verify the replayed run resolved every decision as recorded.
    let mut cursor = dex_sim::ReplayCursor::new(log.clone());
    for c in &exec.taken {
        cursor.advance_checked_named(c.picked as u64, &c.labels[c.picked])?;
    }
    if !cursor.is_finished() {
        return Err(format!(
            "replay stopped early: {} of {} recorded decisions reached",
            cursor.position(),
            log.len()
        ));
    }

    match judge(&exec) {
        Some(reason) => Ok(format!(
            "replayed {} decision(s) on scenario `{}` (mutation {}): failure reproduced\n{}",
            log.len(),
            scenario.name,
            mutation,
            reason
        )),
        None => Err(format!(
            "replayed {} decision(s) on scenario `{}` (mutation {}) but the recorded \
             failure did not reproduce",
            log.len(),
            scenario.name,
            mutation
        )),
    }
}

// ---------------------------------------------------------------------
// Mutation sweep
// ---------------------------------------------------------------------

/// Result of hunting one mutation.
#[derive(Clone, Debug)]
pub struct SweepEntry {
    /// The injected mutation.
    pub mutation: ProtocolMutation,
    /// The scenario that caught it, if any.
    pub caught_by: Option<&'static str>,
    /// Executions spent across scenarios until the catch.
    pub executions: usize,
    /// The minimized counterexample.
    pub counterexample: Option<Counterexample>,
}

/// Runs every seeded protocol mutation against the exploration workloads
/// and reports which scenario caught each one. A mutation the explorer
/// + oracle cannot catch is a hole in the checker.
pub fn mutation_sweep(budget_per_scenario: usize) -> Vec<SweepEntry> {
    ALL_MUTATIONS
        .iter()
        .map(|&mutation| {
            let mut executions = 0usize;
            for scenario in EXPLORE_SCENARIOS.iter().filter(|s| !s.with_faults) {
                let config = ExploreConfig {
                    budget: budget_per_scenario,
                    mutation,
                    ..ExploreConfig::default()
                };
                let outcome = explore(scenario, &config);
                executions += outcome.executions;
                if let Some(cx) = outcome.counterexample {
                    return SweepEntry {
                        mutation,
                        caught_by: Some(scenario.name),
                        executions,
                        counterexample: Some(cx),
                    };
                }
            }
            SweepEntry {
                mutation,
                caught_by: None,
                executions,
                counterexample: None,
            }
        })
        .collect()
}

/// Renders the sweep table.
pub fn render_sweep(entries: &[SweepEntry]) -> String {
    let mut out = String::new();
    for e in entries {
        match (&e.caught_by, &e.counterexample) {
            (Some(name), Some(cx)) => out.push_str(&format!(
                "  mutation {:<22} CAUGHT by `{}` after {} execution(s), \
                 {} forced pick(s) minimized\n",
                e.mutation.name(),
                name,
                e.executions,
                cx.forced.len(),
            )),
            _ => out.push_str(&format!(
                "  mutation {:<22} MISSED after {} execution(s)\n",
                e.mutation.name(),
                e.executions,
            )),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(budget: usize, mutation: ProtocolMutation) -> ExploreConfig {
        ExploreConfig {
            budget,
            mutation,
            ..ExploreConfig::default()
        }
    }

    #[test]
    fn default_schedule_of_every_scenario_is_clean() {
        for scenario in &EXPLORE_SCENARIOS {
            let exec = run_once(
                scenario,
                ProtocolMutation::None,
                Mode::Dfs { forced: vec![] },
            );
            assert!(exec.panic.is_none(), "{}: {:?}", scenario.name, exec.panic);
            assert!(!exec.events.is_empty(), "{} records events", scenario.name);
            assert_eq!(
                judge(&exec),
                None,
                "{} default schedule clean",
                scenario.name
            );
            assert!(
                exec.taken.iter().any(|c| c.n > 1),
                "{} has at least one real choice point",
                scenario.name
            );
        }
    }

    #[test]
    fn exploration_verifies_mp_exhaustively() {
        let outcome = explore(&EXPLORE_SCENARIOS[0], &small(2000, ProtocolMutation::None));
        assert!(outcome.counterexample.is_none(), "{outcome:?}");
        assert!(outcome.complete, "mp must be exhaustible: {outcome:?}");
        assert!(
            outcome.executions > 1,
            "more than one interleaving explored"
        );
    }

    #[test]
    fn every_mutation_is_caught_with_a_replayable_counterexample() {
        let entries = mutation_sweep(60);
        assert_eq!(entries.len(), 4);
        for e in &entries {
            let cx = e.counterexample.as_ref().unwrap_or_else(|| {
                panic!(
                    "mutation {} missed:\n{}",
                    e.mutation,
                    render_sweep(&entries)
                )
            });
            // The counterexample round-trips through text and replays.
            let text = cx.log.to_text();
            let parsed = ScheduleLog::parse(&text).expect("counterexample parses");
            assert!(looks_like_explore_log(&parsed.header));
            let verdict = replay_explore_log(&parsed).expect("replay reproduces");
            assert!(verdict.contains("reproduced"), "{verdict}");
        }
    }

    #[test]
    fn forwarded_scenarios_explore_clean() {
        for name in ["mp-fwd", "invalidate-fwd"] {
            let scenario = find_explore_scenario(name).expect("scenario registered");
            let outcome = explore(&scenario, &small(2000, ProtocolMutation::None));
            assert!(outcome.counterexample.is_none(), "{name}: {outcome:?}");
            assert!(
                outcome.executions > 1,
                "{name} explored more than one interleaving"
            );
        }
    }

    #[test]
    fn keep_origin_pte_is_caught_under_sharding() {
        // The owner-side seeding of keep-origin-pte only fires on the
        // forwarded path; the sharded scenarios must expose it as an SC
        // violation (or a protocol panic) without any classic fallback.
        let caught = ["invalidate-fwd", "mp-fwd"].iter().any(|name| {
            let scenario = find_explore_scenario(name).expect("scenario registered");
            let outcome = explore(&scenario, &small(2000, ProtocolMutation::KeepOriginPte));
            outcome.counterexample.is_some()
        });
        assert!(caught, "keep-origin-pte escaped both sharded scenarios");
    }

    #[test]
    fn random_walk_mode_runs_within_budget() {
        let config = ExploreConfig {
            budget: 3,
            seed: Some(7),
            ..ExploreConfig::default()
        };
        let outcome = explore(&EXPLORE_SCENARIOS[1], &config);
        assert!(outcome.counterexample.is_none(), "{outcome:?}");
        assert_eq!(outcome.executions, 3);
        assert!(!outcome.complete, "sampling never claims completeness");
    }

    #[test]
    fn bounded_preemption_search_is_a_subset_of_full_dfs() {
        let full = explore(&EXPLORE_SCENARIOS[0], &small(2000, ProtocolMutation::None));
        let bounded = explore(
            &EXPLORE_SCENARIOS[0],
            &ExploreConfig {
                budget: 2000,
                preemptions: Some(1),
                ..ExploreConfig::default()
            },
        );
        assert!(bounded.counterexample.is_none());
        assert!(bounded.complete);
        assert!(
            bounded.executions <= full.executions,
            "bound {} > full {}",
            bounded.executions,
            full.executions
        );
    }
}
