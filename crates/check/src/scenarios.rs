//! Built-in workloads for `dex-check races`.
//!
//! Each scenario runs a small cluster with race-event recording enabled
//! and returns the event stream for [`crate::analyze_races`], together
//! with the expected verdict. The clean scenarios (`kmeans`, `sort`,
//! `kmn-app`) follow the paper's synchronization discipline — partition
//! privately, merge under a mutex, phase with barriers — and must report
//! zero violations. The dirty fixtures (`racy`, `lock-order`) seed a
//! data race and a lock-order inversion respectively, validating that
//! the detector has teeth.

use dex_apps::{run_app, AppParams, Variant};
use dex_core::{Cluster, ClusterConfig, RaceEvent};

/// Description of one built-in scenario.
#[derive(Clone, Copy, Debug)]
pub struct Scenario {
    /// CLI name.
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// Whether the analysis must find nothing.
    pub expect_clean: bool,
}

/// All built-in scenarios.
pub const SCENARIOS: [Scenario; 5] = [
    Scenario {
        name: "kmeans",
        description: "reduced k-means: private staging, mutex merge, barrier phases (clean)",
        expect_clean: true,
    },
    Scenario {
        name: "sort",
        description: "parallel sort: disjoint partitions, barrier, serial merge (clean)",
        expect_clean: true,
    },
    Scenario {
        name: "kmn-app",
        description: "the full KMN application at test scale, optimized variant (clean)",
        expect_clean: true,
    },
    Scenario {
        name: "racy",
        description: "two nodes increment a shared counter with no lock (1+ data race)",
        expect_clean: false,
    },
    Scenario {
        name: "lock-order",
        description: "two mutexes acquired in opposite nest orders (deadlock potential)",
        expect_clean: false,
    },
];

/// The CLI names of every built-in scenario.
pub fn scenario_names() -> Vec<&'static str> {
    SCENARIOS.iter().map(|s| s.name).collect()
}

/// Runs the named scenario, returning its descriptor and recorded
/// events. `None` for an unknown name.
pub fn run_scenario(name: &str) -> Option<(Scenario, Vec<RaceEvent>)> {
    let scenario = *SCENARIOS.iter().find(|s| s.name == name)?;
    let events = match name {
        "kmeans" => kmeans_events(),
        "sort" => sort_events(),
        "kmn-app" => kmn_app_events(),
        "racy" => racy_events(),
        "lock-order" => lock_order_events(),
        _ => unreachable!("scenario table covers all names"),
    };
    Some((scenario, events))
}

/// Reduced k-means mirroring the optimized KMN port: each worker scans
/// its own partition, stages sums locally, merges once per iteration
/// under a mutex, and phases with barriers. The serial barrier thread
/// recomputes centroids between iterations.
fn kmeans_events() -> Vec<RaceEvent> {
    const WORKERS: usize = 4;
    const NODES: usize = 2;
    const POINTS: usize = 64;
    const K: usize = 4;
    const ITERS: usize = 2;

    let cluster = Cluster::new(ClusterConfig::new(NODES).with_race_detection());
    let report = cluster.run(|p| {
        let points = p.alloc_vec_aligned::<u64>(POINTS, "points");
        let centroids = p.alloc_vec_aligned::<u64>(K, "centroids");
        let sums = p.alloc_vec_aligned::<u64>(K, "sums");
        let counts = p.alloc_vec_aligned::<u64>(K, "counts");
        points.init(
            p,
            &(0..POINTS as u64).map(|i| i * 7 % 101).collect::<Vec<_>>(),
        );
        centroids.init(p, &(0..K as u64).map(|c| c * 25).collect::<Vec<_>>());
        sums.init(p, &[0; K]);
        counts.init(p, &[0; K]);
        let merge = p.new_mutex("kmeans.merge");
        let barrier = p.new_barrier(WORKERS as u32, "kmeans.barrier");
        let chunk = POINTS / WORKERS;
        for w in 0..WORKERS {
            p.spawn(move |ctx| {
                ctx.migrate((w % NODES) as u16).unwrap();
                for _ in 0..ITERS {
                    ctx.set_site("kmeans.assign");
                    let mut local_sum = [0u64; K];
                    let mut local_count = [0u64; K];
                    for i in w * chunk..(w + 1) * chunk {
                        let x = points.get(ctx, i);
                        let mut best = 0usize;
                        let mut best_d = u64::MAX;
                        for c in 0..K {
                            let d = x.abs_diff(centroids.get(ctx, c));
                            if d < best_d {
                                best_d = d;
                                best = c;
                            }
                        }
                        local_sum[best] += x;
                        local_count[best] += 1;
                    }
                    ctx.set_site("kmeans.merge");
                    merge.with(ctx, || {
                        for c in 0..K {
                            let s = sums.get(ctx, c);
                            sums.set(ctx, c, s + local_sum[c]);
                            let n = counts.get(ctx, c);
                            counts.set(ctx, c, n + local_count[c]);
                        }
                    });
                    ctx.set_site("kmeans.recompute");
                    if barrier.wait(ctx) {
                        for c in 0..K {
                            let n = counts.get(ctx, c);
                            if let Some(mean) = sums.get(ctx, c).checked_div(n) {
                                centroids.set(ctx, c, mean);
                            }
                            sums.set(ctx, c, 0);
                            counts.set(ctx, c, 0);
                        }
                    }
                    barrier.wait(ctx);
                }
            });
        }
    });
    report.race_events
}

/// Parallel sort: each worker sorts its own page-aligned quarter, a
/// barrier ends the partition phase, then the serial thread merges.
fn sort_events() -> Vec<RaceEvent> {
    const WORKERS: usize = 4;
    const N: usize = 128;

    let cluster = Cluster::new(ClusterConfig::new(2).with_race_detection());
    let report = cluster.run(|p| {
        let data = p.alloc_vec_aligned::<u64>(N, "sort.data");
        let out = p.alloc_vec_aligned::<u64>(N, "sort.out");
        data.init(
            p,
            &(0..N as u64)
                .map(|i| (i * 2_654_435_761) % 1_000)
                .collect::<Vec<_>>(),
        );
        out.init(p, &vec![0; N]);
        let barrier = p.new_barrier(WORKERS as u32, "sort.barrier");
        let chunk = N / WORKERS;
        for w in 0..WORKERS {
            p.spawn(move |ctx| {
                ctx.migrate((w % 2) as u16).unwrap();
                ctx.set_site("sort.partition");
                let mut part = vec![0u64; chunk];
                data.read_slice(ctx, w * chunk, &mut part);
                part.sort_unstable();
                data.write_slice(ctx, w * chunk, &part);
                ctx.set_site("sort.merge");
                if barrier.wait(ctx) {
                    // Serial k-way merge into the output array.
                    let mut heads = [0usize; WORKERS];
                    for i in 0..N {
                        let mut best: Option<(usize, u64)> = None;
                        for (q, &h) in heads.iter().enumerate() {
                            if h < chunk {
                                let v = data.get(ctx, q * chunk + h);
                                if best.is_none_or(|(_, b)| v < b) {
                                    best = Some((q, v));
                                }
                            }
                        }
                        let (q, v) = best.expect("elements remain");
                        heads[q] += 1;
                        out.set(ctx, i, v);
                    }
                }
                barrier.wait(ctx);
            });
        }
    });
    report.race_events
}

/// The real KMN application (optimized variant, test scale) under race
/// recording — exercises the full fault/migration/delegation machinery.
fn kmn_app_events() -> Vec<RaceEvent> {
    let params = AppParams::test(2, Variant::Optimized).with_race_detection();
    let result = run_app("KMN", &params);
    result.report.race_events
}

/// The intentionally racy fixture: two threads on different nodes
/// read-modify-write one plain shared counter with no synchronization.
fn racy_events() -> Vec<RaceEvent> {
    let cluster = Cluster::new(ClusterConfig::new(2).with_race_detection());
    let report = cluster.run(|p| {
        let counter = p.alloc_cell_tagged::<u64>(0, "racy.counter");
        for w in 0..2u16 {
            p.spawn(move |ctx| {
                ctx.migrate(w).unwrap();
                ctx.set_site(if w == 0 { "racy.home" } else { "racy.remote" });
                for _ in 0..4 {
                    let v = counter.get(ctx);
                    counter.set(ctx, v + 1);
                }
            });
        }
    });
    report.race_events
}

/// The deadlock-potential fixture: the parent nests A→B, the child
/// (strictly afterwards, so the run itself cannot hang) nests B→A.
fn lock_order_events() -> Vec<RaceEvent> {
    let cluster = Cluster::new(ClusterConfig::new(2).with_race_detection());
    let report = cluster.run(|p| {
        let a = p.new_mutex("lock.a");
        let b = p.new_mutex("lock.b");
        p.spawn(move |ctx| {
            ctx.set_site("order.forward");
            a.lock(ctx);
            b.lock(ctx);
            b.unlock(ctx);
            a.unlock(ctx);
            let child = ctx.spawn_thread("inverted", move |ctx2| {
                ctx2.migrate(1).unwrap();
                ctx2.set_site("order.inverted");
                b.lock(ctx2);
                a.lock(ctx2);
                a.unlock(ctx2);
                b.unlock(ctx2);
            });
            child.join(ctx);
        });
    });
    report.race_events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::races::analyze_races;

    #[test]
    fn clean_scenarios_report_nothing() {
        for name in ["kmeans", "sort"] {
            let (scenario, events) = run_scenario(name).unwrap();
            assert!(scenario.expect_clean);
            assert!(!events.is_empty(), "{name} records events");
            let report = analyze_races(&events);
            assert!(
                report.is_clean(),
                "{name} must be clean:\n{}",
                crate::races::render_race_report(&report)
            );
        }
    }

    #[test]
    fn racy_fixture_reports_a_conflict_with_both_sites() {
        let (scenario, events) = run_scenario("racy").unwrap();
        assert!(!scenario.expect_clean);
        let report = analyze_races(&events);
        assert!(!report.conflicts.is_empty(), "racy fixture must be caught");
        let c = &report.conflicts[0];
        let sites = [c.first.site, c.second.site];
        assert!(sites.contains(&"racy.home") && sites.contains(&"racy.remote"));
        assert_ne!(c.first.node, c.second.node, "cross-node race attributed");
    }

    #[test]
    fn lock_order_fixture_reports_a_cycle() {
        let (_, events) = run_scenario("lock-order").unwrap();
        let report = analyze_races(&events);
        assert_eq!(report.cycles.len(), 1, "{report:?}");
        let sites: Vec<&str> = report.cycles[0].edges.iter().map(|e| e.site).collect();
        assert!(sites.contains(&"order.forward") && sites.contains(&"order.inverted"));
    }

    #[test]
    fn kmn_application_is_race_free() {
        let (_, events) = run_scenario("kmn-app").unwrap();
        let report = analyze_races(&events);
        assert!(
            report.is_clean(),
            "KMN must be clean:\n{}",
            crate::races::render_race_report(&report)
        );
    }
}
