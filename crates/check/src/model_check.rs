//! Exhaustive explicit-state exploration of the directory protocol.
//!
//! The model ([`dex_core::model`]) is a *closed finite world*: a handful
//! of nodes and pages, one or two threads per node, every thread free to
//! issue any operation whenever it is idle, every in-flight message free
//! to arrive in any order. Breadth-first search over canonicalized states
//! therefore covers **all interleavings of all operation sequences** the
//! world can produce, and BFS predecessor pointers give a *minimal*
//! counterexample when an invariant breaks.
//!
//! Two classes of property are checked:
//!
//! * **Safety** — checked on every transition by
//!   [`ModelState::apply`]/[`ModelState::check_safety`]: single-writer
//!   exclusivity, owner-set/PTE agreement, no lost invalidations, and
//!   leader–follower coalescing never granting a follower before its
//!   leader.
//! * **Liveness** — after the reachable graph is built: from every
//!   reachable state a quiescent state (no in-flight message, no open
//!   transaction, all threads idle) must be *co-reachable*. This single
//!   check subsumes "every transaction drains" and "retry never livelocks
//!   under fairness": a retry loop that can never exit shows up as a
//!   strongly connected region with no path to quiescence.
//!
//! Counterexamples serialize to the deterministic-replay format of
//! [`dex_sim::ScheduleLog`]; `dex-check replay <file>` re-executes them
//! step by step with divergence checking.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};

use dex_core::model::{ModelConfig, ModelEvent, ModelState, Mutation, Op, Violation};
use dex_os::Vpn;
use dex_sim::{ReplayCursor, ScheduleLog};

/// Exploration limits.
#[derive(Clone, Debug)]
pub struct CheckOptions {
    /// Abort (with an honest error) after this many distinct states.
    pub max_states: usize,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            max_states: 4_000_000,
        }
    }
}

/// Statistics of a successful exploration.
#[derive(Clone, Copy, Debug)]
pub struct PassReport {
    /// Distinct canonical states reached.
    pub states: usize,
    /// Transitions examined.
    pub transitions: u64,
    /// Reachable states that are quiescent.
    pub quiescent: usize,
}

/// A minimal event sequence exposing an invariant violation.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// The model configuration explored.
    pub config: ModelConfig,
    /// "safety" or "liveness".
    pub kind: &'static str,
    /// The events from the initial state, in order.
    pub events: Vec<ModelEvent>,
    /// The violated invariants.
    pub violations: Vec<Violation>,
    /// Rendering of the violating state.
    pub final_state: String,
}

/// Result of exhaustively exploring one configuration.
#[derive(Clone, Debug)]
pub enum CheckOutcome {
    /// All invariants hold on the full reachable graph.
    Pass(PassReport),
    /// An invariant broke; the counterexample is minimal (BFS depth).
    Fail(Box<Counterexample>),
}

impl CheckOutcome {
    /// Whether the exploration found no violation.
    pub fn is_pass(&self) -> bool {
        matches!(self, CheckOutcome::Pass(_))
    }
}

/// Collapses duplicate violations (the same broken invariant is often
/// reported both while applying the offending event and by the final
/// state check).
fn dedup_violations(violations: &mut Vec<Violation>) {
    let mut seen = std::collections::HashSet::new();
    violations.retain(|v| seen.insert((v.invariant, v.detail.clone())));
}

/// Exhaustively explores `config`, checking safety on every transition
/// and quiescence co-reachability on the final graph.
///
/// # Errors
///
/// Returns an error when the state space exceeds
/// [`CheckOptions::max_states`] — an honest "too big" rather than a
/// false "verified".
pub fn check_model(config: &ModelConfig, opts: &CheckOptions) -> Result<CheckOutcome, String> {
    let init = ModelState::new(config.clone());
    {
        let mut violations = Vec::new();
        init.check_safety(&mut violations);
        if !violations.is_empty() {
            return Ok(CheckOutcome::Fail(Box::new(Counterexample {
                config: config.clone(),
                kind: "safety",
                events: Vec::new(),
                final_state: init.describe(),
                violations,
            })));
        }
    }

    let mut states: Vec<ModelState> = vec![init];
    let mut keys: HashMap<Vec<u64>, u32> = HashMap::new();
    keys.insert(states[0].canonical_key(), 0);
    // Discovery edge into each state (None for the root).
    let mut preds: Vec<Option<(u32, ModelEvent)>> = vec![None];
    // Every edge of the reachable graph (for co-reachability).
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut queue: VecDeque<u32> = VecDeque::from([0]);
    let mut transitions: u64 = 0;

    while let Some(idx) = queue.pop_front() {
        let enabled = states[idx as usize].enabled_events();
        for event in enabled {
            let mut next = states[idx as usize].clone();
            let mut violations = next.apply(event);
            next.check_safety(&mut violations);
            dedup_violations(&mut violations);
            transitions += 1;
            if !violations.is_empty() {
                let mut events = path_to(&preds, idx);
                events.push(event);
                return Ok(CheckOutcome::Fail(Box::new(Counterexample {
                    config: config.clone(),
                    kind: "safety",
                    events,
                    final_state: next.describe(),
                    violations,
                })));
            }
            match keys.entry(next.canonical_key()) {
                Entry::Occupied(e) => edges.push((idx, *e.get())),
                Entry::Vacant(e) => {
                    if states.len() >= opts.max_states {
                        return Err(format!(
                            "state space exceeds {} states; refusing to claim verification \
                             (shrink the configuration or raise --max-states)",
                            opts.max_states
                        ));
                    }
                    let id = states.len() as u32;
                    e.insert(id);
                    states.push(next);
                    preds.push(Some((idx, event)));
                    edges.push((idx, id));
                    queue.push_back(id);
                }
            }
        }
    }

    // Liveness: every reachable state must be able to drain back to some
    // quiescent state. Mark quiescent states, then walk edges backwards.
    let n = states.len();
    let mut rev: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &(a, b) in &edges {
        rev[b as usize].push(a);
    }
    let mut drains = vec![false; n];
    let mut work: VecDeque<u32> = VecDeque::new();
    let mut quiescent = 0usize;
    for (i, s) in states.iter().enumerate() {
        if s.is_quiescent() {
            drains[i] = true;
            quiescent += 1;
            work.push_back(i as u32);
        }
    }
    while let Some(i) = work.pop_front() {
        for &p in &rev[i as usize] {
            if !drains[p as usize] {
                drains[p as usize] = true;
                work.push_back(p);
            }
        }
    }
    // States were discovered in BFS order, so the first stuck state found
    // is at minimal depth.
    if let Some(stuck) = (0..n).find(|&i| !drains[i]) {
        let events = path_to(&preds, stuck as u32);
        return Ok(CheckOutcome::Fail(Box::new(Counterexample {
            config: config.clone(),
            kind: "liveness",
            events,
            final_state: states[stuck].describe(),
            violations: vec![Violation {
                invariant: "liveness.drains",
                detail: format!(
                    "no quiescent state is reachable from here \
                     (in-flight work can never complete; {} of {} reachable states drain)",
                    n - 1,
                    n
                ),
            }],
        })));
    }

    Ok(CheckOutcome::Pass(PassReport {
        states: n,
        transitions,
        quiescent,
    }))
}

/// Reconstructs the event path from the root to `idx` via the BFS
/// discovery edges.
fn path_to(preds: &[Option<(u32, ModelEvent)>], mut idx: u32) -> Vec<ModelEvent> {
    let mut events = Vec::new();
    while let Some((parent, event)) = preds[idx as usize] {
        events.push(event);
        idx = parent;
    }
    events.reverse();
    events
}

// ---- stable event encoding (replay substrate) ----

const TAG_ISSUE: u64 = 1 << 56;
const TAG_REISSUE: u64 = 2 << 56;
const TAG_DELIVER: u64 = 3 << 56;
const TAG_MASK: u64 = 0xff << 56;

/// Encodes a model event as a stable `u64` actor for [`ScheduleLog`].
pub fn encode_event(event: ModelEvent) -> u64 {
    match event {
        ModelEvent::Issue { thread, op } => {
            let (kind, vpn) = match op {
                Op::Read(v) => (0u64, v.index()),
                Op::Write(v) => (1, v.index()),
                Op::Evict(v) => (2, v.index()),
            };
            TAG_ISSUE | (thread as u64) << 32 | kind << 24 | vpn
        }
        ModelEvent::ReIssue { thread } => TAG_REISSUE | thread as u64,
        ModelEvent::Deliver { msg } => TAG_DELIVER | msg as u64,
    }
}

/// Decodes an actor written by [`encode_event`].
pub fn decode_event(actor: u64) -> Option<ModelEvent> {
    match actor & TAG_MASK {
        TAG_ISSUE => {
            let thread = ((actor >> 32) & 0xffff) as usize;
            let vpn = Vpn::new(actor & 0xff_ffff);
            let op = match (actor >> 24) & 0xff {
                0 => Op::Read(vpn),
                1 => Op::Write(vpn),
                2 => Op::Evict(vpn),
                _ => return None,
            };
            Some(ModelEvent::Issue { thread, op })
        }
        TAG_REISSUE => Some(ModelEvent::ReIssue {
            thread: (actor & 0xffff) as usize,
        }),
        TAG_DELIVER => Some(ModelEvent::Deliver {
            msg: (actor & 0xffff_ffff) as usize,
        }),
        _ => None,
    }
}

/// Serializes a counterexample as a replayable [`ScheduleLog`].
pub fn counterexample_to_log(cex: &Counterexample) -> ScheduleLog {
    let threads: Vec<String> = cex.config.threads.iter().map(|n| n.to_string()).collect();
    let mut log = ScheduleLog::new(format!(
        "dex-check model nodes={} pages={} threads={} mutation={} sharded={} kind={}",
        cex.config.nodes,
        cex.config.pages,
        threads.join(","),
        cex.config.mutation.name(),
        cex.config.sharded,
        cex.kind,
    ));
    for &event in &cex.events {
        log.push(encode_event(event), format!("{event}"));
    }
    log
}

/// Outcome of replaying a recorded counterexample.
#[derive(Clone, Debug)]
pub struct ReplayOutcome {
    /// The configuration recovered from the log header.
    pub config: ModelConfig,
    /// Steps applied.
    pub steps: usize,
    /// Violations the replayed run exposed (safety only; liveness
    /// counterexamples end in a stuck-but-not-yet-wrong state).
    pub violations: Vec<Violation>,
    /// Rendering of the final state.
    pub final_state: String,
}

/// Re-executes a `dex-check model` counterexample step by step,
/// verifying the replay does not diverge from the recording.
///
/// # Errors
///
/// Returns an error for malformed logs, undecodable actors, events that
/// are not enabled in the replayed state (divergence), or cursor
/// mismatches.
pub fn replay_log(text: &str) -> Result<ReplayOutcome, String> {
    let log = ScheduleLog::parse(text)?;
    let config = config_from_header(&log.header)?;
    let mut cursor = ReplayCursor::new(log);
    let mut state = ModelState::new(config.clone());
    let mut violations = Vec::new();
    let mut steps = 0usize;
    while let Some(step) = cursor.peek() {
        let actor = step.actor;
        let event = decode_event(actor)
            .ok_or_else(|| format!("step {steps}: undecodable actor {actor:#x}"))?;
        if !state.enabled_events().contains(&event) {
            return Err(format!(
                "replay diverged at step {steps}: event `{event}` is not enabled\n{}",
                state.describe()
            ));
        }
        cursor.advance_checked(actor)?;
        violations.extend(state.apply(event));
        state.check_safety(&mut violations);
        dedup_violations(&mut violations);
        steps += 1;
        if !violations.is_empty() {
            break;
        }
    }
    Ok(ReplayOutcome {
        config,
        steps,
        violations,
        final_state: state.describe(),
    })
}

fn config_from_header(header: &str) -> Result<ModelConfig, String> {
    let mut nodes: Option<u16> = None;
    let mut pages: Option<u64> = None;
    let mut threads: Option<Vec<u16>> = None;
    let mut mutation = Mutation::None;
    let mut sharded = false;
    for token in header.split_whitespace() {
        let Some((key, value)) = token.split_once('=') else {
            continue;
        };
        match key {
            "nodes" => nodes = Some(value.parse().map_err(|e| format!("bad nodes: {e}"))?),
            "pages" => pages = Some(value.parse().map_err(|e| format!("bad pages: {e}"))?),
            "threads" => {
                let parsed: Result<Vec<u16>, _> =
                    value.split(',').map(|s| s.parse::<u16>()).collect();
                threads = Some(parsed.map_err(|e| format!("bad threads: {e}"))?);
            }
            "mutation" => {
                mutation =
                    Mutation::parse(value).ok_or_else(|| format!("unknown mutation {value:?}"))?;
            }
            "sharded" => {
                sharded = value
                    .parse()
                    .map_err(|e| format!("bad sharded flag: {e}"))?;
            }
            _ => {}
        }
    }
    let nodes = nodes.ok_or("log header missing nodes=")?;
    let pages = pages.ok_or("log header missing pages=")?;
    let mut config = ModelConfig::new(nodes, pages).with_mutation(mutation);
    if sharded {
        config = config.with_sharding();
    }
    if let Some(threads) = threads {
        config.threads = threads;
    }
    Ok(config)
}

/// Renders a counterexample for the terminal.
pub fn render_counterexample(cex: &Counterexample) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{} violation in {} steps (nodes={} pages={} threads={:?} mutation={} sharded={}):\n",
        cex.kind,
        cex.events.len(),
        cex.config.nodes,
        cex.config.pages,
        cex.config.threads,
        cex.config.mutation.name(),
        cex.config.sharded,
    ));
    for v in &cex.violations {
        out.push_str(&format!("  violated: {v}\n"));
    }
    out.push_str("minimal counterexample:\n");
    for (i, event) in cex.events.iter().enumerate() {
        out.push_str(&format!("  step {i:>3}: {event}\n"));
    }
    out.push_str("final state:\n");
    for line in cex.final_state.lines() {
        out.push_str(&format!("  {line}\n"));
    }
    out
}

/// Whether `mutation` can fire at all in `config`. The two coalescing
/// mutations only matter when some node hosts at least two threads
/// (otherwise no leader–follower pair ever forms), so a sweep over a
/// one-thread-per-node world must not count their trivial pass as a
/// missed bug.
fn exercisable(mutation: Mutation, config: &ModelConfig) -> bool {
    match mutation {
        Mutation::DropWakeup | Mutation::FollowerBypass => {
            let mut nodes = config.threads.clone();
            nodes.sort_unstable();
            nodes.windows(2).any(|w| w[0] == w[1])
        }
        _ => true,
    }
}

/// Explores `base` unmutated, then once per seeded mutation, verifying
/// the faithful protocol passes and every exercisable mutation is
/// caught (coalescing mutations are skipped as `n/a` in worlds without
/// two same-node threads). Returns one line of human-readable outcome
/// per run plus an overall verdict.
pub fn mutation_sweep(
    base: &ModelConfig,
    opts: &CheckOptions,
) -> Result<(Vec<String>, bool), String> {
    let mut lines = Vec::new();
    let mut all_ok = true;
    for mutation in std::iter::once(Mutation::None).chain(Mutation::ALL) {
        let config = base.clone().with_mutation(mutation);
        if mutation != Mutation::None && !exercisable(mutation, &config) {
            lines.push(format!(
                "mutation {:<16} n/a: needs two same-node threads (use --coalesce)",
                mutation.name()
            ));
            continue;
        }
        let outcome = check_model(&config, opts)?;
        let expected_pass = mutation == Mutation::None;
        let ok = outcome.is_pass() == expected_pass;
        all_ok &= ok;
        let line = match &outcome {
            CheckOutcome::Pass(r) => format!(
                "mutation {:<16} pass: {} states, {} transitions, {} quiescent{}",
                mutation.name(),
                r.states,
                r.transitions,
                r.quiescent,
                if expected_pass { "" } else { "  ** MISSED **" },
            ),
            CheckOutcome::Fail(cex) => format!(
                "mutation {:<16} caught: {} violation `{}` in {} steps{}",
                mutation.name(),
                cex.kind,
                cex.violations
                    .first()
                    .map(|v| v.invariant)
                    .unwrap_or("unknown"),
                cex.events.len(),
                if expected_pass {
                    "  ** FALSE POSITIVE **"
                } else {
                    ""
                },
            ),
        };
        lines.push(line);
    }
    Ok((lines, all_ok))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> CheckOptions {
        CheckOptions::default()
    }

    #[test]
    fn faithful_two_node_world_verifies() {
        let config = ModelConfig::new(2, 1);
        match check_model(&config, &opts()).unwrap() {
            CheckOutcome::Pass(r) => {
                assert!(r.states > 10, "explored {} states", r.states);
                assert!(r.quiescent >= 1);
            }
            CheckOutcome::Fail(cex) => panic!("{}", render_counterexample(&cex)),
        }
    }

    #[test]
    fn faithful_world_with_coalescing_verifies() {
        let config = ModelConfig::new(2, 1).with_extra_thread(1);
        let outcome = check_model(&config, &opts()).unwrap();
        assert!(outcome.is_pass(), "coalescing world must verify");
    }

    #[test]
    fn every_mutation_is_caught_with_minimal_counterexample() {
        for mutation in Mutation::ALL {
            let config = ModelConfig::new(2, 1)
                .with_extra_thread(1)
                .with_mutation(mutation);
            match check_model(&config, &opts()).unwrap() {
                CheckOutcome::Pass(_) => {
                    panic!("mutation {} escaped the checker", mutation.name())
                }
                CheckOutcome::Fail(cex) => {
                    assert!(!cex.events.is_empty(), "counterexample has steps");
                    // The rendering includes every step.
                    let text = render_counterexample(&cex);
                    assert!(text.contains("step"), "{text}");
                }
            }
        }
    }

    #[test]
    fn sharded_three_node_world_verifies() {
        // Three nodes with sharding puts the directory home on node 1:
        // every remote fault is a two-hop forwarded transaction, and node
        // 2's requests exercise home != origin != requester.
        let config = ModelConfig::new(3, 1).with_sharding();
        match check_model(&config, &opts()).unwrap() {
            CheckOutcome::Pass(r) => {
                assert!(r.states > 10, "explored {} states", r.states);
                assert!(r.quiescent >= 1);
            }
            CheckOutcome::Fail(cex) => panic!("{}", render_counterexample(&cex)),
        }
    }

    #[test]
    fn sharded_mutations_are_caught_and_round_trip_through_replay() {
        // The sharded world must keep its teeth: keep-origin-pte (the
        // owner/home skipping the PTE clear on an ownership transfer)
        // breaks owner-PTE agreement on the forwarded path, and the
        // counterexample replays from its serialized log, sharded flag
        // included.
        let config = ModelConfig::new(2, 1)
            .with_sharding()
            .with_mutation(Mutation::KeepOriginPte);
        let cex = match check_model(&config, &opts()).unwrap() {
            CheckOutcome::Fail(cex) => cex,
            CheckOutcome::Pass(_) => panic!("keep-origin-pte escaped the sharded checker"),
        };
        assert_eq!(cex.kind, "safety");
        let text = counterexample_to_log(&cex).to_text();
        assert!(text.contains("sharded=true"), "{text}");
        let replayed = replay_log(&text).unwrap();
        assert!(replayed.config.sharded);
        assert_eq!(replayed.steps, cex.events.len());
        assert!(
            !replayed.violations.is_empty(),
            "replay reproduces the violation"
        );
    }

    #[test]
    fn counterexample_round_trips_through_replay() {
        let config = ModelConfig::new(2, 1)
            .with_extra_thread(1)
            .with_mutation(Mutation::SkipInvalidateApply);
        let cex = match check_model(&config, &opts()).unwrap() {
            CheckOutcome::Fail(cex) => cex,
            CheckOutcome::Pass(_) => panic!("mutation must be caught"),
        };
        assert_eq!(cex.kind, "safety");
        let text = counterexample_to_log(&cex).to_text();
        let replayed = replay_log(&text).unwrap();
        assert_eq!(replayed.steps, cex.events.len());
        assert!(
            !replayed.violations.is_empty(),
            "replay reproduces the violation"
        );
        assert_eq!(
            replayed.violations[0].invariant,
            cex.violations[0].invariant
        );
    }

    #[test]
    fn liveness_counterexample_replays_to_a_clean_but_stuck_state() {
        let config = ModelConfig::new(2, 1)
            .with_extra_thread(1)
            .with_mutation(Mutation::DropInvAck);
        let cex = match check_model(&config, &opts()).unwrap() {
            CheckOutcome::Fail(cex) => cex,
            CheckOutcome::Pass(_) => panic!("drop-ack must be caught"),
        };
        assert_eq!(cex.kind, "liveness");
        let text = counterexample_to_log(&cex).to_text();
        let replayed = replay_log(&text).unwrap();
        assert_eq!(replayed.steps, cex.events.len());
        assert!(replayed.violations.is_empty());
    }

    #[test]
    fn event_encoding_round_trips() {
        let events = [
            ModelEvent::Issue {
                thread: 3,
                op: Op::Write(Vpn::new(7)),
            },
            ModelEvent::Issue {
                thread: 0,
                op: Op::Evict(Vpn::new(0)),
            },
            ModelEvent::ReIssue { thread: 12 },
            ModelEvent::Deliver { msg: 5 },
        ];
        for e in events {
            assert_eq!(decode_event(encode_event(e)), Some(e));
        }
    }

    #[test]
    fn max_states_cap_reports_an_honest_error() {
        let config = ModelConfig::new(3, 2);
        let err = check_model(&config, &CheckOptions { max_states: 100 }).unwrap_err();
        assert!(err.contains("state space exceeds"), "{err}");
    }
}
