//! Fault-injection scenarios for `dex-check faults`.
//!
//! Each scenario runs a canonical multi-node workload under a
//! [`dex_sim::FaultPlan`] and checks the fault layer's contract:
//!
//! * an **empty plan** leaves the run byte-identical to a run with no
//!   plan at all (virtual time, every counter, the fault trace);
//! * **seeded plans replay**: two runs of the same plan produce the
//!   same fingerprint;
//! * **stalled links** delay but never hang a run, and the ownership
//!   directory stays consistent;
//! * a **node crash** quiesces gracefully — the marooned thread
//!   re-homes to the origin, the directory reclaims every page the dead
//!   node owned, and migrating *to* the dead node fails cleanly.
//!
//! [`replay_plan`] applies the same determinism-and-invariants check to
//! a user-supplied plan file (`dex-check replay <plan>`).

use dex_core::{Cluster, ClusterConfig, NodeId, RunReport};
use dex_sim::{FaultPlan, SimDuration, SimTime};

/// Description of one built-in fault scenario.
#[derive(Clone, Copy, Debug)]
pub struct FaultScenario {
    /// CLI name.
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
}

/// All built-in fault scenarios.
pub const FAULT_SCENARIOS: [FaultScenario; 4] = [
    FaultScenario {
        name: "empty-plan",
        description: "an empty fault plan is byte-identical to no plan",
    },
    FaultScenario {
        name: "seeded-delays",
        description: "a generated delay/stall plan replays deterministically",
    },
    FaultScenario {
        name: "stall-window",
        description: "a stalled reply link delays but never hangs the run",
    },
    FaultScenario {
        name: "crash-mid-run",
        description: "a node crash re-homes its thread and reclaims its pages",
    },
];

/// The CLI names of every built-in fault scenario.
pub fn fault_scenario_names() -> Vec<&'static str> {
    FAULT_SCENARIOS.iter().map(|s| s.name).collect()
}

/// Everything observable about a run, for determinism comparisons.
fn fingerprint(report: &RunReport) -> (u64, Vec<(String, u64)>) {
    (
        report.virtual_time.as_nanos(),
        report.process().stats.counters.snapshot(),
    )
}

/// The canonical workload: one thread per non-origin node migrates out
/// (tolerating dead destinations), fills a page-aligned region, computes
/// past any crash window, rewrites a slice of the region (forcing fresh
/// faults that notice a crash), merges under a futex mutex, and returns
/// home.
fn canonical_workload(nodes: usize, plan: Option<FaultPlan>) -> RunReport {
    let mut config = ClusterConfig::new(nodes);
    if let Some(plan) = plan {
        config = config.with_fault_plan(plan);
    }
    let cluster = Cluster::new(config);
    cluster.run(|p| {
        let mutex = p.new_mutex("merge");
        let total = p.alloc_cell_tagged::<u64>(0, "total");
        for n in 1..nodes as u16 {
            let region = p.alloc_vec_aligned::<u64>(4 * 512, &format!("region{n}"));
            p.spawn(move |ctx| {
                let _ = ctx.migrate(n); // a dead destination declines
                for j in 0..region.len() {
                    region.set(ctx, j, j as u64 ^ ((n as u64) << 32));
                }
                ctx.compute_ops(16_000_000); // ~8 ms, spans crash windows
                for j in 0..64 {
                    region.set(ctx, j, j as u64 + n as u64);
                }
                mutex.lock(ctx);
                let t = total.get(ctx);
                total.set(ctx, t + 1);
                mutex.unlock(ctx);
                ctx.migrate_back().unwrap();
            });
        }
    })
}

/// Outcome of one scenario: pass/fail plus human-readable detail lines.
pub struct FaultOutcome {
    /// Whether every check of the scenario held.
    pub ok: bool,
    /// Detail lines for the CLI report.
    pub detail: Vec<String>,
}

/// Runs the named fault scenario. `None` for an unknown name.
pub fn run_fault_scenario(name: &str) -> Option<(FaultScenario, FaultOutcome)> {
    let scenario = *FAULT_SCENARIOS.iter().find(|s| s.name == name)?;
    let outcome = match name {
        "empty-plan" => empty_plan(),
        "seeded-delays" => seeded_delays(),
        "stall-window" => stall_window(),
        "crash-mid-run" => crash_mid_run(),
        _ => unreachable!("scenario table covers all names"),
    };
    Some((scenario, outcome))
}

fn empty_plan() -> FaultOutcome {
    let plain = canonical_workload(3, None);
    let with_empty = canonical_workload(3, Some(FaultPlan::default()));
    let identical = fingerprint(&plain) == fingerprint(&with_empty);
    FaultOutcome {
        ok: identical,
        detail: vec![if identical {
            format!(
                "fingerprints identical ({} counters, {} ns)",
                plain.process().stats.counters.snapshot().len(),
                plain.virtual_time.as_nanos()
            )
        } else {
            "** empty plan changed the run **".to_string()
        }],
    }
}

fn seeded_delays() -> FaultOutcome {
    let horizon = SimTime::ZERO + SimDuration::from_millis(20);
    let plan = FaultPlan::generate(0xD5, 3, horizon, false);
    let clean = canonical_workload(3, None);
    let first = canonical_workload(3, Some(plan.clone()));
    let second = canonical_workload(3, Some(plan));
    let deterministic = fingerprint(&first) == fingerprint(&second);
    FaultOutcome {
        ok: deterministic,
        detail: vec![format!(
            "replay {}; clean run {} µs, faulty run {} µs",
            if deterministic {
                "deterministic"
            } else {
                "** DIVERGED **"
            },
            clean.virtual_time.as_micros_f64(),
            first.virtual_time.as_micros_f64()
        )],
    }
}

fn stall_window() -> FaultOutcome {
    let mut plan = FaultPlan::default();
    plan.stall(
        1,
        0,
        SimTime::ZERO + SimDuration::from_micros(900),
        SimTime::ZERO + SimDuration::from_millis(4),
    );
    let first = canonical_workload(3, Some(plan.clone()));
    let second = canonical_workload(3, Some(plan));
    let deterministic = fingerprint(&first) == fingerprint(&second);
    let invariants = first
        .process()
        .directories
        .iter()
        .try_for_each(|dir| dir.lock().check_invariants());
    let ok = deterministic && invariants.is_ok();
    let mut detail = vec![format!(
        "completed in {} µs, replay {}",
        first.virtual_time.as_micros_f64(),
        if deterministic {
            "deterministic"
        } else {
            "** DIVERGED **"
        }
    )];
    if let Err(e) = invariants {
        detail.push(format!("** directory invariant violated: {e} **"));
    }
    FaultOutcome { ok, detail }
}

fn crash_mid_run() -> FaultOutcome {
    let mut plan = FaultPlan::default();
    plan.crash(2, SimTime::ZERO + SimDuration::from_millis(3));
    let first = canonical_workload(3, Some(plan.clone()));
    let second = canonical_workload(3, Some(plan));

    let mut ok = true;
    let mut detail = Vec::new();

    if fingerprint(&first) != fingerprint(&second) {
        ok = false;
        detail.push("** crash recovery diverged between replays **".to_string());
    }
    let shared = first.process();
    let counters = &shared.stats.counters;
    let rehomed = counters.get("migrations.crash_rehomed");
    let handled = counters.get("faults.crashes_handled");
    let reclaimed = counters.get("faults.pages_reclaimed");
    if rehomed < 1 {
        ok = false;
        detail.push("** the node-2 thread never re-homed **".to_string());
    }
    if handled != 1 {
        ok = false;
        detail.push(format!("** crash handled {handled} times, expected 1 **"));
    }
    for dir in &shared.directories {
        let directory = dir.lock();
        if let Err(e) = directory.check_invariants() {
            ok = false;
            detail.push(format!("** directory invariant violated: {e} **"));
        }
        if !directory.dead_nodes().contains(NodeId(2)) {
            ok = false;
            detail.push("** directory never learned of the crash **".to_string());
        }
    }
    if ok {
        detail.push(format!(
            "1 thread re-homed, {reclaimed} pages reclaimed, replay deterministic"
        ));
    }
    FaultOutcome { ok, detail }
}

/// Replays a user-supplied fault plan (`dex-check replay <plan-file>`):
/// runs the canonical workload under it twice and checks determinism and
/// directory consistency. Crash detection is lazy, so plans whose faults
/// never intersect live traffic pass trivially — the check is that
/// nothing hangs, diverges, or corrupts ownership.
pub fn replay_plan(plan: &FaultPlan) -> FaultOutcome {
    let nodes = 3.max(plan.crashes().iter().map(|c| c.node + 1).max().unwrap_or(0) as usize);
    let first = canonical_workload(nodes, Some(plan.clone()));
    let second = canonical_workload(nodes, Some(plan.clone()));
    let deterministic = fingerprint(&first) == fingerprint(&second);
    let invariants = first
        .process()
        .directories
        .iter()
        .try_for_each(|dir| dir.lock().check_invariants());
    let ok = deterministic && invariants.is_ok();
    let mut detail = vec![format!(
        "{} nodes, completed in {} µs, replay {}",
        nodes,
        first.virtual_time.as_micros_f64(),
        if deterministic {
            "deterministic"
        } else {
            "** DIVERGED **"
        }
    )];
    let counters = &first.process().stats.counters;
    let handled = counters.get("faults.crashes_handled");
    if handled > 0 {
        detail.push(format!(
            "{handled} crash(es) recovered, {} page(s) reclaimed, {} thread(s) re-homed",
            counters.get("faults.pages_reclaimed"),
            counters.get("migrations.crash_rehomed"),
        ));
    }
    if let Err(e) = invariants {
        detail.push(format!("** directory invariant violated: {e} **"));
    }
    FaultOutcome { ok, detail }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_builtin_scenario_passes() {
        for scenario in FAULT_SCENARIOS {
            let (_, outcome) = run_fault_scenario(scenario.name).expect("scenario name resolves");
            assert!(
                outcome.ok,
                "scenario {} failed: {:?}",
                scenario.name, outcome.detail
            );
        }
    }

    #[test]
    fn generated_crash_plan_replays() {
        let horizon = SimTime::ZERO + SimDuration::from_millis(10);
        let plan = FaultPlan::generate(42, 3, horizon, true);
        assert!(!plan.crashes().is_empty());
        let outcome = replay_plan(&plan);
        assert!(outcome.ok, "{:?}", outcome.detail);
    }
}
