//! `dex-check` — the verification driver for the DEX reproduction.
//!
//! ```text
//! dex-check model  [--nodes N] [--pages P] [--coalesce] [--sharded]
//!                  [--mutation NAME|all] [--max-states N] [--write-trace FILE]
//! dex-check explore [--scenario NAME|all] [--budget N] [--preemptions N]
//!                   [--seed S] [--mutation NAME|all] [--write-trace FILE]
//! dex-check replay FILE
//! dex-check races  [--scenario NAME]
//! dex-check faults [--scenario NAME]
//! dex-check lint   [--root DIR]
//! dex-check timeline [--out FILE] [--spans-out FILE]
//! dex-check metrics
//! dex-check perf [--results DIR] [--baselines DIR] [--tolerance PCT]
//!                [--update] [--self-test]
//! dex-check whatif [--workload NAME] [--factor F] [--component NAME]...
//!                  [--out FILE] [--smoke] [--self-test]
//! dex-check all
//! ```
//!
//! Exit status: `0` when every requested check passes, `1` when a check
//! finds a violation (or a mutation sweep misses one), `2` on usage or
//! I/O errors.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use dex_check::{
    check_model, counterexample_to_log, mutation_sweep, render_counterexample, render_race_report,
    replay_log, replay_plan, run_fault_scenario, run_lint, run_observed_workload, run_scenario,
    CheckOptions, CheckOutcome, FAULT_SCENARIOS, SCENARIOS,
};
use dex_core::model::{ModelConfig, Mutation};

/// One-line description of a model world for status output.
fn describe_world(config: &ModelConfig) -> String {
    format!(
        "nodes={} pages={} threads={:?} mutation={} sharded={}",
        config.nodes,
        config.pages,
        config.threads,
        config.mutation.name(),
        config.sharded,
    )
}

const USAGE: &str = "\
dex-check — protocol model checker, race/deadlock analysis, and lints

USAGE:
  dex-check model  [--nodes N] [--pages P] [--coalesce] [--sharded]
                   [--mutation NAME|all] [--max-states N] [--write-trace FILE]
  dex-check explore [--scenario NAME|all] [--budget N] [--preemptions N]
                    [--seed S] [--mutation NAME|all] [--write-trace FILE]
  dex-check replay FILE
  dex-check races  [--scenario NAME]
  dex-check faults [--scenario NAME]
  dex-check lint   [--root DIR]
  dex-check timeline [--out FILE] [--spans-out FILE]
  dex-check metrics
  dex-check perf [--results DIR] [--baselines DIR] [--tolerance PCT]
                 [--update] [--self-test]
  dex-check whatif [--workload NAME] [--factor F] [--component NAME]...
                   [--out FILE] [--smoke] [--self-test]
  dex-check all

SUBCOMMANDS:
  model    exhaustively explore the directory protocol over a closed
           finite world and check its safety and liveness invariants
  explore  systematic schedule exploration over the *real* simulator:
           DFS with dynamic partial-order reduction over every engine
           choice point, judged by an offline sequential-consistency
           oracle; violations are minimized into replayable schedule
           logs. `--mutation all` seeds protocol bugs in the real fault
           path and expects the explorer + oracle to catch each one
  replay   re-execute a counterexample trace written by `model`, a
           schedule log written by `explore` (header `dex-explore ...`:
           the scenario re-runs under the forced schedule, every
           decision is verified against the recording, and the failure
           must reproduce), or — when FILE starts with `# faultplan` —
           re-run the canonical workload under that fault plan twice
           and verify it completes deterministically with a consistent
           directory
  races    run the built-in workloads and analyze their recorded event
           streams for data races and lock-order cycles
  faults   run the deterministic fault-injection scenarios (empty-plan
           identity, seeded replay, stall completion, crash recovery)
  lint     run the source-level invariant lints over the workspace
  timeline run the sample traced workload, print its critical-path
           report, and (with --out) write the Chrome trace-event JSON
           for Perfetto / chrome://tracing; --spans-out writes the
           `# dex-spans v1` text form. Fails unless at least one fault
           stitches requester -> origin -> requester across nodes.
  metrics  run the sample workload with a MetricsRegistry attached and
           print the per-node / per-link counter and histogram snapshot
  perf     diff fresh BENCH_*.json results (written by the crates/bench
           binaries, see DEX_BENCH_OUT) against the committed baselines
           in baselines/perf with a tolerance band; --update rewrites
           the baselines from the results dir; --self-test perturbs
           each committed baseline past the band and verifies the
           comparison fails (proves the gate has teeth)
  whatif   causal what-if profiler: sweep virtual speedups/slowdowns
           over the named CostModel/NetConfig components for a chosen
           workload — the deterministic simulator makes each virtual
           speedup exact, not sampled — and print the ranked causal
           attribution report (`dex-prof` renders the same data from
           the `# dex-whatif v1` file written by --out). --self-test
           requires the known-dominant component of a retry-bound
           scenario to rank first and an irrelevant one to rank last
  all      lint + races + faults + explore (small budget + mutation
           sweep) + timeline + metrics + perf self-test + whatif
           self-test + model (2 nodes x 2 pages, the 3-node coalescing
           world, and the 3-node sharded two-hop world, each with a
           full mutation sweep)

MODEL OPTIONS:
  --nodes N          number of nodes, 2..=4 (default 2)
  --pages P          number of pages, 1..=2 (default 1)
  --coalesce         add a second thread on node 1 (leader-follower paths)
  --sharded          move the directory home to node 1 (two-hop forwarded
                     grants, batched invalidations, home != origin paths)
  --mutation NAME    inject a protocol bug; `all` sweeps every mutation
                     and expects each to be caught (default none)
  --max-states N     state-count safety valve (default 4000000)
  --write-trace F    on violation, write the counterexample replay log to F

EXPLORE OPTIONS:
  --scenario NAME    one of the exploration workloads, or `all` (default)
  --budget N         max executions per scenario (default 2000)
  --preemptions N    bounded-preemption search: expand only schedules
                     with at most N non-default picks (default unbounded)
  --seed S           switch from exhaustive DFS to a seeded random walk
                     of `--budget` samples
  --mutation NAME    inject a seeded protocol bug and expect the explorer
                     to catch it; `all` sweeps every mutation
  --write-trace F    write minimized counterexample schedule log(s) to F
                     (sweep mode appends `.<mutation>`)

PERF OPTIONS:
  --results DIR      directory with fresh BENCH_*.json files (default
                     $DEX_BENCH_OUT, then the current directory)
  --baselines DIR    committed baselines (default <workspace>/baselines/perf)
  --tolerance PCT    relative band in percent, 1..=400 (default 25)
  --update           rewrite the baselines from the results directory
  --self-test        skip the comparison; verify seeded regressions in
                     each committed baseline are caught by the band

WHATIF OPTIONS:
  --workload NAME    workload to sweep: pingpong (retry-bound), migrate
                     (migration-bound), or shard (two-hop grants)
                     (default pingpong)
  --factor F         cost scale per experiment; 0.5 = virtual speedup,
                     2.0 = virtual slowdown (default 0.5)
  --component NAME   sweep only this component (repeatable; default:
                     the full CostModel + net.* registry)
  --out FILE         also write the `# dex-whatif v1` report to FILE
  --smoke            small fixed sweep (3 components) for CI smoke
  --self-test        run the ranked-attribution self-test instead
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => {
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = match cmd {
        "model" => cmd_model(rest),
        "explore" => cmd_explore(rest),
        "replay" => cmd_replay(rest),
        "races" => cmd_races(rest),
        "faults" => cmd_faults(rest),
        "lint" => cmd_lint(rest),
        "timeline" => cmd_timeline(rest),
        "metrics" => cmd_metrics(rest),
        "perf" => cmd_perf(rest),
        "whatif" => cmd_whatif(rest),
        "all" => cmd_all(rest),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown subcommand `{other}`\n\n{USAGE}")),
    };
    match result {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(message) => {
            eprintln!("dex-check: {message}");
            ExitCode::from(2)
        }
    }
}

/// Parsed `model` arguments.
struct ModelArgs {
    nodes: u16,
    pages: u64,
    coalesce: bool,
    sharded: bool,
    mutation: Option<String>,
    max_states: usize,
    write_trace: Option<PathBuf>,
}

fn parse_model_args(args: &[String]) -> Result<ModelArgs, String> {
    let mut parsed = ModelArgs {
        nodes: 2,
        pages: 1,
        coalesce: false,
        sharded: false,
        mutation: None,
        max_states: CheckOptions::default().max_states,
        write_trace: None,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--nodes" => parsed.nodes = parse_num(value("--nodes")?, 2, 4)? as u16,
            "--pages" => parsed.pages = parse_num(value("--pages")?, 1, 2)?,
            "--coalesce" => parsed.coalesce = true,
            "--sharded" => parsed.sharded = true,
            "--mutation" => parsed.mutation = Some(value("--mutation")?.clone()),
            "--max-states" => {
                parsed.max_states = parse_num(value("--max-states")?, 1, u64::MAX)? as usize
            }
            "--write-trace" => parsed.write_trace = Some(PathBuf::from(value("--write-trace")?)),
            other => return Err(format!("unknown flag `{other}` for `model`\n\n{USAGE}")),
        }
    }
    Ok(parsed)
}

fn parse_num(text: &str, min: u64, max: u64) -> Result<u64, String> {
    let n: u64 = text
        .parse()
        .map_err(|_| format!("`{text}` is not a number"))?;
    if n < min || n > max {
        return Err(format!("`{text}` out of range {min}..={max}"));
    }
    Ok(n)
}

fn cmd_model(args: &[String]) -> Result<bool, String> {
    let parsed = parse_model_args(args)?;
    let mut config = ModelConfig::new(parsed.nodes, parsed.pages);
    if parsed.coalesce {
        config = config.with_extra_thread(1);
    }
    if parsed.sharded {
        config = config.with_sharding();
    }
    let opts = CheckOptions {
        max_states: parsed.max_states,
    };

    if parsed.mutation.as_deref() == Some("all") {
        let started = std::time::Instant::now();
        let (lines, all_ok) = mutation_sweep(&config, &opts)?;
        for line in &lines {
            println!("{line}");
        }
        println!(
            "mutation sweep: {} in {:.2?}",
            if all_ok { "PASS" } else { "FAIL" },
            started.elapsed()
        );
        return Ok(all_ok);
    }

    if let Some(name) = &parsed.mutation {
        let mutation = Mutation::parse(name)
            .ok_or_else(|| format!("unknown mutation `{name}` (try `--mutation all`)"))?;
        config = config.with_mutation(mutation);
    }

    let started = std::time::Instant::now();
    let outcome = check_model(&config, &opts)?;
    match outcome {
        CheckOutcome::Pass(report) => {
            println!(
                "model PASS ({}): {} states, {} transitions, {} quiescent, {:.2?}",
                describe_world(&config),
                report.states,
                report.transitions,
                report.quiescent,
                started.elapsed()
            );
            Ok(true)
        }
        CheckOutcome::Fail(cex) => {
            println!("{}", render_counterexample(&cex));
            if let Some(path) = &parsed.write_trace {
                let log = counterexample_to_log(&cex);
                std::fs::write(path, log.to_text())
                    .map_err(|e| format!("writing {}: {e}", path.display()))?;
                println!("counterexample trace written to {}", path.display());
            }
            Ok(false)
        }
    }
}

/// Parsed `explore` arguments.
struct ExploreArgs {
    scenario: Option<String>,
    budget: usize,
    preemptions: Option<usize>,
    seed: Option<u64>,
    mutation: Option<String>,
    write_trace: Option<PathBuf>,
}

fn parse_explore_args(args: &[String]) -> Result<ExploreArgs, String> {
    let mut parsed = ExploreArgs {
        scenario: None,
        budget: 2000,
        preemptions: None,
        seed: None,
        mutation: None,
        write_trace: None,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--scenario" => parsed.scenario = Some(value("--scenario")?.clone()),
            "--budget" => parsed.budget = parse_num(value("--budget")?, 1, u64::MAX)? as usize,
            "--preemptions" => {
                parsed.preemptions = Some(parse_num(value("--preemptions")?, 0, 64)? as usize)
            }
            "--seed" => parsed.seed = Some(parse_num(value("--seed")?, 0, u64::MAX)?),
            "--mutation" => parsed.mutation = Some(value("--mutation")?.clone()),
            "--write-trace" => parsed.write_trace = Some(PathBuf::from(value("--write-trace")?)),
            other => return Err(format!("unknown flag `{other}` for `explore`\n\n{USAGE}")),
        }
    }
    Ok(parsed)
}

fn cmd_explore(args: &[String]) -> Result<bool, String> {
    use dex_check::explore;
    let parsed = parse_explore_args(args)?;
    let started = std::time::Instant::now();

    if parsed.mutation.as_deref() == Some("all") {
        let entries = explore::mutation_sweep(parsed.budget);
        print!("{}", explore::render_sweep(&entries));
        if let Some(path) = &parsed.write_trace {
            for e in &entries {
                if let Some(cx) = &e.counterexample {
                    let file = PathBuf::from(format!("{}.{}", path.display(), e.mutation.name()));
                    std::fs::write(&file, cx.log.to_text())
                        .map_err(|err| format!("writing {}: {err}", file.display()))?;
                    println!("counterexample schedule written to {}", file.display());
                }
            }
        }
        let all_caught = entries.iter().all(|e| e.caught_by.is_some());
        println!(
            "explore mutation sweep: {} in {:.2?}",
            if all_caught { "PASS" } else { "FAIL" },
            started.elapsed()
        );
        return Ok(all_caught);
    }

    let mutation = match &parsed.mutation {
        Some(name) => dex_core::ProtocolMutation::parse(name)
            .ok_or_else(|| format!("unknown mutation `{name}` (try `--mutation all`)"))?,
        None => dex_core::ProtocolMutation::None,
    };
    let scenarios: Vec<dex_check::ExploreScenario> = match parsed.scenario.as_deref() {
        Some(name) if name != "all" => {
            vec![dex_check::find_explore_scenario(name).ok_or_else(|| {
                format!(
                    "unknown explore scenario `{name}` (expected one of {:?})",
                    dex_check::explore_scenario_names()
                )
            })?]
        }
        _ => dex_check::EXPLORE_SCENARIOS.to_vec(),
    };

    let config = dex_check::ExploreConfig {
        budget: parsed.budget,
        preemptions: parsed.preemptions,
        seed: parsed.seed,
        mutation,
    };
    // A seeded mutation is a checker self-test: finding the bug is the
    // pass condition. Without one, clean exploration is the pass.
    let expect_violation = mutation != dex_core::ProtocolMutation::None;
    let mut all_ok = true;
    let mut caught_any = false;
    for scenario in &scenarios {
        let outcome = explore::explore(scenario, &config);
        print!("explore {}", explore::render_outcome(&outcome));
        if let Some(cx) = &outcome.counterexample {
            caught_any = true;
            if let Some(path) = &parsed.write_trace {
                std::fs::write(path, cx.log.to_text())
                    .map_err(|e| format!("writing {}: {e}", path.display()))?;
                println!("counterexample schedule written to {}", path.display());
            }
        }
        if !expect_violation {
            all_ok &= outcome.counterexample.is_none();
        }
    }
    if expect_violation {
        all_ok = caught_any;
    }
    println!(
        "explore: {} in {:.2?}",
        if all_ok { "PASS" } else { "FAIL" },
        started.elapsed()
    );
    Ok(all_ok)
}

fn cmd_replay(args: &[String]) -> Result<bool, String> {
    let [path] = args else {
        return Err(format!("`replay` takes exactly one trace file\n\n{USAGE}"));
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    if dex_sim::FaultPlan::looks_like_plan(&text) {
        let plan = dex_sim::FaultPlan::parse(&text).map_err(|e| format!("parsing {path}: {e}"))?;
        if plan.crashes().iter().any(|c| c.node == 0) {
            return Err(format!(
                "{path}: plan crashes node 0 (the origin); an origin crash is \
                 process death and cannot be recovered from (see DESIGN.md, fault model)"
            ));
        }
        let outcome = replay_plan(&plan);
        println!(
            "fault plan {path}: {} link fault(s), {} crash(es)",
            plan.link_faults().len(),
            plan.crashes().len()
        );
        for line in &outcome.detail {
            println!("  {line}");
        }
        println!("replay {}", if outcome.ok { "PASS" } else { "FAIL" });
        return Ok(outcome.ok);
    }
    if let Ok(log) = dex_sim::ScheduleLog::parse(&text) {
        if dex_check::looks_like_explore_log(&log.header) {
            return match dex_check::replay_explore_log(&log) {
                Ok(report) => {
                    println!("{report}");
                    println!("replay PASS");
                    Ok(true)
                }
                Err(e) => {
                    println!("replay FAIL: {e}");
                    Ok(false)
                }
            };
        }
    }
    let outcome = replay_log(&text)?;
    println!(
        "replayed {} steps ({})",
        outcome.steps,
        describe_world(&outcome.config)
    );
    println!("final state:\n{}", outcome.final_state);
    if outcome.violations.is_empty() {
        println!("replay reproduced no safety violation (liveness trace ends stuck-but-clean)");
    } else {
        for v in &outcome.violations {
            println!("violated: {v}");
        }
    }
    // Replaying a counterexample *successfully reproduces* it; the replay
    // itself succeeds either way.
    Ok(true)
}

fn cmd_races(args: &[String]) -> Result<bool, String> {
    let mut scenario_filter: Option<String> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--scenario" => {
                scenario_filter = Some(
                    it.next()
                        .ok_or_else(|| "--scenario needs a value".to_string())?
                        .clone(),
                )
            }
            other => return Err(format!("unknown flag `{other}` for `races`\n\n{USAGE}")),
        }
    }

    let names: Vec<&str> = match &scenario_filter {
        Some(name) if name != "all" => vec![name.as_str()],
        _ => SCENARIOS.iter().map(|s| s.name).collect(),
    };

    let mut all_ok = true;
    for name in names {
        let (scenario, events) = run_scenario(name).ok_or_else(|| {
            let known: Vec<&str> = SCENARIOS.iter().map(|s| s.name).collect();
            format!("unknown scenario `{name}` (expected one of {known:?})")
        })?;
        let report = dex_check::analyze_races(&events);
        let clean = report.is_clean();
        let ok = clean == scenario.expect_clean;
        all_ok &= ok;
        println!(
            "races {:<10} {:>6} events  {} conflicts  {} lock cycles  {}",
            scenario.name,
            report.events,
            report.conflicts.len(),
            report.cycles.len(),
            match (ok, scenario.expect_clean) {
                (true, true) => "clean (as expected)",
                (true, false) => "caught (as expected)",
                (false, true) => "** UNEXPECTED VIOLATIONS **",
                (false, false) => "** FIXTURE NOT CAUGHT **",
            }
        );
        if !clean {
            for line in render_race_report(&report).lines() {
                println!("    {line}");
            }
        }
    }
    Ok(all_ok)
}

fn cmd_faults(args: &[String]) -> Result<bool, String> {
    let mut scenario_filter: Option<String> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--scenario" => {
                scenario_filter = Some(
                    it.next()
                        .ok_or_else(|| "--scenario needs a value".to_string())?
                        .clone(),
                )
            }
            other => return Err(format!("unknown flag `{other}` for `faults`\n\n{USAGE}")),
        }
    }

    let names: Vec<&str> = match &scenario_filter {
        Some(name) if name != "all" => vec![name.as_str()],
        _ => FAULT_SCENARIOS.iter().map(|s| s.name).collect(),
    };

    let mut all_ok = true;
    for name in names {
        let (scenario, outcome) = run_fault_scenario(name).ok_or_else(|| {
            let known: Vec<&str> = FAULT_SCENARIOS.iter().map(|s| s.name).collect();
            format!("unknown fault scenario `{name}` (expected one of {known:?})")
        })?;
        all_ok &= outcome.ok;
        println!(
            "faults {:<14} {}  {}",
            scenario.name,
            if outcome.ok { "PASS" } else { "FAIL" },
            scenario.description
        );
        for line in &outcome.detail {
            println!("    {line}");
        }
    }
    Ok(all_ok)
}

fn cmd_lint(args: &[String]) -> Result<bool, String> {
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--root" => {
                root = Some(PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--root needs a value".to_string())?,
                ))
            }
            other => return Err(format!("unknown flag `{other}` for `lint`\n\n{USAGE}")),
        }
    }
    let root = match root {
        Some(r) => r,
        None => workspace_root()?,
    };
    let hits = run_lint(&root).map_err(|e| format!("linting {}: {e}", root.display()))?;
    if hits.is_empty() {
        println!("lint PASS ({})", root.display());
        return Ok(true);
    }
    for hit in &hits {
        println!("{hit}");
    }
    println!("lint FAIL: {} violation(s)", hits.len());
    Ok(false)
}

fn cmd_timeline(args: &[String]) -> Result<bool, String> {
    let mut out: Option<PathBuf> = None;
    let mut spans_out: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--out" => out = Some(PathBuf::from(value("--out")?)),
            "--spans-out" => spans_out = Some(PathBuf::from(value("--spans-out")?)),
            other => return Err(format!("unknown flag `{other}` for `timeline`\n\n{USAGE}")),
        }
    }
    let outcome = run_observed_workload();
    print!("{}", outcome.critical_path);
    println!(
        "\n{} span(s) recorded; cross-node stitching {}",
        outcome.spans,
        if outcome.stitched_cross_node {
            "OK (requester -> origin -> requester)"
        } else {
            "MISSING"
        }
    );
    if let Some(path) = &out {
        std::fs::write(path, &outcome.chrome_json)
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!(
            "chrome trace-event JSON written to {} (load in ui.perfetto.dev)",
            path.display()
        );
    }
    if let Some(path) = &spans_out {
        std::fs::write(path, &outcome.spans_text)
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!("span text (# dex-spans v1) written to {}", path.display());
    }
    println!(
        "timeline {}",
        if outcome.stitched_cross_node {
            "PASS"
        } else {
            "FAIL"
        }
    );
    Ok(outcome.stitched_cross_node)
}

fn cmd_metrics(args: &[String]) -> Result<bool, String> {
    if !args.is_empty() {
        return Err(format!("`metrics` takes no flags\n\n{USAGE}"));
    }
    let outcome = run_observed_workload();
    print!("{}", outcome.metrics_text);
    let ok = outcome.metrics_text.contains("dsm.faults_write");
    println!("metrics {}", if ok { "PASS" } else { "FAIL" });
    Ok(ok)
}

fn cmd_perf(args: &[String]) -> Result<bool, String> {
    let mut results: Option<PathBuf> = None;
    let mut baselines: Option<PathBuf> = None;
    let mut tolerance = dex_check::PerfTolerance::default();
    let mut update = false;
    let mut self_test = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--results" => results = Some(PathBuf::from(value("--results")?)),
            "--baselines" => baselines = Some(PathBuf::from(value("--baselines")?)),
            "--tolerance" => {
                tolerance.relative = parse_num(value("--tolerance")?, 1, 400)? as f64 / 100.0
            }
            "--update" => update = true,
            "--self-test" => self_test = true,
            other => return Err(format!("unknown flag `{other}` for `perf`\n\n{USAGE}")),
        }
    }
    let baseline_dir = match baselines {
        Some(dir) => dir,
        None => workspace_root()?.join("baselines/perf"),
    };

    if self_test {
        println!(
            "perf self-test: seeding regressions past the ±{:.0}% band in {}",
            tolerance.relative * 100.0,
            baseline_dir.display()
        );
        let lines = dex_check::self_test(&baseline_dir, &tolerance)?;
        for line in &lines {
            println!("  {line}");
        }
        println!(
            "perf self-test PASS ({} baseline(s) have teeth)",
            lines.len()
        );
        return Ok(true);
    }

    let results_dir = results.unwrap_or_else(|| {
        PathBuf::from(std::env::var("DEX_BENCH_OUT").unwrap_or_else(|_| ".".to_string()))
    });

    if update {
        let fresh = dex_check::load_results(&results_dir)?;
        if fresh.is_empty() {
            return Err(format!(
                "no BENCH_*.json results in {} to baseline",
                results_dir.display()
            ));
        }
        std::fs::create_dir_all(&baseline_dir)
            .map_err(|e| format!("{}: {e}", baseline_dir.display()))?;
        for result in fresh.values() {
            let path = baseline_dir.join(result.file_name());
            std::fs::write(&path, result.to_json())
                .map_err(|e| format!("{}: {e}", path.display()))?;
            println!("baselined {}", path.display());
        }
        println!("perf baselines updated ({})", fresh.len());
        return Ok(true);
    }

    println!(
        "perf gate: {} vs baselines in {} (±{:.0}% band, absolute floor {})",
        results_dir.display(),
        baseline_dir.display(),
        tolerance.relative * 100.0,
        tolerance.absolute
    );
    let (lines, violations) = dex_check::compare_dirs(&baseline_dir, &results_dir, &tolerance)?;
    for line in &lines {
        println!("  {line}");
    }
    for violation in &violations {
        println!("  VIOLATION {violation}");
    }
    let ok = violations.is_empty();
    if !ok {
        println!(
            "  hint: explain the drift with\n    \
             dex-prof diff {}/BENCH_<name>.json {}/BENCH_<name>.json\n  \
             and rank what to optimize with `dex-check whatif --workload <name>`",
            baseline_dir.display(),
            results_dir.display()
        );
    }
    println!("perf {}", if ok { "PASS" } else { "FAIL" });
    Ok(ok)
}

fn cmd_whatif(args: &[String]) -> Result<bool, String> {
    let mut workload = "pingpong".to_string();
    let mut factor = 0.5f64;
    let mut components: Vec<String> = Vec::new();
    let mut out: Option<PathBuf> = None;
    let mut smoke = false;
    let mut self_test = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--workload" => workload = value("--workload")?.clone(),
            "--factor" => {
                let v = value("--factor")?;
                factor = v.parse().map_err(|_| format!("`{v}` is not a number"))?;
            }
            "--component" => components.push(value("--component")?.clone()),
            "--out" => out = Some(PathBuf::from(value("--out")?)),
            "--smoke" => smoke = true,
            "--self-test" => self_test = true,
            other => return Err(format!("unknown flag `{other}` for `whatif`\n\n{USAGE}")),
        }
    }

    if self_test {
        let started = std::time::Instant::now();
        match dex_check::whatif_self_test() {
            Ok(lines) => {
                for line in &lines {
                    println!("  {line}");
                }
                println!(
                    "whatif self-test PASS (dominant component ranks first, \
                     irrelevant one last) in {:.2?}",
                    started.elapsed()
                );
                return Ok(true);
            }
            Err(e) => {
                println!("whatif self-test FAIL: {e}");
                return Ok(false);
            }
        }
    }

    if components.is_empty() {
        components = if smoke {
            ["retry_backoff", "protocol_handling", "net.verb_latency"]
                .iter()
                .map(|s| s.to_string())
                .collect()
        } else {
            dex_check::full_component_registry()
        };
    }

    let started = std::time::Instant::now();
    let run = dex_check::run_whatif(&workload, &components, factor)?;
    print!("{}", dex_prof::render_whatif(&run.report));
    if let Some(path) = &out {
        std::fs::write(path, dex_prof::encode_whatif(&run.report))
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!("\n`# dex-whatif v1` report written to {}", path.display());
    }
    println!(
        "\nwhatif {} ({} experiment(s), baseline rerun {}) in {:.2?}",
        if run.deterministic { "PASS" } else { "FAIL" },
        run.report.entries.len(),
        if run.deterministic {
            "bit-identical"
        } else {
            "DIVERGED — virtual speedups unsound"
        },
        started.elapsed()
    );
    Ok(run.deterministic)
}

fn cmd_all(args: &[String]) -> Result<bool, String> {
    if !args.is_empty() {
        return Err(format!("`all` takes no flags\n\n{USAGE}"));
    }
    let mut ok = true;

    println!("== lint ==");
    ok &= cmd_lint(&[])?;

    println!("\n== races ==");
    ok &= cmd_races(&[])?;

    println!("\n== faults ==");
    ok &= cmd_faults(&[])?;

    println!("\n== explore: schedule exploration, small budget ==");
    ok &= cmd_explore(&["--budget".into(), "300".into()])?;

    println!("\n== explore: mutation sweep ==");
    ok &= cmd_explore(&[
        "--budget".into(),
        "60".into(),
        "--mutation".into(),
        "all".into(),
    ])?;

    println!("\n== timeline ==");
    ok &= cmd_timeline(&[])?;

    println!("\n== metrics ==");
    ok &= cmd_metrics(&[])?;

    println!("\n== perf: baseline self-test ==");
    ok &= cmd_perf(&["--self-test".into()])?;

    println!("\n== whatif: causal-attribution self-test ==");
    ok &= cmd_whatif(&["--self-test".into()])?;

    println!("\n== model: 2 nodes x 2 pages, mutation sweep ==");
    ok &= cmd_model(&[
        "--nodes".into(),
        "2".into(),
        "--pages".into(),
        "2".into(),
        "--mutation".into(),
        "all".into(),
    ])?;

    println!("\n== model: 3 nodes x 1 page with coalescing, mutation sweep ==");
    ok &= cmd_model(&[
        "--nodes".into(),
        "3".into(),
        "--pages".into(),
        "1".into(),
        "--coalesce".into(),
        "--mutation".into(),
        "all".into(),
    ])?;

    println!("\n== model: 3 nodes x 1 page, sharded two-hop directory, mutation sweep ==");
    ok &= cmd_model(&[
        "--nodes".into(),
        "3".into(),
        "--pages".into(),
        "1".into(),
        "--sharded".into(),
        "--mutation".into(),
        "all".into(),
    ])?;

    println!("\noverall: {}", if ok { "PASS" } else { "FAIL" });
    Ok(ok)
}

/// Locates the workspace root: walk up from the current directory to the
/// first `Cargo.toml` containing a `[workspace]` table, falling back to
/// the manifest directory baked in at compile time.
fn workspace_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| format!("getcwd: {e}"))?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            break;
        }
    }
    let fallback = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf);
    fallback.ok_or_else(|| "cannot locate the workspace root (use --root)".to_string())
}
