//! The perf-regression gate behind `dex-check perf`.
//!
//! Every bench binary writes a `BENCH_<name>.json` result in the
//! [`BenchResult`] schema; this module diffs a directory of fresh
//! results against the committed baselines with a tolerance band. The
//! simulator is deterministic, so the band absorbs *intentional*
//! evolution of the cost model and protocol — anything outside it is a
//! perf regression (or an improvement worth re-baselining with
//! `dex-check perf --update`).
//!
//! The gate must be falsifiable: [`self_test`] takes each baseline,
//! perturbs one field just past the band, and verifies the comparison
//! fails — run as part of `dex-check all` so CI proves the gate has
//! teeth on every commit.

use std::collections::BTreeMap;
use std::path::Path;

use dex_bench::BenchResult;

/// How far a fresh result may drift from its baseline.
#[derive(Clone, Copy, Debug)]
pub struct PerfTolerance {
    /// Relative band, e.g. `0.25` allows ±25 % around the baseline.
    pub relative: f64,
    /// Absolute floor in field units, so tiny baselines (a handful of
    /// faults, sub-microsecond latencies) don't fail on ±1 jitter.
    pub absolute: u64,
}

impl Default for PerfTolerance {
    fn default() -> Self {
        PerfTolerance {
            relative: 0.25,
            absolute: 16,
        }
    }
}

impl PerfTolerance {
    /// The maximum allowed absolute difference for a baseline value.
    pub fn allowed_diff(&self, baseline: u64) -> u64 {
        ((baseline as f64 * self.relative).ceil() as u64).max(self.absolute)
    }
}

/// One field-level tolerance violation.
#[derive(Clone, Debug)]
pub struct PerfViolation {
    /// The bench the field belongs to.
    pub bench: String,
    /// Field label (`virtual_time_ns`, `extra.runs`, ...).
    pub field: String,
    /// Committed baseline value (`None`: the field is new).
    pub baseline: Option<u64>,
    /// Fresh value (`None`: the field disappeared).
    pub current: Option<u64>,
}

impl std::fmt::Display for PerfViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (self.baseline, self.current) {
            (Some(b), Some(c)) => {
                let pct = if b > 0 {
                    format!(" ({:+.1}%)", 100.0 * (c as f64 - b as f64) / b as f64)
                } else {
                    String::new()
                };
                write!(
                    f,
                    "{}: {} drifted out of band: baseline {b}, got {c}{pct}",
                    self.bench, self.field
                )
            }
            (Some(b), None) => write!(
                f,
                "{}: {} (baseline {b}) missing from the fresh result",
                self.bench, self.field
            ),
            (None, Some(c)) => write!(
                f,
                "{}: new field {} = {c} not in the baseline (re-baseline with --update)",
                self.bench, self.field
            ),
            (None, None) => write!(f, "{}: {} missing on both sides", self.bench, self.field),
        }
    }
}

/// Compares one fresh result against its baseline. Returns every
/// field-level violation (empty = within tolerance).
pub fn compare_results(
    baseline: &BenchResult,
    current: &BenchResult,
    tol: &PerfTolerance,
) -> Vec<PerfViolation> {
    let mut violations = Vec::new();
    let base: BTreeMap<String, u64> = baseline.numeric_fields().into_iter().collect();
    let cur: BTreeMap<String, u64> = current.numeric_fields().into_iter().collect();
    for (field, b) in &base {
        match cur.get(field) {
            None => violations.push(PerfViolation {
                bench: baseline.name.clone(),
                field: field.clone(),
                baseline: Some(*b),
                current: None,
            }),
            Some(c) => {
                if c.abs_diff(*b) > tol.allowed_diff(*b) {
                    violations.push(PerfViolation {
                        bench: baseline.name.clone(),
                        field: field.clone(),
                        baseline: Some(*b),
                        current: Some(*c),
                    });
                }
            }
        }
    }
    for (field, c) in &cur {
        if !base.contains_key(field) {
            violations.push(PerfViolation {
                bench: baseline.name.clone(),
                field: field.clone(),
                baseline: None,
                current: Some(*c),
            });
        }
    }
    violations
}

/// Loads every `BENCH_*.json` in `dir`, keyed by bench name.
pub fn load_results(dir: &Path) -> Result<BTreeMap<String, BenchResult>, String> {
    let mut results = BTreeMap::new();
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if !name.starts_with("BENCH_") || !name.ends_with(".json") {
            continue;
        }
        let path = entry.path();
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let result =
            BenchResult::parse_json(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        results.insert(result.name.clone(), result);
    }
    Ok(results)
}

/// Diffs a results directory against a baseline directory. Returns
/// `(status lines, violations)`; the gate passes when `violations` is
/// empty. Every baseline must have a fresh result and vice versa.
pub fn compare_dirs(
    baseline_dir: &Path,
    results_dir: &Path,
    tol: &PerfTolerance,
) -> Result<(Vec<String>, Vec<PerfViolation>), String> {
    let baselines = load_results(baseline_dir)?;
    if baselines.is_empty() {
        return Err(format!(
            "no BENCH_*.json baselines in {}",
            baseline_dir.display()
        ));
    }
    let results = load_results(results_dir)?;
    let mut lines = Vec::new();
    let mut violations = Vec::new();
    for (name, baseline) in &baselines {
        match results.get(name) {
            None => {
                violations.push(PerfViolation {
                    bench: name.clone(),
                    field: "<result file>".to_string(),
                    baseline: Some(0),
                    current: None,
                });
                lines.push(format!("{name}: MISSING (no fresh BENCH_{name}.json)"));
            }
            Some(current) => {
                let v = compare_results(baseline, current, tol);
                lines.push(format!(
                    "{name}: {} ({} fields checked, {} out of band)",
                    if v.is_empty() { "ok" } else { "FAIL" },
                    baseline.numeric_fields().len(),
                    v.len()
                ));
                violations.extend(v);
            }
        }
    }
    for name in results.keys() {
        if !baselines.contains_key(name) {
            violations.push(PerfViolation {
                bench: name.clone(),
                field: "<baseline file>".to_string(),
                baseline: None,
                current: Some(0),
            });
            lines.push(format!(
                "{name}: UNTRACKED (no committed baseline; add with --update)"
            ));
        }
    }
    Ok((lines, violations))
}

/// Proves the gate has teeth: for every committed baseline, (a) the
/// baseline compared to itself passes, and (b) a copy with
/// `virtual_time_ns` (or, for run-less benches, the first extra)
/// perturbed just past the band fails. Returns the per-bench status
/// lines; errors if any seeded regression slips through.
pub fn self_test(baseline_dir: &Path, tol: &PerfTolerance) -> Result<Vec<String>, String> {
    let baselines = load_results(baseline_dir)?;
    if baselines.is_empty() {
        return Err(format!(
            "no BENCH_*.json baselines in {}",
            baseline_dir.display()
        ));
    }
    let mut lines = Vec::new();
    for (name, baseline) in &baselines {
        if !compare_results(baseline, baseline, tol).is_empty() {
            return Err(format!("{name}: baseline does not match itself"));
        }
        let mut seeded = baseline.clone();
        let field = if seeded.virtual_time_ns > 0 {
            seeded.virtual_time_ns += tol.allowed_diff(seeded.virtual_time_ns) + 1;
            "virtual_time_ns".to_string()
        } else {
            let (key, value) = seeded
                .extra
                .iter()
                .next()
                .map(|(k, v)| (k.clone(), *v))
                .ok_or_else(|| format!("{name}: baseline has no perturbable field"))?;
            seeded
                .extra
                .insert(key.clone(), value + tol.allowed_diff(value) + 1);
            format!("extra.{key}")
        };
        if compare_results(baseline, &seeded, tol).is_empty() {
            return Err(format!(
                "{name}: seeded regression in {field} passed the gate — the band is toothless"
            ));
        }
        lines.push(format!("{name}: seeded regression in {field} caught"));
    }
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(name: &str) -> BenchResult {
        BenchResult {
            name: name.into(),
            virtual_time_ns: 1_000_000,
            read_faults: 100,
            write_faults: 200,
            retried_faults: 4,
            msgs_sent: 500,
            bytes_sent: 100_000,
            fault_p50_ns: 20_000,
            fault_p99_ns: 160_000,
            extra: [("rounds".to_string(), 50_u64)].into(),
        }
    }

    #[test]
    fn identical_results_pass() {
        let r = sample("x");
        assert!(compare_results(&r, &r, &PerfTolerance::default()).is_empty());
    }

    #[test]
    fn drift_inside_the_band_passes_outside_fails() {
        let base = sample("x");
        let tol = PerfTolerance::default();
        let mut near = base.clone();
        near.virtual_time_ns = 1_200_000; // +20% < 25%
        assert!(compare_results(&base, &near, &tol).is_empty());
        let mut far = base.clone();
        far.virtual_time_ns = 1_300_000; // +30% > 25%
        let v = compare_results(&base, &far, &tol);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].field, "virtual_time_ns");
        assert!(v[0].to_string().contains("+30.0%"), "{}", v[0]);
    }

    #[test]
    fn small_values_get_the_absolute_floor() {
        let mut base = sample("x");
        base.retried_faults = 2;
        let mut cur = base.clone();
        cur.retried_faults = 10; // |diff| = 8 <= absolute floor 16
        assert!(compare_results(&base, &cur, &PerfTolerance::default()).is_empty());
        cur.retried_faults = 30; // 28 > 16
        assert_eq!(
            compare_results(&base, &cur, &PerfTolerance::default()).len(),
            1
        );
    }

    #[test]
    fn added_and_removed_extras_are_violations() {
        let base = sample("x");
        let mut cur = base.clone();
        cur.extra.remove("rounds");
        cur.extra.insert("new_thing".into(), 1);
        let v = compare_results(&base, &cur, &PerfTolerance::default());
        assert_eq!(v.len(), 2);
        assert!(v
            .iter()
            .any(|v| v.field == "extra.rounds" && v.current.is_none()));
        assert!(v
            .iter()
            .any(|v| v.field == "extra.new_thing" && v.baseline.is_none()));
    }

    #[test]
    fn dir_comparison_and_self_test_round_trip() {
        let tmp = std::env::temp_dir().join(format!("dex-perf-test-{}", std::process::id()));
        let base_dir = tmp.join("baselines");
        let res_dir = tmp.join("results");
        std::fs::create_dir_all(&base_dir).unwrap();
        std::fs::create_dir_all(&res_dir).unwrap();
        let r = sample("table9");
        std::fs::write(base_dir.join(r.file_name()), r.to_json()).unwrap();
        std::fs::write(res_dir.join(r.file_name()), r.to_json()).unwrap();

        let tol = PerfTolerance::default();
        let (lines, violations) = compare_dirs(&base_dir, &res_dir, &tol).unwrap();
        assert!(violations.is_empty(), "{violations:?}");
        assert_eq!(lines.len(), 1);

        // The self-test proves a seeded regression is caught.
        let lines = self_test(&base_dir, &tol).unwrap();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("caught"));

        // A missing fresh result fails the gate.
        std::fs::remove_file(res_dir.join(r.file_name())).unwrap();
        let (_, violations) = compare_dirs(&base_dir, &res_dir, &tol).unwrap();
        assert_eq!(violations.len(), 1);

        // A run-less baseline (virtual_time_ns = 0) perturbs an extra.
        let static_bench = BenchResult {
            name: "table9".into(),
            ..Default::default()
        }
        .with_extra("loc", 40);
        std::fs::write(
            base_dir.join(static_bench.file_name()),
            static_bench.to_json(),
        )
        .unwrap();
        let lines = self_test(&base_dir, &tol).unwrap();
        assert!(lines[0].contains("extra.loc"), "{lines:?}");

        std::fs::remove_dir_all(&tmp).unwrap();
    }
}
