//! The sample traced workload behind `dex-check timeline` and
//! `dex-check metrics`.
//!
//! Runs a small deterministic 3-node application with spans and metrics
//! on — forward migrations, remote write faults with invalidation
//! fan-out, a read-sharing thread, backward migrations — then hands the
//! measured spans to `dex-prof`'s exporters. This is the quickest way to
//! get a real Chrome trace-event JSON out of the reproduction, and CI
//! uses it to prove the export pipeline stays valid end to end.

use dex_core::{Cluster, ClusterConfig, SpanKind};
use dex_prof::{encode_spans, export_chrome_trace, render_critical_path};

/// Everything the observed sample run produces.
pub struct ObserveOutcome {
    /// Chrome trace-event JSON (Perfetto / `chrome://tracing`).
    pub chrome_json: String,
    /// The `# dex-spans v1` text encoding of the same forest.
    pub spans_text: String,
    /// The critical-path report (fault decomposition + Table II shape).
    pub critical_path: String,
    /// Rendered metrics snapshot.
    pub metrics_text: String,
    /// Number of spans recorded.
    pub spans: usize,
    /// Whether at least one fault stitched requester → origin →
    /// requester across node boundaries.
    pub stitched_cross_node: bool,
}

/// Runs the sample workload with full observability and exports it.
pub fn run_observed_workload() -> ObserveOutcome {
    let cluster = Cluster::new(ClusterConfig::new(3).with_spans().with_metrics());
    let report = cluster.run(|p| {
        let data = p.alloc_vec::<u64>(256, "data");
        let flag = p.alloc_cell_tagged::<u32>(0, "flag");
        for worker in 0..2u16 {
            p.spawn(move |ctx| {
                ctx.set_site("observe.writer");
                ctx.migrate(worker + 1).expect("node exists");
                let base = worker as usize * 64;
                for i in 0..16 {
                    data.set(ctx, base + i, (base + i) as u64);
                }
                if worker == 0 {
                    flag.set(ctx, 1);
                }
                ctx.migrate_back().expect("return home");
            });
        }
        p.spawn(move |ctx| {
            ctx.set_site("observe.reader");
            while flag.get(ctx) == 0 {
                ctx.compute_ops(10_000);
            }
            let mut sum = 0u64;
            for i in 0..16 {
                sum += data.get(ctx, i);
            }
            assert_eq!(sum, (0..16).sum::<u64>());
        });
    });

    let spans = &report.spans;
    let stitched_cross_node = spans.iter().any(|fault| {
        fault.kind == SpanKind::Fault
            && spans.iter().any(|handling| {
                handling.kind == SpanKind::DirectoryHandling
                    && handling.parent == fault.id
                    && handling.node != fault.node
                    && spans.iter().any(|fixup| {
                        fixup.kind == SpanKind::PageFixup
                            && fixup.parent == handling.id
                            && fixup.node == fault.node
                    })
            })
    });

    ObserveOutcome {
        chrome_json: export_chrome_trace(spans),
        spans_text: encode_spans(spans),
        critical_path: render_critical_path(spans, 3),
        metrics_text: report
            .metrics
            .as_ref()
            .map(|m| m.render())
            .unwrap_or_default(),
        spans: spans.len(),
        stitched_cross_node,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observed_workload_exports_a_stitched_timeline() {
        let out = run_observed_workload();
        assert!(out.spans > 0);
        assert!(
            out.stitched_cross_node,
            "a remote fault must stitch requester -> origin -> requester"
        );
        assert!(out.chrome_json.contains("\"traceEvents\""));
        assert!(out.spans_text.starts_with("# dex-spans v1"));
        assert!(out.critical_path.contains("migration phases"));
        assert!(out.metrics_text.contains("dsm.faults_write"));
        // The JSON survives its own span codec sibling: decode the text
        // form and re-export, sizes must agree.
        let decoded = dex_prof::decode_spans(&out.spans_text).unwrap();
        assert_eq!(decoded.len(), out.spans);
    }
}
