//! Page table entries and per-replica page tables.
//!
//! DEX arms the memory-consistency protocol through PTE permissions: a
//! page a node does not own is simply not present (or present read-only),
//! so any access traps into the fault path (§III-C). The simulated
//! [`PageTable`] performs exactly that check.

use crate::page::Vpn;
use crate::radix::RadixTree;

/// The access kind of a memory operation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Access {
    /// A load.
    Read,
    /// A store.
    Write,
}

impl Access {
    /// Returns `true` for [`Access::Write`].
    pub fn is_write(self) -> bool {
        matches!(self, Access::Write)
    }
}

impl std::fmt::Display for Access {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Access::Read => write!(f, "read"),
            Access::Write => write!(f, "write"),
        }
    }
}

/// A simulated page-table entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Pte {
    /// The page is mapped on this node.
    pub present: bool,
    /// Stores are permitted (i.e. the node holds exclusive ownership under
    /// the DEX protocol).
    pub writable: bool,
}

impl Pte {
    /// An entry granting read-only access.
    pub const READ_ONLY: Pte = Pte {
        present: true,
        writable: false,
    };

    /// An entry granting full access.
    pub const READ_WRITE: Pte = Pte {
        present: true,
        writable: true,
    };

    /// Whether an access of kind `access` proceeds without faulting.
    pub fn permits(self, access: Access) -> bool {
        match access {
            Access::Read => self.present,
            Access::Write => self.present && self.writable,
        }
    }
}

/// A per-(node, process) page table mapping [`Vpn`]s to [`Pte`]s.
///
/// Absent entries behave as non-present PTEs, so a fresh replica faults on
/// its first touch of every page — exactly how a migrated thread starts
/// out on a remote node.
///
/// # Examples
///
/// ```
/// use dex_os::{Access, PageTable, Pte, Vpn};
///
/// let mut pt = PageTable::new();
/// let page = Vpn::new(7);
/// assert!(!pt.entry(page).permits(Access::Read)); // not present: fault
/// pt.set(page, Pte::READ_ONLY);
/// assert!(pt.entry(page).permits(Access::Read));
/// assert!(!pt.entry(page).permits(Access::Write)); // write fault
/// ```
#[derive(Clone, Default)]
pub struct PageTable {
    entries: RadixTree<Pte>,
}

impl PageTable {
    /// Creates an empty page table.
    pub fn new() -> Self {
        PageTable {
            entries: RadixTree::new(),
        }
    }

    /// The entry for `vpn` (non-present default when never set).
    pub fn entry(&self, vpn: Vpn) -> Pte {
        self.entries.get(vpn.index()).copied().unwrap_or_default()
    }

    /// Installs `pte` for `vpn`.
    pub fn set(&mut self, vpn: Vpn, pte: Pte) {
        self.entries.insert(vpn.index(), pte);
    }

    /// Clears the mapping for `vpn` (subsequent accesses fault).
    pub fn clear(&mut self, vpn: Vpn) {
        self.entries.remove(vpn.index());
    }

    /// Downgrades `vpn` to read-only if present (ownership revocation for
    /// shared readers).
    pub fn downgrade(&mut self, vpn: Vpn) {
        if let Some(pte) = self.entries.get_mut(vpn.index()) {
            pte.writable = false;
        }
    }

    /// Number of present entries.
    pub fn present_count(&self) -> usize {
        self.entries.len()
    }

    /// Iterates `(vpn, pte)` pairs in page order.
    pub fn iter(&self) -> impl Iterator<Item = (Vpn, Pte)> + '_ {
        self.entries.iter().map(|(k, pte)| (Vpn::new(k), *pte))
    }

    /// Number of entries mapped writable (exclusive ownership under DEX).
    pub fn writable_count(&self) -> usize {
        self.entries.iter().filter(|(_, pte)| pte.writable).count()
    }

    /// A point-in-time copy of the table contents in page order.
    ///
    /// Verification tooling (`dex-check`) uses this to compare a node's
    /// mapped view against the directory's owner sets without holding a
    /// borrow of the live table.
    pub fn snapshot(&self) -> Vec<(Vpn, Pte)> {
        self.iter().collect()
    }
}

impl std::fmt::Debug for PageTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageTable")
            .field("present", &self.present_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absent_entry_faults_on_everything() {
        let pt = PageTable::new();
        let e = pt.entry(Vpn::new(3));
        assert!(!e.permits(Access::Read));
        assert!(!e.permits(Access::Write));
    }

    #[test]
    fn read_only_permits_reads_only() {
        let mut pt = PageTable::new();
        pt.set(Vpn::new(1), Pte::READ_ONLY);
        assert!(pt.entry(Vpn::new(1)).permits(Access::Read));
        assert!(!pt.entry(Vpn::new(1)).permits(Access::Write));
    }

    #[test]
    fn read_write_permits_both() {
        let mut pt = PageTable::new();
        pt.set(Vpn::new(1), Pte::READ_WRITE);
        assert!(pt.entry(Vpn::new(1)).permits(Access::Read));
        assert!(pt.entry(Vpn::new(1)).permits(Access::Write));
    }

    #[test]
    fn clear_revokes_access() {
        let mut pt = PageTable::new();
        pt.set(Vpn::new(9), Pte::READ_WRITE);
        pt.clear(Vpn::new(9));
        assert!(!pt.entry(Vpn::new(9)).permits(Access::Read));
        assert_eq!(pt.present_count(), 0);
    }

    #[test]
    fn downgrade_keeps_read_access() {
        let mut pt = PageTable::new();
        pt.set(Vpn::new(5), Pte::READ_WRITE);
        pt.downgrade(Vpn::new(5));
        assert!(pt.entry(Vpn::new(5)).permits(Access::Read));
        assert!(!pt.entry(Vpn::new(5)).permits(Access::Write));
        // Downgrading an absent page is a no-op.
        pt.downgrade(Vpn::new(6));
        assert!(!pt.entry(Vpn::new(6)).permits(Access::Read));
    }

    #[test]
    fn iter_in_page_order() {
        let mut pt = PageTable::new();
        pt.set(Vpn::new(30), Pte::READ_ONLY);
        pt.set(Vpn::new(10), Pte::READ_WRITE);
        let pages: Vec<u64> = pt.iter().map(|(v, _)| v.index()).collect();
        assert_eq!(pages, vec![10, 30]);
    }

    #[test]
    fn snapshot_and_counts_reflect_permissions() {
        let mut pt = PageTable::new();
        pt.set(Vpn::new(1), Pte::READ_WRITE);
        pt.set(Vpn::new(2), Pte::READ_ONLY);
        pt.set(Vpn::new(3), Pte::READ_WRITE);
        assert_eq!(pt.present_count(), 3);
        assert_eq!(pt.writable_count(), 2);
        let snap = pt.snapshot();
        assert_eq!(snap.len(), 3);
        // The snapshot is decoupled from the live table.
        pt.clear(Vpn::new(1));
        assert_eq!(snap[0], (Vpn::new(1), Pte::READ_WRITE));
    }
}
