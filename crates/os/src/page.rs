//! Pages, addresses, and page frames.
//!
//! DEX provides memory consistency at page granularity; everything in the
//! protocol is keyed by the **virtual page number** ([`Vpn`]). Simulated
//! page frames hold real bytes so that application results computed through
//! the distributed-memory protocol can be checked against ground truth.

use std::fmt;

/// Size of a simulated page in bytes (4 KiB, matching the paper's x86-64
/// testbed).
pub const PAGE_SIZE: usize = 4096;

/// Log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;

/// A virtual address within a simulated process address space.
///
/// # Examples
///
/// ```
/// use dex_os::{VirtAddr, PAGE_SIZE};
///
/// let a = VirtAddr::new(0x2000 + 17);
/// assert_eq!(a.vpn().index(), 2);
/// assert_eq!(a.page_offset(), 17);
/// assert_eq!(a.vpn().base().as_u64(), 0x2000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(u64);

impl VirtAddr {
    /// Wraps a raw virtual address.
    pub const fn new(addr: u64) -> Self {
        VirtAddr(addr)
    }

    /// The raw address value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The page this address falls in.
    pub const fn vpn(self) -> Vpn {
        Vpn(self.0 >> PAGE_SHIFT)
    }

    /// Byte offset within the page.
    pub const fn page_offset(self) -> usize {
        (self.0 & (PAGE_SIZE as u64 - 1)) as usize
    }

    /// Address advanced by `bytes`.
    pub const fn add(self, bytes: u64) -> VirtAddr {
        VirtAddr(self.0 + bytes)
    }
}

impl fmt::Debug for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<u64> for VirtAddr {
    fn from(v: u64) -> Self {
        VirtAddr(v)
    }
}

/// A virtual page number: a virtual address shifted down by
/// [`PAGE_SHIFT`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Vpn(u64);

impl Vpn {
    /// Wraps a raw page index.
    pub const fn new(index: u64) -> Self {
        Vpn(index)
    }

    /// The raw page index.
    pub const fn index(self) -> u64 {
        self.0
    }

    /// The first address of the page.
    pub const fn base(self) -> VirtAddr {
        VirtAddr(self.0 << PAGE_SHIFT)
    }

    /// The next page.
    pub const fn next(self) -> Vpn {
        Vpn(self.0 + 1)
    }
}

impl fmt::Debug for Vpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vpn:{:#x}", self.0)
    }
}

impl fmt::Display for Vpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Iterates the pages covering the byte range `[start, start + len)`.
///
/// # Examples
///
/// ```
/// use dex_os::{pages_covering, VirtAddr};
///
/// let pages: Vec<_> = pages_covering(VirtAddr::new(0x0fff), 2)
///     .map(|p| p.index())
///     .collect();
/// assert_eq!(pages, vec![0, 1]); // the range straddles a page boundary
/// ```
pub fn pages_covering(start: VirtAddr, len: u64) -> impl Iterator<Item = Vpn> {
    let first = start.vpn().index();
    let last = if len == 0 {
        first
    } else {
        VirtAddr::new(start.as_u64() + len - 1).vpn().index()
    };
    (first..=last).map(Vpn::new)
}

/// A 4 KiB physical page frame holding real bytes.
#[derive(Clone, PartialEq, Eq)]
pub struct PageFrame {
    data: Box<[u8]>,
}

impl Default for PageFrame {
    fn default() -> Self {
        Self::zeroed()
    }
}

impl PageFrame {
    /// A zero-filled frame (anonymous pages are zero-fill-on-demand).
    pub fn zeroed() -> Self {
        PageFrame {
            data: vec![0u8; PAGE_SIZE].into_boxed_slice(),
        }
    }

    /// A frame initialized from `bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not exactly [`PAGE_SIZE`] long.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        assert_eq!(bytes.len(), PAGE_SIZE, "page frames are {PAGE_SIZE} bytes");
        PageFrame {
            data: bytes.to_vec().into_boxed_slice(),
        }
    }

    /// Read-only view of the frame contents.
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Mutable view of the frame contents.
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Copies `src` into the frame at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the copy would run past the end of the frame.
    pub fn write(&mut self, offset: usize, src: &[u8]) {
        self.data[offset..offset + src.len()].copy_from_slice(src);
    }

    /// Copies frame bytes at `offset` into `dst`.
    ///
    /// # Panics
    ///
    /// Panics if the read would run past the end of the frame.
    pub fn read(&self, offset: usize, dst: &mut [u8]) {
        dst.copy_from_slice(&self.data[offset..offset + dst.len()]);
    }
}

impl fmt::Debug for PageFrame {
    // Print a checksum, not 4 KiB of bytes.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sum: u64 = self.data.iter().map(|&b| b as u64).sum();
        write!(f, "PageFrame(bytesum={sum})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_page_decomposition() {
        let a = VirtAddr::new(0x12345);
        assert_eq!(a.vpn(), Vpn::new(0x12));
        assert_eq!(a.page_offset(), 0x345);
        assert_eq!(a.vpn().base(), VirtAddr::new(0x12000));
    }

    #[test]
    fn pages_covering_single_byte() {
        let pages: Vec<_> = pages_covering(VirtAddr::new(0x1000), 1).collect();
        assert_eq!(pages, vec![Vpn::new(1)]);
    }

    #[test]
    fn pages_covering_exact_page() {
        let pages: Vec<_> = pages_covering(VirtAddr::new(0x1000), 4096).collect();
        assert_eq!(pages, vec![Vpn::new(1)]);
    }

    #[test]
    fn pages_covering_straddle() {
        let pages: Vec<_> = pages_covering(VirtAddr::new(0x1ffc), 8).collect();
        assert_eq!(pages, vec![Vpn::new(1), Vpn::new(2)]);
    }

    #[test]
    fn pages_covering_empty_range() {
        let pages: Vec<_> = pages_covering(VirtAddr::new(0x1000), 0).collect();
        assert_eq!(pages, vec![Vpn::new(1)]);
    }

    #[test]
    fn frame_roundtrip() {
        let mut f = PageFrame::zeroed();
        f.write(100, &[1, 2, 3, 4]);
        let mut buf = [0u8; 4];
        f.read(100, &mut buf);
        assert_eq!(buf, [1, 2, 3, 4]);
        assert_eq!(f.bytes()[99], 0);
        assert_eq!(f.bytes()[104], 0);
    }

    #[test]
    #[should_panic]
    fn frame_write_out_of_bounds_panics() {
        let mut f = PageFrame::zeroed();
        f.write(PAGE_SIZE - 1, &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "4096")]
    fn from_bytes_wrong_size_panics() {
        let _ = PageFrame::from_bytes(&[0u8; 100]);
    }
}
