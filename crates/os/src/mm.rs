//! A per-(node, process) address-space replica.
//!
//! Each node on which a DEX process runs holds a replica of the address
//! space: the VMA set (synchronized on demand), a page table (armed by the
//! consistency protocol), and the page frames actually resident on the
//! node. Frames hold real bytes, so values computed through the protocol
//! are end-to-end checkable.

use crate::page::{PageFrame, VirtAddr, Vpn, PAGE_SIZE};
use crate::pte::{Access, PageTable};
use crate::radix::RadixTree;
use crate::vma::VmaSet;

/// Why a memory access cannot proceed locally and must enter the DEX
/// protocol (or fail).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemFault {
    /// No PTE grants this access: the consistency protocol must fetch the
    /// page / upgrade ownership.
    Protocol {
        /// The faulting page.
        vpn: Vpn,
        /// The attempted access.
        access: Access,
    },
    /// The address lies outside every locally-known VMA: trigger on-demand
    /// VMA synchronization with the origin.
    VmaMiss {
        /// The faulting address.
        addr: VirtAddr,
    },
}

/// One node's replica of a process address space.
///
/// # Examples
///
/// ```
/// use dex_os::{Access, AddressSpace, Prot, Pte, VirtAddr, VmaKind};
///
/// let mut space = AddressSpace::new();
/// let addr = space.vmas.mmap(4096, Prot::RW, VmaKind::Heap, None);
/// // The page is mapped but not yet owned: first touch faults.
/// assert!(space.check(addr, Access::Write).is_err());
/// space.page_table.set(addr.vpn(), Pte::READ_WRITE);
/// space.write(addr, &7u32.to_le_bytes());
/// let mut buf = [0u8; 4];
/// space.read(addr, &mut buf);
/// assert_eq!(u32::from_le_bytes(buf), 7);
/// ```
#[derive(Debug, Default)]
pub struct AddressSpace {
    /// The VMA set of this replica.
    pub vmas: VmaSet,
    /// The page table of this replica.
    pub page_table: PageTable,
    frames: RadixTree<PageFrame>,
}

impl AddressSpace {
    /// Creates an empty replica.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks whether an access at `addr` may proceed locally.
    ///
    /// # Errors
    ///
    /// * [`MemFault::VmaMiss`] if no local VMA covers `addr` — the caller
    ///   must synchronize VMAs with the origin and retry.
    /// * [`MemFault::Protocol`] if the VMA permits the access but the PTE
    ///   does not — the caller must run the consistency protocol.
    pub fn check(&self, addr: VirtAddr, access: Access) -> Result<(), MemFault> {
        if self.vmas.check_access(addr, access.is_write()).is_err() {
            return Err(MemFault::VmaMiss { addr });
        }
        let pte = self.page_table.entry(addr.vpn());
        if pte.permits(access) {
            Ok(())
        } else {
            Err(MemFault::Protocol {
                vpn: addr.vpn(),
                access,
            })
        }
    }

    /// Immutable view of the frame backing `vpn`, if resident.
    pub fn frame(&self, vpn: Vpn) -> Option<&PageFrame> {
        self.frames.get(vpn.index())
    }

    /// Mutable frame for `vpn`, allocating a zero frame on first touch
    /// (anonymous pages are zero-fill-on-demand).
    pub fn frame_mut(&mut self, vpn: Vpn) -> &mut PageFrame {
        self.frames
            .get_or_insert_with(vpn.index(), PageFrame::zeroed)
    }

    /// Installs `frame` as the contents of `vpn` (page data arriving from
    /// another node).
    pub fn install_frame(&mut self, vpn: Vpn, frame: PageFrame) {
        self.frames.insert(vpn.index(), frame);
    }

    /// Discards the frame of `vpn` (full invalidation). The PTE should be
    /// cleared separately.
    pub fn evict_frame(&mut self, vpn: Vpn) -> Option<PageFrame> {
        self.frames.remove(vpn.index())
    }

    /// Number of resident frames.
    pub fn resident_pages(&self) -> usize {
        self.frames.len()
    }

    /// Copies bytes out of resident frames starting at `addr`. May span
    /// pages. Intended to be called only after `check` succeeded for every
    /// covered page.
    pub fn read(&self, addr: VirtAddr, dst: &mut [u8]) {
        let mut cursor = addr;
        let mut filled = 0usize;
        while filled < dst.len() {
            let offset = cursor.page_offset();
            let chunk = (PAGE_SIZE - offset).min(dst.len() - filled);
            match self.frames.get(cursor.vpn().index()) {
                Some(frame) => frame.read(offset, &mut dst[filled..filled + chunk]),
                None => dst[filled..filled + chunk].fill(0), // zero page
            }
            filled += chunk;
            cursor = cursor.add(chunk as u64);
        }
    }

    /// Copies `src` into resident frames starting at `addr`, allocating
    /// zero frames as needed. May span pages.
    pub fn write(&mut self, addr: VirtAddr, src: &[u8]) {
        let mut cursor = addr;
        let mut written = 0usize;
        while written < src.len() {
            let offset = cursor.page_offset();
            let chunk = (PAGE_SIZE - offset).min(src.len() - written);
            self.frame_mut(cursor.vpn())
                .write(offset, &src[written..written + chunk]);
            written += chunk;
            cursor = cursor.add(chunk as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pte::Pte;
    use crate::vma::{Prot, VmaKind};

    fn mapped_space(pages: u64) -> (AddressSpace, VirtAddr) {
        let mut s = AddressSpace::new();
        let addr = s
            .vmas
            .mmap(pages * PAGE_SIZE as u64, Prot::RW, VmaKind::Heap, None);
        (s, addr)
    }

    #[test]
    fn unmapped_address_is_vma_miss() {
        let s = AddressSpace::new();
        assert_eq!(
            s.check(VirtAddr::new(0x4000), Access::Read),
            Err(MemFault::VmaMiss {
                addr: VirtAddr::new(0x4000)
            })
        );
    }

    #[test]
    fn mapped_but_not_present_is_protocol_fault() {
        let (s, addr) = mapped_space(1);
        assert_eq!(
            s.check(addr, Access::Read),
            Err(MemFault::Protocol {
                vpn: addr.vpn(),
                access: Access::Read
            })
        );
    }

    #[test]
    fn read_only_pte_write_faults_into_protocol() {
        let (mut s, addr) = mapped_space(1);
        s.page_table.set(addr.vpn(), Pte::READ_ONLY);
        assert!(s.check(addr, Access::Read).is_ok());
        assert_eq!(
            s.check(addr, Access::Write),
            Err(MemFault::Protocol {
                vpn: addr.vpn(),
                access: Access::Write
            })
        );
    }

    #[test]
    fn read_of_untouched_page_is_zero() {
        let (s, addr) = mapped_space(1);
        let mut buf = [0xffu8; 16];
        s.read(addr, &mut buf);
        assert_eq!(buf, [0u8; 16]);
    }

    #[test]
    fn write_then_read_roundtrips() {
        let (mut s, addr) = mapped_space(1);
        s.write(addr.add(100), b"hello dex");
        let mut buf = [0u8; 9];
        s.read(addr.add(100), &mut buf);
        assert_eq!(&buf, b"hello dex");
    }

    #[test]
    fn cross_page_write_and_read() {
        let (mut s, addr) = mapped_space(2);
        let straddle = addr.add(PAGE_SIZE as u64 - 4);
        s.write(straddle, &[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut buf = [0u8; 8];
        s.read(straddle, &mut buf);
        assert_eq!(buf, [1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(s.resident_pages(), 2);
    }

    #[test]
    fn frame_install_and_evict() {
        let (mut s, addr) = mapped_space(1);
        let mut frame = PageFrame::zeroed();
        frame.write(0, &[9, 9, 9]);
        s.install_frame(addr.vpn(), frame);
        let mut buf = [0u8; 3];
        s.read(addr, &mut buf);
        assert_eq!(buf, [9, 9, 9]);
        let evicted = s.evict_frame(addr.vpn()).expect("frame resident");
        assert_eq!(evicted.bytes()[0], 9);
        assert_eq!(s.resident_pages(), 0);
    }
}
