//! # dex-os — simulated per-node operating-system substrate
//!
//! The DEX paper modifies the Linux kernel's virtual-memory subsystem; this
//! crate is the simulated stand-in: everything a node-local kernel provides
//! that the DEX protocol builds on.
//!
//! * [`VirtAddr`] / [`Vpn`] / [`PageFrame`] — pages with real bytes.
//! * [`RadixTree`] — the per-process index structure used for both page
//!   tables and the ownership directory (as in the paper, §III-B).
//! * [`PageTable`] / [`Pte`] / [`Access`] — per-replica permission state;
//!   the consistency protocol is armed through PTE permissions.
//! * [`VmaSet`] / [`Vma`] / [`Prot`] — address-space ranges with
//!   `mmap`/`munmap`/`mprotect` (including splitting) and a generation
//!   counter for on-demand synchronization.
//! * [`AddressSpace`] — one node's replica: VMAs + page table + frames,
//!   with the fault classification ([`MemFault`]) DEX dispatches on.
//! * [`FutexTable`] — futex wait queues (the substrate for delegated
//!   synchronization).
//! * [`Tcb`] / [`ExecutionContext`] — thread control blocks and the
//!   architectural state captured at migration.
//!
//! # Examples
//!
//! Classifying an access the way DEX's fault handler does:
//!
//! ```
//! use dex_os::{Access, AddressSpace, MemFault, Prot, Pte, VmaKind};
//!
//! let mut space = AddressSpace::new();
//! let addr = space.vmas.mmap(4096, Prot::RW, VmaKind::Heap, None);
//!
//! // Mapped but not owned: protocol fault (fetch page from owner).
//! assert!(matches!(
//!     space.check(addr, Access::Write),
//!     Err(MemFault::Protocol { .. })
//! ));
//!
//! // Ownership granted: the access proceeds with plain loads/stores.
//! space.page_table.set(addr.vpn(), Pte::READ_WRITE);
//! assert!(space.check(addr, Access::Write).is_ok());
//! ```

#![warn(missing_docs)]

mod futex;
mod mm;
mod page;
mod pte;
mod radix;
mod task;
mod vma;

pub use futex::FutexTable;
pub use mm::{AddressSpace, MemFault};
pub use page::{pages_covering, PageFrame, VirtAddr, Vpn, PAGE_SHIFT, PAGE_SIZE};
pub use pte::{Access, PageTable, Pte};
pub use radix::{Iter as RadixIter, RadixTree};
pub use task::{ExecutionContext, Pid, TaskState, Tcb, Tid, CONTEXT_BYTES, GP_REGS};
pub use vma::{Prot, Vma, VmaError, VmaKind, VmaSet, MMAP_BASE};
