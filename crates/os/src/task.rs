//! Task control blocks and execution contexts.
//!
//! To migrate a thread, DEX captures "the execution context that describes
//! the current state of the thread" — on Linux, `struct pt_regs` plus the
//! address-space identity (§III-A). The simulated analogue is
//! [`ExecutionContext`]: a register file, instruction and stack pointers,
//! and FP state, which serializes to the same order of magnitude of bytes
//! that a real context transfer moves. Migration correctness tests verify
//! the context round-trips bit-exactly through the messaging layer.

use crate::page::VirtAddr;

/// Number of general-purpose registers captured (x86-64: rax..r15).
pub const GP_REGS: usize = 16;

/// The architectural state captured when a thread migrates.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ExecutionContext {
    /// General-purpose registers.
    pub regs: [u64; GP_REGS],
    /// Instruction pointer.
    pub ip: u64,
    /// Stack pointer.
    pub sp: u64,
    /// Flags register.
    pub flags: u64,
    /// FS base (thread-local storage pointer).
    pub fs_base: u64,
}

/// Size in bytes of a serialized [`ExecutionContext`].
pub const CONTEXT_BYTES: usize = (GP_REGS + 4) * 8;

impl ExecutionContext {
    /// Serializes to a fixed little-endian layout for transfer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(CONTEXT_BYTES);
        for r in self.regs {
            out.extend_from_slice(&r.to_le_bytes());
        }
        for v in [self.ip, self.sp, self.flags, self.fs_base] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Deserializes a context previously produced by
    /// [`ExecutionContext::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns `None` if `bytes` has the wrong length.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != CONTEXT_BYTES {
            return None;
        }
        let mut words = bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        let mut regs = [0u64; GP_REGS];
        for r in regs.iter_mut() {
            *r = words.next().expect("length checked");
        }
        Some(ExecutionContext {
            regs,
            ip: words.next().expect("length checked"),
            sp: words.next().expect("length checked"),
            flags: words.next().expect("length checked"),
            fs_base: words.next().expect("length checked"),
        })
    }
}

/// Identifies a process in the cluster. Processes are created at their
/// *origin* node; the id is cluster-unique.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Pid(pub u64);

impl std::fmt::Display for Pid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pid-{}", self.0)
    }
}

/// Identifies an application thread within a process (the paper's "task
/// ID" in fault traces).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Tid(pub u64);

impl std::fmt::Display for Tid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tid-{}", self.0)
    }
}

/// Lifecycle state of a thread control block.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TaskState {
    /// Executing locally at its current node.
    Running,
    /// At the origin, parked while its remote pair executes (servicing
    /// delegated work).
    WaitingForRemote,
    /// Parked in a futex wait queue.
    FutexWait,
    /// Exited.
    Dead,
}

/// A thread control block: the kernel-side identity of one application
/// thread.
#[derive(Clone, Debug)]
pub struct Tcb {
    /// Thread id within the process.
    pub tid: Tid,
    /// Owning process.
    pub pid: Pid,
    /// Captured architectural state (valid while not running).
    pub context: ExecutionContext,
    /// Lifecycle state.
    pub state: TaskState,
    /// Base of this thread's stack VMA (threads fault on each other's
    /// stacks only through false sharing — the profiler flags that).
    pub stack_base: VirtAddr,
}

impl Tcb {
    /// Creates a runnable TCB with a zeroed context.
    pub fn new(pid: Pid, tid: Tid, stack_base: VirtAddr) -> Self {
        Tcb {
            tid,
            pid,
            context: ExecutionContext::default(),
            state: TaskState::Running,
            stack_base,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_roundtrips_through_bytes() {
        let mut ctx = ExecutionContext::default();
        for (i, r) in ctx.regs.iter_mut().enumerate() {
            *r = (i as u64 + 1) * 0x0101_0101_0101_0101;
        }
        ctx.ip = 0xdead_beef;
        ctx.sp = 0x7fff_f000;
        ctx.flags = 0x246;
        ctx.fs_base = 0x7f00_0000;
        let bytes = ctx.to_bytes();
        assert_eq!(bytes.len(), CONTEXT_BYTES);
        assert_eq!(ExecutionContext::from_bytes(&bytes), Some(ctx));
    }

    #[test]
    fn context_from_wrong_length_fails() {
        assert_eq!(ExecutionContext::from_bytes(&[0u8; 7]), None);
        assert_eq!(ExecutionContext::from_bytes(&[]), None);
    }

    #[test]
    fn context_size_matches_pt_regs_scale() {
        // Linux x86-64 pt_regs is 168 bytes; ours is 160 — same scale, so
        // migration message sizing is realistic.
        assert_eq!(CONTEXT_BYTES, 160);
    }

    #[test]
    fn tcb_starts_runnable() {
        let tcb = Tcb::new(Pid(1), Tid(2), VirtAddr::new(0x7000_0000));
        assert_eq!(tcb.state, TaskState::Running);
        assert_eq!(tcb.context, ExecutionContext::default());
    }
}
