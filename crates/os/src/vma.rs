//! Virtual memory areas (VMAs).
//!
//! The Linux VM subsystem manages memory at two levels: VMAs describe
//! address-space *ranges* (permissions, kind, backing), PTEs describe
//! per-page state. DEX synchronizes VMAs on demand (§III-D), so this
//! module keeps a per-replica [`VmaSet`] with the usual `mmap` / `munmap` /
//! `mprotect` operations, including range splitting, plus a generation
//! counter that the on-demand synchronization protocol uses to detect
//! staleness.

use std::collections::BTreeMap;

use crate::page::{VirtAddr, Vpn, PAGE_SIZE};

/// Access protection of a VMA.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Prot {
    /// Loads permitted.
    pub read: bool,
    /// Stores permitted.
    pub write: bool,
}

impl Prot {
    /// Read-write protection.
    pub const RW: Prot = Prot {
        read: true,
        write: true,
    };
    /// Read-only protection.
    pub const RO: Prot = Prot {
        read: true,
        write: false,
    };
    /// No access (guard region).
    pub const NONE: Prot = Prot {
        read: false,
        write: false,
    };

    /// Whether `other` grants no more than `self` (used to classify
    /// `mprotect` as a downgrade that must be broadcast eagerly).
    pub fn allows(self, other: Prot) -> bool {
        (!other.read || self.read) && (!other.write || self.write)
    }
}

/// What an address-space range is used for. DEX's profiling tool groups
/// faults by this classification (stack vs. global vs. heap contention).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum VmaKind {
    /// Program text.
    Code,
    /// Statically allocated global data.
    GlobalData,
    /// Dynamically allocated heap region.
    Heap,
    /// A thread's runtime stack.
    Stack,
    /// Thread-local storage.
    Tls,
    /// Plain anonymous mapping.
    Anon,
}

/// One virtual memory area: a half-open byte range with uniform protection.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Vma {
    /// First byte of the range (page aligned).
    pub start: VirtAddr,
    /// One past the last byte (page aligned).
    pub end: VirtAddr,
    /// Current protection.
    pub prot: Prot,
    /// Usage classification.
    pub kind: VmaKind,
    /// Optional user label (surfaces in page-fault profiles).
    pub tag: Option<String>,
}

impl Vma {
    /// Length of the range in bytes.
    pub fn len(&self) -> u64 {
        self.end.as_u64() - self.start.as_u64()
    }

    /// Returns `true` if the range is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns `true` if `addr` falls inside the range.
    pub fn contains(&self, addr: VirtAddr) -> bool {
        self.start <= addr && addr < self.end
    }

    /// Pages covered by the range.
    pub fn pages(&self) -> impl Iterator<Item = Vpn> {
        let first = self.start.vpn().index();
        let last = self.end.as_u64().div_ceil(PAGE_SIZE as u64);
        (first..last).map(Vpn::new)
    }
}

/// Errors from VMA manipulation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum VmaError {
    /// A new mapping would overlap an existing one.
    Overlap {
        /// Start of the existing conflicting mapping.
        existing_start: VirtAddr,
    },
    /// Range arguments were not page aligned or were empty.
    BadRange,
    /// The operated-on range is not fully covered by existing mappings.
    NotMapped {
        /// First unmapped address encountered.
        at: VirtAddr,
    },
}

impl std::fmt::Display for VmaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmaError::Overlap { existing_start } => {
                write!(f, "mapping overlaps existing vma at {existing_start}")
            }
            VmaError::BadRange => write!(f, "range is empty or not page aligned"),
            VmaError::NotMapped { at } => write!(f, "address {at} is not mapped"),
        }
    }
}

impl std::error::Error for VmaError {}

/// Default base address for placement-chosen mappings.
pub const MMAP_BASE: u64 = 0x1000_0000;

/// The set of VMAs of one address-space replica, ordered by start address.
///
/// # Examples
///
/// ```
/// use dex_os::{Prot, VirtAddr, VmaKind, VmaSet};
///
/// let mut set = VmaSet::new();
/// let addr = set.mmap(8192, Prot::RW, VmaKind::Heap, None);
/// assert!(set.find(addr).is_some());
/// set.munmap(addr, 4096).unwrap();
/// assert!(set.find(addr).is_none());
/// assert!(set.find(addr.add(4096)).is_some());
/// ```
#[derive(Clone, Debug, Default)]
pub struct VmaSet {
    map: BTreeMap<u64, Vma>,
    generation: u64,
    mmap_hint: u64,
}

impl VmaSet {
    /// Creates an empty VMA set.
    pub fn new() -> Self {
        VmaSet {
            map: BTreeMap::new(),
            generation: 0,
            mmap_hint: MMAP_BASE,
        }
    }

    /// Monotone counter bumped by every mutation; used by on-demand VMA
    /// synchronization to detect stale replicas.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of VMAs.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` if no VMAs exist.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The VMA containing `addr`, if any.
    pub fn find(&self, addr: VirtAddr) -> Option<&Vma> {
        let (_, vma) = self.map.range(..=addr.as_u64()).next_back()?;
        vma.contains(addr).then_some(vma)
    }

    /// Checks that an access of kind `write` at `addr` is legal under the
    /// current VMAs.
    ///
    /// # Errors
    ///
    /// [`VmaError::NotMapped`] if no VMA covers `addr` or the protection
    /// forbids the access.
    pub fn check_access(&self, addr: VirtAddr, write: bool) -> Result<&Vma, VmaError> {
        match self.find(addr) {
            Some(vma) if (write && vma.prot.write) || (!write && vma.prot.read) => Ok(vma),
            _ => Err(VmaError::NotMapped { at: addr }),
        }
    }

    /// Iterates VMAs in address order.
    pub fn iter(&self) -> impl Iterator<Item = &Vma> {
        self.map.values()
    }

    /// Maps `len` bytes (rounded up to pages) at a placement-chosen
    /// address.
    pub fn mmap(&mut self, len: u64, prot: Prot, kind: VmaKind, tag: Option<String>) -> VirtAddr {
        let len = round_up(len.max(1));
        let mut candidate = self.mmap_hint;
        loop {
            match self.first_overlap(candidate, candidate + len) {
                None => break,
                Some(existing) => {
                    candidate = round_up(existing.end.as_u64());
                }
            }
        }
        let addr = VirtAddr::new(candidate);
        self.mmap_fixed(addr, len, prot, kind, tag)
            .expect("chosen address cannot overlap");
        self.mmap_hint = candidate + len;
        addr
    }

    /// Maps `[addr, addr + len)` exactly.
    ///
    /// # Errors
    ///
    /// * [`VmaError::BadRange`] if the range is empty or misaligned.
    /// * [`VmaError::Overlap`] if it intersects an existing VMA.
    pub fn mmap_fixed(
        &mut self,
        addr: VirtAddr,
        len: u64,
        prot: Prot,
        kind: VmaKind,
        tag: Option<String>,
    ) -> Result<(), VmaError> {
        if len == 0
            || !addr.as_u64().is_multiple_of(PAGE_SIZE as u64)
            || !len.is_multiple_of(PAGE_SIZE as u64)
        {
            return Err(VmaError::BadRange);
        }
        if let Some(v) = self.first_overlap(addr.as_u64(), addr.as_u64() + len) {
            return Err(VmaError::Overlap {
                existing_start: v.start,
            });
        }
        self.map.insert(
            addr.as_u64(),
            Vma {
                start: addr,
                end: addr.add(len),
                prot,
                kind,
                tag,
            },
        );
        self.generation += 1;
        Ok(())
    }

    /// Installs a VMA verbatim, replacing any overlap — used when a remote
    /// replica adopts authoritative VMA info from the origin.
    pub fn install(&mut self, vma: Vma) {
        let _ = self.unmap_range(vma.start.as_u64(), vma.end.as_u64());
        self.map.insert(vma.start.as_u64(), vma);
        self.generation += 1;
    }

    /// Unmaps `[addr, addr + len)`, splitting partially-covered VMAs.
    /// Returns the removed page range.
    ///
    /// # Errors
    ///
    /// [`VmaError::BadRange`] if the range is empty or misaligned. (Ranges
    /// that cover no mapping are fine — like Linux `munmap`.)
    pub fn munmap(&mut self, addr: VirtAddr, len: u64) -> Result<Vec<Vpn>, VmaError> {
        if len == 0
            || !addr.as_u64().is_multiple_of(PAGE_SIZE as u64)
            || !len.is_multiple_of(PAGE_SIZE as u64)
        {
            return Err(VmaError::BadRange);
        }
        let removed = self.unmap_range(addr.as_u64(), addr.as_u64() + len);
        self.generation += 1;
        Ok(removed)
    }

    /// Changes protection on `[addr, addr + len)`, splitting as needed.
    /// Returns `true` if the change *downgrades* access anywhere (which
    /// DEX must broadcast eagerly).
    ///
    /// # Errors
    ///
    /// * [`VmaError::BadRange`] for empty/misaligned ranges.
    /// * [`VmaError::NotMapped`] if any page in the range is unmapped.
    pub fn mprotect(&mut self, addr: VirtAddr, len: u64, prot: Prot) -> Result<bool, VmaError> {
        if len == 0
            || !addr.as_u64().is_multiple_of(PAGE_SIZE as u64)
            || !len.is_multiple_of(PAGE_SIZE as u64)
        {
            return Err(VmaError::BadRange);
        }
        let (start, end) = (addr.as_u64(), addr.as_u64() + len);
        // Verify full coverage first so the operation is all-or-nothing.
        let mut cursor = start;
        while cursor < end {
            match self.find(VirtAddr::new(cursor)) {
                Some(vma) => cursor = vma.end.as_u64(),
                None => {
                    return Err(VmaError::NotMapped {
                        at: VirtAddr::new(cursor),
                    })
                }
            }
        }
        let mut downgraded = false;
        let affected: Vec<Vma> = self.overlapping(start, end).cloned().collect();
        for vma in affected {
            if !prot.allows(vma.prot) {
                downgraded = true;
            }
            // Carve the protected slice out and reinsert pieces.
            self.map.remove(&vma.start.as_u64());
            let cut_lo = vma.start.as_u64().max(start);
            let cut_hi = vma.end.as_u64().min(end);
            if vma.start.as_u64() < cut_lo {
                let mut left = vma.clone();
                left.end = VirtAddr::new(cut_lo);
                self.map.insert(left.start.as_u64(), left);
            }
            if cut_hi < vma.end.as_u64() {
                let mut right = vma.clone();
                right.start = VirtAddr::new(cut_hi);
                self.map.insert(right.start.as_u64(), right);
            }
            let mut mid = vma.clone();
            mid.start = VirtAddr::new(cut_lo);
            mid.end = VirtAddr::new(cut_hi);
            mid.prot = prot;
            self.map.insert(mid.start.as_u64(), mid);
        }
        self.generation += 1;
        Ok(downgraded)
    }

    fn first_overlap(&self, start: u64, end: u64) -> Option<&Vma> {
        self.overlapping(start, end).next()
    }

    fn overlapping(&self, start: u64, end: u64) -> impl Iterator<Item = &Vma> {
        // A VMA beginning before `start` may still cover it, so begin the
        // scan one entry earlier.
        let scan_from = self
            .map
            .range(..=start)
            .next_back()
            .map(|(k, _)| *k)
            .unwrap_or(start);
        self.map
            .range(scan_from..end)
            .map(|(_, v)| v)
            .filter(move |v| v.start.as_u64() < end && v.end.as_u64() > start)
    }

    fn unmap_range(&mut self, start: u64, end: u64) -> Vec<Vpn> {
        let affected: Vec<Vma> = self.overlapping(start, end).cloned().collect();
        let mut removed_pages = Vec::new();
        for vma in affected {
            self.map.remove(&vma.start.as_u64());
            let cut_lo = vma.start.as_u64().max(start);
            let cut_hi = vma.end.as_u64().min(end);
            if vma.start.as_u64() < cut_lo {
                let mut left = vma.clone();
                left.end = VirtAddr::new(cut_lo);
                self.map.insert(left.start.as_u64(), left);
            }
            if cut_hi < vma.end.as_u64() {
                let mut right = vma.clone();
                right.start = VirtAddr::new(cut_hi);
                self.map.insert(right.start.as_u64(), right);
            }
            let mut p = cut_lo;
            while p < cut_hi {
                removed_pages.push(VirtAddr::new(p).vpn());
                p += PAGE_SIZE as u64;
            }
        }
        removed_pages
    }
}

fn round_up(len: u64) -> u64 {
    len.div_ceil(PAGE_SIZE as u64) * PAGE_SIZE as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: u64 = PAGE_SIZE as u64;

    fn set_with(start: u64, pages: u64) -> VmaSet {
        let mut s = VmaSet::new();
        s.mmap_fixed(
            VirtAddr::new(start),
            pages * P,
            Prot::RW,
            VmaKind::Anon,
            None,
        )
        .unwrap();
        s
    }

    #[test]
    fn mmap_places_without_overlap() {
        let mut s = VmaSet::new();
        let a = s.mmap(3 * P, Prot::RW, VmaKind::Heap, None);
        let b = s.mmap(P, Prot::RO, VmaKind::GlobalData, None);
        assert!(b.as_u64() >= a.as_u64() + 3 * P);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn mmap_fixed_rejects_overlap() {
        let mut s = set_with(0x10000, 4);
        let err = s
            .mmap_fixed(VirtAddr::new(0x12000), P, Prot::RW, VmaKind::Anon, None)
            .unwrap_err();
        assert_eq!(
            err,
            VmaError::Overlap {
                existing_start: VirtAddr::new(0x10000)
            }
        );
    }

    #[test]
    fn mmap_fixed_rejects_misalignment() {
        let mut s = VmaSet::new();
        assert_eq!(
            s.mmap_fixed(VirtAddr::new(123), P, Prot::RW, VmaKind::Anon, None),
            Err(VmaError::BadRange)
        );
        assert_eq!(
            s.mmap_fixed(VirtAddr::new(0x1000), 100, Prot::RW, VmaKind::Anon, None),
            Err(VmaError::BadRange)
        );
    }

    #[test]
    fn find_respects_boundaries() {
        let s = set_with(0x10000, 2);
        assert!(s.find(VirtAddr::new(0x0ffff)).is_none());
        assert!(s.find(VirtAddr::new(0x10000)).is_some());
        assert!(s.find(VirtAddr::new(0x11fff)).is_some());
        assert!(s.find(VirtAddr::new(0x12000)).is_none());
    }

    #[test]
    fn check_access_enforces_prot() {
        let mut s = VmaSet::new();
        s.mmap_fixed(
            VirtAddr::new(0x10000),
            P,
            Prot::RO,
            VmaKind::GlobalData,
            None,
        )
        .unwrap();
        assert!(s.check_access(VirtAddr::new(0x10008), false).is_ok());
        assert!(s.check_access(VirtAddr::new(0x10008), true).is_err());
    }

    #[test]
    fn munmap_whole_vma() {
        let mut s = set_with(0x10000, 2);
        let removed = s.munmap(VirtAddr::new(0x10000), 2 * P).unwrap();
        assert_eq!(removed, vec![Vpn::new(0x10), Vpn::new(0x11)]);
        assert!(s.is_empty());
    }

    #[test]
    fn munmap_splits_middle() {
        let mut s = set_with(0x10000, 4); // pages 0x10..0x14
        let removed = s.munmap(VirtAddr::new(0x11000), P).unwrap();
        assert_eq!(removed, vec![Vpn::new(0x11)]);
        assert_eq!(s.len(), 2);
        assert!(s.find(VirtAddr::new(0x10000)).is_some());
        assert!(s.find(VirtAddr::new(0x11000)).is_none());
        assert!(s.find(VirtAddr::new(0x12000)).is_some());
        assert!(s.find(VirtAddr::new(0x13fff)).is_some());
    }

    #[test]
    fn munmap_shrinks_edges() {
        let mut s = set_with(0x10000, 4);
        s.munmap(VirtAddr::new(0x10000), P).unwrap(); // left edge
        s.munmap(VirtAddr::new(0x13000), P).unwrap(); // right edge
        let vma = s.find(VirtAddr::new(0x11000)).unwrap();
        assert_eq!(vma.start, VirtAddr::new(0x11000));
        assert_eq!(vma.end, VirtAddr::new(0x13000));
    }

    #[test]
    fn munmap_spanning_multiple_vmas() {
        let mut s = VmaSet::new();
        for i in 0..3u64 {
            s.mmap_fixed(
                VirtAddr::new(0x10000 + i * P),
                P,
                Prot::RW,
                VmaKind::Anon,
                None,
            )
            .unwrap();
        }
        let removed = s.munmap(VirtAddr::new(0x10000), 3 * P).unwrap();
        assert_eq!(removed.len(), 3);
        assert!(s.is_empty());
    }

    #[test]
    fn munmap_of_unmapped_range_is_ok() {
        let mut s = VmaSet::new();
        assert_eq!(s.munmap(VirtAddr::new(0x40000), P).unwrap(), vec![]);
    }

    #[test]
    fn mprotect_detects_downgrade() {
        let mut s = set_with(0x10000, 2);
        let down = s.mprotect(VirtAddr::new(0x10000), P, Prot::RO).unwrap();
        assert!(down, "RW -> RO is a downgrade");
        let up = s.mprotect(VirtAddr::new(0x10000), P, Prot::RW).unwrap();
        assert!(!up, "RO -> RW is permissive");
    }

    #[test]
    fn mprotect_splits_range() {
        let mut s = set_with(0x10000, 3);
        s.mprotect(VirtAddr::new(0x11000), P, Prot::RO).unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.find(VirtAddr::new(0x10000)).unwrap().prot, Prot::RW);
        assert_eq!(s.find(VirtAddr::new(0x11000)).unwrap().prot, Prot::RO);
        assert_eq!(s.find(VirtAddr::new(0x12000)).unwrap().prot, Prot::RW);
    }

    #[test]
    fn mprotect_unmapped_range_fails_atomically() {
        let mut s = set_with(0x10000, 1);
        let err = s
            .mprotect(VirtAddr::new(0x10000), 2 * P, Prot::RO)
            .unwrap_err();
        assert_eq!(
            err,
            VmaError::NotMapped {
                at: VirtAddr::new(0x11000)
            }
        );
        assert_eq!(s.find(VirtAddr::new(0x10000)).unwrap().prot, Prot::RW);
    }

    #[test]
    fn generation_bumps_on_mutation() {
        let mut s = VmaSet::new();
        let g0 = s.generation();
        let a = s.mmap(P, Prot::RW, VmaKind::Heap, None);
        assert!(s.generation() > g0);
        let g1 = s.generation();
        s.munmap(a, P).unwrap();
        assert!(s.generation() > g1);
    }

    #[test]
    fn install_replaces_overlap() {
        let mut s = set_with(0x10000, 2);
        s.install(Vma {
            start: VirtAddr::new(0x10000),
            end: VirtAddr::new(0x11000),
            prot: Prot::RO,
            kind: VmaKind::GlobalData,
            tag: Some("params".into()),
        });
        assert_eq!(s.find(VirtAddr::new(0x10000)).unwrap().prot, Prot::RO);
        assert_eq!(s.find(VirtAddr::new(0x11000)).unwrap().prot, Prot::RW);
    }

    #[test]
    fn vma_pages_iterates_covered_pages() {
        let vma = Vma {
            start: VirtAddr::new(0x10000),
            end: VirtAddr::new(0x12000),
            prot: Prot::RW,
            kind: VmaKind::Anon,
            tag: None,
        };
        assert_eq!(
            vma.pages().collect::<Vec<_>>(),
            vec![Vpn::new(0x10), Vpn::new(0x11)]
        );
    }
}
