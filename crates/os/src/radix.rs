//! A dynamic-height radix tree keyed by `u64`.
//!
//! The paper tracks page ownership "in a per-process radix tree which
//! indexes the information by the virtual page address" (§III-B) — the
//! same structure the Linux kernel uses for its page cache. This module
//! implements that structure: 64-way fanout (6 bits per level), height
//! grown on demand, in-order iteration.
//!
//! Compared to a `BTreeMap`, lookups cost a fixed number of pointer hops
//! proportional to the key width actually in use, and densely-clustered
//! keys (page numbers of adjacent pages) share interior nodes.

const FANOUT_BITS: u32 = 6;
const FANOUT: usize = 1 << FANOUT_BITS; // 64

#[derive(Clone)]
enum Slot<V> {
    Node(Box<Node<V>>),
    Value(V),
}

#[derive(Clone)]
struct Node<V> {
    slots: [Option<Slot<V>>; FANOUT],
    occupied: u32,
}

impl<V> Node<V> {
    fn new() -> Box<Self> {
        Box::new(Node {
            slots: std::array::from_fn(|_| None),
            occupied: 0,
        })
    }
}

/// A radix tree mapping `u64` keys to values, with Linux-pagecache-style
/// 64-way fanout and on-demand height growth.
///
/// # Examples
///
/// ```
/// use dex_os::RadixTree;
///
/// let mut tree = RadixTree::new();
/// assert_eq!(tree.insert(0x1000, "a"), None);
/// assert_eq!(tree.insert(0x1000, "b"), Some("a"));
/// assert_eq!(tree.get(0x1000), Some(&"b"));
/// assert_eq!(tree.remove(0x1000), Some("b"));
/// assert!(tree.is_empty());
/// ```
#[derive(Clone)]
pub struct RadixTree<V> {
    root: Option<Box<Node<V>>>,
    /// Number of levels below the root; a height-1 tree holds keys < 64.
    height: u32,
    len: usize,
}

impl<V> Default for RadixTree<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> RadixTree<V> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        RadixTree {
            root: None,
            height: 0,
            len: 0,
        }
    }

    /// Number of entries stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Largest key representable at the current height.
    fn max_key(&self) -> u64 {
        if self.height == 0 {
            return 0;
        }
        let bits = (self.height * FANOUT_BITS).min(64);
        if bits >= 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        }
    }

    fn grow_to_fit(&mut self, key: u64) {
        if self.root.is_none() {
            self.height = 1;
            self.root = Some(Node::new());
        }
        while key > self.max_key() {
            // Wrap the current root as slot 0 of a taller root.
            let old = self.root.take().expect("root exists while growing");
            let mut new_root = Node::new();
            if old.occupied > 0 {
                new_root.slots[0] = Some(Slot::Node(old));
                new_root.occupied = 1;
            }
            self.root = Some(new_root);
            self.height += 1;
        }
    }

    fn slot_index(key: u64, level_from_leaf: u32) -> usize {
        let shift = level_from_leaf * FANOUT_BITS;
        if shift >= 64 {
            0
        } else {
            ((key >> shift) & (FANOUT as u64 - 1)) as usize
        }
    }

    /// Inserts `value` at `key`, returning the previous value if any.
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        self.grow_to_fit(key);
        let height = self.height;
        let mut node = self.root.as_mut().expect("root grown");
        for level in (1..height).rev() {
            let idx = Self::slot_index(key, level);
            if node.slots[idx].is_none() {
                node.slots[idx] = Some(Slot::Node(Node::new()));
                node.occupied += 1;
            }
            node = match node.slots[idx].as_mut() {
                Some(Slot::Node(n)) => n,
                _ => unreachable!("interior slot holds a value"),
            };
        }
        let idx = Self::slot_index(key, 0);
        let old = node.slots[idx].replace(Slot::Value(value));
        match old {
            Some(Slot::Value(v)) => Some(v),
            Some(Slot::Node(_)) => unreachable!("leaf slot holds a node"),
            None => {
                node.occupied += 1;
                self.len += 1;
                None
            }
        }
    }

    /// Returns a reference to the value at `key`.
    pub fn get(&self, key: u64) -> Option<&V> {
        if self.root.is_none() || key > self.max_key() {
            return None;
        }
        let mut node = self.root.as_ref().expect("checked above");
        for level in (1..self.height).rev() {
            let idx = Self::slot_index(key, level);
            node = match node.slots[idx].as_ref()? {
                Slot::Node(n) => n,
                Slot::Value(_) => unreachable!("interior slot holds a value"),
            };
        }
        match node.slots[Self::slot_index(key, 0)].as_ref()? {
            Slot::Value(v) => Some(v),
            Slot::Node(_) => unreachable!("leaf slot holds a node"),
        }
    }

    /// Returns a mutable reference to the value at `key`.
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        if self.root.is_none() || key > self.max_key() {
            return None;
        }
        let height = self.height;
        let mut node = self.root.as_mut().expect("checked above");
        for level in (1..height).rev() {
            let idx = Self::slot_index(key, level);
            node = match node.slots[idx].as_mut()? {
                Slot::Node(n) => n,
                Slot::Value(_) => unreachable!("interior slot holds a value"),
            };
        }
        match node.slots[Self::slot_index(key, 0)].as_mut()? {
            Slot::Value(v) => Some(v),
            Slot::Node(_) => unreachable!("leaf slot holds a node"),
        }
    }

    /// Returns a mutable reference to the value at `key`, inserting the
    /// result of `default` first if absent.
    pub fn get_or_insert_with(&mut self, key: u64, default: impl FnOnce() -> V) -> &mut V {
        if self.get(key).is_none() {
            self.insert(key, default());
        }
        self.get_mut(key).expect("just inserted")
    }

    /// Removes and returns the value at `key`. Empty interior nodes are
    /// pruned on the way back up.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        if self.root.is_none() || key > self.max_key() {
            return None;
        }
        let height = self.height;
        let root = self.root.as_mut().expect("checked above");
        let (removed, _empty) = Self::remove_rec(root, key, height - 1);
        if removed.is_some() {
            self.len -= 1;
            if self.len == 0 {
                self.root = None;
                self.height = 0;
            }
        }
        removed
    }

    fn remove_rec(node: &mut Node<V>, key: u64, level: u32) -> (Option<V>, bool) {
        let idx = Self::slot_index(key, level);
        let removed = if level == 0 {
            match node.slots[idx].take() {
                Some(Slot::Value(v)) => {
                    node.occupied -= 1;
                    Some(v)
                }
                Some(other) => {
                    node.slots[idx] = Some(other);
                    None
                }
                None => None,
            }
        } else {
            match node.slots[idx].as_mut() {
                Some(Slot::Node(child)) => {
                    let (removed, child_empty) = Self::remove_rec(child, key, level - 1);
                    if child_empty {
                        node.slots[idx] = None;
                        node.occupied -= 1;
                    }
                    removed
                }
                _ => None,
            }
        };
        (removed, node.occupied == 0)
    }

    /// Iterates `(key, &value)` pairs in ascending key order.
    pub fn iter(&self) -> Iter<'_, V> {
        let mut stack = Vec::new();
        if let Some(root) = self.root.as_deref() {
            stack.push(Frame {
                node: root,
                next_slot: 0,
                prefix: 0,
                level: self.height - 1,
            });
        }
        Iter { stack }
    }

    /// Iterates keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.iter().map(|(k, _)| k)
    }
}

impl<V: std::fmt::Debug> std::fmt::Debug for RadixTree<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<V> FromIterator<(u64, V)> for RadixTree<V> {
    fn from_iter<I: IntoIterator<Item = (u64, V)>>(iter: I) -> Self {
        let mut tree = RadixTree::new();
        for (k, v) in iter {
            tree.insert(k, v);
        }
        tree
    }
}

impl<V> Extend<(u64, V)> for RadixTree<V> {
    fn extend<I: IntoIterator<Item = (u64, V)>>(&mut self, iter: I) {
        for (k, v) in iter {
            self.insert(k, v);
        }
    }
}

struct Frame<'a, V> {
    node: &'a Node<V>,
    next_slot: usize,
    prefix: u64,
    level: u32,
}

/// In-order iterator over a [`RadixTree`]; created by [`RadixTree::iter`].
pub struct Iter<'a, V> {
    stack: Vec<Frame<'a, V>>,
}

impl<'a, V> Iterator for Iter<'a, V> {
    type Item = (u64, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let frame = self.stack.last_mut()?;
            if frame.next_slot >= FANOUT {
                self.stack.pop();
                continue;
            }
            let idx = frame.next_slot;
            frame.next_slot += 1;
            let key_part = (frame.prefix << FANOUT_BITS) | idx as u64;
            match frame.node.slots[idx].as_ref() {
                None => continue,
                Some(Slot::Value(v)) => return Some((key_part, v)),
                Some(Slot::Node(child)) => {
                    let level = frame.level - 1;
                    self.stack.push(Frame {
                        node: child,
                        next_slot: 0,
                        prefix: key_part,
                        level,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn empty_tree_behaves() {
        let tree: RadixTree<u32> = RadixTree::new();
        assert!(tree.is_empty());
        assert_eq!(tree.get(0), None);
        assert_eq!(tree.get(u64::MAX), None);
        assert_eq!(tree.iter().count(), 0);
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut tree = RadixTree::new();
        assert_eq!(tree.insert(5, "five"), None);
        assert_eq!(tree.insert(5, "FIVE"), Some("five"));
        assert_eq!(tree.get(5), Some(&"FIVE"));
        assert_eq!(tree.remove(5), Some("FIVE"));
        assert_eq!(tree.remove(5), None);
        assert!(tree.is_empty());
    }

    #[test]
    fn height_grows_for_large_keys() {
        let mut tree = RadixTree::new();
        tree.insert(1, 1u32);
        tree.insert(1 << 30, 2);
        tree.insert(u64::MAX, 3);
        assert_eq!(tree.get(1), Some(&1));
        assert_eq!(tree.get(1 << 30), Some(&2));
        assert_eq!(tree.get(u64::MAX), Some(&3));
        assert_eq!(tree.len(), 3);
    }

    #[test]
    fn get_mut_mutates_in_place() {
        let mut tree = RadixTree::new();
        tree.insert(77, vec![1]);
        tree.get_mut(77).unwrap().push(2);
        assert_eq!(tree.get(77), Some(&vec![1, 2]));
    }

    #[test]
    fn get_or_insert_with_inserts_once() {
        let mut tree = RadixTree::new();
        *tree.get_or_insert_with(9, || 10) += 1;
        *tree.get_or_insert_with(9, || 99) += 1;
        assert_eq!(tree.get(9), Some(&12));
    }

    #[test]
    fn iter_is_in_key_order() {
        let mut tree = RadixTree::new();
        for k in [900u64, 3, 70_000, 1, 64, 65, 4096] {
            tree.insert(k, k * 2);
        }
        let got: Vec<(u64, u64)> = tree.iter().map(|(k, v)| (k, *v)).collect();
        assert_eq!(
            got,
            vec![
                (1, 2),
                (3, 6),
                (64, 128),
                (65, 130),
                (900, 1800),
                (4096, 8192),
                (70_000, 140_000)
            ]
        );
    }

    #[test]
    fn dense_page_range_like_workload() {
        let mut tree = RadixTree::new();
        for vpn in 0x400u64..0x800 {
            tree.insert(vpn, vpn as u32);
        }
        assert_eq!(tree.len(), 0x400);
        for vpn in 0x400u64..0x800 {
            assert_eq!(tree.get(vpn), Some(&(vpn as u32)));
        }
        assert_eq!(tree.get(0x3ff), None);
        assert_eq!(tree.get(0x800), None);
    }

    #[test]
    fn remove_prunes_and_reuses() {
        let mut tree = RadixTree::new();
        for k in 0..1000u64 {
            tree.insert(k * 131, k);
        }
        for k in 0..1000u64 {
            assert_eq!(tree.remove(k * 131), Some(k));
        }
        assert!(tree.is_empty());
        // Tree is usable after full drain.
        tree.insert(42, 42);
        assert_eq!(tree.get(42), Some(&42));
    }

    #[test]
    fn matches_btreemap_on_mixed_ops() {
        let mut tree = RadixTree::new();
        let mut model = BTreeMap::new();
        let mut state = 0x12345678u64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..10_000 {
            let key = rand() % 512 * 97;
            match rand() % 3 {
                0 => {
                    let v = rand();
                    assert_eq!(tree.insert(key, v), model.insert(key, v));
                }
                1 => assert_eq!(tree.get(key), model.get(&key)),
                _ => assert_eq!(tree.remove(key), model.remove(&key)),
            }
            assert_eq!(tree.len(), model.len());
        }
        let tree_items: Vec<(u64, u64)> = tree.iter().map(|(k, v)| (k, *v)).collect();
        let model_items: Vec<(u64, u64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(tree_items, model_items);
    }

    #[test]
    fn clone_is_deep() {
        let mut tree = RadixTree::new();
        for k in [1u64, 64, 70_000] {
            tree.insert(k, k);
        }
        let snapshot = tree.clone();
        tree.insert(2, 2);
        tree.remove(64);
        assert_eq!(snapshot.len(), 3, "clone unaffected by later mutation");
        assert_eq!(snapshot.get(64), Some(&64));
        assert_eq!(snapshot.get(2), None);
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut tree: RadixTree<u8> = [(1u64, 1u8), (2, 2)].into_iter().collect();
        tree.extend([(3u64, 3u8)]);
        assert_eq!(tree.len(), 3);
        assert_eq!(tree.keys().collect::<Vec<_>>(), vec![1, 2, 3]);
    }
}
