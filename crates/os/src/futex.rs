//! Futex wait queues.
//!
//! Futexes ("fast user-space mutexes") are the kernel mechanism under every
//! Linux thread-synchronization primitive. DEX forwards futex system calls
//! from remote threads to the origin via work delegation (§III-A), where
//! they are handled by the unmodified futex implementation — this module is
//! that implementation: per-address FIFO wait queues.
//!
//! The compare-and-block step of `FUTEX_WAIT` must be atomic with respect
//! to other simulated threads; in the simulator this holds as long as the
//! caller does not advance virtual time between reading the futex word and
//! calling [`FutexTable::enqueue`] (the DES runs one simulated thread at a
//! time).

use std::collections::{HashMap, VecDeque};

use dex_sim::ThreadId;

use crate::page::VirtAddr;

/// FIFO wait queues keyed by futex word address.
///
/// # Examples
///
/// ```
/// use dex_os::FutexTable;
/// use dex_os::VirtAddr;
/// use dex_sim::ThreadId;
///
/// let mut table = FutexTable::new();
/// let addr = VirtAddr::new(0x1000);
/// table.enqueue(addr, ThreadId(1));
/// table.enqueue(addr, ThreadId(2));
/// assert_eq!(table.wake(addr, 1), vec![ThreadId(1)]); // FIFO order
/// assert_eq!(table.waiters(addr), 1);
/// ```
#[derive(Debug, Default)]
pub struct FutexTable {
    queues: HashMap<u64, VecDeque<ThreadId>>,
}

impl FutexTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends `waiter` to the wait queue of `addr`. The caller parks the
    /// simulated thread afterwards.
    pub fn enqueue(&mut self, addr: VirtAddr, waiter: ThreadId) {
        self.queues
            .entry(addr.as_u64())
            .or_default()
            .push_back(waiter);
    }

    /// Dequeues up to `n` waiters of `addr` in FIFO order. The caller
    /// unparks the returned threads.
    pub fn wake(&mut self, addr: VirtAddr, n: usize) -> Vec<ThreadId> {
        let Some(queue) = self.queues.get_mut(&addr.as_u64()) else {
            return Vec::new();
        };
        let take = n.min(queue.len());
        let woken: Vec<ThreadId> = queue.drain(..take).collect();
        if queue.is_empty() {
            self.queues.remove(&addr.as_u64());
        }
        woken
    }

    /// Moves up to `n` waiters from `from` to the queue of `to` without
    /// waking them (`FUTEX_REQUEUE`). Returns how many moved.
    pub fn requeue(&mut self, from: VirtAddr, to: VirtAddr, n: usize) -> usize {
        if from == to || n == 0 {
            return 0;
        }
        let moved: Vec<ThreadId> = {
            let Some(queue) = self.queues.get_mut(&from.as_u64()) else {
                return 0;
            };
            let take = n.min(queue.len());
            let moved = queue.drain(..take).collect();
            if queue.is_empty() {
                self.queues.remove(&from.as_u64());
            }
            moved
        };
        let count = moved.len();
        self.queues.entry(to.as_u64()).or_default().extend(moved);
        count
    }

    /// Removes `waiter` from the queue of `addr` (timeout / interruption
    /// path). Returns `true` if it was queued.
    pub fn cancel(&mut self, addr: VirtAddr, waiter: ThreadId) -> bool {
        let Some(queue) = self.queues.get_mut(&addr.as_u64()) else {
            return false;
        };
        let before = queue.len();
        queue.retain(|w| *w != waiter);
        let removed = queue.len() != before;
        if queue.is_empty() {
            self.queues.remove(&addr.as_u64());
        }
        removed
    }

    /// Number of threads waiting on `addr`.
    pub fn waiters(&self, addr: VirtAddr) -> usize {
        self.queues.get(&addr.as_u64()).map_or(0, |q| q.len())
    }

    /// Total number of waiting threads across all addresses.
    pub fn total_waiters(&self) -> usize {
        self.queues.values().map(|q| q.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> ThreadId {
        ThreadId(n)
    }

    fn a(n: u64) -> VirtAddr {
        VirtAddr::new(n)
    }

    #[test]
    fn wake_on_empty_queue_returns_nothing() {
        let mut f = FutexTable::new();
        assert_eq!(f.wake(a(0x10), 5), vec![]);
    }

    #[test]
    fn wake_is_fifo() {
        let mut f = FutexTable::new();
        for i in 0..4 {
            f.enqueue(a(0x10), t(i));
        }
        assert_eq!(f.wake(a(0x10), 2), vec![t(0), t(1)]);
        assert_eq!(f.wake(a(0x10), 10), vec![t(2), t(3)]);
        assert_eq!(f.waiters(a(0x10)), 0);
    }

    #[test]
    fn queues_are_per_address() {
        let mut f = FutexTable::new();
        f.enqueue(a(0x10), t(1));
        f.enqueue(a(0x20), t(2));
        assert_eq!(f.wake(a(0x10), 10), vec![t(1)]);
        assert_eq!(f.waiters(a(0x20)), 1);
        assert_eq!(f.total_waiters(), 1);
    }

    #[test]
    fn requeue_moves_without_waking() {
        let mut f = FutexTable::new();
        for i in 0..3 {
            f.enqueue(a(0x10), t(i));
        }
        assert_eq!(f.requeue(a(0x10), a(0x20), 2), 2);
        assert_eq!(f.waiters(a(0x10)), 1);
        assert_eq!(f.waiters(a(0x20)), 2);
        assert_eq!(f.wake(a(0x20), 10), vec![t(0), t(1)]);
    }

    #[test]
    fn requeue_to_self_is_noop() {
        let mut f = FutexTable::new();
        f.enqueue(a(0x10), t(1));
        assert_eq!(f.requeue(a(0x10), a(0x10), 5), 0);
        assert_eq!(f.waiters(a(0x10)), 1);
    }

    #[test]
    fn cancel_removes_specific_waiter() {
        let mut f = FutexTable::new();
        f.enqueue(a(0x10), t(1));
        f.enqueue(a(0x10), t(2));
        assert!(f.cancel(a(0x10), t(1)));
        assert!(!f.cancel(a(0x10), t(1)));
        assert_eq!(f.wake(a(0x10), 10), vec![t(2)]);
    }
}
