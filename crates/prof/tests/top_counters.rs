//! `dex-prof top` must surface the sharded-directory protocol counters
//! (owner-forwarded grants, batched invalidations, denied prefetches) in
//! its per-node panes — both from a hand-built series and end to end
//! from a live sharded run with telemetry on.

use dex_core::{Cluster, ClusterConfig};
use dex_net::{CounterPoint, SeriesScope, TimeSeries};
use dex_prof::render_top;
use dex_sim::SimDuration;

#[test]
fn sharded_protocol_counters_render_in_node_panes() {
    let point = |name: &str, node: u16, delta: u64| CounterPoint {
        window: 0,
        scope: SeriesScope::Node(node),
        name: name.into(),
        delta,
    };
    let series = TimeSeries {
        window: SimDuration::from_millis(1),
        windows: 1,
        counters: vec![
            point("protocol.forwards", 0, 4),
            point("protocol.forwards_serviced", 1, 4),
            point("protocol.invalidate_batches", 0, 2),
            point("prefetch.denied", 2, 3),
        ],
        ..TimeSeries::default()
    };
    let text = render_top(&series, &[], None);
    for name in [
        "protocol.forwards",
        "protocol.forwards_serviced",
        "protocol.invalidate_batches",
        "prefetch.denied",
    ] {
        assert!(text.contains(name), "missing {name} pane:\n{text}");
    }
}

#[test]
fn live_sharded_run_feeds_forward_counters_into_top() {
    let config = ClusterConfig::new(4)
        .with_directory_shards(4)
        .with_telemetry(SimDuration::from_millis(1));
    let report = Cluster::new(config).run(|p| {
        let v = p.alloc_vec_aligned::<u64>(4 * 512, "pingpong");
        p.spawn(move |ctx| {
            ctx.migrate(1).expect("node 1 exists");
            for page in 0..4 {
                v.set(ctx, page * 512, page as u64);
            }
            for round in 0..3usize {
                ctx.migrate(3).expect("node 3 exists");
                for page in 0..4 {
                    let _ = v.get(ctx, page * 512);
                }
                let writer = if round % 2 == 0 { 2 } else { 1 };
                ctx.migrate(writer).expect("writer node exists");
                for page in 0..4 {
                    v.set(ctx, page * 512, round as u64);
                }
            }
        });
    });
    let series = report.series.expect("telemetry was enabled");
    // The forwarded-grant counters must flow through the registry into
    // the series, attributed to real nodes.
    for name in ["protocol.forwards", "protocol.forwards_serviced"] {
        assert!(
            series
                .counters
                .iter()
                .any(|p| p.name == name && matches!(p.scope, SeriesScope::Node(_)) && p.delta > 0),
            "{name} never moved in the series"
        );
    }
    // ...and render in whichever window they moved.
    let rendered: String = (0..series.windows)
        .map(|w| render_top(&series, &[], Some(w)))
        .collect();
    assert!(rendered.contains("protocol.forwards"), "{rendered}");
}
