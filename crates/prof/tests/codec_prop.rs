//! Property tests for the trace and span text codecs: any event/span
//! forest — including hostile site/tag/label strings full of tabs,
//! newlines, backslashes, and sentinel lookalikes — must survive an
//! encode/decode round trip unchanged.

use dex_core::{FaultEvent, FaultKind, Span, SpanId, SpanKind};
use dex_net::{CounterPoint, HistPoint, NodeId, SeriesScope, TimeSeries};
use dex_os::{Tid, VirtAddr};
use dex_prof::codec::intern_site;
use dex_prof::{
    decode_series, decode_spans, decode_spans_with_dropped, decode_trace,
    decode_trace_with_dropped, decode_whatif, encode_series, encode_spans,
    encode_spans_with_dropped, encode_trace, encode_trace_with_dropped, encode_whatif, WhatIfEntry,
    WhatIfReport,
};
use dex_sim::{SimDuration, SimTime};
use proptest::prelude::*;

/// Characters that stress the escaping: structural bytes, the `-`
/// sentinel, the escape letters themselves, spaces (incl. trailing),
/// and multi-byte unicode.
const HOSTILE: &[char] = &[
    'a', 'z', '0', '\t', '\n', '\r', '\\', ' ', '-', 't', 'n', 'e', '日', '"',
];

/// A string of up to 12 hostile characters.
fn hostile_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..HOSTILE.len(), 0..13)
        .prop_map(|ix| ix.into_iter().map(|i| HOSTILE[i]).collect())
}

/// `None` one time in four, else a hostile string.
fn maybe_tag() -> impl Strategy<Value = Option<String>> {
    (0u8..4, hostile_string()).prop_map(|(n, s)| (n > 0).then_some(s))
}

fn fault_kind() -> impl Strategy<Value = FaultKind> {
    prop_oneof![
        Just(FaultKind::Read),
        Just(FaultKind::Write),
        Just(FaultKind::Invalidate),
    ]
}

fn span_kind() -> impl Strategy<Value = SpanKind> {
    prop_oneof![
        Just(SpanKind::Fault),
        Just(SpanKind::FaultRetry),
        Just(SpanKind::FollowerWait),
        Just(SpanKind::DirectoryHandling),
        Just(SpanKind::PageFixup),
        Just(SpanKind::Invalidation),
        Just(SpanKind::OwnerForward),
        Just(SpanKind::InvalidateBatch),
        Just(SpanKind::MigrationForward),
        Just(SpanKind::MigrationPhase),
        Just(SpanKind::MigrationBack),
        Just(SpanKind::Delegation),
        Just(SpanKind::DelegationService),
        Just(SpanKind::FutexWait),
        Just(SpanKind::FutexWake),
        Just(SpanKind::VmaSync),
    ]
}

fn arb_event() -> impl Strategy<Value = FaultEvent> {
    (
        (any::<u64>(), 0u16..8, any::<u64>()),
        (fault_kind(), hostile_string(), any::<u64>(), maybe_tag()),
    )
        .prop_map(|((time, node, task), (kind, site, addr, tag))| FaultEvent {
            time: SimTime::from_nanos(time),
            node: NodeId(node),
            task: Tid(task),
            kind,
            site: intern_site(&site),
            addr: VirtAddr::new(addr),
            tag,
        })
}

fn arb_span() -> impl Strategy<Value = Span> {
    (
        (1u64..1_000, 0u64..1_000, span_kind(), 0u16..8, any::<u64>()),
        (any::<u64>(), any::<u64>(), hostile_string(), maybe_tag()),
    )
        .prop_map(
            |((id, parent, kind, node, task), (start, end, label, tag))| Span {
                id: SpanId(id),
                parent: SpanId(parent),
                kind,
                node: NodeId(node),
                task: Tid(task),
                start: SimTime::from_nanos(start),
                end: SimTime::from_nanos(end),
                label: intern_site(&label),
                tag,
            },
        )
}

fn arb_scope() -> impl Strategy<Value = SeriesScope> {
    prop_oneof![
        (0u16..8).prop_map(SeriesScope::Node),
        (0u16..8, 0u16..8).prop_map(|(s, d)| SeriesScope::Link(s, d)),
    ]
}

fn arb_counter_point() -> impl Strategy<Value = CounterPoint> {
    (any::<u64>(), arb_scope(), hostile_string(), any::<u64>()).prop_map(
        |(window, scope, name, delta)| CounterPoint {
            window,
            scope,
            name,
            delta,
        },
    )
}

fn arb_hist_point() -> impl Strategy<Value = HistPoint> {
    (
        (any::<u64>(), 0u16..8, hostile_string(), 1u64..1_000_000),
        (any::<u64>(), any::<u64>(), any::<u64>()),
    )
        .prop_map(|((window, node, name, count), (p50, p95, p99))| HistPoint {
            window,
            node,
            name,
            count,
            p50: SimDuration::from_nanos(p50),
            p95: SimDuration::from_nanos(p95),
            p99: SimDuration::from_nanos(p99),
        })
}

fn arb_series() -> impl Strategy<Value = TimeSeries> {
    (
        (1u64..u64::MAX, 0u64..1_000, any::<u64>()),
        proptest::collection::vec(arb_counter_point(), 0..20),
        proptest::collection::vec(arb_hist_point(), 0..20),
    )
        .prop_map(|((window, windows, end), counters, hists)| TimeSeries {
            window: SimDuration::from_nanos(window),
            windows,
            end: SimTime::from_nanos(end),
            counters,
            hists,
        })
}

/// A hostile string that may additionally lead with `#` — the comment
/// marker the what-if codec must not confuse with a data row.
fn hostile_component() -> impl Strategy<Value = String> {
    (any::<bool>(), hostile_string()).prop_map(|(hash, s)| if hash { format!("#{s}") } else { s })
}

/// A finite positive factor; `f64::Display` is shortest-round-trip, so
/// any such value must decode back to the identical bits.
fn arb_factor() -> impl Strategy<Value = f64> {
    (1u64..=1_000_000_000, 1u64..=1_000_000_000).prop_map(|(num, den)| num as f64 / den as f64)
}

fn arb_whatif() -> impl Strategy<Value = WhatIfReport> {
    (
        hostile_component(),
        any::<u64>(),
        proptest::collection::vec(
            (hostile_component(), arb_factor(), any::<u64>()).prop_map(
                |(component, factor, perturbed_ns)| WhatIfEntry {
                    component,
                    factor,
                    perturbed_ns,
                },
            ),
            0..20,
        ),
    )
        .prop_map(|(workload, baseline_ns, entries)| WhatIfReport {
            workload,
            baseline_ns,
            entries,
        })
}

/// Arbitrary (often invalid-UTF-8) bytes, decoded lossily.
fn arb_text() -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<u8>(), 0..200)
        .prop_map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
}

proptest! {
    #[test]
    fn trace_round_trips(events in proptest::collection::vec(arb_event(), 0..20),
                         dropped in 0u64..1_000_000) {
        let decoded = decode_trace(&encode_trace(&events)).unwrap();
        prop_assert_eq!(decoded.len(), events.len());
        for (a, b) in events.iter().zip(&decoded) {
            prop_assert_eq!(a.time, b.time);
            prop_assert_eq!(a.node, b.node);
            prop_assert_eq!(a.task, b.task);
            prop_assert_eq!(a.kind, b.kind);
            prop_assert_eq!(a.site, b.site);
            prop_assert_eq!(a.addr, b.addr);
            prop_assert_eq!(&a.tag, &b.tag);
        }
        let (redecoded, got_dropped) =
            decode_trace_with_dropped(&encode_trace_with_dropped(&events, dropped)).unwrap();
        prop_assert_eq!(redecoded.len(), events.len());
        prop_assert_eq!(got_dropped, dropped);
    }

    #[test]
    fn spans_round_trip(spans in proptest::collection::vec(arb_span(), 0..20),
                        dropped in 0u64..1_000_000) {
        let decoded = decode_spans(&encode_spans(&spans)).unwrap();
        prop_assert_eq!(decoded.len(), spans.len());
        for (a, b) in spans.iter().zip(&decoded) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(a.parent, b.parent);
            prop_assert_eq!(a.kind, b.kind);
            prop_assert_eq!(a.node, b.node);
            prop_assert_eq!(a.task, b.task);
            prop_assert_eq!(a.start, b.start);
            prop_assert_eq!(a.end, b.end);
            prop_assert_eq!(a.label, b.label);
            prop_assert_eq!(&a.tag, &b.tag);
        }
        let (_, got_dropped) =
            decode_spans_with_dropped(&encode_spans_with_dropped(&spans, dropped)).unwrap();
        prop_assert_eq!(got_dropped, dropped);
    }

    #[test]
    fn series_round_trips(series in arb_series()) {
        let decoded = decode_series(&encode_series(&series)).unwrap();
        prop_assert_eq!(decoded.window, series.window);
        prop_assert_eq!(decoded.windows, series.windows);
        prop_assert_eq!(decoded.end, series.end);
        prop_assert_eq!(&decoded.counters, &series.counters);
        prop_assert_eq!(&decoded.hists, &series.hists);
    }

    #[test]
    fn whatif_round_trips(report in arb_whatif()) {
        let decoded = decode_whatif(&encode_whatif(&report)).unwrap();
        prop_assert_eq!(&decoded.workload, &report.workload);
        prop_assert_eq!(decoded.baseline_ns, report.baseline_ns);
        prop_assert_eq!(decoded.entries.len(), report.entries.len());
        for (a, b) in report.entries.iter().zip(&decoded.entries) {
            prop_assert_eq!(&a.component, &b.component);
            prop_assert_eq!(a.factor.to_bits(), b.factor.to_bits());
            prop_assert_eq!(a.perturbed_ns, b.perturbed_ns);
        }
    }

    #[test]
    fn arbitrary_text_never_panics_the_decoders(text in arb_text()) {
        let _ = decode_trace(&text);
        let _ = decode_spans(&text);
        let _ = decode_series(&text);
        let _ = decode_whatif(&text);
    }

    #[test]
    fn version_headers_are_enforced(body in hostile_string()) {
        // A file with the wrong (or no) header is rejected, not misparsed.
        let wrong = format!("# dex-spans v2\n{body}");
        prop_assert!(decode_spans(&wrong).is_err());
        let swapped = format!("# dex-trace v1\n{body}");
        prop_assert!(decode_spans(&swapped).is_err());
        let wrong_trace = format!("# dex-trace v0\n{body}");
        prop_assert!(decode_trace(&wrong_trace).is_err());
        let wrong_series = format!("# dex-series v2\n{body}");
        prop_assert!(decode_series(&wrong_series).is_err());
        let swapped_series = format!("# dex-spans v1\n{body}");
        prop_assert!(decode_series(&swapped_series).is_err());
        let wrong_whatif = format!("# dex-whatif v2\n{body}");
        prop_assert!(decode_whatif(&wrong_whatif).is_err());
    }
}

#[test]
fn empty_trace_and_empty_forest_round_trip() {
    assert!(decode_trace(&encode_trace(&[])).unwrap().is_empty());
    assert!(decode_spans(&encode_spans(&[])).unwrap().is_empty());
}
