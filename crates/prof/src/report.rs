//! Human-readable profiling reports.
//!
//! Renders a [`Profile`] the way the paper's offline toolchain presents
//! its analyses: hottest pages with their objects and nodes, hottest code
//! sites, false-sharing suspects with remediation hints, and the fault
//! timeline.

use std::fmt::Write as _;

use dex_sim::SimDuration;

use crate::analyze::Profile;

/// Options controlling report rendering.
#[derive(Clone, Copy, Debug)]
pub struct ReportOptions {
    /// How many hot pages to list.
    pub top_pages: usize,
    /// How many hot sites to list.
    pub top_sites: usize,
    /// Timeline bucket width.
    pub timeline_bucket: SimDuration,
}

impl Default for ReportOptions {
    fn default() -> Self {
        ReportOptions {
            top_pages: 10,
            top_sites: 10,
            timeline_bucket: SimDuration::from_millis(1),
        }
    }
}

/// Renders `profile` as a text report.
///
/// # Examples
///
/// ```
/// use dex_prof::{render_report, Profile, ReportOptions};
///
/// let profile = Profile::from_trace(&[]);
/// let report = render_report(&profile, &ReportOptions::default());
/// assert!(report.contains("0 protocol events"));
/// ```
pub fn render_report(profile: &Profile, options: &ReportOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== DEX page-fault profile ===");
    let _ = writeln!(out, "{} protocol events analyzed", profile.events());

    let _ = writeln!(out, "\n-- hottest pages --");
    for (vpn, stat) in profile.hot_pages().into_iter().take(options.top_pages) {
        let tags: Vec<&str> = stat.tags.iter().map(String::as_str).collect();
        let _ = writeln!(
            out,
            "{vpn}: {} events ({} r / {} w / {} inv) on {} node(s), objects: [{}]",
            stat.total(),
            stat.reads,
            stat.writes,
            stat.invalidations,
            stat.nodes.len(),
            tags.join(", "),
        );
    }

    let _ = writeln!(out, "\n-- hottest code sites --");
    for (site, stat) in profile.hot_sites().into_iter().take(options.top_sites) {
        let _ = writeln!(
            out,
            "{site}: {} faults ({} r / {} w) across {} page(s)",
            stat.total(),
            stat.reads,
            stat.writes,
            stat.pages.len(),
        );
    }

    let suspects = profile.false_sharing_suspects();
    let _ = writeln!(out, "\n-- false-sharing suspects --");
    if suspects.is_empty() {
        let _ = writeln!(out, "none detected");
    }
    for s in &suspects {
        let _ = writeln!(
            out,
            "{}: {} events, {} write(s), nodes {:?}, co-located objects [{}]\n  hint: pad or posix_memalign the listed objects onto separate pages",
            s.vpn,
            s.events,
            s.writes,
            s.nodes,
            s.tags.join(", "),
        );
    }

    let contended = profile.contended_objects();
    let _ = writeln!(out, "\n-- contended single objects (true sharing) --");
    if contended.is_empty() {
        let _ = writeln!(out, "none detected");
    }
    for (vpn, stat) in contended.into_iter().take(options.top_pages) {
        let tags: Vec<&str> = stat.tags.iter().map(String::as_str).collect();
        let _ = writeln!(
            out,
            "{vpn}: {} events from {} node(s) on [{}]\n  hint: stage updates thread-locally and merge once per iteration",
            stat.total(),
            stat.nodes.len(),
            tags.join(", "),
        );
    }

    let _ = writeln!(out, "\n-- fault rate over time --");
    for (t, count) in profile.timeline(options.timeline_bucket) {
        let _ = writeln!(out, "{t:>12}: {count}");
    }
    out
}
