//! Critical-path analysis over measured span forests.
//!
//! Answers the paper's latency questions from data rather than from the
//! cost model: *where did this fault's 158.8 µs go?* (§III-B's
//! slow-mode fault = directory handling + invalidation fan-out + retry
//! back-off + page transfer + fixup) and *what does a migration cost,
//! phase by phase?* (Table II: remote worker setup, thread fork, context
//! install — reused workers skip the first two).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use dex_core::{Span, SpanKind};

/// Aggregate timing for one migration phase label (one Table II row).
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseStat {
    /// The phase label (e.g. `remote_worker_setup`, `thread_fork`).
    pub label: &'static str,
    /// Number of samples.
    pub count: u64,
    /// Total time across samples, nanoseconds.
    pub total_ns: u64,
}

impl PhaseStat {
    /// Mean phase latency in microseconds.
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64 / 1_000.0
        }
    }
}

/// Groups [`SpanKind::MigrationPhase`] spans by label — the measured
/// reconstruction of Table II's per-phase rows.
pub fn migration_phases(spans: &[Span]) -> Vec<PhaseStat> {
    let mut by_label: BTreeMap<&'static str, PhaseStat> = BTreeMap::new();
    for s in spans.iter().filter(|s| s.kind == SpanKind::MigrationPhase) {
        let e = by_label.entry(s.label).or_insert(PhaseStat {
            label: s.label,
            count: 0,
            total_ns: 0,
        });
        e.count += 1;
        e.total_ns += s.duration().as_nanos();
    }
    by_label.into_values().collect()
}

/// Aggregates the protocol-side span kinds — directory handling,
/// owner-forwarded grants, batched and unicast invalidations, fixups,
/// retries — into one (kind, label) table, so the two-hop path of the
/// sharded directory gets its own rows instead of vanishing into the
/// fault trees. Returns `(kind, label, stat)` rows in kind/label order.
pub fn protocol_path_breakdown(spans: &[Span]) -> Vec<(SpanKind, PhaseStat)> {
    let mut by_key: BTreeMap<(&'static str, &'static str), (SpanKind, PhaseStat)> = BTreeMap::new();
    for s in spans.iter().filter(|s| {
        matches!(
            s.kind,
            SpanKind::DirectoryHandling
                | SpanKind::OwnerForward
                | SpanKind::InvalidateBatch
                | SpanKind::Invalidation
                | SpanKind::PageFixup
                | SpanKind::FaultRetry
        )
    }) {
        let e = by_key.entry((s.kind.as_str(), s.label)).or_insert_with(|| {
            (
                s.kind,
                PhaseStat {
                    label: s.label,
                    count: 0,
                    total_ns: 0,
                },
            )
        });
        e.1.count += 1;
        e.1.total_ns += s.duration().as_nanos();
    }
    by_key.into_values().collect()
}

/// One node of a rendered fault tree.
struct TreeNode<'a> {
    span: &'a Span,
    children: Vec<usize>,
}

/// Builds parent→children indices over a span slice.
fn index_forest(spans: &[Span]) -> (Vec<TreeNode<'_>>, BTreeMap<u64, usize>) {
    let mut nodes: Vec<TreeNode<'_>> = spans
        .iter()
        .map(|span| TreeNode {
            span,
            children: Vec::new(),
        })
        .collect();
    let by_id: BTreeMap<u64, usize> = spans.iter().enumerate().map(|(i, s)| (s.id.0, i)).collect();
    for i in 0..nodes.len() {
        let parent = nodes[i].span.parent.0;
        if parent != 0 {
            if let Some(&p) = by_id.get(&parent) {
                if p != i {
                    nodes[p].children.push(i);
                }
            }
        }
    }
    // Children in start-time order makes the rendered tree a timeline.
    let starts: Vec<u64> = spans.iter().map(|s| s.start.as_nanos()).collect();
    for node in &mut nodes {
        node.children.sort_by_key(|&c| starts[c]);
    }
    (nodes, by_id)
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1_000.0
}

fn render_tree(nodes: &[TreeNode<'_>], i: usize, depth: usize, out: &mut String) {
    let s = nodes[i].span;
    let indent = "  ".repeat(depth);
    let tag = s
        .tag
        .as_deref()
        .map(|t| format!(" [{t}]"))
        .unwrap_or_default();
    let _ = writeln!(
        out,
        "{indent}{} {} @ node {} task {}: {:.1} us{tag}",
        s.kind,
        s.label,
        s.node.0,
        if s.task.0 == u64::MAX {
            "proto".to_string()
        } else {
            s.task.0.to_string()
        },
        us(s.duration().as_nanos()),
    );
    for &c in &nodes[i].children {
        render_tree(nodes, c, depth + 1, out);
    }
}

/// Sum of child durations clipped to the parent's own interval, so
/// "unattributed" time is the parent's span minus measured sub-work
/// (network transit, queueing, scheduling).
fn attributed_ns(nodes: &[TreeNode<'_>], i: usize) -> u64 {
    let parent = nodes[i].span;
    nodes[i]
        .children
        .iter()
        .map(|&c| {
            let child = nodes[c].span;
            let start = child.start.as_nanos().max(parent.start.as_nanos());
            let end = child.end.as_nanos().min(parent.end.as_nanos());
            end.saturating_sub(start)
        })
        .sum()
}

/// Renders the critical-path report: the slowest faults decomposed into
/// their measured sub-spans (with unattributed wire/queue time called
/// out), then the migration phase table.
///
/// `top` bounds how many fault trees are rendered.
pub fn render_critical_path(spans: &[Span], top: usize) -> String {
    let (nodes, _) = index_forest(spans);
    let mut out = String::new();
    let _ = writeln!(out, "=== DEX critical-path report ===");
    let _ = writeln!(out, "{} spans analyzed", spans.len());

    // Roots of interest: whole faults, slowest first.
    let mut faults: Vec<usize> = (0..nodes.len())
        .filter(|&i| nodes[i].span.kind == SpanKind::Fault)
        .collect();
    faults.sort_by_key(|&i| std::cmp::Reverse(nodes[i].span.duration().as_nanos()));

    let _ = writeln!(out, "\n-- slowest faults, decomposed --");
    if faults.is_empty() {
        let _ = writeln!(out, "no fault spans recorded");
    }
    for &i in faults.iter().take(top) {
        let total = nodes[i].span.duration().as_nanos();
        render_tree(&nodes, i, 0, &mut out);
        let unattributed = total.saturating_sub(attributed_ns(&nodes, i));
        let _ = writeln!(
            out,
            "  (unattributed wire/queue/handler time: {:.1} us of {:.1} us)",
            us(unattributed),
            us(total),
        );
    }

    let protocol = protocol_path_breakdown(spans);
    if !protocol.is_empty() {
        let _ = writeln!(out, "\n-- protocol path breakdown --");
        for (kind, p) in &protocol {
            let _ = writeln!(
                out,
                "{:<18} {:<24} {:>4} sample(s)  avg {:>8.1} us",
                kind.as_str(),
                p.label,
                p.count,
                p.mean_us(),
            );
        }
    }

    let phases = migration_phases(spans);
    let _ = writeln!(out, "\n-- migration phases (Table II shape) --");
    if phases.is_empty() {
        let _ = writeln!(out, "no migration phase spans recorded");
    }
    for p in &phases {
        let _ = writeln!(
            out,
            "{:<22} {:>4} sample(s)  avg {:>8.1} us",
            p.label,
            p.count,
            p.mean_us(),
        );
    }

    let migrations: Vec<&Span> = spans
        .iter()
        .filter(|s| matches!(s.kind, SpanKind::MigrationForward | SpanKind::MigrationBack))
        .collect();
    if !migrations.is_empty() {
        let _ = writeln!(out, "\n-- migrations end to end --");
        let mut by_label: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
        for m in &migrations {
            let e = by_label.entry(m.label).or_insert((0, 0));
            e.0 += 1;
            e.1 += m.duration().as_nanos();
        }
        for (label, (count, total)) in by_label {
            let _ = writeln!(
                out,
                "{label:<22} {count:>4} sample(s)  avg {:>8.1} us",
                us(total) / count as f64,
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_core::SpanId;
    use dex_net::NodeId;
    use dex_os::Tid;
    use dex_sim::SimTime;

    fn span(
        id: u64,
        parent: u64,
        kind: SpanKind,
        label: &'static str,
        start: u64,
        end: u64,
    ) -> Span {
        Span {
            id: SpanId(id),
            parent: SpanId(parent),
            kind,
            node: NodeId(if kind == SpanKind::DirectoryHandling {
                0
            } else {
                1
            }),
            task: Tid(3),
            start: SimTime::from_nanos(start),
            end: SimTime::from_nanos(end),
            label,
            tag: None,
        }
    }

    #[test]
    fn fault_tree_reports_unattributed_time() {
        let spans = vec![
            span(1, 0, SpanKind::Fault, "write_fault", 0, 10_000),
            span(
                2,
                1,
                SpanKind::DirectoryHandling,
                "page_request_write",
                2_000,
                3_000,
            ),
            span(3, 1, SpanKind::PageFixup, "grant_with_data", 8_000, 9_000),
        ];
        let report = render_critical_path(&spans, 5);
        assert!(report.contains("fault write_fault"));
        assert!(report.contains("directory_handling"));
        assert!(
            report.contains("unattributed wire/queue/handler time: 8.0 us of 10.0 us"),
            "2 us of 10 attributed, 8 unattributed:\n{report}"
        );
    }

    #[test]
    fn forwarded_path_gets_named_rows_not_other() {
        // A sharded-directory fault: home forwards to the owner, the
        // owner services the grant, readers are revoked in one batch.
        let spans = vec![
            span(1, 0, SpanKind::Fault, "write_fault", 0, 20_000),
            span(
                2,
                1,
                SpanKind::DirectoryHandling,
                "page_request_write",
                3_000,
                4_000,
            ),
            span(
                3,
                2,
                SpanKind::OwnerForward,
                "owner_forward_write",
                7_000,
                9_500,
            ),
            span(
                4,
                2,
                SpanKind::InvalidateBatch,
                "invalidate_batch_flush",
                7_000,
                11_000,
            ),
        ];
        let rows = protocol_path_breakdown(&spans);
        let fwd = rows
            .iter()
            .find(|(k, _)| *k == SpanKind::OwnerForward)
            .expect("owner_forward has its own row");
        assert_eq!(fwd.1.label, "owner_forward_write");
        assert_eq!(fwd.1.count, 1);
        assert!((fwd.1.mean_us() - 2.5).abs() < 1e-9);
        assert!(rows.iter().any(|(k, _)| *k == SpanKind::InvalidateBatch));

        let report = render_critical_path(&spans, 5);
        assert!(report.contains("protocol path breakdown"), "{report}");
        assert!(report.contains("owner_forward"), "{report}");
        assert!(report.contains("invalidate_batch"), "{report}");
    }

    #[test]
    fn migration_phase_table_aggregates_by_label() {
        let spans = vec![
            span(
                1,
                0,
                SpanKind::MigrationPhase,
                "remote_worker_setup",
                0,
                620_000,
            ),
            span(
                2,
                0,
                SpanKind::MigrationPhase,
                "thread_fork",
                620_000,
                770_000,
            ),
            span(
                3,
                0,
                SpanKind::MigrationPhase,
                "context_install",
                770_000,
                800_000,
            ),
            span(4, 0, SpanKind::MigrationPhase, "context_install", 0, 30_000),
        ];
        let phases = migration_phases(&spans);
        let install = phases
            .iter()
            .find(|p| p.label == "context_install")
            .unwrap();
        assert_eq!(install.count, 2);
        assert!((install.mean_us() - 30.0).abs() < 1e-9);
        let setup = phases
            .iter()
            .find(|p| p.label == "remote_worker_setup")
            .unwrap();
        assert!((setup.mean_us() - 620.0).abs() < 1e-9);
    }
}
