//! Chrome trace-event JSON export for Perfetto / `chrome://tracing`.
//!
//! Renders a span forest as complete (`ph:"X"`) slices — one track per
//! `(node, task)` pair, nodes as processes, tasks as threads — plus flow
//! arrows (`ph:"s"` / `ph:"f"`) for every parent link that crosses a
//! track, so a remote fault draws as requester-fault → origin
//! directory-handling → requester-fixup with explicit causality arrows.
//!
//! The output loads directly in [Perfetto](https://ui.perfetto.dev) or
//! `chrome://tracing`. Timestamps are microseconds of virtual time.
//!
//! With a telemetry [`TimeSeries`] attached
//! ([`export_chrome_trace_with_series`]), the trace additionally carries
//! counter tracks (`ph:"C"`): per-node counter deltas and per-window
//! latency quantiles draw as stepped graphs above each node's slices.

use std::fmt::Write as _;

use dex_core::Span;
use dex_net::{SeriesScope, TimeSeries};

/// The display thread id used for protocol-handler spans
/// (`Tid(u64::MAX)` on the wire; JSON tids must stay small integers).
const PROTOCOL_TID: u64 = 0;

fn display_tid(task: dex_os::Tid) -> u64 {
    if task.0 == u64::MAX {
        PROTOCOL_TID
    } else {
        task.0
    }
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn micros(ns: u64) -> f64 {
    ns as f64 / 1_000.0
}

/// Renders `spans` as a Chrome trace-event JSON document.
///
/// # Examples
///
/// ```
/// use dex_core::{Cluster, ClusterConfig};
/// use dex_prof::export_chrome_trace;
///
/// let cluster = Cluster::new(ClusterConfig::new(2).with_spans());
/// let report = cluster.run(|p| {
///     let cell = p.alloc_cell::<u64>(0);
///     p.spawn(move |ctx| {
///         ctx.migrate(1).unwrap();
///         cell.set(ctx, 7);
///     });
/// });
/// let json = export_chrome_trace(&report.spans);
/// assert!(json.contains("\"traceEvents\""));
/// assert!(json.contains("directory_handling"));
/// ```
pub fn export_chrome_trace(spans: &[Span]) -> String {
    export_chrome_trace_with_series(spans, None)
}

/// Like [`export_chrome_trace`], additionally rendering a telemetry
/// [`TimeSeries`] as Perfetto counter tracks (`ph:"C"`).
///
/// Every counter that ever moved gets one track per node (link counters
/// land on the source node, named after the link), stepped at each
/// window boundary — idle windows draw as explicit zeros so gaps are
/// visible. Per-window histogram quantiles become `<name> p50/p99 (ns)`
/// tracks.
pub fn export_chrome_trace_with_series(spans: &[Span], series: Option<&TimeSeries>) -> String {
    let mut out = String::with_capacity(spans.len() * 160 + 64);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    let push = |event: String, out: &mut String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push('\n');
        out.push_str(&event);
    };

    // Process/thread naming metadata: one process per node, tid 0 is the
    // protocol dispatcher.
    let mut named: std::collections::BTreeSet<(u64, u64)> = std::collections::BTreeSet::new();
    for s in spans {
        let key = (u64::from(s.node.0), display_tid(s.task));
        if named.insert(key) {
            if named.iter().filter(|(pid, _)| *pid == key.0).count() == 1 {
                push(
                    format!(
                        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\
                         \"args\":{{\"name\":\"node {}\"}}}}",
                        key.0, key.0
                    ),
                    &mut out,
                    &mut first,
                );
            }
            let tname = if key.1 == PROTOCOL_TID {
                "protocol".to_string()
            } else {
                format!("thread {}", key.1)
            };
            push(
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\
                     \"args\":{{\"name\":\"{tname}\"}}}}",
                    key.0, key.1
                ),
                &mut out,
                &mut first,
            );
        }
    }

    let by_id: std::collections::HashMap<u64, &Span> = spans.iter().map(|s| (s.id.0, s)).collect();

    for s in spans {
        let pid = u64::from(s.node.0);
        let tid = display_tid(s.task);
        let name = json_escape(&format!("{}:{}", s.kind, s.label));
        let tag = match &s.tag {
            Some(t) => format!(",\"tag\":\"{}\"", json_escape(t)),
            None => String::new(),
        };
        push(
            format!(
                "{{\"name\":\"{name}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\
                 \"dur\":{:.3},\"pid\":{pid},\"tid\":{tid},\
                 \"args\":{{\"span\":{},\"parent\":{}{tag}}}}}",
                s.kind,
                micros(s.start.as_nanos()),
                micros(s.end.as_nanos().saturating_sub(s.start.as_nanos())),
                s.id.0,
                s.parent.0,
            ),
            &mut out,
            &mut first,
        );
        // A parent on a different (node, task) track gets a flow arrow.
        if let Some(parent) = by_id.get(&s.parent.0) {
            let ppid = u64::from(parent.node.0);
            let ptid = display_tid(parent.task);
            if (ppid, ptid) != (pid, tid) {
                push(
                    format!(
                        "{{\"name\":\"causal\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":{},\
                         \"ts\":{:.3},\"pid\":{ppid},\"tid\":{ptid}}}",
                        s.id.0,
                        micros(parent.start.as_nanos()),
                    ),
                    &mut out,
                    &mut first,
                );
                push(
                    format!(
                        "{{\"name\":\"causal\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\
                         \"id\":{},\"ts\":{:.3},\"pid\":{pid},\"tid\":{tid}}}",
                        s.id.0,
                        micros(s.start.as_nanos()),
                    ),
                    &mut out,
                    &mut first,
                );
            }
        }
    }

    if let Some(series) = series {
        // One counter track per (pid, name); values stepped per window,
        // with explicit zeros at idle windows so drops are visible.
        let width_us = micros(series.window.as_nanos());
        let mut tracks: std::collections::BTreeMap<
            (u64, String),
            std::collections::BTreeMap<u64, u64>,
        > = std::collections::BTreeMap::new();
        for p in &series.counters {
            let (pid, name) = match p.scope {
                SeriesScope::Node(n) => (u64::from(n), p.name.clone()),
                SeriesScope::Link(s, d) => (u64::from(s), format!("link{s}>{d} {}", p.name)),
            };
            *tracks
                .entry((pid, name))
                .or_default()
                .entry(p.window)
                .or_insert(0) += p.delta;
        }
        for p in &series.hists {
            let pid = u64::from(p.node);
            for (q, v) in [("p50", p.p50), ("p99", p.p99)] {
                tracks
                    .entry((pid, format!("{} {q} (ns)", p.name)))
                    .or_default()
                    .insert(p.window, v.as_nanos());
            }
        }
        for ((pid, name), values) in &tracks {
            let name = json_escape(name);
            for window in 0..series.windows {
                let value = values.get(&window).copied().unwrap_or(0);
                push(
                    format!(
                        "{{\"name\":\"{name}\",\"cat\":\"telemetry\",\"ph\":\"C\",\
                         \"ts\":{:.3},\"pid\":{pid},\"args\":{{\"value\":{value}}}}}",
                        window as f64 * width_us,
                    ),
                    &mut out,
                    &mut first,
                );
            }
        }
    }

    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_core::{SpanId, SpanKind};
    use dex_net::NodeId;
    use dex_os::Tid;
    use dex_sim::SimTime;

    fn span(id: u64, parent: u64, node: u16, task: u64) -> Span {
        Span {
            id: SpanId(id),
            parent: SpanId(parent),
            kind: SpanKind::Fault,
            node: NodeId(node),
            task: Tid(task),
            start: SimTime::from_nanos(1_000),
            end: SimTime::from_nanos(2_500),
            label: "write_fault",
            tag: Some("data\"quote".into()),
        }
    }

    #[test]
    fn emits_complete_events_and_metadata(// (json validity is covered by the proptest in tests/)
    ) {
        let json = export_chrome_trace(&[span(1, 0, 1, 3)]);
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("data\\\"quote"), "tags are JSON-escaped");
        assert!(json.contains("\"ts\":1.000"), "timestamps are microseconds");
    }

    #[test]
    fn cross_track_parents_get_flow_arrows() {
        let parent = span(1, 0, 1, 3);
        let mut child = span(2, 1, 0, u64::MAX);
        child.kind = SpanKind::DirectoryHandling;
        let json = export_chrome_trace(&[parent, child]);
        assert!(
            json.contains("\"ph\":\"s\""),
            "flow start on the parent track"
        );
        assert!(
            json.contains("\"ph\":\"f\""),
            "flow finish on the child track"
        );
        // Same-track parent: no flow events.
        let json2 = export_chrome_trace(&[span(1, 0, 1, 3), span(2, 1, 1, 3)]);
        assert!(!json2.contains("\"cat\":\"flow\""));
    }

    #[test]
    fn series_renders_as_counter_tracks() {
        use dex_net::{CounterPoint, HistPoint, SeriesScope, TimeSeries};
        use dex_sim::SimDuration;
        let series = TimeSeries {
            window: SimDuration::from_micros(50),
            windows: 2,
            end: SimTime::from_nanos(100_000),
            counters: vec![
                CounterPoint {
                    window: 1,
                    scope: SeriesScope::Node(0),
                    name: "dsm.faults_write".into(),
                    delta: 4,
                },
                CounterPoint {
                    window: 0,
                    scope: SeriesScope::Link(0, 1),
                    name: "bytes".into(),
                    delta: 4_096,
                },
            ],
            hists: vec![HistPoint {
                window: 0,
                node: 1,
                name: "net.send_pool_wait".into(),
                count: 3,
                p50: SimDuration::from_nanos(900),
                p95: SimDuration::from_nanos(950),
                p99: SimDuration::from_nanos(990),
            }],
        };
        let json = export_chrome_trace_with_series(&[span(1, 0, 0, 3)], Some(&series));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"name\":\"dsm.faults_write\""));
        assert!(json.contains("\"name\":\"link0>1 bytes\""));
        assert!(json.contains("\"name\":\"net.send_pool_wait p99 (ns)\""));
        // Window 0 of the node counter is an explicit zero; window 1 at
        // the 50µs boundary carries the delta.
        assert!(json.contains("\"ts\":0.000,\"pid\":0,\"args\":{\"value\":0}"));
        assert!(json.contains("\"ts\":50.000,\"pid\":0,\"args\":{\"value\":4}"));
        // Without a series nothing changes.
        assert!(!export_chrome_trace(&[span(1, 0, 0, 3)]).contains("\"ph\":\"C\""));
    }
}
