//! # dex-prof — the DEX page-fault profiling toolchain
//!
//! The paper's §IV workflow made applications scale: run under tracing,
//! find the pages and code sites causing cross-node traffic, separate
//! falsely-shared objects onto their own pages, and stage updates to
//! truly-shared objects locally. This crate is the offline half of that
//! toolchain:
//!
//! * [`Profile`] — aggregates a six-tuple fault trace into hot pages, hot
//!   code sites, per-thread patterns, and a fault timeline.
//! * [`Profile::false_sharing_suspects`] — pages carrying multiple objects
//!   with conflicting cross-node access (fix: pad / page-align).
//! * [`Profile::contended_objects`] — single objects under true sharing
//!   (fix: stage updates locally, merge per iteration).
//! * [`render_report`] — the human-readable report.
//!
//! # Examples
//!
//! Profile a run and render the report:
//!
//! ```
//! use dex_core::{Cluster, ClusterConfig};
//! use dex_prof::{render_report, Profile, ReportOptions};
//!
//! let cluster = Cluster::new(ClusterConfig::new(2).with_trace());
//! let report = cluster.run(|p| {
//!     let hot = p.alloc_cell_tagged::<u64>(0, "hot_flag");
//!     p.spawn(move |ctx| {
//!         ctx.set_site("example.loop");
//!         ctx.migrate(1).unwrap();
//!         for _ in 0..10 {
//!             hot.rmw(ctx, |v| v + 1);
//!         }
//!     });
//! });
//! let profile = Profile::from_trace(&report.trace);
//! let text = render_report(&profile, &ReportOptions::default());
//! assert!(text.contains("hot_flag"));
//! ```

#![warn(missing_docs)]

mod analyze;
pub mod codec;
mod critical_path;
pub mod diff;
mod report;
pub mod series_codec;
pub mod span_codec;
mod timeline;
mod top;
pub mod whatif;

pub use analyze::{FalseSharingSuspect, NodeTraffic, PageStat, Profile, SiteStat};
pub use codec::{decode_trace, decode_trace_with_dropped, encode_trace, encode_trace_with_dropped};
pub use critical_path::{
    migration_phases, protocol_path_breakdown, render_critical_path, PhaseStat,
};
pub use diff::{
    bench_numeric_fields, diff_bench, diff_series, diff_spans, render_diff, sniff_and_decode,
    DiffInput, DiffRow, SpanDiff,
};
pub use report::{render_report, ReportOptions};
pub use series_codec::{decode_series, encode_series};
pub use span_codec::{
    decode_spans, decode_spans_with_dropped, encode_spans, encode_spans_with_dropped,
};
pub use timeline::{export_chrome_trace, export_chrome_trace_with_series};
pub use top::render_top;
pub use whatif::{decode_whatif, encode_whatif, render_whatif, WhatIfEntry, WhatIfReport};
