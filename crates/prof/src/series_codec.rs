//! Text serialization of windowed telemetry time-series.
//!
//! Companion to the trace and span codecs: line-oriented, tab-separated,
//! versioned by a header line, free-form fields escaped reversibly with
//! the same scheme ([`escape_field`](crate::codec::escape_field)). The
//! series preamble is carried in `#`-prefixed metadata lines so the body
//! stays uniform:
//!
//! ```text
//! # dex-series v1
//! # window <ns>
//! # windows <n>
//! # end <ns>
//! c\t<window>\t<scope>\t<name>\t<delta>
//! h\t<window>\t<node>\t<name>\t<count>\t<p50_ns>\t<p95_ns>\t<p99_ns>
//! ```
//!
//! `<scope>` is `node<N>` or `link<SRC>><DST>` (the
//! [`SeriesScope`] display form). Counter and histogram rows may
//! interleave; decoding preserves their original order within each kind.

use dex_net::{CounterPoint, HistPoint, SeriesScope, TimeSeries};
use dex_sim::{SimDuration, SimTime};

use crate::codec::{escape_field, unescape_field};

/// Magic header identifying the series format.
pub const SERIES_HEADER: &str = "# dex-series v1";

fn encode_scope(scope: SeriesScope) -> String {
    scope.to_string()
}

fn decode_scope(s: &str) -> Option<SeriesScope> {
    if let Some(n) = s.strip_prefix("node") {
        return n.parse().ok().map(SeriesScope::Node);
    }
    let rest = s.strip_prefix("link")?;
    let (src, dst) = rest.split_once('>')?;
    Some(SeriesScope::Link(src.parse().ok()?, dst.parse().ok()?))
}

/// Serializes `series` into the versioned text format.
pub fn encode_series(series: &TimeSeries) -> String {
    let mut out = String::with_capacity(
        (series.counters.len() + series.hists.len()) * 48 + SERIES_HEADER.len() + 64,
    );
    out.push_str(SERIES_HEADER);
    out.push('\n');
    out.push_str(&format!("# window {}\n", series.window.as_nanos()));
    out.push_str(&format!("# windows {}\n", series.windows));
    out.push_str(&format!("# end {}\n", series.end.as_nanos()));
    for p in &series.counters {
        out.push_str(&format!(
            "c\t{}\t{}\t{}\t{}\n",
            p.window,
            encode_scope(p.scope),
            escape_field(&p.name),
            p.delta
        ));
    }
    for p in &series.hists {
        out.push_str(&format!(
            "h\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
            p.window,
            p.node,
            escape_field(&p.name),
            p.count,
            p.p50.as_nanos(),
            p.p95.as_nanos(),
            p.p99.as_nanos()
        ));
    }
    out
}

/// Parses the text format produced by [`encode_series`].
pub fn decode_series(text: &str) -> Result<TimeSeries, String> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, header)) if header.trim() == SERIES_HEADER => {}
        Some((_, header)) => {
            return Err(format!(
                "unrecognized series header {header:?} (expected {SERIES_HEADER:?})"
            ))
        }
        None => return Err("empty series file".to_string()),
    }
    let mut series = TimeSeries::default();
    for (lineno, line) in lines {
        let line = line.trim_end_matches('\r');
        if line.is_empty() || line.starts_with('#') {
            let meta = |prefix: &str| line.strip_prefix(prefix).map(str::trim);
            let parse_meta = |v: &str, what: &str| -> Result<u64, String> {
                v.parse()
                    .map_err(|e| format!("line {}: bad {what}: {e}", lineno + 1))
            };
            if let Some(v) = meta("# window ") {
                series.window = SimDuration::from_nanos(parse_meta(v, "window width")?);
            } else if let Some(v) = meta("# windows ") {
                series.windows = parse_meta(v, "window count")?;
            } else if let Some(v) = meta("# end ") {
                series.end = SimTime::from_nanos(parse_meta(v, "end time")?);
            }
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        let parse_u64 = |s: &str, what: &str| -> Result<u64, String> {
            s.parse()
                .map_err(|e| format!("line {}: bad {what}: {e}", lineno + 1))
        };
        match fields[0] {
            "c" => {
                if fields.len() != 5 {
                    return Err(format!(
                        "line {}: expected 5 fields for a counter point, got {}",
                        lineno + 1,
                        fields.len()
                    ));
                }
                let scope = decode_scope(fields[2])
                    .ok_or_else(|| format!("line {}: bad scope {:?}", lineno + 1, fields[2]))?;
                series.counters.push(CounterPoint {
                    window: parse_u64(fields[1], "window")?,
                    scope,
                    name: unescape_field(fields[3])
                        .map_err(|e| format!("line {}: name: {e}", lineno + 1))?,
                    delta: parse_u64(fields[4], "delta")?,
                });
            }
            "h" => {
                if fields.len() != 8 {
                    return Err(format!(
                        "line {}: expected 8 fields for a histogram point, got {}",
                        lineno + 1,
                        fields.len()
                    ));
                }
                series.hists.push(HistPoint {
                    window: parse_u64(fields[1], "window")?,
                    node: fields[2]
                        .parse()
                        .map_err(|e| format!("line {}: bad node: {e}", lineno + 1))?,
                    name: unescape_field(fields[3])
                        .map_err(|e| format!("line {}: name: {e}", lineno + 1))?,
                    count: parse_u64(fields[4], "count")?,
                    p50: SimDuration::from_nanos(parse_u64(fields[5], "p50")?),
                    p95: SimDuration::from_nanos(parse_u64(fields[6], "p95")?),
                    p99: SimDuration::from_nanos(parse_u64(fields[7], "p99")?),
                });
            }
            other => {
                return Err(format!(
                    "line {}: unknown row kind {other:?} (expected `c` or `h`)",
                    lineno + 1
                ))
            }
        }
    }
    Ok(series)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TimeSeries {
        TimeSeries {
            window: SimDuration::from_micros(50),
            windows: 3,
            end: SimTime::from_nanos(123_456),
            counters: vec![
                CounterPoint {
                    window: 0,
                    scope: SeriesScope::Node(1),
                    name: "dsm.faults_write".into(),
                    delta: 4,
                },
                CounterPoint {
                    window: 2,
                    scope: SeriesScope::Link(0, 1),
                    name: "bytes".into(),
                    delta: 8_192,
                },
            ],
            hists: vec![HistPoint {
                window: 1,
                node: 0,
                name: "net.send_pool_wait".into(),
                count: 12,
                p50: SimDuration::from_nanos(900),
                p95: SimDuration::from_nanos(2_400),
                p99: SimDuration::from_nanos(2_500),
            }],
        }
    }

    #[test]
    fn round_trip_preserves_all_fields() {
        let series = sample();
        let decoded = decode_series(&encode_series(&series)).unwrap();
        assert_eq!(decoded.window, series.window);
        assert_eq!(decoded.windows, series.windows);
        assert_eq!(decoded.end, series.end);
        assert_eq!(decoded.counters, series.counters);
        assert_eq!(decoded.hists, series.hists);
    }

    #[test]
    fn rejects_bad_header_and_malformed_lines() {
        assert!(decode_series("").is_err());
        assert!(decode_series("# dex-spans v1\n").is_err());
        assert!(decode_series("# dex-series v2\n").is_err());
        let bad_kind = format!("{SERIES_HEADER}\nz\t0\tnode0\tx\t1\n");
        assert!(decode_series(&bad_kind).is_err());
        let short = format!("{SERIES_HEADER}\nc\t0\tnode0\n");
        assert!(decode_series(&short).is_err());
        let bad_scope = format!("{SERIES_HEADER}\nc\t0\tzone3\tx\t1\n");
        assert!(decode_series(&bad_scope).is_err());
    }

    #[test]
    fn empty_series_round_trips() {
        let decoded = decode_series(&encode_series(&TimeSeries::default())).unwrap();
        assert_eq!(decoded.windows, 0);
        assert!(decoded.counters.is_empty() && decoded.hists.is_empty());
    }

    #[test]
    fn hostile_names_round_trip() {
        for s in ["tab\there", "-", "", "new\nline", "back\\slash"] {
            let mut series = sample();
            series.counters[0].name = s.to_string();
            series.hists[0].name = s.to_string();
            let decoded = decode_series(&encode_series(&series)).unwrap();
            assert_eq!(decoded.counters[0].name, s);
            assert_eq!(decoded.hists[0].name, s);
        }
    }
}
