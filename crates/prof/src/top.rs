//! The `dex-prof top` dashboard: one window of a telemetry
//! [`TimeSeries`] rendered as a per-node ASCII table — counter deltas
//! by node, link traffic, per-window latency quantiles, and the health
//! alarms raised in that window.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use dex_core::HealthEvent;
use dex_net::{SeriesScope, TimeSeries};

fn pad(s: &str, width: usize) -> String {
    format!("{s:>width$}")
}

fn render_grid(out: &mut String, header: Vec<String>, rows: Vec<Vec<String>>) {
    let mut widths: Vec<usize> = header.iter().map(String::len).collect();
    for row in &rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    for (row_ix, row) in std::iter::once(&header).chain(rows.iter()).enumerate() {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, cell)| pad(cell, widths[i]))
            .collect();
        let _ = writeln!(out, "  {}", line.join("  "));
        if row_ix == 0 {
            let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
            let _ = writeln!(out, "  {}", rule.join("  "));
        }
    }
}

/// Renders one window of `series` as the `top` dashboard. `window`
/// defaults to the last recorded window; `health` is filtered down to
/// the alarms of the rendered window.
///
/// # Examples
///
/// ```
/// use dex_core::{Cluster, ClusterConfig};
/// use dex_sim::SimDuration;
///
/// let config = ClusterConfig::new(2).with_telemetry(SimDuration::from_micros(50));
/// let report = Cluster::new(config).run(|p| {
///     p.spawn(|ctx| {
///         ctx.migrate(1).unwrap();
///         ctx.migrate_back().unwrap();
///     });
/// });
/// let series = report.series.expect("telemetry on");
/// let text = dex_prof::render_top(&series, &report.health, None);
/// assert!(text.contains("node"));
/// ```
pub fn render_top(series: &TimeSeries, health: &[HealthEvent], window: Option<u64>) -> String {
    let mut out = String::new();
    if series.windows == 0 {
        return "dex-prof top: the series has no windows (nothing moved)\n".to_string();
    }
    let w = window.unwrap_or(series.windows - 1).min(series.windows - 1);
    let _ = writeln!(
        out,
        "dex-prof top — window {w}/{} (width {}, run ends at {})",
        series.windows - 1,
        series.window,
        series.end
    );
    out.push('\n');

    // Per-node counters: one row per node, one column per counter name.
    let mut node_names: BTreeSet<&str> = BTreeSet::new();
    let mut node_vals: BTreeMap<(u16, &str), u64> = BTreeMap::new();
    let mut link_names: BTreeSet<&str> = BTreeSet::new();
    let mut link_vals: BTreeMap<((u16, u16), &str), u64> = BTreeMap::new();
    for p in series.counters_in(w) {
        match p.scope {
            SeriesScope::Node(n) => {
                node_names.insert(&p.name);
                *node_vals.entry((n, &p.name)).or_insert(0) += p.delta;
            }
            SeriesScope::Link(s, d) => {
                link_names.insert(&p.name);
                *link_vals.entry(((s, d), &p.name)).or_insert(0) += p.delta;
            }
        }
    }
    if node_names.is_empty() && link_names.is_empty() {
        out.push_str("  (idle window: no counter moved)\n");
    }
    if !node_names.is_empty() {
        let nodes: BTreeSet<u16> = node_vals.keys().map(|(n, _)| *n).collect();
        let mut header = vec!["node".to_string()];
        header.extend(node_names.iter().map(|s| s.to_string()));
        let rows = nodes
            .iter()
            .map(|n| {
                let mut row = vec![n.to_string()];
                row.extend(node_names.iter().map(|name| {
                    node_vals
                        .get(&(*n, *name))
                        .map_or_else(|| "-".to_string(), u64::to_string)
                }));
                row
            })
            .collect();
        render_grid(&mut out, header, rows);
        out.push('\n');
    }
    if !link_names.is_empty() {
        let links: BTreeSet<(u16, u16)> = link_vals.keys().map(|(l, _)| *l).collect();
        let mut header = vec!["link".to_string()];
        header.extend(link_names.iter().map(|s| s.to_string()));
        let rows = links
            .iter()
            .map(|(s, d)| {
                let mut row = vec![format!("{s}>{d}")];
                row.extend(link_names.iter().map(|name| {
                    link_vals
                        .get(&((*s, *d), *name))
                        .map_or_else(|| "-".to_string(), u64::to_string)
                }));
                row
            })
            .collect();
        render_grid(&mut out, header, rows);
        out.push('\n');
    }

    let hists: Vec<_> = series.hists_in(w).collect();
    if !hists.is_empty() {
        let header = ["latency", "node", "count", "p50", "p95", "p99"]
            .map(String::from)
            .to_vec();
        let rows = hists
            .iter()
            .map(|h| {
                vec![
                    h.name.clone(),
                    h.node.to_string(),
                    h.count.to_string(),
                    h.p50.to_string(),
                    h.p95.to_string(),
                    h.p99.to_string(),
                ]
            })
            .collect();
        render_grid(&mut out, header, rows);
        out.push('\n');
    }

    let alarms: Vec<&HealthEvent> = health.iter().filter(|e| e.window == w).collect();
    if alarms.is_empty() {
        out.push_str("health: ok\n");
    } else {
        let _ = writeln!(out, "health: {} alarm(s)", alarms.len());
        for e in alarms {
            let _ = writeln!(out, "  {e}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_net::{CounterPoint, HistPoint};
    use dex_sim::{SimDuration, SimTime};

    fn sample() -> TimeSeries {
        TimeSeries {
            window: SimDuration::from_micros(50),
            windows: 2,
            end: SimTime::from_nanos(100_000),
            counters: vec![
                CounterPoint {
                    window: 1,
                    scope: SeriesScope::Node(0),
                    name: "dsm.faults_write".into(),
                    delta: 4,
                },
                CounterPoint {
                    window: 1,
                    scope: SeriesScope::Node(1),
                    name: "msgs.sent".into(),
                    delta: 7,
                },
                CounterPoint {
                    window: 1,
                    scope: SeriesScope::Link(0, 1),
                    name: "bytes".into(),
                    delta: 4_096,
                },
            ],
            hists: vec![HistPoint {
                window: 1,
                node: 0,
                name: "net.send_pool_wait".into(),
                count: 3,
                p50: SimDuration::from_nanos(900),
                p95: SimDuration::from_nanos(950),
                p99: SimDuration::from_nanos(990),
            }],
        }
    }

    #[test]
    fn renders_counters_links_latency_and_health() {
        let text = render_top(&sample(), &[], None);
        assert!(text.contains("window 1/1"), "{text}");
        assert!(text.contains("dsm.faults_write"));
        assert!(text.contains("msgs.sent"));
        assert!(text.contains("0>1"));
        assert!(text.contains("net.send_pool_wait"));
        assert!(text.contains("health: ok"));
        // Node 1 never wrote a fault: rendered as `-`, not 0.
        let node_row = text
            .lines()
            .find(|l| l.trim_start().starts_with("1 "))
            .unwrap();
        assert!(node_row.contains('-'), "{node_row}");
    }

    #[test]
    fn idle_window_and_empty_series_render_gracefully() {
        let empty = render_top(&TimeSeries::default(), &[], None);
        assert!(empty.contains("no windows"));
        let idle = render_top(&sample(), &[], Some(0));
        assert!(idle.contains("idle window"), "{idle}");
    }

    #[test]
    fn health_alarms_of_the_window_are_listed() {
        use dex_core::{HealthEventKind, SpanId};
        let health = vec![HealthEvent {
            window: 1,
            at: SimTime::from_nanos(100_000),
            kind: HealthEventKind::PagePingPong,
            node: dex_net::NodeId(0),
            span: SpanId(9),
            detail: "tag 'bouncer' faulted 8x from 2 nodes".into(),
        }];
        let text = render_top(&sample(), &health, Some(1));
        assert!(text.contains("1 alarm(s)"));
        assert!(text.contains("page_ping_pong"));
        // A different window filters it out.
        let other = render_top(&sample(), &health, Some(0));
        assert!(other.contains("health: ok"));
    }
}
